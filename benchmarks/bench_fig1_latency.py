"""R-F1: speedup vs memory latency (latency tolerance)."""

from repro.harness.experiments import fig1_latency


def test_fig1_latency(run_and_print):
    table = run_and_print(fig1_latency, n=256)
    for kernel in table.columns[1:]:
        series = table.column(kernel)
        assert series[-1] > series[0], f"{kernel} not latency tolerant"
