"""R-F2: cycles vs architectural queue depth (small queues suffice)."""

from repro.harness.experiments import fig2_queue_depth


def test_fig2_queue_depth(run_and_print):
    table = run_and_print(fig2_queue_depth, n=256)
    for kernel in table.columns[1:]:
        series = table.column(kernel)
        assert series[0] >= series[-1]
        # saturated well before the deepest setting
        assert series[-2] == series[-1]
