"""R-F3: achieved run-ahead (slip) per kernel."""

from repro.harness.experiments import fig3_slip


def test_fig3_slip(run_and_print):
    table = run_and_print(fig3_slip, n=256)
    rows = table.row_map("kernel")
    cols = list(table.columns)
    mean = cols.index("mean_outstanding")
    starve = cols.index("ep_empty_stall_frac")
    # streaming kernels sustain deeper run-ahead than the LOD kernel...
    assert rows["hydro"][mean] > rows["computed_gather"][mean]
    # ...and, decisively, their EP almost never starves, while the LOD
    # kernel's EP waits on memory most of the time (occupancy alone can't
    # show this: a LOD-stalled loop parks with *full* queues)
    assert rows["hydro"][starve] < 0.1
    assert rows["computed_gather"][starve] > 0.4
