"""R-F4: memory throughput vs interleaving degree."""

from repro.harness.experiments import fig4_banks


def test_fig4_banks(run_and_print):
    table = run_and_print(fig4_banks, n=256)
    by_banks = table.row_map("banks")
    cols = list(table.columns)
    daxpy = cols.index("daxpy")
    s8 = cols.index("stride8_copy")
    assert by_banks[8][daxpy] > 2.5 * by_banks[1][daxpy]
    assert by_banks[8][s8] < 1.5 * by_banks[1][s8]
