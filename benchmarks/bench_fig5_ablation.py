"""R-F5: structured descriptors vs per-element (plain DAE) access."""

from repro.harness.experiments import fig5_ablation


def test_fig5_ablation(run_and_print):
    table = run_and_print(fig5_ablation, n=256)
    assert min(table.column("benefit")) > 1.2
