"""R-F6: queue occupancy over time (the decoupling profile)."""

from repro.harness.experiments import fig6_occupancy


def test_fig6_occupancy(run_and_print):
    table = run_and_print(fig6_occupancy, kernel_name="hydro", n=512)
    occupancy = table.column("load_occupancy")
    # fills quickly, sustains, then drains: peak well above the edges
    assert max(occupancy) >= 4.0
    assert occupancy[-1] <= max(occupancy)
