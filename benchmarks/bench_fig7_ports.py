"""R-F7 (extension): memory-port width ablation for a single node."""

from repro.harness.experiments import fig7_ports


def test_fig7_ports(run_and_print):
    table = run_and_print(fig7_ports, n=256)
    cols = list(table.columns)
    # committed finding: a single node is execute-bound, so throughput is
    # flat in port width (within 2%) and the EP is busy ~all cycles
    for kernel in ("daxpy", "hydro", "state_eqn"):
        series = table.column(kernel)
        assert max(series) <= min(series) * 1.02, kernel
    assert min(table.column("ep_busy_daxpy")) > 0.9
