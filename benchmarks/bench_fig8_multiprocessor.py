"""R-F8 (extension): SMA nodes sharing one banked memory."""

from repro.harness.experiments import fig8_multiprocessor


def test_fig8_multiprocessor(run_and_print):
    table = run_and_print(fig8_multiprocessor, n=192)
    by_nodes = table.row_map("nodes")
    cols = list(table.columns)
    one_port = cols.index("ports1")
    four_ports = cols.index("ports4")
    # single node: no interference by definition
    assert by_nodes[1][one_port] == 1.0
    # port starvation scales with node count ...
    assert by_nodes[8][one_port] > by_nodes[4][one_port] \
        > by_nodes[2][one_port] > 1.2
    # ... and widening the port wins most of it back
    assert by_nodes[4][four_ports] < by_nodes[4][one_port] * 0.7
    assert by_nodes[8][four_ports] < by_nodes[8][one_port] * 0.7
