"""R-F9: speculation run-ahead depth sweep."""

from repro.harness.experiments import fig9_spec_depth


def test_fig9_spec_depth(run_and_print):
    table = run_and_print(fig9_spec_depth, n=256)
    cols = list(table.columns)
    cyc = cols.index("cycles")
    by_kernel: dict[str, list] = {}
    for row in table.rows:
        by_kernel.setdefault(row[0], []).append(row)
    for rows in by_kernel.values():
        cycles = [r[cyc] for r in rows]
        # deeper run-ahead never hurts, and depth 1 is clearly worse
        # than the saturation point
        assert cycles == sorted(cycles, reverse=True)
        assert cycles[0] > 1.2 * cycles[-1]
