"""Simulator throughput: simulated cycles per wall-second.

This benchmark tracks the performance of the *simulator itself* (not the
simulated machines).  It runs the high-latency end of the R-F1 sweep —
the latency-dominated regime where the processors spend most cycles
waiting on memory — two ways:

``seed harness``
    the pre-optimization path: per-point :func:`compare_spec` (which
    re-instantiates, re-lowers and re-runs the reference interpreter at
    every sweep point) with cycle fast-forward disabled, i.e. the naive
    one-Python-iteration-per-cycle loop.

``job harness``
    the current path: declarative :class:`~repro.harness.jobs.Job` lists
    through :func:`~repro.harness.parallel.run_jobs` (memoized
    lowering/reference, ``--jobs`` fan-out on multi-core hosts) with
    cycle fast-forward enabled.

Both produce the same per-point speedup numbers and the same simulated
cycle counts — asserted below — so the wall-clock ratio is a pure
simulator-engineering win.  Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_sim_throughput.py -s
"""

import os
import time
from dataclasses import replace

import pytest

from repro.config import MemoryConfig, SMAConfig
from repro.core import machine as machine_mod
from repro.core.cluster import SMACluster
from repro.harness.experiments import LATENCY_REPS, _configs
from repro.harness.jobs import Job
from repro.harness.parallel import run_jobs
from repro.harness.runner import compare_spec
from repro.kernels import get_kernel, lower_sma

#: the high-latency end of the R-F1 sweep (bank_busy = latency/2)
LATENCIES = (64, 128, 256, 512)
N = 256
KERNELS = LATENCY_REPS


def _seed_harness_sweep() -> tuple[list[float], int, float]:
    """The seed harness path: naive ticking, no memoization, no jobs.

    Returns (per-point speedups, total simulated SMA cycles, wall secs).
    """
    speedups = []
    total_cycles = 0
    previous = machine_mod.set_fast_forward(False)
    start = time.perf_counter()
    try:
        for latency in LATENCIES:
            sma_cfg, scalar_cfg = _configs(latency=latency)
            for name in KERNELS:
                cmp_run = compare_spec(
                    get_kernel(name), N,
                    sma_config=sma_cfg, scalar_config=scalar_cfg,
                )
                speedups.append(cmp_run.speedup)
                total_cycles += cmp_run.sma.cycles
    finally:
        elapsed = time.perf_counter() - start
        machine_mod.set_fast_forward(previous)
    return speedups, total_cycles, elapsed


def _job_harness_sweep() -> tuple[list[float], int, float]:
    """The current harness path: fast-forward + memoized job layer."""
    joblist = []
    for latency in LATENCIES:
        sma_cfg, scalar_cfg = _configs(latency=latency)
        for name in KERNELS:
            joblist.append(Job("sma", name, N, sma_config=sma_cfg,
                               check=True))
            joblist.append(Job("scalar", name, N,
                               scalar_config=scalar_cfg, check=True))
    # fan out on multi-core hosts; a single-core host runs serially
    # (a process pool there only adds spawn overhead and cold caches)
    workers = min(4, os.cpu_count() or 1)
    start = time.perf_counter()
    results = run_jobs(joblist, workers=workers)
    elapsed = time.perf_counter() - start
    speedups = [
        scalar["cycles"] / sma["cycles"]
        for sma, scalar in zip(results[::2], results[1::2])
    ]
    total_cycles = sum(r["cycles"] for r in results[::2])
    return speedups, total_cycles, elapsed


@pytest.mark.benchmark(group="throughput")
def test_sim_throughput(capsys):
    seed_speedups, seed_cycles, seed_secs = _seed_harness_sweep()
    job_speedups, job_cycles, job_secs = _job_harness_sweep()

    # identical simulations: same cycle counts, same speedup table
    assert job_cycles == seed_cycles
    assert job_speedups == seed_speedups

    ratio = seed_secs / job_secs
    with capsys.disabled():
        print()
        print(f"high-latency R-F1 sweep (latencies {LATENCIES}, n={N}): "
              f"{seed_cycles} simulated SMA cycles")
        print(f"  seed harness (naive ticking)       : "
              f"{seed_cycles / seed_secs:12.0f} cycles/s ({seed_secs:.3f}s)")
        print(f"  job harness (fast-forward + jobs)  : "
              f"{job_cycles / job_secs:12.0f} cycles/s ({job_secs:.3f}s)")
        print(f"  wall-clock improvement             : {ratio:.2f}x")
    # acceptance floor: the latency-dominated regime is mostly idle
    # cycles, so fast-forward + memoization should win decisively
    assert ratio >= 3.0


# ---------------------------------------------------------------------------
# cluster fast-forward: the widened R-F8 grid, naive vs fast-forward
# ---------------------------------------------------------------------------

#: the widened R-F8 grid (node counts 1-8 x port widths), swept at three
#: memory latencies; bank_busy tracks latency/2 like the R-F1 sweep
CLUSTER_NODES = (1, 2, 4, 8)
CLUSTER_PORTS = (1, 2, 4)
CLUSTER_LATENCIES = (16, 64, 256)
CLUSTER_N = 96


def _build_cluster(nodes: int, latency: int, ports: int) -> SMACluster:
    spec = get_kernel("daxpy")
    jobs = [spec.instantiate(CLUSTER_N, 7 + j) for j in range(nodes)]
    lowered = []
    base = 16
    for kernel, _inputs in jobs:
        low = lower_sma(kernel, base=base)
        lowered.append(low)
        base = low.layout.end + 16
    mem = MemoryConfig(
        latency=latency, bank_busy=latency // 2, num_banks=16,
        accepts_per_cycle=ports,
    )
    cfg = SMAConfig(memory=replace(mem, size=max(mem.size, base + 16)))
    cluster = SMACluster(
        [(low.access_program, low.execute_program) for low in lowered], cfg
    )
    for (kernel, inputs), low in zip(jobs, lowered):
        for decl in kernel.arrays:
            cluster.load_array(low.layout.base(decl.name), inputs[decl.name])
    return cluster


def _cluster_sweep(latency: int, fast: bool) -> tuple[int, float]:
    """Run the node x port grid at one latency; returns (simulated
    cluster cycles, wall seconds)."""
    total_cycles = 0
    start = time.perf_counter()
    for nodes in CLUSTER_NODES:
        for ports in CLUSTER_PORTS:
            cluster = _build_cluster(nodes, latency, ports)
            total_cycles += cluster.run(fast_forward=fast).cycles
    return total_cycles, time.perf_counter() - start


@pytest.mark.benchmark(group="throughput")
def test_cluster_sim_throughput(capsys):
    rows = []
    for latency in CLUSTER_LATENCIES:
        naive_cycles, naive_secs = _cluster_sweep(latency, fast=False)
        ff_cycles, ff_secs = _cluster_sweep(latency, fast=True)
        # identical simulations either way
        assert ff_cycles == naive_cycles
        rows.append((latency, naive_cycles, naive_secs, ff_secs))
    with capsys.disabled():
        print()
        print(f"R-F8 grid (nodes {CLUSTER_NODES} x ports {CLUSTER_PORTS}, "
              f"daxpy n={CLUSTER_N}), naive vs cluster fast-forward:")
        for latency, cycles, naive_secs, ff_secs in rows:
            print(f"  latency {latency:3d}: {cycles:8d} cluster cycles  "
                  f"naive {naive_secs:6.2f}s  ff {ff_secs:6.2f}s  "
                  f"({naive_secs / ff_secs:.2f}x)")
    # acceptance floor: in the latency-dominated regime (the high end of
    # the sweep, latency >= 16) joint idleness dominates and the shared
    # clock jump must win at least 2x wall-clock
    best = max(naive_secs / ff_secs for _, _, naive_secs, ff_secs in rows)
    assert best >= 2.0
