"""Simulator throughput: simulated cycles per wall-second.

This benchmark tracks the performance of the *simulator itself* (not the
simulated machines).  It runs the high-latency end of the R-F1 sweep —
the latency-dominated regime where the processors spend most cycles
waiting on memory — two ways:

``seed harness``
    the pre-optimization path: per-point :func:`compare_spec` (which
    re-instantiates, re-lowers and re-runs the reference interpreter at
    every sweep point) with cycle fast-forward disabled, i.e. the naive
    one-Python-iteration-per-cycle loop.

``job harness``
    the current path: declarative :class:`~repro.harness.jobs.Job` lists
    through :func:`~repro.harness.parallel.run_jobs` (memoized
    lowering/reference, ``--jobs`` fan-out on multi-core hosts) with
    cycle fast-forward enabled.

Both produce the same per-point speedup numbers and the same simulated
cycle counts — asserted below — so the wall-clock ratio is a pure
simulator-engineering win.

A second section races the four machine schedulers (``naive`` /
``joint-idle`` / ``event-horizon`` / ``codegen``) head-to-head on two
regimes: the *low*-latency end of the sweep — where joint idleness is
rare and the event-horizon scheduler's per-component contracts and
decode-cached step paths have to carry the win — and the high-latency
(latency-dominated) band, where the codegen backend's specialized
straight-line loop must beat the interpreted event-horizon loop
:data:`CODEGEN_FLOOR` x.

A third section races the SoA batch engine (:mod:`repro.batch`)
against per-point codegen on a *fine* grid — queue depths 1..64 x 50
log-spaced latencies 1..512, 3200 distinct timing configurations of
one kernel.  This is the regime the batch engine exists for: every
point is a distinct config, so codegen pays its compile per point,
while the batch engine steps all lanes in lockstep; the cost per sweep
point must be at least :data:`BATCH_FLOOR` x lower.

A fourth section races the batch engine against *itself* on the same
fine grid: the interpreted SoA loop (``compiled=False``, the PR-7
engine) vs the program-specialized batch lane stepper
(:mod:`repro.batch.emitter` — a straight-line numpy loop emitted per
decoded AP/EP program, plus saturation collapse: queue-depth lanes
whose caps strictly dominate a probe lane's observed queue peaks are
served from the probe's result without running).  The compiled path
must cost at least :data:`BATCH_CODEGEN_FLOOR` x less per point, and
the same grid sharded over ``workers=2`` processes is recorded (with
the host core count — on a single-core host sharding cannot beat the
in-driver run, so its scaling floor only applies on multi-core hosts).
All sweeps record their throughput in ``BENCH_sim_throughput.json``
(uploaded by CI, gated by ``scripts/check_bench_floor.py``).  Run
with::

    PYTHONPATH=src python -m pytest benchmarks/bench_sim_throughput.py -s
    PYTHONPATH=src python benchmarks/bench_sim_throughput.py --smoke
"""

import json
import os
import time
from dataclasses import replace
from pathlib import Path

import pytest

from repro.codegen import compiled_loop_for
from repro.config import MemoryConfig, SMAConfig
from repro.core import SMAMachine
from repro.core import machine as machine_mod
from repro.core.cluster import SMACluster
from repro.harness.experiments import LATENCY_REPS, _configs
from repro.harness.jobs import Job
from repro.harness.parallel import run_jobs
from repro.harness.runner import _fit_memory, _load_inputs, compare_spec
from repro.kernels import get_kernel, lower_sma

#: the high-latency end of the R-F1 sweep (bank_busy = latency/2)
LATENCIES = (64, 128, 256, 512)
N = 256
KERNELS = LATENCY_REPS


def _seed_harness_sweep() -> tuple[list[float], int, float]:
    """The seed harness path: naive ticking, no memoization, no jobs.

    Returns (per-point speedups, total simulated SMA cycles, wall secs).
    """
    speedups = []
    total_cycles = 0
    previous = machine_mod.set_fast_forward(False)
    start = time.perf_counter()
    try:
        for latency in LATENCIES:
            sma_cfg, scalar_cfg = _configs(latency=latency)
            for name in KERNELS:
                cmp_run = compare_spec(
                    get_kernel(name), N,
                    sma_config=sma_cfg, scalar_config=scalar_cfg,
                )
                speedups.append(cmp_run.speedup)
                total_cycles += cmp_run.sma.cycles
    finally:
        elapsed = time.perf_counter() - start
        machine_mod.set_fast_forward(previous)
    return speedups, total_cycles, elapsed


def _job_harness_sweep() -> tuple[list[float], int, float]:
    """The current harness path: fast-forward + memoized job layer."""
    joblist = []
    for latency in LATENCIES:
        sma_cfg, scalar_cfg = _configs(latency=latency)
        for name in KERNELS:
            joblist.append(Job("sma", name, N, sma_config=sma_cfg,
                               check=True))
            joblist.append(Job("scalar", name, N,
                               scalar_config=scalar_cfg, check=True))
    # fan out on multi-core hosts; a single-core host runs serially
    # (a process pool there only adds spawn overhead and cold caches)
    workers = min(4, os.cpu_count() or 1)
    start = time.perf_counter()
    results = run_jobs(joblist, workers=workers)
    elapsed = time.perf_counter() - start
    speedups = [
        scalar["cycles"] / sma["cycles"]
        for sma, scalar in zip(results[::2], results[1::2])
    ]
    total_cycles = sum(r["cycles"] for r in results[::2])
    return speedups, total_cycles, elapsed


@pytest.mark.benchmark(group="throughput")
def test_sim_throughput(capsys):
    seed_speedups, seed_cycles, seed_secs = _seed_harness_sweep()
    job_speedups, job_cycles, job_secs = _job_harness_sweep()

    # identical simulations: same cycle counts, same speedup table
    assert job_cycles == seed_cycles
    assert job_speedups == seed_speedups

    ratio = seed_secs / job_secs
    with capsys.disabled():
        print()
        print(f"high-latency R-F1 sweep (latencies {LATENCIES}, n={N}): "
              f"{seed_cycles} simulated SMA cycles")
        print(f"  seed harness (naive ticking)       : "
              f"{seed_cycles / seed_secs:12.0f} cycles/s ({seed_secs:.3f}s)")
        print(f"  job harness (fast-forward + jobs)  : "
              f"{job_cycles / job_secs:12.0f} cycles/s ({job_secs:.3f}s)")
        print(f"  wall-clock improvement             : {ratio:.2f}x")
    # acceptance floor: the latency-dominated regime is mostly idle
    # cycles, so fast-forward + memoization should win decisively
    assert ratio >= 3.0


# ---------------------------------------------------------------------------
# scheduler shoot-out: every registered scheduler, two latency regimes
# ---------------------------------------------------------------------------

#: the low-latency end of the R-F1 sweep — the regime where whole-machine
#: idleness is rare and the joint-idle fast-forward has little to jump
#: over, so any win must come from per-component horizons and the cheaper
#: decode-cached step paths
SCHEDULER_LATENCIES = (8, 16, 32)

#: the codegen shoot-out band — the latency-dominated high end of the
#: R-F1 sweep (the same band the harness section above runs), where the
#: generated loop's cheap planning/jump path compounds with its cheap
#: live-cycle body
CODEGEN_LATENCIES = LATENCIES

#: where the scheduler comparison (and ``main --smoke``) records results
BENCH_JSON = Path(__file__).resolve().parent.parent / \
    "BENCH_sim_throughput.json"

#: acceptance floors: event-horizon must beat the PR-3 fast-forward
#: (joint-idle) 3x on the full low-latency sweep, and the codegen
#: backend must beat the interpreted event-horizon loop 3x on the full
#: high-latency sweep; the CI smoke gates (scripts/check_bench_floor.py)
#: assert laxer ratios to stay robust on noisy shared runners
EVENT_HORIZON_FLOOR = 3.0
CODEGEN_FLOOR = 3.0
SMOKE_FLOOR = 2.0
CODEGEN_SMOKE_FLOOR = 1.5

# ---------------------------------------------------------------------------
# batch regime: SoA lanes vs per-point codegen on a fine sweep grid
# ---------------------------------------------------------------------------

#: the fine-sweep regime the batch engine exists for: a queue-depth
#: 1..64 x latency 1..512 grid of daxpy, 3200 distinct timing
#: configurations.  50 log-spaced latencies cover the full R-F1 axis.
BATCH_KERNEL = "daxpy"
BATCH_N = 64
BATCH_LATENCIES = tuple(
    sorted({max(1, round(2 ** (i * 9 / 63))) for i in range(64)})
)
BATCH_QUEUE_DEPTHS = tuple(range(1, 65))
#: stride through the grid for the codegen comparator (every point is a
#: distinct config, so timing the whole grid under codegen would take
#: minutes; a stratified subsample measures the same per-point cost)
BATCH_SUBSAMPLE = 47

#: acceptance floor (batch tentpole): the SoA engine must land at least
#: 8x lower cost per sweep point than per-point codegen on the fine
#: grid (codegen pays a per-config compile there — a fine grid gives
#: every point a distinct config, so compilation cannot amortize).
#: Measured ~13x on the reference machine; the smoke grid is small
#: enough that numpy dispatch overhead narrows the gap, hence its laxer
#: floor.
BATCH_FLOOR = 8.0
BATCH_SMOKE_FLOOR = 2.0

#: acceptance floor (batch-codegen tentpole): the program-specialized
#: batch lane stepper (+ saturation collapse) must land at least 3x
#: lower cost per sweep point than the interpreted SoA loop on the
#: fine grid.  The smoke grid collapses far less (fewer lanes per
#: saturation class) and numpy dispatch overhead looms larger, hence
#: its laxer floor.
BATCH_CODEGEN_FLOOR = 3.0
BATCH_CODEGEN_SMOKE_FLOOR = 1.5

#: shard fan-out recorded by the batch-codegen regime; the scaling
#: floor below only binds on hosts with at least this many cores
BATCH_SHARD_WORKERS = 2
BATCH_SHARD_FLOOR = 1.2


def _build_sma(name: str, latency: int, n: int) -> SMAMachine:
    kernel, inputs = get_kernel(name).instantiate(n)
    lowered = lower_sma(kernel)
    sma_cfg, _ = _configs(latency=latency)
    cfg = SMAConfig(
        memory=_fit_memory(sma_cfg.memory, lowered.layout),
        queues=sma_cfg.queues,
    )
    machine = SMAMachine(
        lowered.access_program, lowered.execute_program, cfg
    )
    _load_inputs(machine, lowered.layout, kernel, inputs)
    return machine


def _scheduler_sweep(scheduler, latencies, n, kernels, repeats):
    """Time the sweep under one scheduler; construction is excluded and
    the wall-clock is the best of ``repeats`` runs (machines are
    single-use, so each repeat rebuilds its own set).  The codegen
    scheduler's compile step is warmed outside the timed region — the
    artifact cache makes compilation a once-per-(program, config) cost,
    not a per-run cost, and ``repro profile`` attributes it separately.

    Returns (per-run result digests, total simulated cycles, seconds).
    """
    best = None
    digests = []
    total_cycles = 0
    for _ in range(repeats):
        machines = [
            _build_sma(name, latency, n)
            for latency in latencies for name in kernels
        ]
        if scheduler == "codegen":
            for m in machines:
                compiled_loop_for(m)
        start = time.perf_counter()
        results = [m.run(scheduler=scheduler) for m in machines]
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
        digests = [r.to_dict() for r in results]
        total_cycles = sum(r.cycles for r in results)
    return digests, total_cycles, best


def _sweep_comparison(latencies, n, kernels, repeats) -> dict:
    """Race every registered scheduler over one sweep.  Asserts all
    schedulers simulate the identical machine (same cycles, same full
    result digest)."""
    schedulers = {}
    reference_digests = None
    reference_name = next(iter(SMAMachine.SCHEDULERS))
    for scheduler in SMAMachine.SCHEDULERS:
        digests, cycles, secs = _scheduler_sweep(
            scheduler, latencies, n, kernels, repeats
        )
        if reference_digests is None:
            reference_digests = digests
        else:
            assert digests == reference_digests, (
                f"{scheduler} disagrees with {reference_name}"
            )
        schedulers[scheduler] = {
            "cycles": cycles,
            "seconds": round(secs, 6),
            "cycles_per_sec": round(cycles / secs, 1),
        }
    naive = schedulers["naive"]["seconds"]
    joint = schedulers["joint-idle"]["seconds"]
    horizon = schedulers["event-horizon"]["seconds"]
    codegen = schedulers["codegen"]["seconds"]
    return {
        "latencies": list(latencies),
        "n": n,
        "kernels": list(kernels),
        "repeats": repeats,
        "schedulers": schedulers,
        "ratios": {
            "event_horizon_vs_naive": round(naive / horizon, 2),
            "event_horizon_vs_joint_idle": round(joint / horizon, 2),
            "codegen_vs_naive": round(naive / codegen, 2),
            "codegen_vs_event_horizon": round(horizon / codegen, 2),
        },
    }


def _build_sma_from_config(name: str, cfg: SMAConfig, n: int) -> SMAMachine:
    kernel, inputs = get_kernel(name).instantiate(n)
    lowered = lower_sma(kernel)
    cfg = replace(cfg, memory=_fit_memory(cfg.memory, lowered.layout))
    machine = SMAMachine(
        lowered.access_program, lowered.execute_program, cfg
    )
    _load_inputs(machine, lowered.layout, kernel, inputs)
    return machine


def _batch_comparison(latencies=BATCH_LATENCIES,
                      depths=BATCH_QUEUE_DEPTHS,
                      n=BATCH_N, repeats=2,
                      subsample=BATCH_SUBSAMPLE) -> dict:
    """Race the SoA batch engine against per-point codegen on the fine
    grid.  The batch engine runs the whole grid; codegen runs a
    stratified subsample with its per-config compile *inside* the timed
    region (on a fine grid every point is a distinct configuration, so
    the compile is a real per-point cost, unlike the coarse sweeps
    above where it amortizes).  Asserts the subsample's cycle counts
    are identical across the two engines."""
    from repro.batch import run_batch
    from repro.harness.jobs import BatchJob

    jobs = BatchJob(
        BATCH_KERNEL, n, latencies=latencies, queue_depths=depths
    ).expand()

    best_batch = None
    batch_results: dict = {}
    for _ in range(repeats):
        start = time.perf_counter()
        batch_results = run_batch(jobs)
        elapsed = time.perf_counter() - start
        if best_batch is None or elapsed < best_batch:
            best_batch = elapsed
    assert len(batch_results) == len(jobs)

    from repro.codegen import clear_cache

    sample = list(range(0, len(jobs), subsample))
    best_cg = None
    cg_cycles: list[int] = []
    for _ in range(repeats):
        machines = [
            _build_sma_from_config(BATCH_KERNEL, jobs[i].sma_config, n)
            for i in sample
        ]
        # a real fine sweep compiles each of its thousands of configs
        # exactly once; clearing the artifact cache keeps each repeat
        # paying that same once-per-config cost instead of racing a
        # warm cache the real sweep would never have
        clear_cache()
        start = time.perf_counter()
        runs = []
        for m in machines:
            compiled_loop_for(m)
            runs.append(m.run(scheduler="codegen"))
        elapsed = time.perf_counter() - start
        if best_cg is None or elapsed < best_cg:
            best_cg = elapsed
        cg_cycles = [r.cycles for r in runs]
    for i, cycles in zip(sample, cg_cycles):
        assert cycles == batch_results[i]["cycles"], (
            f"batch disagrees with codegen at grid point {i}"
        )

    batch_pps = len(jobs) / best_batch
    cg_pps = len(sample) / best_cg
    return {
        "kernel": BATCH_KERNEL,
        "n": n,
        "grid": {
            "latencies": len(latencies),
            "queue_depths": len(depths),
            "points": len(jobs),
        },
        "batch": {
            "points": len(jobs),
            "seconds": round(best_batch, 6),
            "points_per_sec": round(batch_pps, 1),
        },
        "codegen": {
            "points": len(sample),
            "seconds": round(best_cg, 6),
            "points_per_sec": round(cg_pps, 1),
            "note": "per-config compile included: every fine-grid "
                    "point is a distinct configuration",
        },
        "ratios": {
            "batch_vs_codegen": round(batch_pps / cg_pps, 2),
        },
    }


def _batch_codegen_comparison(latencies=BATCH_LATENCIES,
                              depths=BATCH_QUEUE_DEPTHS,
                              n=BATCH_N, repeats=2,
                              shard_workers=BATCH_SHARD_WORKERS) -> dict:
    """Race the batch engine against itself on the fine grid: the
    interpreted SoA loop (``compiled=False``) vs the program-specialized
    lane stepper with saturation collapse (``compiled=None``), plus the
    same grid sharded over ``shard_workers`` processes.  Asserts all
    three produce identical result dicts for every grid point — the
    batch codegen bit-exactness contract, checked across the whole
    grid, not a subsample."""
    from repro.batch import run_batch
    from repro.batch.cache import clear_cache
    from repro.harness.jobs import BatchJob

    jobs = BatchJob(
        BATCH_KERNEL, n, latencies=latencies, queue_depths=depths
    ).expand()

    # the per-program compile is warmed outside the timed region (like
    # the codegen scheduler above: one compile serves the whole grid,
    # and the lane-group fingerprint cache makes it a once-per-program
    # cost).  The three modes are timed *interleaved* within each
    # repeat round — best-of mins from back-to-back runs — so a noise
    # spike on a shared host degrades all three rather than skewing
    # the ratio
    clear_cache()
    run_batch(jobs)
    cpus = os.cpu_count() or 1
    best_interp = best_cg = best_shard = None
    interp_results: dict = {}
    cg_results: dict = {}
    shard_results: dict = {}
    for _ in range(repeats):
        # interpreted SoA baseline (the pre-codegen engine):
        # compiled=False forces the interpreter and disables collapse
        start = time.perf_counter()
        interp_results = run_batch(jobs, compiled=False)
        elapsed = time.perf_counter() - start
        if best_interp is None or elapsed < best_interp:
            best_interp = elapsed
        # program-specialized lane stepper + saturation collapse
        start = time.perf_counter()
        cg_results = run_batch(jobs)
        elapsed = time.perf_counter() - start
        if best_cg is None or elapsed < best_cg:
            best_cg = elapsed
        # the same grid sharded across worker processes (pool spawn is
        # part of the timed region — a real sweep pays it once per run)
        start = time.perf_counter()
        shard_results = run_batch(jobs, workers=shard_workers)
        elapsed = time.perf_counter() - start
        if best_shard is None or elapsed < best_shard:
            best_shard = elapsed
    assert len(interp_results) == len(jobs)
    assert cg_results == interp_results, (
        "batch codegen disagrees with the interpreted batch engine"
    )
    assert shard_results == interp_results, (
        "sharded batch codegen disagrees with the in-driver run"
    )

    interp_pps = len(jobs) / best_interp
    cg_pps = len(jobs) / best_cg
    shard_pps = len(jobs) / best_shard
    return {
        "kernel": BATCH_KERNEL,
        "n": n,
        "grid": {
            "latencies": len(latencies),
            "queue_depths": len(depths),
            "points": len(jobs),
        },
        "batch_interp": {
            "points": len(jobs),
            "seconds": round(best_interp, 6),
            "points_per_sec": round(interp_pps, 1),
        },
        "batch_codegen": {
            "points": len(jobs),
            "seconds": round(best_cg, 6),
            "points_per_sec": round(cg_pps, 1),
            "note": "specialized lane stepper + saturation collapse; "
                    "per-program compile warmed (once-per-grid cost)",
        },
        "batch_codegen_sharded": {
            "points": len(jobs),
            "workers": shard_workers,
            "cpu_count": cpus,
            "seconds": round(best_shard, 6),
            "points_per_sec": round(shard_pps, 1),
            "note": "pool spawn included; on a single-core host "
                    "sharding cannot beat the in-driver run",
        },
        "ratios": {
            "batch_codegen_vs_batch": round(cg_pps / interp_pps, 2),
            "sharded_vs_inline": round(shard_pps / cg_pps, 2),
        },
    }


def run_scheduler_comparison(scheduler_latencies=SCHEDULER_LATENCIES,
                             codegen_latencies=CODEGEN_LATENCIES,
                             n=N, kernels=KERNELS, repeats=2,
                             batch_latencies=BATCH_LATENCIES,
                             batch_depths=BATCH_QUEUE_DEPTHS,
                             batch_n=BATCH_N,
                             batch_subsample=BATCH_SUBSAMPLE,
                             batch_codegen_latencies=None,
                             batch_codegen_depths=None) -> dict:
    """Run all three shoot-out sweeps and package the numbers for
    ``BENCH_sim_throughput.json``: the low-latency regime (where the
    event-horizon floor is asserted), the latency-dominated regime
    (where the codegen floor is asserted), and the fine-grid regime
    (where the batch floor is asserted)."""
    return {
        "benchmark": "bench_sim_throughput/scheduler_comparison",
        "sweeps": {
            "scheduler": _sweep_comparison(
                scheduler_latencies, n, kernels, repeats
            ),
            "codegen": _sweep_comparison(
                codegen_latencies, n, kernels, repeats
            ),
            "batch": _batch_comparison(
                batch_latencies, batch_depths, batch_n, repeats,
                batch_subsample,
            ),
            "batch-codegen": _batch_codegen_comparison(
                batch_codegen_latencies or batch_latencies,
                batch_codegen_depths or batch_depths,
                batch_n, repeats,
            ),
        },
        "floors": {
            "event_horizon_vs_joint_idle": EVENT_HORIZON_FLOOR,
            "codegen_vs_event_horizon": CODEGEN_FLOOR,
            "batch_vs_codegen": BATCH_FLOOR,
            "batch_codegen_vs_batch": BATCH_CODEGEN_FLOOR,
            "sharded_vs_inline_multicore": BATCH_SHARD_FLOOR,
            "smoke_event_horizon_vs_naive": SMOKE_FLOOR,
            "smoke_codegen_vs_event_horizon": CODEGEN_SMOKE_FLOOR,
            "smoke_batch_vs_codegen": BATCH_SMOKE_FLOOR,
            "smoke_batch_codegen_vs_batch": BATCH_CODEGEN_SMOKE_FLOOR,
        },
    }


def write_bench_json(data: dict, path: Path = BENCH_JSON) -> None:
    path.write_text(json.dumps(data, indent=2) + "\n")


def _print_comparison(data: dict) -> None:
    for label, sweep in data["sweeps"].items():
        if "batch_interp" in sweep:  # the batch-codegen regime
            grid = sweep["grid"]
            sharded = sweep["batch_codegen_sharded"]
            print(f"fine-grid {label} shoot-out ({sweep['kernel']} "
                  f"n={sweep['n']}, {grid['points']} points)")
            for engine in ("batch_interp", "batch_codegen"):
                row = sweep[engine]
                print(f"  {engine:<21}: {row['points_per_sec']:12.1f} "
                      f"points/s ({row['seconds']:.3f}s)")
            print(f"  sharded (workers={sharded['workers']})   : "
                  f"{sharded['points_per_sec']:12.1f} points/s "
                  f"({sharded['seconds']:.3f}s, "
                  f"{sharded['cpu_count']} core(s))")
            ratios = sweep["ratios"]
            print(f"  batch-codegen vs batch      : "
                  f"{ratios['batch_codegen_vs_batch']:.2f}x")
            print(f"  sharded vs in-driver        : "
                  f"{ratios['sharded_vs_inline']:.2f}x")
            continue
        if "schedulers" not in sweep:  # the fine-grid batch regime
            grid = sweep["grid"]
            print(f"fine-grid {label} shoot-out ({sweep['kernel']} "
                  f"n={sweep['n']}, {grid['latencies']} latencies x "
                  f"{grid['queue_depths']} queue depths = "
                  f"{grid['points']} points)")
            for engine in ("batch", "codegen"):
                row = sweep[engine]
                print(f"  {engine:<14}: {row['points_per_sec']:12.1f} "
                      f"points/s ({row['points']} points, "
                      f"{row['seconds']:.3f}s)")
            print(f"  batch vs codegen            : "
                  f"{sweep['ratios']['batch_vs_codegen']:.2f}x")
            continue
        print(f"R-F1 {label} shoot-out (latencies "
              f"{tuple(sweep['latencies'])}, n={sweep['n']}, best of "
              f"{sweep['repeats']}): "
              f"{sweep['schedulers']['naive']['cycles']} simulated cycles")
        for scheduler, row in sweep["schedulers"].items():
            print(f"  {scheduler:<14}: {row['cycles_per_sec']:12.0f} "
                  f"cycles/s ({row['seconds']:.3f}s)")
        ratios = sweep["ratios"]
        print(f"  event-horizon vs naive      : "
              f"{ratios['event_horizon_vs_naive']:.2f}x")
        print(f"  event-horizon vs joint-idle : "
              f"{ratios['event_horizon_vs_joint_idle']:.2f}x")
        print(f"  codegen vs naive            : "
              f"{ratios['codegen_vs_naive']:.2f}x")
        print(f"  codegen vs event-horizon    : "
              f"{ratios['codegen_vs_event_horizon']:.2f}x")


@pytest.mark.benchmark(group="throughput")
def test_scheduler_throughput(capsys):
    data = run_scheduler_comparison()
    write_bench_json(data)
    with capsys.disabled():
        print()
        _print_comparison(data)
        print(f"  (recorded in {BENCH_JSON.name})")
    # acceptance floor (PR-4 tentpole): per-component horizons +
    # decode-cached hot loop must beat the PR-3 joint-idle fast-forward
    # 3x even in the low-latency regime it was weakest in
    assert data["sweeps"]["scheduler"]["ratios"][
        "event_horizon_vs_joint_idle"] >= EVENT_HORIZON_FLOOR
    # acceptance floor (codegen tentpole): the generated straight-line
    # loop must beat the interpreted event-horizon loop 3x on the
    # latency-dominated band
    assert data["sweeps"]["codegen"]["ratios"][
        "codegen_vs_event_horizon"] >= CODEGEN_FLOOR
    # acceptance floor (batch tentpole): the SoA engine must land >=8x
    # lower cost per sweep point than per-point codegen on the fine grid
    assert data["sweeps"]["batch"]["ratios"][
        "batch_vs_codegen"] >= BATCH_FLOOR
    # acceptance floor (batch-codegen tentpole): the specialized lane
    # stepper + saturation collapse must beat the interpreted SoA loop
    # 3x on the same grid
    assert data["sweeps"]["batch-codegen"]["ratios"][
        "batch_codegen_vs_batch"] >= BATCH_CODEGEN_FLOOR
    # the shard scaling floor only binds where shards get real cores
    if (os.cpu_count() or 1) >= BATCH_SHARD_WORKERS:
        assert data["sweeps"]["batch-codegen"]["ratios"][
            "sharded_vs_inline"] >= BATCH_SHARD_FLOOR


def main(argv=None) -> int:
    """CLI entry point: run the scheduler comparison and write
    ``BENCH_sim_throughput.json`` (what CI uploads as an artifact).

    ``--smoke`` shrinks the sweep for constrained CI runners; the floor
    for the smoke numbers is enforced separately by
    ``scripts/check_bench_floor.py``.
    """
    import argparse

    parser = argparse.ArgumentParser(
        description="simulator scheduler throughput benchmark"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="small sweeps for CI (n=96, two latencies "
                             "per regime)")
    parser.add_argument("--out", default=str(BENCH_JSON),
                        help="output JSON path")
    args = parser.parse_args(argv)
    if args.smoke:
        smoke_latencies = tuple(
            sorted({max(1, round(2 ** (i * 9 / 11))) for i in range(12)})
        )
        # the batch-codegen regime keeps the full 1..64 depth axis in
        # smoke: its win comes from saturation collapse, which a
        # shallow-depth grid (everything saturates) would erase — and
        # unlike the per-point codegen comparator it costs no compile
        # per grid point, so the wider grid stays cheap
        bc_latencies = tuple(
            sorted({max(1, round(2 ** (i * 9 / 23))) for i in range(24)})
        )
        data = run_scheduler_comparison(
            scheduler_latencies=(8, 32), codegen_latencies=(64, 256),
            n=96, repeats=3,
            batch_latencies=smoke_latencies,
            batch_depths=tuple(range(1, 17)),
            batch_subsample=13,
            batch_codegen_latencies=bc_latencies,
            batch_codegen_depths=tuple(range(1, 65)),
        )
    else:
        data = run_scheduler_comparison(repeats=3)
    write_bench_json(data, Path(args.out))
    _print_comparison(data)
    print(f"wrote {args.out}")
    return 0


# ---------------------------------------------------------------------------
# cluster fast-forward: the widened R-F8 grid, naive vs fast-forward
# ---------------------------------------------------------------------------

#: the widened R-F8 grid (node counts 1-8 x port widths), swept at three
#: memory latencies; bank_busy tracks latency/2 like the R-F1 sweep
CLUSTER_NODES = (1, 2, 4, 8)
CLUSTER_PORTS = (1, 2, 4)
CLUSTER_LATENCIES = (16, 64, 256)
CLUSTER_N = 96


def _build_cluster(nodes: int, latency: int, ports: int) -> SMACluster:
    spec = get_kernel("daxpy")
    jobs = [spec.instantiate(CLUSTER_N, 7 + j) for j in range(nodes)]
    lowered = []
    base = 16
    for kernel, _inputs in jobs:
        low = lower_sma(kernel, base=base)
        lowered.append(low)
        base = low.layout.end + 16
    mem = MemoryConfig(
        latency=latency, bank_busy=latency // 2, num_banks=16,
        accepts_per_cycle=ports,
    )
    cfg = SMAConfig(memory=replace(mem, size=max(mem.size, base + 16)))
    cluster = SMACluster(
        [(low.access_program, low.execute_program) for low in lowered], cfg
    )
    for (kernel, inputs), low in zip(jobs, lowered):
        for decl in kernel.arrays:
            cluster.load_array(low.layout.base(decl.name), inputs[decl.name])
    return cluster


def _cluster_sweep(latency: int, fast: bool) -> tuple[int, float]:
    """Run the node x port grid at one latency; returns (simulated
    cluster cycles, wall seconds)."""
    total_cycles = 0
    start = time.perf_counter()
    for nodes in CLUSTER_NODES:
        for ports in CLUSTER_PORTS:
            cluster = _build_cluster(nodes, latency, ports)
            total_cycles += cluster.run(fast_forward=fast).cycles
    return total_cycles, time.perf_counter() - start


@pytest.mark.benchmark(group="throughput")
def test_cluster_sim_throughput(capsys):
    rows = []
    for latency in CLUSTER_LATENCIES:
        naive_cycles, naive_secs = _cluster_sweep(latency, fast=False)
        ff_cycles, ff_secs = _cluster_sweep(latency, fast=True)
        # identical simulations either way
        assert ff_cycles == naive_cycles
        rows.append((latency, naive_cycles, naive_secs, ff_secs))
    with capsys.disabled():
        print()
        print(f"R-F8 grid (nodes {CLUSTER_NODES} x ports {CLUSTER_PORTS}, "
              f"daxpy n={CLUSTER_N}), naive vs cluster fast-forward:")
        for latency, cycles, naive_secs, ff_secs in rows:
            print(f"  latency {latency:3d}: {cycles:8d} cluster cycles  "
                  f"naive {naive_secs:6.2f}s  ff {ff_secs:6.2f}s  "
                  f"({naive_secs / ff_secs:.2f}x)")
    # acceptance floor: in the latency-dominated regime (the high end of
    # the sweep, latency >= 16) joint idleness dominates and the shared
    # clock jump must win at least 2x wall-clock
    best = max(naive_secs / ff_secs for _, _, naive_secs, ff_secs in rows)
    assert best >= 2.0


if __name__ == "__main__":
    raise SystemExit(main())
