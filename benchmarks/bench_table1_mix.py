"""R-T1: kernel characterization — instruction mix and operand traffic."""

from repro.harness.experiments import table1_mix


def test_table1_mix(run_and_print):
    table = run_and_print(table1_mix, n=192)
    # scalar does per-element address arithmetic; the SMA AP does not
    rows = table.row_map("kernel")
    cols = list(table.columns)
    hydro = rows["hydro"]
    assert hydro[cols.index("ap_instr")] < hydro[cols.index("scalar_instr")] / 50
