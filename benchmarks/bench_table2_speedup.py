"""R-T2: headline result — SMA vs scalar baseline over the whole suite."""

from repro.harness.experiments import table2_speedup


def test_table2_speedup(run_and_print):
    table = run_and_print(table2_speedup, n=256)
    speedups = table.column("speedup")
    assert min(speedups) >= 1.0
    assert max(speedups) > 5.0
