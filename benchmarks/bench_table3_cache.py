"""R-T3: SMA queues vs a conventional data cache on the baseline."""

from repro.harness.experiments import table3_cache


def test_table3_cache(run_and_print):
    table = run_and_print(table3_cache, n=256)
    cols = list(table.columns)
    for row in table.rows:
        # SMA beats even the largest swept cache on these kernels
        assert row[cols.index("sma_cycles")] <= row[cols.index("cache4096w")]
