"""R-T4: loss-of-decoupling accounting."""

from repro.harness.experiments import table4_lod


def test_table4_lod(run_and_print):
    table = run_and_print(table4_lod, n=256)
    rows = table.row_map("kernel")
    frac = list(table.columns).index("lod_frac")
    assert rows["computed_gather"][frac] > 0.3
    assert rows["pic_gather"][frac] == 0
