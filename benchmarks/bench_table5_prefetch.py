"""R-T5 (extension): SMA vs hardware prefetching on the baseline."""

from repro.harness.experiments import table5_prefetch


def test_table5_prefetch(run_and_print):
    table = run_and_print(table5_prefetch, n=256)
    cols = list(table.columns)
    rows = table.row_map("kernel")
    # the RPT covers almost all strided misses ...
    assert rows["daxpy"][cols.index("rpt_coverage")] > 0.9
    # ... yet the SMA stays well ahead on unit-stride streams
    assert rows["daxpy"][cols.index("sma")] * 2 < rows["daxpy"][cols.index("rpt")]
    # OBL pollutes on non-unit stride (worse than no prefetch at all)
    assert rows["stride8_copy"][cols.index("obl")] > rows["stride8_copy"][cols.index("cache")] * 0.99
