"""R-T6 (extension): SMA vs a CRAY-flavoured vector machine."""

from repro.harness.experiments import table6_vector


def test_table6_vector(run_and_print):
    table = run_and_print(table6_vector, n=256)
    cols = list(table.columns)
    rows = table.row_map("kernel")
    ratio = cols.index("sma_vs_vector")
    vect = cols.index("vectorized")
    # the vector machine wins the streams it can vectorize ...
    assert rows["daxpy"][vect] == "yes"
    assert rows["daxpy"][ratio] < 1.0
    # ... but recurrences and irregular kernels fall off its cliff while
    # the SMA keeps its decoupled speed
    for name in ("tridiag", "pic_gather", "pic_scatter"):
        assert rows[name][vect] != "yes"
        assert rows[name][ratio] > 4.0, name
