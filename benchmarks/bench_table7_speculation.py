"""R-T7: speculative AP vs prediction accuracy."""

from repro.harness.experiments import table7_speculation


def test_table7_speculation(run_and_print):
    table = run_and_print(table7_speculation, n=256)
    cols = list(table.columns)
    cyc, spd = cols.index("cycles"), cols.index("recovered_speedup")
    lod = cols.index("lod_stall_cycles")
    by_kernel: dict[str, list] = {}
    for row in table.rows:
        by_kernel.setdefault(row[0], []).append(row)
    for rows in by_kernel.values():
        cycles = [r[cyc] for r in rows]
        # recovered speedup is monotone in accuracy
        assert cycles == sorted(cycles, reverse=True)
        assert rows[-1][spd] > 2.0
        # a perfect predictor eliminates >=90% of the lod_* stall cycles
        assert rows[-1][lod] <= 0.1 * rows[0][lod]
