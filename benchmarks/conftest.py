"""Shared plumbing for the benchmark tree.

Each ``bench_*`` module regenerates one reconstructed table/figure (see
DESIGN.md §3).  The pytest-benchmark fixture times the *experiment run*
(simulation throughput of the harness); the scientific output is the table
itself, which every benchmark prints so that
``pytest benchmarks/ --benchmark-only -s`` reproduces the evaluation.
"""

import pytest


@pytest.fixture
def run_and_print(benchmark, capsys):
    """Run an experiment once under the benchmark clock, print its table."""

    def _run(fn, *args, **kwargs):
        table = benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )
        with capsys.disabled():
            print()
            print(table.to_text())
        return table

    return _run
