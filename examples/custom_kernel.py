#!/usr/bin/env python3
"""Define your own workload in the kernel IR and run it everywhere.

Builds a damped-oscillator update (two coupled streams plus a reduction)
that is *not* part of the bundled suite, compiles it for both machines,
checks both against the reference interpreter, and prints the comparison.

Run:  python examples/custom_kernel.py
"""

import numpy as np

from repro import run_on_scalar, run_on_sma, run_reference
from repro.kernels import ArrayDecl, Assign, Kernel, Loop, Reduce
from repro.kernels.suite import absval, add, at, c, mul, sub


def build_kernel(n: int) -> Kernel:
    # p_out[i] = p[i] + dt * v[i]              (explicit Euler: old v)
    # v[i]     = damping * v[i] + dt * (x_eq - p[i])
    # energy  += |p[i]|
    #
    # Note the statement order: p_out reads v *before* the statement that
    # overwrites it.  Reading a value after the statement that rewrites it
    # is rejected by the SMA compiler (a load stream would deliver the
    # stale word) — the reorder keeps the kernel stream-compilable.
    return Kernel(
        "oscillator",
        (
            ArrayDecl("p", n),
            ArrayDecl("v", n),
            ArrayDecl("p_out", n),
            ArrayDecl("energy", 1),
        ),
        (
            Loop("i", n, (
                Assign(
                    at("p_out", i=1),
                    add(at("p", i=1), mul(c(0.05), at("v", i=1))),
                ),
                Assign(
                    at("v", i=1),
                    add(
                        mul(c(0.98), at("v", i=1)),
                        mul(c(0.05), sub(c(0.5), at("p", i=1))),
                    ),
                ),
                Reduce("+", at("energy"), absval(at("p", i=1))),
            )),
        ),
        description="damped oscillator step",
    )


def main() -> None:
    n = 256
    kernel = build_kernel(n)
    print(kernel.pretty())

    rng = np.random.default_rng(42)
    inputs = {
        "p": rng.uniform(0, 1, n),
        "v": rng.uniform(-0.1, 0.1, n),
        "p_out": np.zeros(n),
        "energy": np.zeros(1),
    }

    golden = run_reference(kernel, inputs)
    sma = run_on_sma(kernel, inputs)
    scalar = run_on_scalar(kernel, inputs)

    for name in ("v", "p_out", "energy"):
        assert np.array_equal(sma.outputs[name], golden[name]), name
        assert np.array_equal(scalar.outputs[name], golden[name]), name
    print("\nboth machines match the reference, word for word")
    print(f"energy = {golden['energy'][0]:.4f}")
    print(f"\nscalar: {scalar.cycles} cycles, SMA: {sma.cycles} cycles "
          f"-> {scalar.cycles / sma.cycles:.2f}x")


if __name__ == "__main__":
    main()
