#!/usr/bin/env python3
"""Latency-tolerance sweep over the whole workload suite.

Reproduces the shape of the central DAE claim at the command line: as
memory gets slower relative to the processors, the decoupled machine's
advantage over the blocking-load baseline *grows* — streaming kernels ride
their queues, while the loss-of-decoupling kernel (computed_gather) is
pinned near the baseline.

Run:  python examples/livermore_sweep.py [n]
"""

import sys

from repro import MemoryConfig, QueueConfig, SMAConfig, ScalarConfig
from repro import all_kernels, compare_spec


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    latencies = (2, 8, 32)
    names = [s.name for s in all_kernels()]
    width = max(len(name) for name in names)
    header = f"{'kernel':<{width}} " + " ".join(
        f"lat={lat:>2}" for lat in latencies
    )
    print(f"speedup (scalar cycles / SMA cycles), n={n}")
    print(header)
    print("-" * len(header))
    for spec in all_kernels():
        row = [f"{spec.name:<{width}}"]
        for latency in latencies:
            mem = MemoryConfig(latency=latency,
                               bank_busy=max(1, latency // 2))
            result = compare_spec(
                spec, n,
                sma_config=SMAConfig(memory=mem, queues=QueueConfig()),
                scalar_config=ScalarConfig(memory=mem),
            )
            row.append(f"{result.speedup:6.2f}")
        print(" ".join(row))
    print("\n(the computed_gather row is the loss-of-decoupling pattern —")
    print(" its addresses come from the execute processor, so decoupling")
    print(" collapses and the speedup stays flat)")


if __name__ == "__main__":
    main()
