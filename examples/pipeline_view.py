#!/usr/bin/env python3
"""Watch decoupling happen, cycle by cycle.

Runs the tridiag recurrence kernel with a :class:`TimelineRecorder`
attached and prints the first stretch of the execution timeline.  Things
to look for in the output:

* the access processor retires its entire program (a handful of stream
  descriptors) in the first few cycles, then shows ``#`` forever;
* the engine column keeps issuing one memory request per cycle long after
  the AP has halted — the descriptors run autonomously;
* the execute processor stalls ``~lq_empty`` for exactly one memory
  latency, then settles into its steady loop.

Run:  python examples/pipeline_view.py
"""

from repro import lower_sma, get_kernel
from repro.core import SMAMachine
from repro.trace import TimelineRecorder


def main() -> None:
    spec = get_kernel("tridiag")
    kernel, inputs = spec.instantiate(24)
    lowered = lower_sma(kernel)
    machine = SMAMachine(lowered.access_program, lowered.execute_program)
    for decl in kernel.arrays:
        machine.load_array(lowered.layout.base(decl.name), inputs[decl.name])

    recorder = TimelineRecorder()
    result = machine.run(observer=recorder)

    print(f"kernel {spec.name}: {result.cycles} cycles total\n")
    print(recorder.render(0, 40))
    print("\n... (tail omitted)")
    print(f"\nAP retired {result.ap.instructions} instructions; "
          f"EP retired {result.ep.instructions}; the stream engine issued "
          f"{result.engine.requests_issued} memory requests on their behalf.")


if __name__ == "__main__":
    main()
