#!/usr/bin/env python3
"""Quickstart: run one kernel on both machines and read the results.

This touches the three layers most users need:

1. the workload suite (``get_kernel``),
2. the one-call comparison runner (``compare_spec``), which compiles the
   kernel for both machines, runs them on identical data, and verifies
   both against the reference interpreter,
3. the per-run statistics objects.

Run:  python examples/quickstart.py
"""

from repro import compare_spec, get_kernel, lower_sma

def main() -> None:
    spec = get_kernel("hydro")
    print(f"kernel: {spec.name} — {spec.description}\n")

    kernel, _ = spec.instantiate(n=8)
    print("IR:")
    print(kernel.pretty())

    lowered = lower_sma(kernel)
    print("\naccess program (the whole loop is three descriptors):")
    print(lowered.access_program.listing())
    print("\nexecute program:")
    print(lowered.execute_program.listing())

    result = compare_spec(spec, n=512)
    print(f"\nscalar baseline: {result.scalar.cycles} cycles")
    print(f"SMA:             {result.sma.cycles} cycles")
    print(f"speedup:         {result.speedup:.2f}x")
    print("\nSMA run detail:")
    print(result.sma.result.summary())


if __name__ == "__main__":
    main()
