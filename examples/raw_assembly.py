#!/usr/bin/env python3
"""Program the SMA machine directly in assembly — including the one
pattern the kernel compiler never emits: an execute-resolved loop
(convergence test through the branch queue, EBQ).

The access program streams a vector through the execute processor
repeatedly; after each sweep the EP compares the running sum against a
threshold and pushes the verdict into EBQ, where the AP's ``bqnz`` decides
whether to issue another sweep.  Every ``bqnz`` wait is a genuine
loss-of-decoupling event — watch the ``lod_ebq`` stall count.

Run:  python examples/raw_assembly.py
"""

import numpy as np

from repro import SMAMachine, assemble, disassemble

N = 64
BASE = 100
THRESHOLD = 40.0

ACCESS = f"""
    ; one sweep per iteration, until the EP says the sum crossed the
    ; threshold (values arrive via the branch queue)
    ;
    ; in-place update across sweeps: sweep k+1's load stream starts while
    ; the tail of sweep k's store stream (at most queue-depth elements,
    ; all near the end of the vector) is still draining.  That is safe
    ; here because the loads restart from element 0 and cannot reach the
    ; pending tail before it commits (N >> queue depth); hand-written
    ; access programs own this kind of reasoning — the kernel compiler
    ; proves it for you.
sweep:
    streamld lq0, #{BASE}, #1, #{N}     ; stream the vector in
    streamst sdq0, #{BASE}, #1, #{N}    ; store the scaled copy back
    bqnz done                           ; EP verdict: converged?
    jmp sweep
done:
    halt
"""

EXECUTE = f"""
    mov x5, #0.0              ; running sum across sweeps
sweep:
    mov x1, #{N}
elem:
    mul x2, lq0, #1.1         ; scale each element by 1.1
    add x5, x5, x2
    mov sdq0, x2
    decbnz x1, elem
    cmplt ebq, #{THRESHOLD}, x5   ; 1 -> converged, AP exits
    cmplt x3, #{THRESHOLD}, x5
    beqz x3, sweep
    halt
"""


def main() -> None:
    ap = assemble(ACCESS, "sweeper.access")
    ep = assemble(EXECUTE, "sweeper.execute")
    print("access program:")
    print(disassemble(ap))
    machine = SMAMachine(ap, ep)
    machine.load_array(BASE, np.full(N, 0.01))
    result = machine.run()
    print(result.summary())
    final = machine.dump_array(BASE, N)
    print(f"\nfinal element value: {final[0]:.6f}")
    print(f"loss-of-decoupling stalls on the branch queue: "
          f"{result.ap.stall_cycles.get('lod_ebq', 0)} cycles over "
          f"{result.lod_events} events")


if __name__ == "__main__":
    main()
