#!/usr/bin/env python3
"""The 1983 argument in one script: decoupling vs vector hardware.

Runs a mix of kernels on three machines — the scalar baseline, a
CRAY-flavoured vector machine (perfect chaining, classic vectorizer), and
the SMA — and prints where each wins. The vector machine tops the loops
its vectorizer accepts; everywhere it must reject (recurrences, gathers,
scatters, data-dependent subscripts) it falls back to scalar speed, while
the SMA keeps its full decoupled performance. The SMA is the machine
without the cliff.

Run:  python examples/vector_vs_sma.py [n]
"""

import sys

from repro.harness.runner import run_on_scalar, run_on_sma, run_on_vector
from repro.kernels import get_kernel
from repro.kernels.lower_vector import VectorizationError

KERNELS = (
    "daxpy", "hydro", "inner_product", "stencil2d",      # vectorizable
    "tridiag", "first_sum",                              # recurrences
    "pic_gather", "pic_scatter", "computed_gather",      # irregular
)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    print(f"{'kernel':16s} {'scalar':>8s} {'vector':>10s} {'SMA':>8s}   verdict")
    print("-" * 62)
    for name in KERNELS:
        spec = get_kernel(name)
        kernel, inputs = spec.instantiate(n)
        scalar = run_on_scalar(kernel, inputs).cycles
        sma = run_on_sma(kernel, inputs).cycles
        try:
            vector = run_on_vector(kernel, inputs).cycles
            vtext = f"{vector:10d}"
            verdict = ("vector wins" if vector < sma
                       else "SMA wins even here")
        except VectorizationError as exc:
            vector = scalar  # conventional fallback: the scalar unit
            reason = str(exc).split(": ", 1)[-1]
            vtext = f"{'rejected':>10s}"
            verdict = f"SMA {vector / sma:.1f}x faster ({reason[:28]})"
        print(f"{name:16s} {scalar:8d} {vtext} {sma:8d}   {verdict}")
    print("\nthe vectorizer's rejections are exactly the loops the paper's")
    print("decoupled access/execute design was built to keep fast")


if __name__ == "__main__":
    main()
