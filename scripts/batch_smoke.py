#!/usr/bin/env python
"""CI smoke for the SoA batch backend (``repro.batch``).

Runs a small latency x queue-depth grid of three kernels — a pure
streaming kernel, a loss-of-decoupling recurrence, and a computed
gather — through the batch engine with per-lane output verification
armed, in all three execution modes:

* the program-specialized batch lane stepper with saturation collapse
  (``compiled=None``, the default dispatch path),
* the interpreted SoA loop (``compiled=False``), and
* the stepper sharded over two worker processes (``workers=2``).

All three must produce bit-identical result dicts for every grid
point, and a random subsample of lanes is additionally re-executed on
the scalar interpreter and required to match the *full result dict*
exactly: cycles, instruction counts, every stall bucket (keys, order,
counts), memory traffic, and occupancy statistics.

Exit status is non-zero on any divergence, so the workflow fails
loudly if the lockstep engine (or its compiled specialization) ever
drifts from the reference interpreter.

Usage::

    PYTHONPATH=src python scripts/batch_smoke.py
"""

from __future__ import annotations

import random
import sys

from repro.batch import run_batch
from repro.harness.jobs import BatchJob, run_job

KERNELS = ("daxpy", "tridiag", "computed_gather")
LATENCIES = (1, 4, 16, 64)
QUEUE_DEPTHS = (1, 4, 8, 32)
N = 48
SUBSAMPLE = 10


def main() -> int:
    jobs = []
    for kernel in KERNELS:
        jobs.extend(
            BatchJob(
                kernel, N, latencies=LATENCIES,
                queue_depths=QUEUE_DEPTHS, check=True,
            ).expand()
        )
    results = run_batch(jobs)
    if len(results) != len(jobs):
        missing = [i for i in range(len(jobs)) if i not in results]
        print(f"FAIL: batch engine skipped lanes {missing}",
              file=sys.stderr)
        return 1

    # the compiled stepper (+ saturation collapse) and the sharded run
    # must be indistinguishable from the interpreted SoA engine on
    # every grid point, not just a subsample
    for label, variant in (
        ("interpreted", run_batch(jobs, compiled=False)),
        ("sharded (workers=2)", run_batch(jobs, workers=2)),
    ):
        bad = [i for i in results if variant.get(i) != results[i]]
        if bad:
            print(f"FAIL: {label} batch run diverges from the default "
                  f"dispatch path at lanes {bad[:8]}"
                  f"{'...' if len(bad) > 8 else ''}", file=sys.stderr)
            return 1

    rng = random.Random(1983)
    sample = sorted(rng.sample(range(len(jobs)), SUBSAMPLE))
    mismatches = 0
    for i in sample:
        want = run_job(jobs[i])
        got = results[i]
        if got != want:
            mismatches += 1
            diff = {
                k for k in set(want) | set(got)
                if want.get(k) != got.get(k)
            }
            print(f"FAIL: lane {i} ({jobs[i].kernel}, "
                  f"latency={jobs[i].sma_config.memory.latency}, "
                  f"depth={jobs[i].sma_config.queues.load_queue_depth}) "
                  f"diverges in {sorted(diff)}", file=sys.stderr)
    if mismatches:
        return 1
    print(f"batch smoke OK: {len(jobs)} lanes run "
          f"({len(KERNELS)} kernels x {len(LATENCIES)} latencies x "
          f"{len(QUEUE_DEPTHS)} depths, outputs verified) in compiled, "
          f"interpreted and sharded modes (bit-identical), "
          f"{len(sample)} lanes re-checked bit-exact against the "
          f"scalar interpreter")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
