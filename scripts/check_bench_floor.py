#!/usr/bin/env python
"""Throughput-regression gate for the simulator benchmark (CI).

Usage::

    PYTHONPATH=src python benchmarks/bench_sim_throughput.py --smoke
    python scripts/check_bench_floor.py [BENCH_JSON]

Reads ``BENCH_sim_throughput.json`` (default: repo root) as written by
``benchmarks/bench_sim_throughput.py`` and fails when any measured
smoke ratio falls below its floor: the event-horizon scheduler against
naive ticking on the low-latency sweep, the codegen backend against
the interpreted event-horizon loop on the latency-dominated sweep, the
SoA batch engine against per-point codegen (points/second) on the fine
sweep grid, and the program-specialized batch lane stepper against the
interpreted SoA loop on the same grid.  The floors live in the JSON
itself (``floors.smoke_event_horizon_vs_naive``, 2x by default,
``floors.smoke_codegen_vs_event_horizon``, 1.5x,
``floors.smoke_batch_vs_codegen``, 2x, and
``floors.smoke_batch_codegen_vs_batch``, 1.5x — all deliberately
laxer than the full-benchmark assertions so shared CI runners don't
flake) so benchmark and gate can never disagree about the contract.

Exit status is non-zero on a miss, a malformed file, or implausible
numbers (schedulers disagreeing on simulated cycles), so the workflow
fails loudly instead of uploading a regressed artifact.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DEFAULT_JSON = REPO / "BENCH_sim_throughput.json"

REQUIRED_SCHEDULERS = ("naive", "joint-idle", "event-horizon", "codegen")
REQUIRED_SWEEPS = ("scheduler", "codegen")

#: (sweep, numerator scheduler, denominator scheduler, floor key) per gate
GATES = (
    ("scheduler", "naive", "event-horizon", "smoke_event_horizon_vs_naive"),
    ("codegen", "event-horizon", "codegen", "smoke_codegen_vs_event_horizon"),
)

#: floor key for the fine-grid batch sweep (points/s ratio, not seconds:
#: the two engines cover different point counts — the batch engine runs
#: the full grid, codegen a stratified subsample)
BATCH_FLOOR_KEY = "smoke_batch_vs_codegen"

#: floor key for the batch-codegen regime (specialized lane stepper +
#: saturation collapse vs the interpreted SoA loop, same grid both ways)
BATCH_CODEGEN_FLOOR_KEY = "smoke_batch_codegen_vs_batch"


def _check_sweep(label: str, sweep: dict) -> list[str]:
    problems: list[str] = []
    schedulers = sweep.get("schedulers", {})
    for name in REQUIRED_SCHEDULERS:
        row = schedulers.get(name)
        if not row:
            problems.append(f"{label}: missing scheduler entry {name!r}")
            continue
        for field in ("cycles", "seconds", "cycles_per_sec"):
            if not isinstance(row.get(field), (int, float)) \
                    or row[field] <= 0:
                problems.append(
                    f"{label}: {name}.{field} missing or non-positive"
                )
    if problems:
        return problems

    cycle_counts = {schedulers[n]["cycles"] for n in REQUIRED_SCHEDULERS}
    if len(cycle_counts) != 1:
        problems.append(
            f"{label}: schedulers disagree on simulated cycles: "
            + ", ".join(f"{n}={schedulers[n]['cycles']}"
                        for n in REQUIRED_SCHEDULERS)
        )
    return problems


def _check_batch_sweep(sweep: dict) -> list[str]:
    """Validate the fine-grid batch section (its shape differs from the
    scheduler shoot-outs: two engines, point counts, points/s)."""
    problems: list[str] = []
    for engine in ("batch", "codegen"):
        row = sweep.get(engine)
        if not isinstance(row, dict):
            problems.append(f"batch: missing engine entry {engine!r}")
            continue
        for field in ("points", "seconds", "points_per_sec"):
            if not isinstance(row.get(field), (int, float)) \
                    or row[field] <= 0:
                problems.append(
                    f"batch: {engine}.{field} missing or non-positive"
                )
    grid = sweep.get("grid", {})
    if not problems and sweep["batch"]["points"] != grid.get("points"):
        problems.append(
            "batch: engine did not cover the full grid: "
            f"{sweep['batch']['points']} != {grid.get('points')}"
        )
    return problems


def _check_batch_codegen_sweep(sweep: dict) -> list[str]:
    """Validate the batch-codegen section: interpreted vs specialized
    vs sharded runs of the *same* grid, so all three point counts must
    equal the grid's."""
    problems: list[str] = []
    engines = ("batch_interp", "batch_codegen", "batch_codegen_sharded")
    for engine in engines:
        row = sweep.get(engine)
        if not isinstance(row, dict):
            problems.append(
                f"batch-codegen: missing engine entry {engine!r}"
            )
            continue
        for field in ("points", "seconds", "points_per_sec"):
            if not isinstance(row.get(field), (int, float)) \
                    or row[field] <= 0:
                problems.append(
                    f"batch-codegen: {engine}.{field} missing or "
                    "non-positive"
                )
    grid_points = sweep.get("grid", {}).get("points")
    if not problems:
        for engine in engines:
            if sweep[engine]["points"] != grid_points:
                problems.append(
                    f"batch-codegen: {engine} did not cover the full "
                    f"grid: {sweep[engine]['points']} != {grid_points}"
                )
    return problems


def check(path: Path) -> list[str]:
    problems: list[str] = []
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        return [f"{path} not found; run "
                "'PYTHONPATH=src python benchmarks/bench_sim_throughput.py"
                " --smoke' first"]
    except json.JSONDecodeError as exc:
        return [f"{path} is not valid JSON: {exc}"]

    sweeps = data.get("sweeps", {})
    for label in REQUIRED_SWEEPS:
        sweep = sweeps.get(label)
        if not isinstance(sweep, dict):
            problems.append(f"missing sweep section {label!r}")
            continue
        problems.extend(_check_sweep(label, sweep))
    batch_sweep = sweeps.get("batch")
    if not isinstance(batch_sweep, dict):
        problems.append("missing sweep section 'batch'")
    else:
        problems.extend(_check_batch_sweep(batch_sweep))
    bc_sweep = sweeps.get("batch-codegen")
    if not isinstance(bc_sweep, dict):
        problems.append("missing sweep section 'batch-codegen'")
    else:
        problems.extend(_check_batch_codegen_sweep(bc_sweep))
    if problems:
        return problems

    floors = data.get("floors", {})
    for label, slow, fast, floor_key in GATES:
        floor = floors.get(floor_key)
        if not isinstance(floor, (int, float)) or floor <= 0:
            problems.append(f"floors.{floor_key} missing")
            continue
        rows = sweeps[label]["schedulers"]
        ratio = rows[slow]["seconds"] / rows[fast]["seconds"]
        print(f"{fast} vs {slow}: {ratio:.2f}x (floor {floor}x) on "
              f"{label} sweep, latencies "
              f"{tuple(sweeps[label].get('latencies', ()))}")
        if ratio < floor:
            problems.append(
                f"{fast} throughput floor missed: {ratio:.2f}x < "
                f"{floor}x vs {slow} on the {label} sweep"
            )

    floor = floors.get(BATCH_FLOOR_KEY)
    if not isinstance(floor, (int, float)) or floor <= 0:
        problems.append(f"floors.{BATCH_FLOOR_KEY} missing")
    else:
        ratio = (batch_sweep["batch"]["points_per_sec"]
                 / batch_sweep["codegen"]["points_per_sec"])
        grid = batch_sweep["grid"]
        print(f"batch vs codegen: {ratio:.2f}x points/s (floor {floor}x) "
              f"on the fine grid ({grid['points']} points)")
        if ratio < floor:
            problems.append(
                f"batch throughput floor missed: {ratio:.2f}x < "
                f"{floor}x vs per-point codegen on the fine grid"
            )

    floor = floors.get(BATCH_CODEGEN_FLOOR_KEY)
    if not isinstance(floor, (int, float)) or floor <= 0:
        problems.append(f"floors.{BATCH_CODEGEN_FLOOR_KEY} missing")
    else:
        ratio = (bc_sweep["batch_codegen"]["points_per_sec"]
                 / bc_sweep["batch_interp"]["points_per_sec"])
        grid = bc_sweep["grid"]
        print(f"batch-codegen vs interpreted batch: {ratio:.2f}x "
              f"points/s (floor {floor}x) on the fine grid "
              f"({grid['points']} points)")
        if ratio < floor:
            problems.append(
                f"batch-codegen throughput floor missed: {ratio:.2f}x "
                f"< {floor}x vs the interpreted batch engine"
            )
        sharded = bc_sweep["batch_codegen_sharded"]
        shard_ratio = (sharded["points_per_sec"]
                       / bc_sweep["batch_codegen"]["points_per_sec"])
        print(f"sharded (workers={sharded.get('workers')}) vs "
              f"in-driver: {shard_ratio:.2f}x points/s on "
              f"{sharded.get('cpu_count')} core(s) — informational; "
              "scaling is only gated on multi-core hosts")
    return problems


def main(argv: list[str]) -> int:
    path = Path(argv[1]) if len(argv) > 1 else DEFAULT_JSON
    problems = check(path)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if not problems:
        print("bench floor OK")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
