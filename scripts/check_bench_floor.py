#!/usr/bin/env python
"""Throughput-regression gate for the simulator benchmark (CI).

Usage::

    PYTHONPATH=src python benchmarks/bench_sim_throughput.py --smoke
    python scripts/check_bench_floor.py [BENCH_JSON]

Reads ``BENCH_sim_throughput.json`` (default: repo root) as written by
``benchmarks/bench_sim_throughput.py`` and fails when the event-horizon
scheduler's measured throughput falls below its floor against naive
ticking on the smoke sweep.  The floor lives in the JSON itself
(``floors.smoke_event_horizon_vs_naive``, 2x by default — deliberately
laxer than the 3x benchmark assertion so shared CI runners don't flake)
so benchmark and gate can never disagree about the contract.

Exit status is non-zero on a miss, a malformed file, or implausible
numbers (schedulers disagreeing on simulated cycles), so the workflow
fails loudly instead of uploading a regressed artifact.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DEFAULT_JSON = REPO / "BENCH_sim_throughput.json"

REQUIRED_SCHEDULERS = ("naive", "joint-idle", "event-horizon")


def check(path: Path) -> list[str]:
    problems: list[str] = []
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        return [f"{path} not found; run "
                "'PYTHONPATH=src python benchmarks/bench_sim_throughput.py"
                " --smoke' first"]
    except json.JSONDecodeError as exc:
        return [f"{path} is not valid JSON: {exc}"]

    schedulers = data.get("schedulers", {})
    for name in REQUIRED_SCHEDULERS:
        row = schedulers.get(name)
        if not row:
            problems.append(f"missing scheduler entry {name!r}")
            continue
        for field in ("cycles", "seconds", "cycles_per_sec"):
            if not isinstance(row.get(field), (int, float)) \
                    or row[field] <= 0:
                problems.append(f"{name}.{field} missing or non-positive")
    if problems:
        return problems

    cycle_counts = {schedulers[n]["cycles"] for n in REQUIRED_SCHEDULERS}
    if len(cycle_counts) != 1:
        problems.append(
            "schedulers disagree on simulated cycles: "
            + ", ".join(f"{n}={schedulers[n]['cycles']}"
                        for n in REQUIRED_SCHEDULERS)
        )

    floor = data.get("floors", {}).get("smoke_event_horizon_vs_naive")
    if not isinstance(floor, (int, float)) or floor <= 0:
        problems.append("floors.smoke_event_horizon_vs_naive missing")
        return problems

    ratio = (schedulers["naive"]["seconds"]
             / schedulers["event-horizon"]["seconds"])
    print(f"event-horizon vs naive: {ratio:.2f}x (floor {floor}x) on "
          f"sweep {data.get('sweep')}")
    if ratio < floor:
        problems.append(
            f"event-horizon throughput floor missed: {ratio:.2f}x < "
            f"{floor}x vs naive ticking"
        )
    return problems


def main(argv: list[str]) -> int:
    path = Path(argv[1]) if len(argv) > 1 else DEFAULT_JSON
    problems = check(path)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if not problems:
        print("bench floor OK")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
