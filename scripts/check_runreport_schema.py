#!/usr/bin/env python
"""Schema-drift gate for captured RunReports (the CI metrics smoke step).

Usage::

    PYTHONPATH=src python scripts/check_runreport_schema.py REPORT_DIR

Validates every ``*.json`` under ``REPORT_DIR`` with
:func:`repro.metrics.validate_report` and cross-checks the code's schema
constants against ``tests/golden_runreport.json``.  Exit status is
non-zero on any problem, so the workflow fails on drift instead of
silently uploading a broken artifact.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.metrics import (  # noqa: E402
    SCALAR_BUCKETS,
    SCHEMA_VERSION,
    STALL_BUCKETS,
    validate_report,
)

GOLDEN = REPO / "tests" / "golden_runreport.json"


def check_golden() -> list[str]:
    """The code's schema constants must match the committed golden."""
    golden = json.loads(GOLDEN.read_text())
    problems = []
    if golden["schema_version"] != SCHEMA_VERSION:
        problems.append(
            f"golden schema_version {golden['schema_version']} != "
            f"code {SCHEMA_VERSION} — bump tests/golden_runreport.json "
            f"deliberately if the schema changed"
        )
    if tuple(golden["sma_buckets"]) != STALL_BUCKETS:
        problems.append("golden sma_buckets differ from STALL_BUCKETS")
    if tuple(golden["scalar_buckets"]) != SCALAR_BUCKETS:
        problems.append("golden scalar_buckets differ from SCALAR_BUCKETS")
    return problems


def check_reports(directory: Path) -> tuple[int, list[str]]:
    golden = json.loads(GOLDEN.read_text())
    required = golden["required_keys"]
    buckets = {
        "sma": set(golden["sma_buckets"]),
        "scalar": set(golden["scalar_buckets"]),
    }
    paths = sorted(directory.glob("*.json"))
    problems = []
    for path in paths:
        data = json.loads(path.read_text())
        for problem in validate_report(data):
            problems.append(f"{path.name}: {problem}")
        if sorted(data) != required:
            problems.append(
                f"{path.name}: top-level keys {sorted(data)} != "
                f"golden {required}"
            )
        kind = "scalar" if data.get("machine", "").startswith("scalar") \
            else "sma"
        if set(data.get("stall_breakdown", ())) != buckets[kind]:
            problems.append(
                f"{path.name}: {kind} stall buckets "
                f"{sorted(data.get('stall_breakdown', ()))} drifted"
            )
    return len(paths), problems


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    directory = Path(argv[1])
    if not directory.is_dir():
        print(f"no such report directory: {directory}", file=sys.stderr)
        return 2
    problems = check_golden()
    count, report_problems = check_reports(directory)
    problems.extend(report_problems)
    if count == 0:
        problems.append(f"no RunReport JSON files under {directory}")
    for problem in problems:
        print(f"SCHEMA DRIFT: {problem}", file=sys.stderr)
    if problems:
        return 1
    print(f"{count} RunReport(s) validated against schema v{SCHEMA_VERSION}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
