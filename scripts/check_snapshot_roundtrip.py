#!/usr/bin/env python
"""Checkpoint round-trip gate (CI).

Usage::

    PYTHONPATH=src python scripts/check_snapshot_roundtrip.py [--n N]

For a small R-T5 kernel slice, runs each kernel partway, snapshots the
machine, restores the snapshot (after a JSON round-trip) into a freshly
built machine, and requires

* the restored machine's state digest to equal the source machine's, and
* the resumed run — under **every** scheduler — to finish with the same
  cycle count, memory image, and final state digest as the same run
  left uninterrupted.

Exit status is non-zero on any mismatch, so the workflow fails loudly
when a new piece of mutable machine state is added without teaching
``repro.core.checkpoint`` about it.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

REPO_SRC_HINT = (
    "run as: PYTHONPATH=src python scripts/check_snapshot_roundtrip.py"
)

try:
    from repro.config import MemoryConfig, QueueConfig, SMAConfig
    from repro.core import SMAMachine
    from repro.harness.experiments import PREFETCH_REPS
    from repro.harness.runner import _fit_memory, _load_inputs
    from repro.kernels import get_kernel, lower_sma
except ImportError as exc:  # pragma: no cover - CI misconfiguration
    raise SystemExit(f"cannot import repro ({exc}); {REPO_SRC_HINT}")

#: checkpoint cycle as a fraction of the uninterrupted run
CUT_FRACTIONS = (0.25, 0.75)


def build(kernel_name: str, n: int, latency: int = 8) -> SMAMachine:
    kernel, inputs = get_kernel(kernel_name).instantiate(n)
    lowered = lower_sma(kernel)
    mem = MemoryConfig(latency=latency, bank_busy=max(1, latency // 2))
    cfg = SMAConfig(memory=_fit_memory(mem, lowered.layout),
                    queues=QueueConfig())
    machine = SMAMachine(lowered.access_program, lowered.execute_program,
                         cfg)
    _load_inputs(machine, lowered.layout, kernel, inputs)
    return machine


def check_kernel(kernel_name: str, n: int) -> list[str]:
    problems: list[str] = []
    for scheduler in SMAMachine.SCHEDULERS:
        straight = build(kernel_name, n)
        want = straight.run(scheduler=scheduler)
        for fraction in CUT_FRACTIONS:
            cut = max(1, int(want.cycles * fraction))
            source = build(kernel_name, n)
            source.step_cycles(cut)
            snap = json.loads(json.dumps(source.snapshot()))

            resumed = build(kernel_name, n)
            resumed.restore(snap)
            where = f"{kernel_name}/{scheduler}@{cut}"
            if resumed.state_digest() != source.state_digest():
                problems.append(f"{where}: digest differs after restore")
                continue
            got = resumed.run(scheduler=scheduler)
            if got.cycles != want.cycles:
                problems.append(
                    f"{where}: resumed run took {got.cycles} cycles, "
                    f"uninterrupted took {want.cycles}"
                )
            if not np.array_equal(resumed.memory._words,
                                  straight.memory._words):
                problems.append(f"{where}: final memory images differ")
            if resumed.state_digest() != straight.state_digest():
                problems.append(f"{where}: final state digests differ")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=48,
                        help="problem size (default 48)")
    args = parser.parse_args(argv)

    problems: list[str] = []
    for kernel_name in PREFETCH_REPS:
        kernel_problems = check_kernel(kernel_name, args.n)
        status = "ok" if not kernel_problems else "FAIL"
        print(f"  {kernel_name:<16} {status}")
        problems.extend(kernel_problems)

    if problems:
        print(f"\n{len(problems)} problem(s):", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    cuts = " and ".join(f"{int(100 * f)}%" for f in CUT_FRACTIONS)
    print(f"\nsnapshot round-trip ok: {len(PREFETCH_REPS)} kernels x "
          f"{len(SMAMachine.SCHEDULERS)} schedulers, cuts at {cuts}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
