#!/usr/bin/env python
"""Fault-injection smoke for the sweep harness (CI).

Usage::

    PYTHONPATH=src python scripts/fault_injection_smoke.py [--n N]

Proves the harness's recovery paths against *injected* failures on a
small R-F1 slice, end to end through ``run_experiment``:

* **worker-kill** — a pool worker SIGKILLs itself mid-sweep; with
  retries the sweep must still complete, a ``--resume``-style rerun must
  re-execute **zero** jobs, and the resulting table must be
  byte-identical to a fault-free sweep's.
* **cache-corrupt** — a flushed cache entry is truncated mid-JSON; the
  next sweep must quarantine it (``*.json.corrupt``), re-execute only
  that job, and again produce the byte-identical table.

Exit status is non-zero on any violated expectation.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

try:
    from repro.harness import harness_policy, run_experiment
    from repro.harness.faults import FaultSpec
except ImportError as exc:  # pragma: no cover - CI misconfiguration
    raise SystemExit(
        f"cannot import repro ({exc}); run as: "
        "PYTHONPATH=src python scripts/fault_injection_smoke.py"
    )

EXPERIMENT = "R-F1"


def clean_table(n: int, workdir: Path) -> str:
    cache = workdir / "clean"
    cache.mkdir()
    with harness_policy() as stats:
        table = run_experiment(EXPERIMENT, n=n,
                               cache_dir=str(cache)).to_csv()
    print(f"  clean sweep: {stats.summary()}")
    return table


def check_worker_kill(n: int, workdir: Path, want: str) -> list[str]:
    problems: list[str] = []
    cache = workdir / "worker-kill"
    cache.mkdir()
    spec = FaultSpec("worker-kill",
                     token_path=str(cache / ".fault-token"))
    with harness_policy(inject=spec, retries=2) as stats:
        table = run_experiment(EXPERIMENT, n=n, jobs=2,
                               cache_dir=str(cache)).to_csv()
    print(f"  worker-kill sweep: {stats.summary()}")
    if stats.respawns < 1:
        problems.append("worker-kill: fault did not fire "
                        "(no pool respawn observed)")
    if table != want:
        problems.append("worker-kill: table differs from fault-free run")

    # resume: everything was flushed, so nothing re-executes
    with harness_policy() as stats:
        resumed = run_experiment(EXPERIMENT, n=n,
                                 cache_dir=str(cache)).to_csv()
    print(f"  resume sweep: {stats.summary()}")
    if stats.executed != 0:
        problems.append(
            f"resume: {stats.executed} job(s) re-executed, expected 0"
        )
    if resumed != want:
        problems.append("resume: table differs from fault-free run")
    return problems


def check_cache_corrupt(n: int, workdir: Path, want: str) -> list[str]:
    problems: list[str] = []
    cache = workdir / "cache-corrupt"
    cache.mkdir()
    spec = FaultSpec("cache-corrupt",
                     token_path=str(cache / ".fault-token"))
    with harness_policy(inject=spec) as stats:
        table = run_experiment(EXPERIMENT, n=n,
                               cache_dir=str(cache)).to_csv()
    print(f"  corrupting sweep: {stats.summary()}")
    if table != want:
        problems.append("cache-corrupt: table differs from "
                        "fault-free run")

    with harness_policy() as stats:
        rerun = run_experiment(EXPERIMENT, n=n,
                               cache_dir=str(cache)).to_csv()
    print(f"  quarantining sweep: {stats.summary()}")
    if stats.quarantined != 1:
        problems.append(
            f"cache-corrupt: quarantined {stats.quarantined} "
            "entr(ies), expected exactly 1"
        )
    if stats.executed != 1:
        problems.append(
            f"cache-corrupt: re-executed {stats.executed} job(s), "
            "expected exactly the quarantined one"
        )
    if not list(cache.glob("*.json.corrupt")):
        problems.append("cache-corrupt: no *.json.corrupt file left "
                        "behind")
    if rerun != want:
        problems.append("cache-corrupt rerun: table differs from "
                        "fault-free run")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=48,
                        help="problem size (default 48)")
    args = parser.parse_args(argv)

    problems: list[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        print(f"{EXPERIMENT} @ n={args.n}")
        want = clean_table(args.n, workdir)
        problems += check_worker_kill(args.n, workdir, want)
        problems += check_cache_corrupt(args.n, workdir, want)

    if problems:
        print(f"\n{len(problems)} problem(s):", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print("\nfault-injection smoke ok: worker-kill recovered, resume "
          "re-executed nothing, corrupt entry quarantined, all tables "
          "identical to the fault-free sweep")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
