#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from live experiment runs.

Run from the repository root::

    python scripts/generate_experiments_md.py

Every table is produced by the same harness entries the benchmarks use
(`repro.harness.experiments.EXPERIMENTS`), and the headline numbers in
the commentary are interpolated from the measured tables, so the document
can never go stale relative to the code.
"""

from __future__ import annotations

import pathlib
import sys

from repro.harness.experiments import EXPERIMENTS

ORDER = ["R-T1", "R-T2", "R-T3", "R-T4", "R-T5", "R-T6", "R-T7",
         "R-F1", "R-F2", "R-F3", "R-F4", "R-F5", "R-F6", "R-F7", "R-F8",
         "R-F9"]

TITLES = {
    "R-T1": "Kernel characterization (instruction mix)",
    "R-T2": "SMA vs scalar baseline (headline speedups)",
    "R-T3": "SMA vs scalar + data cache",
    "R-T4": "Loss-of-decoupling accounting",
    "R-T5": "SMA vs hardware prefetching (extension)",
    "R-T6": "SMA vs vector machine (extension)",
    "R-T7": "Speculative AP vs prediction accuracy (extension)",
    "R-F1": "Speedup vs memory latency",
    "R-F2": "Cycles vs queue depth",
    "R-F3": "Run-ahead (slip) per kernel",
    "R-F4": "Memory throughput vs banks",
    "R-F5": "Ablation: structured descriptors vs per-element DAE",
    "R-F6": "Queue occupancy over time",
    "R-F7": "Memory-port width ablation (extension)",
    "R-F8": "Multiprocessor interference (extension)",
    "R-F9": "Speculation run-ahead depth sweep (extension)",
}

BENCH = {
    "R-T1": "bench_table1_mix.py", "R-T2": "bench_table2_speedup.py",
    "R-T3": "bench_table3_cache.py", "R-T4": "bench_table4_lod.py",
    "R-T5": "bench_table5_prefetch.py", "R-T6": "bench_table6_vector.py",
    "R-T7": "bench_table7_speculation.py",
    "R-F1": "bench_fig1_latency.py",
    "R-F2": "bench_fig2_queue.py", "R-F3": "bench_fig3_slip.py",
    "R-F4": "bench_fig4_banks.py", "R-F5": "bench_fig5_ablation.py",
    "R-F6": "bench_fig6_occupancy.py", "R-F7": "bench_fig7_ports.py",
    "R-F8": "bench_fig8_multiprocessor.py",
    "R-F9": "bench_fig9_spec_depth.py",
}


def commentary(eid: str, tables: dict) -> str:
    t = tables[eid]
    cols = list(t.columns)

    def col(name):
        return t.column(name)

    if eid == "R-T1":
        rows = t.row_map("kernel")
        hydro_ap = rows["hydro"][cols.index("ap_instr")]
        hydro_scalar = rows["hydro"][cols.index("scalar_instr")]
        return f"""**Expected shape:** the decoupled split removes all address arithmetic
and memory bookkeeping from the computation stream — the SMA access
program of a streaming kernel is a handful of dynamic instructions
(constant in `n`) versus thousands on the scalar machine. Only kernels
with value-computed subscripts or nested stream re-issue execute
per-element / per-row AP instructions.

**Measured:** matches — e.g. `hydro` retires {hydro_ap} AP instructions
against {hydro_scalar} scalar instructions; only `computed_gather` (and
the nested-loop kernels, once per row) scale AP work with `n`."""

    if eid == "R-T2":
        speedups = col("speedup")
        rows = t.row_map("kernel")
        lo, hi = min(speedups), max(speedups)
        cg = rows["computed_gather"][cols.index("speedup")]
        s8 = rows["stride8_copy"][cols.index("speedup")]
        return f"""**Expected shape (committed in DESIGN.md):** SMA wins on every kernel at
the reference configuration; streaming kernels by large factors, the pure
loss-of-decoupling kernel barely.

**Measured:** speedups {lo:.1f}×–{hi:.1f}× across the suite. The two
floor cases are structural: `stride8_copy` ({s8:.1f}×) aliases every
request onto one bank so both machines hit the same bandwidth wall, and
`computed_gather` ({cg:.1f}×) serializes on EP-computed addresses. Every
run is verified word-exact against the reference before its cycle counts
are reported."""

    if eid == "R-T3":
        return """**Expected shape:** a conventional data cache narrows but does not close
the gap on low-reuse streaming kernels — its only lever there is the
4-word line-fill prefetch, so the hit rate is frozen regardless of
capacity; only kernels with actual reuse (`pic_gather`'s table,
`integrate`'s in-place walk) respond to size at all.

**Measured:** matches — cache cycles are capacity-independent for the
pure streams while the SMA stays several times faster at every size."""

    if eid == "R-T4":
        rows = t.row_map("kernel")
        frac = rows["computed_gather"][cols.index("lod_frac")]
        return f"""**Expected shape:** LOD is confined to EP-computed addresses and
EP-resolved branches. Structured gathers/scatters — indices from
*memory* — must show **zero** LOD because the descriptor engine chains
them autonomously; this distinction over naive DAE is the architecture's
key insight.

**Measured:** exactly that — `computed_gather` spends
{100 * frac:.0f}% of its cycles in LOD stalls (one event per element);
`pic_gather`/`pic_scatter`/`tridiag` show zero events."""

    if eid == "R-F1":
        first, last = t.rows[0], t.rows[-1]
        return f"""**Expected shape:** speedup *grows* with memory latency — the decoupled
machine hides latency behind its queues while the blocking-load baseline
pays it on every reference.

**Measured:** monotone growth from ~{min(first[1:]):.1f}× at latency
{first[0]} to {max(last[1:]):.1f}× at latency {last[0]}. The late dip
for the 2–3-stream kernels is real and instructive: with
`bank_busy = latency/2`, peak memory *bandwidth* (not latency) becomes
the SMA's binding constraint at the largest setting, while the baseline
keeps degrading linearly."""

    if eid == "R-F2":
        return """**Expected shape:** small queues capture nearly all of the decoupling —
the knee sits near (memory latency / per-element EP work), well below the
64-entry extreme.

**Measured:** cycles stop improving at depth 4 for every kernel (depth 2
already suffices for the wider kernels); depth 1 costs 1.1–3×."""

    if eid == "R-F3":
        return """**Expected shape:** streaming kernels sustain deep run-ahead; LOD-bound
and bank-bound kernels cannot. Occupancy alone cannot distinguish "AP far
ahead" from "AP parked at a LOD stall with full queues", so the EP
starvation fraction is reported alongside.

**Measured:** multi-stream kernels hold 10–45 outstanding loads with the
EP starving under 2% of cycles; `computed_gather` parks with full queues
but the EP starves over half the time; `stride8_copy` manages ~1
outstanding load at 75% starvation (one-bank bandwidth)."""

    if eid == "R-F4":
        return """**Expected shape:** classic interleaving algebra — sustained words/cycle
collapses by `gcd(stride, banks)` and saturates at `banks / bank_busy`.

**Measured:** exact — unit stride saturates at 4 banks (bank busy 4);
stride 2 needs twice the banks; stride 5 (coprime) lands in between;
stride 8 stays at one-bank bandwidth until 16 banks split it."""

    if eid == "R-F5":
        benefits = col("benefit")
        return f"""**Expected shape:** removing structured descriptors (per-element
`ldq`/`staddr`, i.e. a plain DAE access processor) leaves the machine
decoupled but AP-instruction-bound: 2–3 AP instructions per memory
reference versus a constant-size descriptor program.

**Measured:** descriptors are worth {min(benefits):.2f}×–{max(benefits):.2f}×,
tracking how memory-dense each loop is. The execute program is
bit-identical in both modes, isolating the descriptor contribution."""

    if eid == "R-F6":
        occ = col("load_occupancy")
        return f"""**Expected shape:** the decoupling profile — load queues fill within
about one memory latency of start, hold a steady level for the whole run,
and drain through the tail.

**Measured:** hydro's four load streams ramp to ~{max(occ):.0f} occupied
slots immediately, sit there for the entire run, and drain to
~{occ[-1]:.1f} in the final bucket; store-data occupancy stays near zero
(the store stream consumes EP results as fast as they arrive)."""

    if eid == "R-T5":
        rows = t.row_map("kernel")
        cov = rows["daxpy"][cols.index("rpt_coverage")]
        return f"""**Motivation:** the calibration note calls this paper "foundational
decoupled access/execute work influencing prefetching research". The
SMA's descriptors are *exact* prefetching; this extension asks how close
*speculative* hardware prefetching gets: one-block lookahead (OBL) and a
PC-indexed reference prediction table (RPT, degree 2) on the baseline's
cache.

**Measured:** the RPT covers {100 * cov:.0f}% of daxpy's strided misses
yet the SMA remains ~3× faster on unit-stride streams (blocking hit time,
bounded lookahead). OBL on `stride8_copy` is *worse than no cache at
all* — classic pollution. With the prefetcher's timing debts honoured
(dirty victims of prefetch fills owe their write-back bandwidth, stride
targets land on the lines the stream actually touches, unclaimed lines
retire as stale) the SMA wins *every* row — the earlier apparent
crossover on `stride8_copy` was an artifact of uncharged write-backs."""

    if eid == "R-T6":
        rows = t.row_map("kernel")
        daxpy_ratio = rows["daxpy"][cols.index("sma_vs_vector")]
        tri_ratio = rows["tridiag"][cols.index("sma_vs_vector")]
        return f"""**Motivation:** the era's second comparator. The vector machine here is
CRAY-1-flavoured with *perfect chaining* and free scalar bookkeeping —
charitable to the baseline — and its vectorizer applies the classic
legality rules (no loop-carried dependences, no gather/scatter hardware,
no data-dependent subscripts).

**Expected shape — the 1983 argument for decoupling:** the vector machine
wins the loops it can vectorize (higher peak), but falls off a cliff onto
its scalar unit wherever the vectorizer must reject; the SMA is the
machine *without* the cliff.

**Measured:** on vectorizable streams the SMA runs at
{1 / daxpy_ratio:.1f}× the vector machine's cycles (within a small factor
of a much wider machine); on every rejected pattern — recurrences,
gathers, scatters, computed subscripts — the SMA is
{tri_ratio:.1f}×-or-more *faster*. Rejection reasons are printed verbatim
in the table."""

    if eid == "R-T7":
        rows = [r for r in t.rows if r[0] == "pic_gather"]
        base, best = rows[0], rows[-1]
        spd = cols.index("recovered_speedup")
        lodc = cols.index("lod_stall_cycles")
        return f"""**Motivation:** R-T4 shows decoupling collapsing wherever the AP waits
on an EP-computed address or branch. This extension asks how much of the
lost speedup a *speculative* access processor recovers: a value predictor
answers the EAQ/EBQ wait immediately, the AP runs ahead with its memory
traffic poison-tagged, and a misprediction rolls the AP (and every
speculative queue slot and in-flight request) back, charged to a
`misspeculation` stall bucket. The two rows use deliberately
LOD-collapsed lowerings of otherwise-structured kernels (`addr`: gather
indices round-trip through the EP; `branch`: the AP's loop trip count is
execute-resolved).

**Measured:** recovered speedup is monotone in predictor accuracy —
`pic_gather` goes from {base[spd]:.1f}× (speculation off,
{base[lodc]} LOD stall cycles) to {best[spd]:.2f}× at accuracy 1.0 with
{best[lodc]} LOD stall cycles left. Accuracy 0 is bit-identical to no
speculation at all, and every row (rollbacks included) is word-exact
against the reference — speculation changes timing, never values."""

    if eid == "R-F9":
        rows = [r for r in t.rows if r[0] == "tridiag"]
        sat = cols.index("cycles")
        return f"""**Question:** how many unresolved predictions must the AP hold for full
recovery? Perfect predictor, sweeping the run-ahead depth cap.

**Measured:** cycles fall until the in-flight predictions cover the
memory round-trip, then flatten — `tridiag` saturates by depth 4
({rows[0][sat]} cycles at depth {rows[0][2]} down to {rows[-1][sat]} at
depth {rows[-1][2]}); `depth_refusals` counts the stalls the cap still
forced. The knee is the hardware sizing answer: a handful of shadow
frames suffices at this latency."""

    if eid == "R-F7":
        return """**Question:** does a *single* SMA node need a multi-ported memory (and a
faster stream engine)? Port width and stream-engine issue bandwidth are
swept together.

**Finding (committed):** no — throughput is flat in port width because
the single-issue execute processor, consuming roughly one operand per ALU
instruction, is the binding constraint (its busy fraction stays ≈ 0.99).
This is the design justification for the base machine's single-ported
memory; ports begin to matter exactly when several nodes share the
memory (R-F8)."""

    if eid == "R-F8":
        rows = t.row_map("nodes")
        two_p1 = rows[2][cols.index("ports1")]
        four_p1 = rows[4][cols.index("ports1")]
        eight_p1 = rows[8][cols.index("ports1")]
        four_p4 = rows[4][cols.index("ports4")]
        eight_p4 = rows[8][cols.index("ports4")]
        return f"""**Expected shape:** with one shared memory port, mean node slowdown
tracks the node count (pure bandwidth division); widening the port
restores most of the standalone performance, with bank-busy overlap as
the residual. Contention must never change results.

**Measured:** {two_p1:.2f}× / {four_p1:.2f}× / {eight_p1:.2f}× slowdown
at 2 / 4 / 8 nodes on one port; four ports bring 4 nodes back to
{four_p4:.2f}× and 8 nodes to {eight_p4:.2f}×. Per-node finish times are
recorded the cycle each node halts (exact under cluster fast-forward,
see ARCHITECTURE §15), and every node is verified word-exact under
interference."""

    return ""


def main() -> int:
    tables = {eid: EXPERIMENTS[eid]() for eid in ORDER}
    out = ["""# EXPERIMENTS — measured results vs committed expectations

Provenance reminder (see DESIGN.md): the 1983 paper's own tables/figures
were unavailable to this reproduction (title-collision in the provided
text), so each experiment reproduces a *committed expected shape* drawn
from the decoupled access/execute literature of 1982–1986 rather than
absolute numbers from the paper. "Measured" values come from this
repository's simulator at the reference configuration — memory latency 8,
bank busy 4, 8 banks, 8-entry queues, n = 256 — and regenerate with
either of:

```bash
pytest benchmarks/ --benchmark-only -s
python scripts/generate_experiments_md.py   # rewrites this file
```

Absolute cycle counts are simulator-model-specific; the claims under test
are the *shapes*: who wins, by roughly what factor, where the knees and
crossovers fall. Every performance run is first verified **word-exact**
against the kernel-IR reference interpreter (and the write-*sequence*
checker in `repro.verify` covers per-address ordering), so no table below
reports a miscomputing configuration.
"""]
    for eid in ORDER:
        out.append(f"\n## {eid}: {TITLES[eid]}\n")
        out.append(
            f"*Benchmark:* `benchmarks/{BENCH[eid]}` — *harness:* "
            f"`repro.harness.experiments.EXPERIMENTS[\"{eid}\"]`\n"
        )
        out.append(commentary(eid, tables))
        out.append("\n```text\n" + tables[eid].to_text() + "\n```\n")
    out.append("""
## Summary of committed shapes

| claim | status |
|---|---|
| SMA ≥ baseline on every kernel | ✅ streaming 5–9×, worst case ≥ 1.7× |
| speedup grows with memory latency | ✅ monotone until bandwidth-bound |
| small queues suffice (knee ≤ 8 entries) | ✅ knee at depth 2–4 |
| LOD only at EP-computed addresses/branches | ✅ structured gathers: 0 events |
| descriptors beat per-element DAE | ✅ 1.4–3.3× |
| stride/bank aliasing follows the gcd law | ✅ exact |
| cache narrows but does not close the streaming gap | ✅ at every capacity |
| speculative prefetching trails exact (descriptor) prefetching | ✅ RPT ≈ 98% coverage yet ~3× behind |
| vector machine wins vectorizable loops, cliffs on the rest | ✅ SMA 5.9–8.7× ahead on rejected loops |
| single node is EP-bound, not port-bound | ✅ flat throughput vs ports |
| N nodes / 1 port slow ≈ N×; wider port restores | ✅ word-exact under contention |
| speculative AP recovers LOD-collapsed speedup monotonically in accuracy | ✅ perfect predictor removes ≥90% of lod stalls |
| recovery saturates once run-ahead depth covers the memory round-trip | ✅ knee at depth ~4 |
""")
    pathlib.Path("EXPERIMENTS.md").write_text("\n".join(out))
    print(f"EXPERIMENTS.md regenerated ({len(ORDER)} experiments)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
