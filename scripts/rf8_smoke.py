#!/usr/bin/env python
"""R-F8 smoke sweep for CI: a 2-node cluster at a small problem size,
run with metrics capture so the per-node cluster RunReports can be gated
by ``scripts/check_runreport_schema.py``.

Usage::

    PYTHONPATH=src python scripts/rf8_smoke.py --out cluster-runreports
    python scripts/check_runreport_schema.py cluster-runreports
"""

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=32,
                        help="problem size per node (default 32)")
    parser.add_argument("--nodes", type=int, default=2,
                        help="cluster node count (default 2)")
    parser.add_argument("--out", default="cluster-runreports",
                        help="directory for the captured RunReports")
    args = parser.parse_args(argv)

    from repro.harness.experiments import fig8_multiprocessor
    from repro.metrics import capture_reports

    with capture_reports(args.out) as collector:
        table = fig8_multiprocessor(n=args.n, node_counts=(args.nodes,))
        print(table.to_text())
        print(f"captured {len(collector.reports)} RunReport(s) "
              f"under {args.out}")
        if not collector.reports:
            print("error: no RunReports captured", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
