#!/usr/bin/env python
"""Sweep-service smoke (CI).

Usage::

    PYTHONPATH=src python scripts/service_smoke.py [--n N]

Proves the service stack end to end against a *real* ``repro serve``
subprocess on a duplicate-heavy R-F1 slice:

* **coalescing** — two concurrent clients submit the same job grid;
  every duplicate must coalesce onto (or be served from) the first
  client's executions, so the service executes each distinct job
  exactly once.
* **bit-identity** — both clients' result sets must be byte-identical
  to a serial in-process ``run_jobs`` of the same grid.
* **content-addressed dedup** — a second grid varying only a
  result-irrelevant field (``buckets``) must add index entries but
  **zero** new blobs.
* **worker-kill recovery** — a pool worker is SIGKILLed mid-sweep; the
  scheduler must respawn the pool and finish every job correctly,
  without re-executing results that already reached the store.
* **clean drain** — ``POST /v1/shutdown`` must drain in-flight work
  and exit the server with status 0.

Exit status is non-zero on any violated expectation.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

try:
    from repro.harness.experiments import _configs
    from repro.harness.jobs import Job
    from repro.harness.parallel import run_jobs
    from repro.service.client import ServiceClient
except ImportError:
    print("run with PYTHONPATH=src", file=sys.stderr)
    raise


def canonical(result: dict) -> str:
    return json.dumps(result, sort_keys=True, separators=(",", ":"))


def grid(n: int, buckets: int = 32) -> list[Job]:
    """A duplicate-heavy R-F1 slice: the latency sweep's interleaved
    sma/scalar pairs for two representative kernels."""
    jobs = []
    for latency in (2, 4, 8, 16):
        sma_cfg, scalar_cfg = _configs(latency=latency)
        for name in ("daxpy", "hydro"):
            jobs.append(Job("sma", name, n, sma_config=sma_cfg,
                            check=True, buckets=buckets))
            jobs.append(Job("scalar", name, n, scalar_config=scalar_cfg,
                            check=True, buckets=buckets))
    return jobs


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--n", type=int, default=96)
    args = parser.parse_args()

    tmp = Path(tempfile.mkdtemp(prefix="service-smoke-"))
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--store", str(tmp / "store"), "--workers", "2",
         "--retries", "3", "--slice-cycles", "2000"],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
        env={**os.environ, "PYTHONPATH": "src"},
    )
    try:
        line = server.stdout.readline().strip()
        if "http://" not in line:
            fail(f"server did not announce a URL: {line!r}")
        url = line.split()[-1]
        print(f"server up at {url}")
        client = ServiceClient(url)
        jobs = grid(args.n)

        # --- two concurrent clients + a worker kill mid-sweep --------
        outcomes: dict[str, list] = {}

        def run_client(tag: str) -> None:
            outcomes[tag] = ServiceClient(url).run(jobs, timeout=480)

        threads = [
            threading.Thread(target=run_client, args=(tag,))
            for tag in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 60
        victim = None
        while time.monotonic() < deadline:
            stats = client.stats()
            if stats["running"] > 0 and stats["pool_pids"]:
                victim = stats["pool_pids"][0]
                break
            time.sleep(0.05)
        if victim is None:
            fail("sweep never started executing")
        os.kill(victim, signal.SIGKILL)
        print(f"killed pool worker {victim} mid-sweep")
        for thread in threads:
            thread.join(timeout=480)
            if thread.is_alive():
                fail("client did not finish")
        if set(outcomes) != {"a", "b"}:
            fail("a client died before returning results")

        # --- bit-identity vs the serial harness -----------------------
        serial = run_jobs(jobs)
        for tag, results in outcomes.items():
            for i, (got, want) in enumerate(zip(results, serial)):
                if canonical(got) != canonical(want):
                    fail(f"client {tag} job {i} diverges from serial "
                         "run_jobs")
        print(f"both clients bit-identical to serial across "
              f"{len(jobs)} jobs")

        # --- coalescing / no re-execution of flushed results ----------
        stats = client.stats()
        sweep = stats["sweep"]
        if sweep["executed"] != len(jobs):
            fail(f"expected {len(jobs)} executions (one per distinct "
                 f"job), saw {sweep['executed']}")
        if sweep["coalesced"] + sweep["hits"] < len(jobs):
            fail(f"duplicate client saw only {sweep['coalesced']} "
                 f"coalesced + {sweep['hits']} store hits")
        if sweep["respawns"] < 1:
            fail("worker kill did not register a pool respawn")
        print(f"coalescing ok: {sweep['coalesced']} coalesced, "
              f"{sweep['hits']} hits, {sweep['respawns']} respawn(s), "
              f"{sweep['retried']} retrie(s)")

        # --- content-addressed dedup across sweeps --------------------
        before = client.stats()["store"]
        dup = ServiceClient(url).run(grid(args.n, buckets=7),
                                     timeout=480)
        for got, want in zip(dup, serial):
            if canonical(got) != canonical(want):
                fail("buckets-varied grid diverges from serial results")
        after = client.stats()["store"]
        if after["blobs"] != before["blobs"]:
            fail(f"byte-identical sweep grew the blob set: "
                 f"{before['blobs']} -> {after['blobs']}")
        if after["results"] <= before["results"]:
            fail("buckets-varied sweep added no index entries")
        if after["results"] <= after["blobs"]:
            fail(f"dedup never fired: {after['results']} results vs "
                 f"{after['blobs']} blobs")
        print(f"store dedup ok: {after['results']} results share "
              f"{after['blobs']} blobs")

        # --- clean drain ----------------------------------------------
        client.shutdown()
        code = server.wait(timeout=60)
        if code != 0:
            fail(f"server exited {code} after drain")
        print("clean drain: server exited 0")
        print("service smoke: all checks passed")
        return 0
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()


if __name__ == "__main__":
    sys.exit(main())
