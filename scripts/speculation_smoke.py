#!/usr/bin/env python
"""Speculative-AP smoke for CI.

Usage::

    PYTHONPATH=src python scripts/speculation_smoke.py [--n N]

Proves the two load-bearing guarantees of the speculation subsystem end
to end, on the LOD-collapsed lowerings R-T7 uses:

* **accuracy 0 is a no-op** — a run with ``SpeculationConfig(accuracy=0)``
  must be *bit-identical* to a run with no speculation config at all:
  same cycles, same stall buckets (including ``lod_*`` accounting), and
  the same sha256 digest over the final memory image.
* **rollback is deterministic** — a coin predictor at accuracy 0.5
  rolls back constantly; two runs with the same predictor seed must
  agree exactly (cycles, stall buckets, speculation counters, memory
  digest), two different predictor seeds must still produce the same
  (correct) memory digest, and a perfect predictor must eliminate at
  least 90% of the baseline's ``lod_*`` stall cycles.

Exit status is non-zero on any violated expectation.
"""

from __future__ import annotations

import argparse
import hashlib
import sys

try:
    from repro.config import MemoryConfig, SMAConfig, SpeculationConfig
    from repro.harness.runner import run_on_sma
    from repro.kernels import get_kernel, lower_sma
except ImportError as exc:  # pragma: no cover - CI misconfiguration
    raise SystemExit(
        f"cannot import repro ({exc}); run as: "
        "PYTHONPATH=src python scripts/speculation_smoke.py"
    )

CASES = (("pic_gather", "addr"), ("tridiag", "branch"))
MEM = MemoryConfig(latency=16, bank_busy=8)


def _run(name, variant, speculation, n, seed=7):
    kernel, inputs = get_kernel(name).instantiate(n, seed)
    lowered = lower_sma(kernel, lod_variant=variant)
    cfg = SMAConfig(memory=MEM, speculation=speculation)
    return run_on_sma(kernel, inputs, cfg, lowered=lowered)


def _fingerprint(run):
    digest = hashlib.sha256()
    for name in sorted(run.outputs):
        digest.update(run.outputs[name].astype("float64").tobytes())
    return (
        run.result.cycles,
        dict(run.result.ap.stall_cycles),
        run.result.lod_events,
        digest.hexdigest(),
    )


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit(f"FAIL: {message}")
    print(f"  ok: {message}")


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--n", type=int, default=64)
    args = parser.parse_args()

    for name, variant in CASES:
        print(f"{name} ({variant}):")
        plain = _run(name, variant, None, args.n)
        zero = _run(name, variant,
                    SpeculationConfig(accuracy=0.0), args.n)
        check(_fingerprint(zero) == _fingerprint(plain),
              "accuracy 0 bit-identical to no speculation "
              "(cycles, stall buckets, memory digest)")
        check(zero.result.speculation is None,
              "accuracy 0 reports no speculation counters")

        coin = SpeculationConfig(accuracy=0.5, max_depth=8, seed=3)
        first = _run(name, variant, coin, args.n)
        again = _run(name, variant, coin, args.n)
        check(first.result.speculation["rollbacks"] > 0,
              f"rollbacks exercised "
              f"({first.result.speculation['rollbacks']})")
        check(_fingerprint(again) == _fingerprint(first)
              and again.result.speculation == first.result.speculation,
              "rollback deterministic across reruns")

        other = _run(name, variant,
                     SpeculationConfig(accuracy=0.5, max_depth=8,
                                       seed=4), args.n)
        check(other.result.speculation != first.result.speculation,
              "different predictor seed takes a different path")
        check(other.outputs.keys() == first.outputs.keys() and
              _fingerprint(other)[3] == _fingerprint(first)[3],
              "different predictor seed, same (correct) outputs")

        perfect = _run(name, variant,
                       SpeculationConfig(mode="perfect", max_depth=16),
                       args.n)
        check(perfect.result.lod_stall_cycles
              <= 0.1 * plain.result.lod_stall_cycles,
              f"perfect predictor removes >=90% of lod stalls "
              f"({plain.result.lod_stall_cycles} -> "
              f"{perfect.result.lod_stall_cycles})")
        check(_fingerprint(perfect)[3] == _fingerprint(plain)[3],
              "perfect-predictor outputs word-exact")

    print("speculation smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
