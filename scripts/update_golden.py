#!/usr/bin/env python3
"""Regenerate tests/golden_cycles.json.

The simulator is fully deterministic, so exact cycle counts at the
reference configuration act as a regression guard on the *timing models*
(a change to queue arbitration, bank accounting, or codegen that shifts
any kernel's cycle count will fail ``tests/test_golden_cycles.py``).

Run after an intentional timing-model change and review the diff:

    python scripts/update_golden.py
    git diff tests/golden_cycles.json   # every change should be explicable
"""

from __future__ import annotations

import json
import pathlib

from repro.harness.runner import run_on_scalar, run_on_sma, run_on_vector
from repro.kernels import all_kernels
from repro.kernels.lower_vector import VectorizationError

N = 96
SEED = 12345


def main() -> int:
    golden: dict[str, dict[str, int]] = {}
    for spec in all_kernels():
        kernel, inputs = spec.instantiate(N, seed=SEED)
        entry = {
            "scalar": run_on_scalar(kernel, inputs).cycles,
            "sma": run_on_sma(kernel, inputs).cycles,
            "sma_nostream": run_on_sma(
                kernel, inputs, use_streams=False
            ).cycles,
        }
        try:
            entry["vector"] = run_on_vector(kernel, inputs).cycles
        except VectorizationError:
            entry["vector"] = None
        golden[spec.name] = entry
    path = pathlib.Path(__file__).parent.parent / "tests" / "golden_cycles.json"
    path.write_text(json.dumps(
        {"n": N, "seed": SEED, "cycles": golden}, indent=2, sort_keys=True
    ) + "\n")
    print(f"wrote {path} ({len(golden)} kernels)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
