#!/usr/bin/env python3
"""Regenerate tests/golden_experiments.json.

Every R-T/R-F experiment table is pinned — columns and all row values —
at a reduced problem size, as a guard that *pure performance* changes to
the simulator (schedulers, fast paths, caching) leave every measured
number untouched.  ``tests/test_experiments_invariance.py`` replays the
same calls and compares exactly.

Run only after an intentional change to a timing model or an experiment
definition, and review the diff:

    PYTHONPATH=src python scripts/update_golden_experiments.py
    git diff tests/golden_experiments.json
"""

from __future__ import annotations

import json
import pathlib

from repro.harness.experiments import EXPERIMENTS

#: reduced-size kwargs per experiment — small enough for tier-1, large
#: enough that every kernel still executes its steady-state loop.
GOLDEN_KWARGS: dict[str, dict] = {eid: {"n": 32} for eid in EXPERIMENTS}
GOLDEN_KWARGS["R-F6"] = {"n": 64, "buckets": 8}
GOLDEN_KWARGS["R-F8"] = {"n": 48, "node_counts": [1, 2], "ports": [1, 2]}


def build() -> dict:
    tables = {}
    for eid in sorted(EXPERIMENTS):
        table = EXPERIMENTS[eid](**GOLDEN_KWARGS[eid])
        tables[eid] = {
            "kwargs": GOLDEN_KWARGS[eid],
            "columns": list(table.columns),
            "rows": [list(row) for row in table.rows],
        }
    return {"tables": tables}


def main() -> int:
    path = (pathlib.Path(__file__).parent.parent
            / "tests" / "golden_experiments.json")
    data = build()
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    n_rows = sum(len(t["rows"]) for t in data["tables"].values())
    print(f"wrote {path} ({len(EXPERIMENTS)} experiments, {n_rows} rows)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
