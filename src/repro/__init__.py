"""repro — a reproduction of the Structured Memory Access architecture.

This package implements, from scratch, the decoupled access/execute (DAE)
machine of "A Structured Memory Access Architecture" (ICPP 1983): an
Access Processor that walks *structured access descriptors* through a
banked memory, an Execute Processor fed through architectural FIFO queues,
a conventional scalar baseline (optionally cached) for comparison, a small
loop-kernel IR with compilers for both machines, a Livermore-loops-style
workload suite, and an experiment harness that regenerates the evaluation.

Quick start::

    from repro import get_kernel, compare_spec
    result = compare_spec(get_kernel("hydro"))
    print(f"speedup {result.speedup:.2f}x")

See README.md for the architecture tour and DESIGN.md for the experiment
index (including the provenance note about the reconstructed evaluation).
"""

from .baseline import ScalarMachine, ScalarResult
from .config import (
    CacheConfig,
    MemoryConfig,
    QueueConfig,
    ScalarConfig,
    SMAConfig,
    default_scalar_config,
    default_sma_config,
)
from .core import SMAMachine, SMAResult
from .errors import (
    AssemblyError,
    EncodingError,
    KernelError,
    LoweringError,
    MemoryError_,
    QueueError,
    ReproError,
    SimulationError,
)
from .harness import (
    EXPERIMENTS,
    compare_spec,
    run_experiment,
    run_on_scalar,
    run_on_sma,
)
from .isa import Program, assemble, disassemble
from .kernels import (
    Kernel,
    all_kernels,
    get_kernel,
    kernel_names,
    lower_scalar,
    lower_sma,
    parse_kernel,
    run_reference,
)

__version__ = "1.0.0"

__all__ = [
    "AssemblyError",
    "CacheConfig",
    "EXPERIMENTS",
    "EncodingError",
    "Kernel",
    "KernelError",
    "LoweringError",
    "MemoryConfig",
    "MemoryError_",
    "Program",
    "QueueConfig",
    "QueueError",
    "ReproError",
    "SMAConfig",
    "SMAMachine",
    "SMAResult",
    "ScalarConfig",
    "ScalarMachine",
    "ScalarResult",
    "SimulationError",
    "__version__",
    "all_kernels",
    "assemble",
    "compare_spec",
    "default_scalar_config",
    "default_sma_config",
    "disassemble",
    "get_kernel",
    "kernel_names",
    "lower_scalar",
    "lower_sma",
    "parse_kernel",
    "run_experiment",
    "run_on_scalar",
    "run_on_sma",
    "run_reference",
]
