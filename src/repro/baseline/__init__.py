"""Baseline machines the SMA is compared against."""

from .scalar_machine import ScalarMachine, ScalarResult
from .vector_machine import VectorMachine, VectorResult

__all__ = ["ScalarMachine", "ScalarResult", "VectorMachine", "VectorResult"]
