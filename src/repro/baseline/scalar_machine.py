"""Baseline: a conventional in-order scalar von Neumann machine.

This is the comparator the SMA is evaluated against.  It executes a single
unified instruction stream; every operand reference it makes to memory is
an individual, **blocking** ``load`` — the processor idles for the full
memory latency (plus any bank-conflict wait) before the next instruction
issues.  ``store`` is fire-and-forget: it occupies the bank but does not
block the processor beyond its issue cycle.

Two memory configurations:

* **uncached** — every access goes to the same banked memory model the SMA
  uses, so latency and bank parameters are held identical across machines;
* **cached** — accesses go through a set-associative write-back data cache
  (:class:`repro.memory.DataCache`); the banked model is bypassed because
  the cache's miss penalty already embodies the memory latency.

All timing assumptions are deliberately *charitable* to the baseline
(single-cycle ALU, free instruction fetch, no write stalls), so measured
SMA speedups are conservative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..config import ScalarConfig
from ..errors import SimulationError
from ..isa import ALU_FUNCS, ALU_OPS, Imm, Op, Program, Reg, SCALAR_OPS
from ..isa.operands import NUM_REGS
from ..memory import BankedMemory, DataCache, MainMemory
from ..memory.main_memory import as_address


@dataclass
class ScalarResult:
    """Statistics from one scalar-baseline run."""

    cycles: int
    instructions: int
    loads: int
    stores: int
    #: cycles the processor spent waiting on memory (latency + conflicts).
    memory_stall_cycles: int
    bank_conflict_waits: int
    #: end-of-run cycles writing back dirty cache lines (0 uncached).
    drain_cycles: int = 0
    cache: Any = None  # CacheStats when a cache is configured

    def stall_breakdown(self) -> dict[str, int]:
        """Partition of total cycles (see repro.metrics.attribution).

        The machine is event-jumped, so the buckets are derived exactly
        from its counters: every cycle is either an issue cycle
        (``compute``), a blocking memory wait net of bank-conflict retry
        time (``memory_wait``), a bank-conflict wait (``bank_busy``), or
        the end-of-run dirty-line write-back (``store_drain``); they
        always sum to ``cycles``.
        """
        return {
            "compute": self.instructions,
            "memory_wait": self.memory_stall_cycles
            - self.bank_conflict_waits,
            "bank_busy": self.bank_conflict_waits,
            "store_drain": self.drain_cycles,
        }

    def to_dict(self) -> dict:
        """JSON-serializable flat summary (for harness consumers)."""
        out = {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "loads": self.loads,
            "stores": self.stores,
            "memory_stall_cycles": self.memory_stall_cycles,
            "bank_conflict_waits": self.bank_conflict_waits,
            "drain_cycles": self.drain_cycles,
        }
        if self.cache is not None:
            out["cache_hits"] = self.cache.hits
            out["cache_misses"] = self.cache.misses
            out["cache_hit_rate"] = self.cache.hit_rate
        return out

    def summary(self) -> str:
        lines = [
            f"cycles               {self.cycles}",
            f"instructions         {self.instructions}",
            f"loads/stores         {self.loads}/{self.stores}",
            f"memory stall cycles  {self.memory_stall_cycles}",
        ]
        if self.cache is not None:
            lines.append(
                f"cache hit rate       {self.cache.hit_rate:.3f} "
                f"({self.cache.hits}/{self.cache.accesses})"
            )
        return "\n".join(lines)


class ScalarMachine:
    """In-order, single-issue interpreter of a unified program."""

    def __init__(self, program: Program, config: ScalarConfig | None = None):
        self.config = config or ScalarConfig()
        self.program = program
        self.memory = MainMemory(self.config.memory.size)
        self.cache: DataCache | None = None
        self.banked: BankedMemory | None = None
        if self.config.cache is not None:
            if self.config.prefetch is not None:
                from ..memory.prefetch import PrefetchingCache

                self.cache = PrefetchingCache(
                    self.config.cache,
                    self.config.memory.latency,
                    self.config.prefetch,
                )
            else:
                self.cache = DataCache(
                    self.config.cache, self.config.memory.latency
                )
        else:
            self.banked = BankedMemory(self.memory, self.config.memory)
        self.registers: list[float] = [0.0] * NUM_REGS
        self.pc = 0
        self.cycle = 0
        self.halted = False
        self._stats = {
            "instructions": 0,
            "loads": 0,
            "stores": 0,
            "memory_stall_cycles": 0,
            "conflict_waits": 0,
        }
        for base, values in program.data:
            self.memory.load_array(base, values)
        for instr in program:
            if instr.op not in SCALAR_OPS:
                raise SimulationError(
                    f"{instr.op.value} is not a valid scalar-machine op"
                )

    # -- workload I/O ------------------------------------------------------

    def load_array(self, base: int, values) -> None:
        self.memory.load_array(base, values)

    def dump_array(self, base: int, count: int):
        return self.memory.dump_array(base, count)

    # -- observability -----------------------------------------------------

    def attach_metrics(self, registry=None):
        """Register this machine's counters (and its cache's / banked
        memory's) into a metrics registry; returns the registry.

        The scalar machine jumps the clock instead of ticking, so there
        is no per-cycle hook — the registry getters plus
        :meth:`ScalarResult.stall_breakdown` are the whole layer.
        """
        from ..metrics import MetricsRegistry

        reg = registry if registry is not None else MetricsRegistry()
        for key in self._stats:
            reg.register_counter(
                f"scalar.{key}", lambda s=self._stats, k=key: s[k]
            )
        reg.register_counter("scalar.cycles", lambda m=self: m.cycle)
        if self.cache is not None:
            self.cache.register_metrics(reg, "cache")
        if self.banked is not None:
            self.banked.register_metrics(reg, "memory")
        self._metrics_registry = reg
        return reg

    # -- memory helpers ----------------------------------------------------

    def _wait_for_bank(self, addr: int) -> None:
        assert self.banked is not None
        banked = self.banked
        waited = 0
        while not banked.can_accept(addr, self.cycle):
            # jump straight to the cycle the bank frees up; a same-cycle
            # port reject clears after a single cycle.  Equivalent to
            # ticking one cycle at a time (the processor is blocked, so
            # no other state advances while it waits).
            free_at = banked.bank_free_time(addr)
            target = free_at if free_at > self.cycle else self.cycle + 1
            waited += target - self.cycle
            self.cycle = target
        if waited:
            self._stats["conflict_waits"] += waited
            self._stats["memory_stall_cycles"] += waited

    def _do_load(self, addr) -> float:
        a = as_address(addr)
        self._stats["loads"] += 1
        if self.cache is not None:
            cost = self.cache.access(a, is_write=False, now=self.cycle, pc=self.pc)
            # the issue cycle itself is charged by the main loop
            self.cycle += cost - 1
            self._stats["memory_stall_cycles"] += cost - 1
            return self.memory.read(a)
        self._wait_for_bank(a)
        assert self.banked is not None
        accepted = self.banked.try_issue(a, self.cycle)
        assert accepted
        latency = self.config.memory.latency
        self.cycle += latency  # blocking load: wait for the data
        self._stats["memory_stall_cycles"] += latency
        return self.memory.read(a)

    def _do_store(self, addr, value) -> None:
        a = as_address(addr)
        self._stats["stores"] += 1
        if self.cache is not None:
            cost = self.cache.access(a, is_write=True, now=self.cycle, pc=self.pc)
            self.cycle += cost - 1
            self._stats["memory_stall_cycles"] += cost - 1
            self.memory.write(a, value)
            return
        self._wait_for_bank(a)
        assert self.banked is not None
        accepted = self.banked.try_issue(a, self.cycle, is_write=True, value=value)
        assert accepted

    # -- execution ---------------------------------------------------------

    def _read(self, operand) -> float:
        if isinstance(operand, Reg):
            return self.registers[operand.index]
        if isinstance(operand, Imm):
            return operand.value
        raise SimulationError(
            f"scalar machine cannot read operand {operand}"
        )

    def run(self, max_cycles: int = 100_000_000) -> ScalarResult:
        """Run to HALT; returns the collected statistics."""
        while not self.halted:
            if self.cycle >= max_cycles:
                raise SimulationError(f"exceeded cycle budget {max_cycles}")
            if self.pc >= len(self.program):
                raise SimulationError(
                    f"ran off the end of program {self.program.name!r}"
                )
            instr = self.program[self.pc]
            op = instr.op
            next_pc = self.pc + 1
            if op in ALU_OPS:
                args = [self._read(s) for s in instr.srcs]
                assert isinstance(instr.dest, Reg)
                self.registers[instr.dest.index] = ALU_FUNCS[op](*args)
            elif op is Op.LOAD:
                addr = self._read(instr.srcs[0]) + self._read(instr.srcs[1])
                assert isinstance(instr.dest, Reg)
                self.registers[instr.dest.index] = self._do_load(addr)
            elif op is Op.STORE:
                value = self._read(instr.srcs[0])
                addr = self._read(instr.srcs[1]) + self._read(instr.srcs[2])
                self._do_store(addr, value)
            elif op is Op.JMP:
                next_pc = instr.branch_target()
            elif op in (Op.BEQZ, Op.BNEZ):
                value = self._read(instr.srcs[0])
                if (value == 0) == (op is Op.BEQZ):
                    next_pc = instr.branch_target()
            elif op is Op.DECBNZ:
                assert isinstance(instr.dest, Reg)
                self.registers[instr.dest.index] -= 1
                if self.registers[instr.dest.index] != 0:
                    next_pc = instr.branch_target()
            elif op is Op.HALT:
                self.halted = True
            elif op is Op.NOP:
                pass
            else:  # pragma: no cover - exhaustive over SCALAR_OPS
                raise SimulationError(f"unhandled scalar op {op}")
            self.cycle += 1  # issue cycle of this instruction
            self._stats["instructions"] += 1
            self.pc = next_pc
        drained = 0
        if self.cache is not None:
            drained = self.cache.flush_cycles()
            self.cycle += drained
        return ScalarResult(
            cycles=self.cycle,
            instructions=self._stats["instructions"],
            loads=self._stats["loads"],
            stores=self._stats["stores"],
            memory_stall_cycles=self._stats["memory_stall_cycles"],
            bank_conflict_waits=self._stats["conflict_waits"],
            drain_cycles=drained,
            cache=self.cache.stats if self.cache is not None else None,
        )
