"""Vector-machine baseline (CRAY-1-flavoured, with perfect chaining).

The DAE literature's second comparator: a register-vector machine.  Where
the scalar baseline shows what blocking loads cost, the vector baseline
shows what the *competition of the era* could do — and therefore where the
SMA's real selling point lies: vector-class throughput on loops a
vectorizer must reject (recurrences, computed subscripts), see experiment
R-T6.

## Programming model

The machine executes a flat list of strip-mined vector operations
(:class:`VectorOp` subclasses) produced by
:func:`repro.kernels.lower_vector.lower_vector`.  There is no textual ISA:
address computation is folded into the ops at compile time (bases are
concrete), which is charitable to the baseline — its scalar bookkeeping
is free.

* 8 vector registers of up to ``max_vl`` (64) elements;
* ``vload``/``vstore`` with arbitrary stride;
* element-wise ALU ops and a reduction op;
* strips execute under **perfect chaining**: one strip of dependent ops
  costs the *sum of startups* plus ``VL`` divided by the slowest
  element rate in the chain (memory rate follows the same
  stride-vs-banks law as the banked memory model:
  ``min(1, banks / (gcd(stride, banks) · bank_busy))``).

Functional note: reductions are *computed* in sequential element order so
results stay bit-identical to the reference interpreter (a real machine's
tree reduction would reassociate); their *timing* uses the vector model.
This keeps the repository's word-exact differential testing intact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from ..config import MemoryConfig
from ..errors import SimulationError
from ..isa.opcodes import ALU_FUNCS, Op
from ..memory import MainMemory

#: number of architectural vector registers
NUM_VREGS = 8


# -- the vector operation set (a tiny typed IR) ----------------------------


@dataclass(frozen=True)
class VLoad:
    vreg: int
    base: int
    stride: int
    length: int


@dataclass(frozen=True)
class VStore:
    vreg: int
    base: int
    stride: int
    length: int


@dataclass(frozen=True)
class VArith:
    """Element-wise ALU op; sources are vector registers or float scalars."""

    op: Op
    dest: int
    srcs: tuple[Union[int, float], ...]  # int = vreg index, float = scalar

    def __post_init__(self) -> None:
        if self.op not in ALU_FUNCS:
            raise SimulationError(f"{self.op} is not an ALU op")


@dataclass(frozen=True)
class VReduce:
    """Fold a vector register into the running scalar accumulator."""

    op: Op  # ADD / MIN / MAX
    acc: int  # accumulator id (compiler-assigned)
    vreg: int


@dataclass(frozen=True)
class SetAcc:
    acc: int
    value: float


@dataclass(frozen=True)
class StoreAcc:
    acc: int
    address: int


#: a strip: ops that chain together (one loop body at one strip offset)
@dataclass(frozen=True)
class Strip:
    ops: tuple[Union[VLoad, VStore, VArith, VReduce], ...]
    length: int


VectorOp = Union[Strip, SetAcc, StoreAcc]


@dataclass
class VectorResult:
    cycles: int
    strips: int
    vector_ops: int
    element_operations: int
    memory_reads: int = 0
    memory_writes: int = 0

    def to_dict(self) -> dict:
        """JSON-serializable flat summary (for harness consumers)."""
        return {
            "cycles": self.cycles,
            "strips": self.strips,
            "vector_ops": self.vector_ops,
            "element_operations": self.element_operations,
            "memory_reads": self.memory_reads,
            "memory_writes": self.memory_writes,
        }

    def summary(self) -> str:
        return (
            f"cycles {self.cycles}, strips {self.strips}, "
            f"vector ops {self.vector_ops}, "
            f"element operations {self.element_operations}"
        )


class VectorMachine:
    """Executes a strip-mined vector program over the shared flat store."""

    #: cycles of startup per vector instruction (issue + pipeline fill)
    STARTUP = 4
    #: extra fold latency charged to a reduction op
    REDUCE_TAIL = 8

    def __init__(
        self,
        program: Sequence[VectorOp],
        memory_config: MemoryConfig | None = None,
        max_vl: int = 64,
    ):
        self.program = list(program)
        self.memory_config = memory_config or MemoryConfig()
        self.max_vl = max_vl
        self.memory = MainMemory(self.memory_config.size)
        self.vregs: list[np.ndarray | None] = [None] * NUM_VREGS
        self.accs: dict[int, float] = {}
        self.cycle = 0
        self._stats = VectorResult(0, 0, 0, 0)

    # -- workload I/O ---------------------------------------------------

    def load_array(self, base: int, values) -> None:
        self.memory.load_array(base, values)

    def dump_array(self, base: int, count: int):
        return self.memory.dump_array(base, count)

    # -- timing helpers ----------------------------------------------------

    def _memory_rate(self, stride: int) -> float:
        """Sustained elements/cycle for a strided memory stream."""
        cfg = self.memory_config
        effective = abs(stride) if stride else 1
        collapse = math.gcd(effective, cfg.num_banks)
        return min(
            float(cfg.accepts_per_cycle),
            cfg.num_banks / (collapse * cfg.bank_busy),
            1.0,
        )

    # -- execution ---------------------------------------------------------

    def _vector(self, index: int) -> np.ndarray:
        value = self.vregs[index]
        if value is None:
            raise SimulationError(f"v{index} read before written")
        return value

    def _run_strip(self, strip: Strip) -> None:
        if strip.length < 1 or strip.length > self.max_vl:
            raise SimulationError(
                f"strip length {strip.length} outside [1, {self.max_vl}]"
            )
        self._stats.strips += 1
        startup_total = 0
        slowest_rate = 1.0
        for op in strip.ops:
            self._stats.vector_ops += 1
            self._stats.element_operations += strip.length
            startup_total += self.STARTUP
            if isinstance(op, VLoad):
                addrs = op.base + op.stride * np.arange(op.length)
                self.vregs[op.vreg] = np.array(
                    [self.memory.read(int(a)) for a in addrs]
                )
                slowest_rate = min(slowest_rate, self._memory_rate(op.stride))
                startup_total += self.memory_config.latency
                self._stats.memory_reads += op.length
            elif isinstance(op, VStore):
                values = self._vector(op.vreg)
                addrs = op.base + op.stride * np.arange(op.length)
                for a, v in zip(addrs, values):
                    self.memory.write(int(a), float(v))
                slowest_rate = min(slowest_rate, self._memory_rate(op.stride))
                self._stats.memory_writes += op.length
            elif isinstance(op, VArith):
                args = [
                    self._vector(s) if isinstance(s, int)
                    else np.full(strip.length, s)
                    for s in op.srcs
                ]
                fn = ALU_FUNCS[op.op]
                self.vregs[op.dest] = np.array([
                    fn(*(float(a[k]) for a in args))
                    for k in range(strip.length)
                ])
            elif isinstance(op, VReduce):
                values = self._vector(op.vreg)
                fn = ALU_FUNCS[op.op]
                acc = self.accs[op.acc]
                for v in values:  # sequential order: bit-exact vs reference
                    acc = fn(acc, float(v))
                self.accs[op.acc] = acc
                startup_total += self.REDUCE_TAIL
            else:  # pragma: no cover - exhaustive
                raise SimulationError(f"unknown strip op {op!r}")
        self.cycle += startup_total + math.ceil(
            strip.length / slowest_rate
        )

    def run(self) -> VectorResult:
        """Execute the whole program; returns timing statistics."""
        for op in self.program:
            if isinstance(op, Strip):
                self._run_strip(op)
            elif isinstance(op, SetAcc):
                self.accs[op.acc] = op.value
                self.cycle += 1
            elif isinstance(op, StoreAcc):
                self.memory.write(op.address, self.accs[op.acc])
                self.cycle += 1
                self._stats.memory_writes += 1
            else:  # pragma: no cover
                raise SimulationError(f"unknown vector op {op!r}")
        self._stats.cycles = self.cycle
        return self._stats
