"""Structure-of-arrays batch simulator: thousands of machine configs
stepped in lockstep with numpy (ROADMAP item 1).

See :mod:`repro.batch.engine` for the execution model and its
bit-exactness contract, and :mod:`repro.batch.dispatch` for how harness
jobs are grouped into lanes.
"""

from .dispatch import batch_eligible, plan_groups, run_batch, run_group
from .engine import BatchOutcome, LaneEngine, LaneStats

__all__ = [
    "BatchOutcome",
    "LaneEngine",
    "LaneStats",
    "batch_eligible",
    "plan_groups",
    "run_batch",
    "run_group",
]
