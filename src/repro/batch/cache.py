"""Compile-once cache for program-specialized batch lane steppers.

Same contract as :mod:`repro.codegen.cache`, one level up the
throughput ladder: artifacts are keyed by everything the emitted source
depends on —

* the **code fingerprint** of the simulator sources (the same
  :func:`repro.harness.parallel.code_fingerprint` that invalidates the
  sweep cache) — editing any simulator module invalidates every cached
  stepper;
* the full text of both **programs** — the emitter bakes opcodes,
  operands and branch targets in as literals;
* the **queue layout** tuple — literal queue ids and the SAQ/EBQ
  positions come from it.

Timing parameters (latency, bank counts, queue depths) are *not* part
of the key: they live in per-lane arrays the generated code reads at
run time, so one artifact serves every lane group of the same program —
that is what makes a 3200-point sweep one compile.

Programs the emitter cannot specialize land in a negative cache so
``LaneEngine.run`` falls back to the interpreted loop without
re-attempting emission every group.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

#: maximum retained compiled steppers; eviction is least-recently-used
MAX_ENTRIES = 64


@dataclass
class LaneArtifact:
    """One compiled program-pair specialization of the lane loop."""

    key: str
    source: str
    fn: Callable


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    compiles: int = 0
    evictions: int = 0
    unsupported: int = 0


_CACHE: OrderedDict[str, LaneArtifact] = OrderedDict()
_UNSUPPORTED: set[str] = set()
stats = CacheStats()


def _code_fingerprint() -> str:
    """The repo-wide source fingerprint (monkeypatchable in tests to
    simulate a simulator-source edit invalidating every artifact)."""
    from ..harness.parallel import code_fingerprint

    return code_fingerprint()


def artifact_key(engine) -> str:
    """Cache key for one :class:`~repro.batch.engine.LaneEngine`'s
    program pair + queue layout (see module docstring)."""
    from ..core.checkpoint import _program_text

    qlay = engine.qlay
    h = hashlib.sha256()
    h.update(_code_fingerprint().encode())
    h.update(b"\0lane\0")
    h.update(_program_text(engine.access_program).encode())
    h.update(b"\0")
    h.update(_program_text(engine.execute_program).encode())
    h.update(b"\0")
    h.update(repr((
        qlay.num_load, qlay.num_store, qlay.num_index,
    )).encode())
    return h.hexdigest()


def clear_cache() -> None:
    """Drop every cached stepper and reset the counters (tests)."""
    _CACHE.clear()
    _UNSUPPORTED.clear()
    stats.hits = stats.misses = stats.compiles = 0
    stats.evictions = stats.unsupported = 0


def cached_artifacts() -> list[LaneArtifact]:
    """Current cache contents, least- to most-recently used."""
    return list(_CACHE.values())


def get_or_compile(engine) -> LaneArtifact | None:
    """Return the compiled lane stepper for ``engine``'s program pair,
    emitting and compiling on first use; ``None`` when the program
    cannot be specialized (the caller falls back to the interpreted
    loop)."""
    key = artifact_key(engine)
    if key in _UNSUPPORTED:
        return None
    artifact = _CACHE.get(key)
    if artifact is not None:
        stats.hits += 1
        _CACHE.move_to_end(key)
        return artifact
    stats.misses += 1
    from .emitter import LaneLoopEmitter, Unsupported

    try:
        source = LaneLoopEmitter(engine).generate()
    except Unsupported:
        stats.unsupported += 1
        _UNSUPPORTED.add(key)
        return None
    artifact = compile_source(key, source)
    _CACHE[key] = artifact
    while len(_CACHE) > MAX_ENTRIES:
        _CACHE.popitem(last=False)
        stats.evictions += 1
    return artifact


def compile_source(key: str, source: str) -> LaneArtifact:
    """Compile one emitted lane-stepper source into an artifact.

    The filename embeds the key prefix so cProfile attribution (and
    tracebacks) can tell generated frames apart — ``repro profile``
    folds ``<sma-batch-codegen:...>`` frames into a dedicated
    component.
    """
    from .emitter import runtime_namespace

    stats.compiles += 1
    code = compile(source, f"<sma-batch-codegen:{key[:12]}>", "exec")
    namespace = runtime_namespace()
    exec(code, namespace)
    return LaneArtifact(
        key=key, source=source, fn=namespace["__batch_lane_loop__"]
    )
