"""Flat per-instruction decode for the batch (SoA) simulator.

The batch engine steps thousands of lanes — independent machine
configurations running the *same* access/execute program pair — in
lockstep with numpy.  Because every lane shares one program, the
instruction at a given pc is a compile-time constant for the whole
array: decoding happens once here, and the engine dispatches on plain
kind tags exactly like the scalar decode caches in
:mod:`repro.core.access_processor` / :mod:`repro.core.execute_processor`.

Queue operands are resolved to a *global queue id* over the flat queue
complement (the same order :class:`repro.queues.QueueFile` builds its
``_all`` list in): ``lq0..lqN-1, sdq0.., iq0.., saq, eaq, ebq``.  The
mapping depends only on the structural configuration fields
(``num_load_queues``/``num_store_queues``/``num_index_queues``), which the
dispatch layer requires to be uniform across a lane group.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SMAConfig
from ..errors import SimulationError
from ..isa import ALU_OPS, Op, Program, Queue, Reg
from ..isa.instruction import Imm
from ..isa.operands import QueueSpace

# decoded-instruction kind tags, access program
(A_ALU, A_LDQ, A_DECBNZ, A_FROMQ, A_STADDR, A_BQ, A_BR, A_STREAM,
 A_JMP, A_HALT, A_NOP) = range(11)

# decoded-instruction kind tags, execute program
(E_ALU, E_BR, E_DECBNZ, E_JMP, E_HALT, E_NOP) = range(6)

# operand tags: ('r', reg_index) | ('i', value) | ('q', global_queue_id)
R, I, Q = "r", "i", "q"

# stream kinds (plain ints; order matches StreamKind semantics)
S_LOAD, S_STORE, S_GATHER, S_SCATTER = range(4)

# AP stall-cause ids (index into the per-lane stall-counter matrix)
AP_CAUSES = (
    "stream_slots", "stream_queue_busy", "queue_full", "memory_busy",
    "saq_full", "lod_eaq", "lod_ebq", "iq_empty",
)
C_STREAM_SLOTS, C_STREAM_QUEUE_BUSY, C_QUEUE_FULL, C_MEMORY_BUSY, \
    C_SAQ_FULL, C_LOD_EAQ, C_LOD_EBQ, C_IQ_EMPTY = range(len(AP_CAUSES))
LOD_CAUSES = (C_LOD_EAQ, C_LOD_EBQ)

# EP stall-cause ids
EP_CAUSES = ("lq_empty", "q_full")
C_LQ_EMPTY, C_Q_FULL = range(len(EP_CAUSES))


@dataclass(frozen=True)
class QueueLayout:
    """Global queue-id layout for one structural configuration."""

    num_load: int
    num_store: int
    num_index: int

    @property
    def saq(self) -> int:
        return self.num_load + self.num_store + self.num_index

    @property
    def eaq(self) -> int:
        return self.saq + 1

    @property
    def ebq(self) -> int:
        return self.saq + 2

    @property
    def total(self) -> int:
        return self.saq + 3

    def sdq(self, index: int) -> int:
        return self.num_load + index

    def iq(self, index: int) -> int:
        return self.num_load + self.num_store + index

    def resolve(self, operand: Queue) -> int:
        space = operand.space
        if space is QueueSpace.LQ:
            if operand.index >= self.num_load:
                raise SimulationError(f"queue {operand} not present")
            return operand.index
        if space is QueueSpace.SDQ:
            if operand.index >= self.num_store:
                raise SimulationError(f"queue {operand} not present")
            return self.sdq(operand.index)
        if space is QueueSpace.IQ:
            if operand.index >= self.num_index:
                raise SimulationError(f"queue {operand} not present")
            return self.iq(operand.index)
        if space is QueueSpace.SAQ:
            return self.saq
        if space is QueueSpace.EAQ:
            return self.eaq
        return self.ebq

    @classmethod
    def from_config(cls, config: SMAConfig) -> "QueueLayout":
        return cls(
            config.num_load_queues,
            config.num_store_queues,
            config.num_index_queues,
        )

    def capacities(self, config: SMAConfig) -> list[int]:
        """Per-queue capacity in global-id order for one lane config."""
        q = config.queues
        return (
            [q.load_queue_depth] * self.num_load
            + [q.store_data_depth] * self.num_store
            + [q.index_queue_depth] * self.num_index
            + [q.store_addr_depth, q.ep_to_ap_data_depth,
               q.ep_to_ap_branch_depth]
        )


def _operand(op) -> tuple:
    if isinstance(op, Reg):
        return (R, op.index)
    if isinstance(op, Imm):
        return (I, float(op.value))
    raise SimulationError(
        f"batch decode: operand {op} must be a register or immediate here"
    )


def decode_access(program: Program, layout: QueueLayout) -> list[tuple]:
    """Decode the access program into kind-tagged tuples.

    Mirrors :meth:`repro.core.access_processor.AccessProcessor._decode`,
    with queue operands flattened to global queue ids.
    """
    decoded = []
    for instr in program:
        op = instr.op
        if op in ALU_OPS:
            decoded.append((
                A_ALU, op,
                tuple(_operand(s) for s in instr.srcs),
                instr.dest.index,
            ))
        elif op is Op.HALT:
            decoded.append((A_HALT,))
        elif op is Op.NOP:
            decoded.append((A_NOP,))
        elif op is Op.JMP:
            decoded.append((A_JMP, instr.branch_target()))
        elif op in (Op.BEQZ, Op.BNEZ):
            decoded.append((
                A_BR, _operand(instr.srcs[0]), op is Op.BEQZ,
                instr.branch_target(),
            ))
        elif op is Op.DECBNZ:
            decoded.append(
                (A_DECBNZ, instr.dest.index, instr.branch_target())
            )
        elif op is Op.LDQ:
            decoded.append((
                A_LDQ, layout.resolve(instr.dest),
                _operand(instr.srcs[0]), _operand(instr.srcs[1]),
            ))
        elif op is Op.STADDR:
            data_q = instr.srcs[0]
            decoded.append((
                A_STADDR, data_q.index,
                _operand(instr.srcs[1]), _operand(instr.srcs[2]),
            ))
        elif op is Op.FROMQ:
            src = instr.srcs[0]
            if src.space is QueueSpace.EAQ:
                cause = C_LOD_EAQ
            elif src.space is QueueSpace.EBQ:
                cause = C_LOD_EBQ
            else:
                cause = C_IQ_EMPTY
            decoded.append((
                A_FROMQ, layout.resolve(src), cause, instr.dest.index,
            ))
        elif op in (Op.BQNZ, Op.BQEZ):
            decoded.append(
                (A_BQ, op is Op.BQNZ, instr.branch_target())
            )
        elif op in (Op.STREAMLD, Op.GATHER, Op.STREAMST, Op.SCATTER):
            decoded.append(_decode_stream(instr, layout))
        else:  # pragma: no cover - exhaustive over ACCESS_OPS
            raise SimulationError(f"unhandled AP op {op}")
    return decoded


def _decode_stream(instr, layout: QueueLayout) -> tuple:
    """``(A_STREAM, skind, target, data, index, base, stride, count,
    consumed_qids)`` — queue fields are global ids or -1, operand fields
    ``(tag, payload)`` pairs, ``consumed_qids`` the source-queue ids the
    AP's busy check probes (in operand order)."""
    op = instr.op
    if op is Op.STREAMLD:
        return (
            A_STREAM, S_LOAD, layout.resolve(instr.dest), -1, -1,
            _operand(instr.srcs[0]), _operand(instr.srcs[1]),
            _operand(instr.srcs[2]), (),
        )
    if op is Op.GATHER:
        iq = layout.resolve(instr.srcs[0])
        return (
            A_STREAM, S_GATHER, layout.resolve(instr.dest), -1, iq,
            _operand(instr.srcs[1]), None, _operand(instr.srcs[2]),
            (iq,),
        )
    if op is Op.STREAMST:
        dq = layout.resolve(instr.srcs[0])
        return (
            A_STREAM, S_STORE, -1, dq, -1,
            _operand(instr.srcs[1]), _operand(instr.srcs[2]),
            _operand(instr.srcs[3]), (dq,),
        )
    # SCATTER
    dq = layout.resolve(instr.srcs[0])
    iq = layout.resolve(instr.srcs[1])
    return (
        A_STREAM, S_SCATTER, -1, dq, iq,
        _operand(instr.srcs[2]), None, _operand(instr.srcs[3]),
        (dq, iq),
    )


def decode_execute(program: Program, layout: QueueLayout) -> list[tuple]:
    """Decode the execute program (mirrors
    :meth:`repro.core.execute_processor.ExecuteProcessor._decode`)."""
    decoded = []
    for instr in program:
        op = instr.op
        if op is Op.HALT:
            decoded.append((E_HALT,))
        elif op is Op.NOP:
            decoded.append((E_NOP,))
        elif op is Op.JMP:
            decoded.append((E_JMP, instr.branch_target()))
        elif op in (Op.BEQZ, Op.BNEZ):
            decoded.append((
                E_BR, _operand(instr.srcs[0]), op is Op.BEQZ,
                instr.branch_target(),
            ))
        elif op is Op.DECBNZ:
            decoded.append(
                (E_DECBNZ, instr.dest.index, instr.branch_target())
            )
        else:
            assert op in ALU_OPS, f"unhandled EP op {op}"
            srcs = tuple(
                (Q, layout.resolve(s)) if isinstance(s, Queue)
                else _operand(s)
                for s in instr.srcs
            )
            if isinstance(instr.dest, Queue):
                decoded.append(
                    (E_ALU, op, srcs, layout.resolve(instr.dest), None)
                )
            else:
                decoded.append((E_ALU, op, srcs, None, instr.dest.index))
    return decoded
