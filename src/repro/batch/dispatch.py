"""Route harness jobs through the SoA batch engine.

The batch engine runs *lane groups*: jobs that share everything
structural (kernel instance, program pair, queue complement, memory
size) and differ only in timing parameters (latency, bank count, bank
busy time, queue depths).  This module decides which jobs qualify
(:func:`batch_eligible`), partitions a job list into maximal lane
groups (:func:`plan_groups`), and runs a group end to end —
staging one shared memory image, stepping all lanes in lockstep, and
assembling per-job result dicts with the exact key set and value types
of the scalar path (:func:`repro.harness.jobs._run_sma`), so cached
batch results and cached scalar results are interchangeable.
"""

from __future__ import annotations

import numpy as np

from ..config import SMAConfig
from ..harness.jobs import (
    Job,
    _check_outputs,
    _instantiated,
    _lowered_sma,
    _metrics_armed,
)
from ..harness.runner import _fit_memory
from .engine import LaneEngine

#: job.machine values the batch engine can execute
_BATCH_MACHINES = {"sma": True, "sma-nostream": False}


def _effective_config(job: Job) -> SMAConfig:
    return job.sma_config or SMAConfig()


def batch_eligible(job: Job) -> bool:
    """Can this job run as a batch lane bit-identically?

    The engine models the default timing envelope — one memory port,
    one stream issue per cycle, fault-free memory — and produces plain
    result dicts, so jobs needing the metrics capture layer stay on the
    scalar path.
    """
    if job.machine not in _BATCH_MACHINES:
        return False
    cfg = _effective_config(job)
    if cfg.faults is not None:
        return False
    if cfg.memory.accepts_per_cycle != 1:
        return False
    if cfg.stream_issue_per_cycle != 1:
        return False
    if _metrics_armed():
        return False
    return True


def _group_key(job: Job) -> tuple:
    """Jobs with equal keys may share one lane group: same decoded
    program pair, queue-id layout, and staged memory image."""
    cfg = _effective_config(job)
    return (
        job.machine,
        job.kernel,
        job.n,
        job.seed,
        cfg.max_streams,
        cfg.num_load_queues,
        cfg.num_store_queues,
        cfg.num_index_queues,
        cfg.memory.size,
    )


def plan_groups(jobs: list[Job]) -> list[list[int]]:
    """Partition eligible job indices into lane groups (index lists into
    ``jobs``); callers run ineligible jobs through the scalar path."""
    groups: dict[tuple, list[int]] = {}
    for i, job in enumerate(jobs):
        if batch_eligible(job):
            groups.setdefault(_group_key(job), []).append(i)
    return list(groups.values())


def run_group(jobs: list[Job]) -> list[dict]:
    """Run one lane group (all jobs must share a group key); returns one
    result dict per job, aligned with the input order."""
    first = jobs[0]
    use_streams = _BATCH_MACHINES[first.machine]
    kernel, inputs = _instantiated(first.kernel, first.n, first.seed)
    lowered = _lowered_sma(
        first.kernel, first.n, first.seed, use_streams
    )
    layout = lowered.layout

    configs = []
    for job in jobs:
        cfg = _effective_config(job)
        configs.append(
            cfg.__class__(
                **{
                    **cfg.__dict__,
                    "memory": _fit_memory(cfg.memory, layout),
                }
            )
        )
    msize = configs[0].memory.size

    # stage the shared memory image exactly the way SMAMachine +
    # _load_inputs build it: zeros, program data segments, input
    # arrays.  Only the prefix the kernel touches is materialized
    # (the logical size stays msize; the engine grows lanes on demand
    # if a program ever addresses past the staged footprint).
    touched = layout.end + 16
    for program in (lowered.access_program, lowered.execute_program):
        for base, values in program.data:
            touched = max(touched, base + len(values))
    image = np.zeros(min(touched, msize), dtype=np.float64)
    for program in (lowered.access_program, lowered.execute_program):
        for base, values in program.data:
            image[base : base + len(values)] = np.asarray(
                values, dtype=np.float64
            )
    for decl in kernel.arrays:
        arr = np.asarray(inputs[decl.name], dtype=np.float64)
        base = layout.base(decl.name)
        image[base : base + arr.shape[0]] = arr

    engine = LaneEngine(
        lowered.access_program,
        lowered.execute_program,
        configs,
        image,
        logical_size=msize,
    )
    outcome = engine.run()

    machine_name = "sma" if lowered.uses_streams else "sma-nostream"
    info = lowered.info
    static = {
        "load_streams": info.load_streams,
        "store_streams": info.store_streams,
        "gather_streams": info.gather_streams,
        "scatter_streams": info.scatter_streams,
        "carried_refs": info.carried_refs,
        "computed_refs": info.computed_refs,
    }
    results = []
    for i, job in enumerate(jobs):
        if job.check:
            outputs = {
                decl.name: outcome.dump_array(
                    i, layout.base(decl.name), decl.size
                )
                for decl in kernel.arrays
            }
            _check_outputs(job, machine_name, outputs)
        results.append({**outcome.stats.lane_dict(i), **static})
    return results


def run_batch(jobs: list[Job]) -> dict[int, dict]:
    """Run every eligible job in ``jobs`` through the batch engine.

    Returns ``{index: result_dict}`` for the jobs that ran; indices not
    in the mapping were ineligible and belong on the scalar path.
    """
    out: dict[int, dict] = {}
    for group in plan_groups(jobs):
        for idx, res in zip(group, run_group([jobs[i] for i in group])):
            out[idx] = res
    return out
