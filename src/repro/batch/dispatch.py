"""Route harness jobs through the SoA batch engine.

The batch engine runs *lane groups*: jobs that share everything
structural (kernel instance, program pair, queue complement, memory
size) and differ only in timing parameters (latency, bank count, bank
busy time, queue depths).  This module decides which jobs qualify
(:func:`batch_eligible`), partitions a job list into maximal lane
groups (:func:`plan_groups`), and runs a group end to end —
staging one shared memory image, stepping all lanes in lockstep, and
assembling per-job result dicts with the exact key set and value types
of the scalar path (:func:`repro.harness.jobs._run_sma`), so cached
batch results and cached scalar results are interchangeable.
"""

from __future__ import annotations

import numpy as np

from ..config import SMAConfig
from ..harness.jobs import (
    Job,
    _check_outputs,
    _instantiated,
    _lowered_sma,
    _metrics_armed,
)
from ..harness.runner import _fit_memory
from .engine import LaneEngine

#: job.machine values the batch engine can execute
_BATCH_MACHINES = {"sma": True, "sma-nostream": False}


def _effective_config(job: Job) -> SMAConfig:
    return job.sma_config or SMAConfig()


def batch_eligible(job: Job) -> bool:
    """Can this job run as a batch lane bit-identically?

    The engine models the default timing envelope — one memory port,
    one stream issue per cycle, fault-free memory — and produces plain
    result dicts, so jobs needing the metrics capture layer stay on the
    scalar path.
    """
    return not _metrics_armed() and _eligible_config(job)


def _eligible_config(job: Job) -> bool:
    """:func:`batch_eligible` minus the (job-independent) metrics-layer
    check, which bulk planners hoist out of their per-job loop."""
    if job.machine not in _BATCH_MACHINES:
        return False
    cfg = _effective_config(job)
    if cfg.faults is not None:
        return False
    if cfg.speculation is not None and cfg.speculation.enabled:
        # the speculative AP (PR 8) runs ahead past LOD stalls; the
        # batch engine has no shadow state, so such a lane would
        # silently report non-speculative timing.  A present-but-
        # disabled config builds no engine on the scalar path either,
        # so it stays eligible.
        return False
    if cfg.memory.accepts_per_cycle != 1:
        return False
    if cfg.stream_issue_per_cycle != 1:
        return False
    return True


def _group_key(job: Job) -> tuple:
    """Jobs with equal keys may share one lane group: same decoded
    program pair, queue-id layout, and staged memory image."""
    cfg = _effective_config(job)
    return (
        job.machine,
        job.kernel,
        job.n,
        job.seed,
        job.lod_variant,
        cfg.max_streams,
        cfg.num_load_queues,
        cfg.num_store_queues,
        cfg.num_index_queues,
        cfg.memory.size,
    )


def plan_groups(jobs: list[Job]) -> list[list[int]]:
    """Partition eligible job indices into lane groups (index lists into
    ``jobs``); callers run ineligible jobs through the scalar path."""
    if _metrics_armed():
        return []
    groups: dict[tuple, list[int]] = {}
    for i, job in enumerate(jobs):
        if _eligible_config(job):
            groups.setdefault(_group_key(job), []).append(i)
    return list(groups.values())


def _residual_key(cfg: SMAConfig) -> tuple:
    """Everything that distinguishes lanes EXCEPT queue capacities.
    Lanes sharing a residual key form one saturation-collapse class:
    they can only differ in how deep their queues are."""
    return (
        repr(cfg.memory),
        cfg.max_streams,
        cfg.stream_issue_per_cycle,
        cfg.num_load_queues,
        cfg.num_store_queues,
        cfg.num_index_queues,
    )


def _collapse_classes(
    configs, qlay
) -> list[tuple[int, list[int], np.ndarray]]:
    """Partition lane positions into saturation classes.

    Returns ``(probe, members, caps)`` triples where ``probe`` is a
    lane whose per-queue capacities componentwise dominate every
    ``member`` (``caps`` holds the members' capacity rows).  A lane
    whose queues never fill behaves bit-identically at any deeper
    depth, so one probe run can serve every member the planner proves
    unsaturated (see :func:`run_group`).  Classes without a dominating
    member, and singletons, yield no triple.
    """
    groups: dict[tuple, list[int]] = {}
    for i, cfg in enumerate(configs):
        groups.setdefault(_residual_key(cfg), []).append(i)
    classes = []
    for members in groups.values():
        if len(members) < 2:
            continue
        caps = np.array(
            [qlay.capacities(configs[i]) for i in members], dtype=np.int64
        )
        cmax = caps.max(axis=0)
        dominating = np.flatnonzero((caps == cmax).all(axis=1))
        if dominating.size == 0:
            continue  # no member dominates: simulate everyone
        probe = members[int(dominating[0])]
        classes.append((probe, members, caps))
    return classes


def run_group(jobs: list[Job], *, compiled: bool | None = None) -> list[dict]:
    """Run one lane group (all jobs must share a group key); returns one
    result dict per job, aligned with the input order.

    ``compiled`` mirrors :meth:`LaneEngine.run`: ``None`` uses the
    compiled lane stepper when the program specializes (falling back to
    the interpreted engine), ``False`` forces the interpreter, ``True``
    demands the compiled path.  When the compiled stepper is available
    the group is additionally *saturation-collapsed*: for each set of
    lanes differing only in queue depths, the deepest lane runs as a
    probe with queue high-water tracking on (alongside the shallow
    lanes suspected of saturating, in one cohort engine), and every
    lane whose depths strictly exceed the observed peaks provably
    reproduces the probe bit-for-bit and is served from its result
    without running.
    """
    first = jobs[0]
    use_streams = _BATCH_MACHINES[first.machine]
    kernel, inputs = _instantiated(first.kernel, first.n, first.seed)
    lowered = _lowered_sma(
        first.kernel, first.n, first.seed, use_streams,
        first.lod_variant,
    )
    layout = lowered.layout

    configs = []
    for job in jobs:
        cfg = _effective_config(job)
        fit = _fit_memory(cfg.memory, layout)
        if fit is not cfg.memory:
            cfg = cfg.__class__(**{**cfg.__dict__, "memory": fit})
        configs.append(cfg)
    msize = configs[0].memory.size

    # stage the shared memory image exactly the way SMAMachine +
    # _load_inputs build it: zeros, program data segments, input
    # arrays.  Only the prefix the kernel touches is materialized
    # (the logical size stays msize; the engine grows lanes on demand
    # if a program ever addresses past the staged footprint).
    touched = layout.end + 16
    for program in (lowered.access_program, lowered.execute_program):
        for base, values in program.data:
            touched = max(touched, base + len(values))
    image = np.zeros(min(touched, msize), dtype=np.float64)
    for program in (lowered.access_program, lowered.execute_program):
        for base, values in program.data:
            image[base : base + len(values)] = np.asarray(
                values, dtype=np.float64
            )
    for decl in kernel.arrays:
        arr = np.asarray(inputs[decl.name], dtype=np.float64)
        base = layout.base(decl.name)
        image[base : base + arr.shape[0]] = arr

    def build_engine(idx: list[int]) -> LaneEngine:
        return LaneEngine(
            lowered.access_program,
            lowered.execute_program,
            [configs[i] for i in idx],
            image,
            logical_size=msize,
        )

    # job position -> (outcome, lane index within that outcome)
    source: list[tuple | None] = [None] * len(jobs)

    collapsed = 0
    if compiled is None or compiled:
        collapsed = _run_collapsed(
            jobs, configs, build_engine, source, compiled
        )
    if any(s is None for s in source):
        idx = [i for i, s in enumerate(source) if s is None]
        engine = build_engine(idx)
        outcome = engine.run(compiled=compiled)
        for lane, i in enumerate(idx):
            source[i] = (outcome, lane)

    machine_name = "sma" if lowered.uses_streams else "sma-nostream"
    info = lowered.info
    static = {
        "load_streams": info.load_streams,
        "store_streams": info.store_streams,
        "gather_streams": info.gather_streams,
        "scatter_streams": info.scatter_streams,
        "carried_refs": info.carried_refs,
        "computed_refs": info.computed_refs,
    }
    results = []
    lane_cache: dict[tuple[int, int], dict] = {}
    for i, job in enumerate(jobs):
        outcome, lane = source[i]
        if job.check:
            outputs = {
                decl.name: outcome.dump_array(
                    lane, layout.base(decl.name), decl.size
                )
                for decl in kernel.arrays
            }
            _check_outputs(job, machine_name, outputs)
        ck = (id(outcome), lane)
        base = lane_cache.get(ck)
        if base is None:
            base = outcome.stats.lane_dict(lane)
            lane_cache[ck] = base
        results.append(
            {
                **base,
                "ap_stalls": dict(base["ap_stalls"]),
                "ep_stalls": dict(base["ep_stalls"]),
                **static,
            }
        )
    return results


# Queue-capacity threshold below which a collapse-class member is
# *suspected* of saturating and joins the probe engine up front.  Pure
# performance heuristic: a wrong guess only moves a lane between
# engines (an unsuspected-but-saturated member falls through to the
# caller's residual engine; a suspected-but-unsaturated member is
# simulated redundantly), never changes any result.
_COHORT_CUTOFF = 16


def _run_collapsed(
    jobs, configs, build_engine, source, compiled: bool | None
) -> int:
    """Saturation-collapse phase of :func:`run_group`.

    Runs a single *cohort* engine holding, per collapse class, the
    probe lane (queue high-water tracking on) plus every member
    suspected of saturating — those shallow (``<= _COHORT_CUTOFF``) on
    some queue axis the class actually sweeps.  Cohort lanes are served
    from their own simulation; every remaining member whose capacities
    strictly exceed the probe's observed peaks is served from the
    probe's outcome.  Members the proof doesn't cover stay unfilled and
    run in the caller's residual engine.  Returns the number of
    collapsed (probe-served) lanes; on any obstacle (no classes,
    program not specializable) fills nothing.

    Folding the suspected-saturated members into the probe engine pays
    the fixed per-round stepper overhead once instead of twice: on the
    benchmark grid the residual engine is typically empty.

    Soundness: a full-queue check can only fire on a lane whose count
    has reached its cap, so a probe whose peaks stay strictly below its
    caps ran exactly as if its queues were unbounded; a member whose
    caps strictly exceed those peaks replays the same unbounded run.
    """
    from .cache import get_or_compile
    from .decode import QueueLayout

    qlay = QueueLayout.from_config(configs[0])
    classes = _collapse_classes(configs, qlay)
    if not classes:
        return 0
    cohort: list[int] = []
    cohort_lane: list[dict[int, int]] = []  # per class: member -> lane
    for probe, members, caps in classes:
        varying = caps.max(axis=0) > caps.min(axis=0)
        lanes: dict[int, int] = {}
        for m, row in zip(members, caps):
            if m == probe or (
                varying.any() and row[varying].min() <= _COHORT_CUTOFF
            ):
                lanes[m] = len(cohort)
                cohort.append(m)
        cohort_lane.append(lanes)
    engine = build_engine(cohort)
    if get_or_compile(engine) is None:
        return 0  # not specializable: peaks would never be tracked
    engine.track_saturation = True
    outcome = engine.run(compiled=compiled)
    collapsed = 0
    for (probe, members, caps), lanes in zip(classes, cohort_lane):
        for m, lane in lanes.items():
            if source[m] is None:
                source[m] = (outcome, lane)
        peaks = engine.q_peak[lanes[probe]]
        if not (peaks < engine.q_cap[lanes[probe]]).all():
            continue  # probe may have been capped: simulate members
        unsaturated = (caps > peaks[None, :]).all(axis=1)
        for m, ok in zip(members, unsaturated):
            if ok and source[m] is None:
                source[m] = (outcome, lanes[probe])
                collapsed += 1
    return collapsed


def run_batch(
    jobs: list[Job],
    *,
    workers: int = 1,
    compiled: bool | None = None,
    on_result=None,
) -> dict[int, dict]:
    """Run every eligible job in ``jobs`` through the batch engine.

    Returns ``{index: result_dict}`` for the jobs that ran; indices not
    in the mapping were ineligible and belong on the scalar path.

    ``workers > 1`` shards lane groups across a fingerprint-seeded
    :class:`~concurrent.futures.ProcessPoolExecutor` (the same worker
    bootstrap the scalar sweep pool uses), splitting each group into
    per-worker sub-batches along saturation-class boundaries so the
    collapse planner keeps one probe per class.  ``compiled`` is passed
    through to :func:`run_group`.  ``on_result(index, result)``, when
    given, is invoked as each job's result lands (driver process),
    letting callers flush incrementally in both modes.
    """
    out: dict[int, dict] = {}

    def land(idx: int, res: dict) -> None:
        out[idx] = res
        if on_result is not None:
            on_result(idx, res)

    groups = plan_groups(jobs)
    if workers <= 1:
        for group in groups:
            for idx, res in zip(
                group, run_group([jobs[i] for i in group],
                                 compiled=compiled)
            ):
                land(idx, res)
        return out

    from concurrent.futures import ProcessPoolExecutor, as_completed

    from ..harness.parallel import _pool_init, code_fingerprint

    shards: list[list[int]] = []
    for group in groups:
        shards.extend(_shard_group(jobs, group, workers))
    if not shards:
        return out
    with ProcessPoolExecutor(
        max_workers=min(workers, len(shards)),
        initializer=_pool_init,
        initargs=(None, code_fingerprint()),
    ) as pool:
        futures = {
            pool.submit(
                _run_shard, [jobs[i] for i in shard], compiled
            ): shard
            for shard in shards
        }
        for future in as_completed(futures):
            shard = futures[future]
            for idx, res in zip(shard, future.result()):
                land(idx, res)
    return out


def _run_shard(jobs: list[Job], compiled: bool | None) -> list[dict]:
    """Pool-worker entry: one sub-batch of a lane group, results in
    input order (module-level so it pickles)."""
    return run_group(jobs, compiled=compiled)


def _shard_group(
    jobs: list[Job], group: list[int], workers: int
) -> list[list[int]]:
    """Split one lane group into at most ``workers`` sub-batches,
    keeping each saturation class whole so sharding never costs the
    collapse planner a probe."""
    if len(group) <= 1 or workers <= 1:
        return [group]
    classes: dict[tuple, list[int]] = {}
    for i in group:
        key = _residual_key(_effective_config(jobs[i]))
        classes.setdefault(key, []).append(i)
    buckets: list[list[int]] = [[] for _ in range(workers)]
    # largest classes first, always into the lightest bucket
    for members in sorted(classes.values(), key=len, reverse=True):
        min(buckets, key=len).extend(members)
    return [b for b in buckets if b]
