"""Program-specialized emitter for the SoA batch engine.

:class:`LaneEngine` interprets: every cycle it re-groups lanes by pc,
re-reads the same decoded tuples, re-branches on operand tags, and
probes queues and components the program can never touch.  The emitter
here walks the decoded access/execute program pair *once* per lane
group and writes out the exact numpy lane-stepper this program needs —
the same fusion PR 6's scalar emitter applied to one machine, lifted to
the whole lane axis:

* per-pc interpreted dispatch becomes a table of per-instruction block
  functions with opcodes, operands, queue ids, stall-cause ids and
  branch targets baked in as literals (ALU ops become inline numpy
  expressions with the exact CPython-float semantics of
  ``engine._alu_eval``);
* statically dead probes are elided — no store-unit body without a
  ``staddr``, no stream-engine body without a stream op, no completion
  delivery or pending-ring bookkeeping for a program that never issues
  a load, no gather/scatter eligibility matrix for purely strided
  streams, occupancy summed over only the load queues the program can
  fill;
* per-queue *plane views* (``q_count[:, qid]`` …) are hoisted to
  function locals once, so every hot queue probe is a 1-D gather
  instead of a 2-D fancy index, and scalar liveness counters
  (``ap_live``/``ep_live``/``pend_live``) skip whole component steps
  once they go quiet;
* each stall site knows its cause statically, so the stall/first-seen
  bookkeeping — including the LOD episode-entry check, which only LOD
  sites emit — is fused into the block, and the per-lane idle-jump
  replay in the loop tail picks those causes up in closed form exactly
  as the interpreter does.

Cold paths that run at most once per stream per lane (descriptor
creation, descriptor compaction, memory growth, the deadlock
diagnostic) delegate back to the engine instance; they mutate the same
arrays the generated locals alias, so the compiled loop and the
interpreter share one state representation and one
:class:`~repro.batch.engine.BatchOutcome` shape.

The output is bit-identical to ``LaneEngine.run()`` — every
``lane_dict()`` and the final memory image — property-tested in
``tests/test_batch_codegen.py``.  Programs the emitter cannot
specialize raise :class:`Unsupported`; the cache layer
(:mod:`repro.batch.cache`) negative-caches them and ``run()`` falls
back to the interpreted loop (see ARCHITECTURE section 21 for the full
contract).
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from ..errors import SimulationError
from ..isa import Op
from . import decode as D

#: emission guard: a pathological program would expand into an
#: unreasonably large module; the interpreter handles it instead
MAX_PROGRAM_LEN = 2000


class Unsupported(Exception):
    """The program cannot be specialized; fall back to the interpreter."""


# -- runtime helpers (vectorized twins of the interpreter's) -------------

_BIG = np.int64(1) << 62


def _div(a, b):
    if np.any(b == 0):
        raise ZeroDivisionError("DIV by zero in simulated program")
    return a / b


def _mod(a, b):
    if np.any(b == 0):
        raise ZeroDivisionError("MOD by zero in simulated program")
    r = np.fmod(a, b)
    fix = (r != 0) & ((r < 0) != (b < 0))
    return np.where(fix, r + b, r)


def _sqrt(a):
    if np.any(a < 0):
        raise ValueError("math domain error")
    return np.sqrt(a)


def _addr(values):
    """Vectorized twin of ``LaneEngine._as_addr``."""
    addr = values.astype(np.int64)
    if np.any(addr != values):
        bad = values[addr != values][0]
        raise SimulationError(f"non-integral address {bad!r}")
    return addr


def runtime_namespace() -> dict:
    """Fresh globals for ``exec``-ing one generated lane stepper.

    Same contract as :func:`repro.codegen.runtime.runtime_namespace`:
    a generated body may only reach machine state through its ``engine``
    parameter and these process-wide-stable helpers, so artifacts are
    reusable across lane groups with the same key.
    """
    return {
        "np": np,
        "SimulationError": SimulationError,
        "_BIG": _BIG,
        "_div": _div,
        "_mod": _mod,
        "_sqrt": _sqrt,
        "_addr": _addr,
    }


def _alu_np_expr(op: Op, a: list[str]) -> str:
    """Numpy expression with semantics identical to
    ``engine._alu_eval`` (which itself mirrors ``ALU_FUNCS``).  ``a``
    holds operand sub-expressions (plain temps or float literals)."""

    def need(k: int) -> None:
        if len(a) != k:
            raise Unsupported(f"{op} with {len(a)} operands")

    if op is Op.ADD:
        need(2)
        return f"({a[0]} + {a[1]})"
    if op is Op.SUB:
        need(2)
        return f"({a[0]} - {a[1]})"
    if op is Op.MUL:
        need(2)
        return f"({a[0]} * {a[1]})"
    if op is Op.DIV:
        need(2)
        return f"_div({a[0]}, {a[1]})"
    if op is Op.MOD:
        need(2)
        return f"_mod({a[0]}, {a[1]})"
    if op is Op.MIN:  # python min(a, b): b if b < a else a
        need(2)
        return f"np.where({a[1]} < {a[0]}, {a[1]}, {a[0]})"
    if op is Op.MAX:  # python max(a, b): b if b > a else a
        need(2)
        return f"np.where({a[1]} > {a[0]}, {a[1]}, {a[0]})"
    if op is Op.ABS:
        need(1)
        return f"np.abs({a[0]})"
    if op is Op.NEG:
        need(1)
        return f"(-({a[0]}))"
    if op is Op.SQRT:
        need(1)
        return f"_sqrt({a[0]})"
    if op is Op.FLOOR:
        need(1)
        return f"np.floor({a[0]})"
    if op is Op.MOV:
        need(1)
        return f"{a[0]}"
    if op is Op.CMPLT:
        need(2)
        return f"np.where({a[0]} < {a[1]}, 1.0, 0.0)"
    if op is Op.CMPLE:
        need(2)
        return f"np.where({a[0]} <= {a[1]}, 1.0, 0.0)"
    if op is Op.CMPEQ:
        need(2)
        return f"np.where({a[0]} == {a[1]}, 1.0, 0.0)"
    if op is Op.CMPNE:
        need(2)
        return f"np.where({a[0]} != {a[1]}, 1.0, 0.0)"
    if op is Op.SEL:
        need(3)
        return f"np.where({a[0]} != 0, {a[1]}, {a[2]})"
    raise Unsupported(f"ALU op {op} has no vectorized emission")


class _Writer:
    def __init__(self):
        self.lines: list[str] = []
        self.depth = 0

    def w(self, line: str = "") -> None:
        self.lines.append("    " * self.depth + line if line else "")

    __call__ = w

    @contextmanager
    def block(self, header: str):
        self.w(header)
        self.depth += 1
        yield
        self.depth -= 1


class LaneLoopEmitter:
    """Emit ``__batch_lane_loop__(engine, max_cycles, deadlock_window)``
    for one decoded program pair + queue layout."""

    def __init__(self, engine):
        self.engine = engine
        self.ap = engine.ap_prog
        self.ep = engine.ep_prog
        self.qlay = engine.qlay
        if len(self.ap) == 0 or len(self.ep) == 0:
            raise Unsupported("empty program")
        if len(self.ap) + len(self.ep) > MAX_PROGRAM_LEN:
            raise Unsupported("program too large to specialize")

        # -- static analysis over the decoded entries -------------------
        self.views: set[int] = set()       # queues probed by literal id
        self.stream_kinds: set[int] = set()
        self.staddr_dqis: set[int] = set()
        self.filled_loads: set[int] = set()  # load queues a fill targets
        self.has_ldq = False
        for entry in self.ap:
            kind = entry[0]
            if kind == D.A_LDQ:
                self.has_ldq = True
                self.views.add(entry[1])
                if entry[1] < self.qlay.num_load:
                    self.filled_loads.add(entry[1])
            elif kind == D.A_FROMQ:
                self.views.add(entry[1])
            elif kind == D.A_STADDR:
                self.staddr_dqis.add(entry[1])
                self.views.add(self.qlay.saq)
            elif kind == D.A_BQ:
                self.views.add(self.qlay.ebq)
            elif kind == D.A_STREAM:
                self.stream_kinds.add(entry[1])
                if entry[2] >= 0 and entry[2] < self.qlay.num_load:
                    self.filled_loads.add(entry[2])
            elif kind not in (
                D.A_ALU, D.A_DECBNZ, D.A_BR, D.A_JMP, D.A_HALT, D.A_NOP,
            ):  # pragma: no cover - exhaustive over decode tags
                raise Unsupported(f"unknown AP kind tag {kind}")
        for entry in self.ep:
            kind = entry[0]
            if kind == D.E_ALU:
                for tag, payload in entry[2]:
                    if tag == D.Q:
                        self.views.add(payload)
                if entry[3] is not None:
                    self.views.add(entry[3])
            elif kind not in (
                D.E_BR, D.E_DECBNZ, D.E_JMP, D.E_HALT, D.E_NOP,
            ):  # pragma: no cover - exhaustive over decode tags
                raise Unsupported(f"unknown EP kind tag {kind}")
        self.has_stream = bool(self.stream_kinds)
        self.has_staddr = bool(self.staddr_dqis)
        # the single dq every STADDR names, or None when they diverge
        self.single_dq = (
            self.qlay.sdq(next(iter(self.staddr_dqis)))
            if len(self.staddr_dqis) == 1 else None
        )
        if self.single_dq is not None:
            self.views.add(self.single_dq)
        producing = self.stream_kinds & {D.S_LOAD, D.S_GATHER}
        self.has_pend = self.has_ldq or bool(producing)
        self.uses_memory = (
            self.has_pend or self.has_staddr
            or bool(self.stream_kinds & {D.S_STORE, D.S_SCATTER})
        )

    # -- operand / fragment helpers -------------------------------------

    def _src(self, operand, regs: str, lanes: str = "lanes") -> str:
        tag, payload = operand
        if tag == D.R:
            return f"{regs}[{lanes}, {payload}]"
        if tag == D.I:
            val = float(payload)
            if val != val or val in (float("inf"), float("-inf")):
                raise Unsupported("non-finite immediate")
            return repr(val)
        raise Unsupported(f"operand tag {tag!r}")

    def _addr_expr(self, a, b, regs: str) -> str:
        """``_as_addr(read(a) + read(b))`` with immediate folding."""
        if a[0] == D.I and b[0] == D.I:
            val = float(a[1]) + float(b[1])
            if val != int(val):
                return (
                    "_addr(np.full(lanes.size, "
                    f"{val!r}, dtype=np.float64))"
                )
            return (
                f"np.full(lanes.size, {int(val)}, dtype=np.int64)"
            )
        ea = self._src(a, regs)
        eb = self._src(b, regs)
        if b[0] == D.I and float(b[1]) == 0.0:
            return f"_addr({ea})"
        if a[0] == D.I and float(a[1]) == 0.0:
            return f"_addr({eb})"
        return f"_addr({ea} + {eb})"

    def _emit_check_addr(self, w: _Writer, addr: str) -> None:
        """Inline bounds probe; the rare out-of-range / growth path
        delegates to the engine (which raises the exact message or
        reallocates), then refreshes the local ``mem`` alias."""
        # scalar reductions only; addr >= msize implies >= alloc, so
        # one comparison routes both the raise and the growth path to
        # the engine delegate
        with w.block(
            f"if int({addr}.min(initial=0)) < 0 "
            f"or int({addr}.max(initial=-1)) >= engine.alloc:"
        ):
            w(f"engine._check_addr({addr})")
            w("mem = engine.mem")

    def _emit_ap_stall(
        self, w: _Writer, stalled_expr: str, cause: int
    ) -> None:
        w(f"_nf = {stalled_expr}")
        with w.block("if _nf.size:"):
            w(f"s_apst[_nf, {cause}] += 1")
            w(f"_f1 = s_apfirst[_nf, {cause}] == _BIG")
            with w.block("if _f1.any():"):
                w("_ff = _nf[_f1]")
                w(f"s_apfirst[_ff, {cause}] = now[_ff]")
            if cause in D.LOD_CAUSES:
                w(f"_en = ap_stalled[_nf] != {cause}")
                w("s_lod[_nf[_en]] += 1")
            w(f"ap_stalled[_nf] = {cause}")

    def _emit_ep_stall(
        self, w: _Writer, stalled_expr: str, cause: int
    ) -> None:
        w(f"_nf = {stalled_expr}")
        with w.block("if _nf.size:"):
            w(f"s_epst[_nf, {cause}] += 1")
            w(f"_f1 = s_epfirst[_nf, {cause}] == _BIG")
            with w.block("if _f1.any():"):
                w("_ff = _nf[_f1]")
                w(f"s_epfirst[_ff, {cause}] = now[_ff]")
            w(f"ep_stalled[_nf] = {cause}")

    def _emit_gate(
        self,
        w: _Writer,
        mask: str,
        side: str,
        cause: int,
        extras: tuple[str, ...] = (),
    ) -> None:
        """Filter ``lanes`` by boolean ``mask``, charging stall
        bookkeeping to the failing lanes.  The all-pass round — the hot
        case at steady state — costs one reduction and no index ops;
        ``extras`` are lane-aligned locals filtered alongside."""
        with w.block(f"if not {mask}.all():"):
            stall = (
                self._emit_ap_stall if side == "ap"
                else self._emit_ep_stall
            )
            stall(w, f"lanes[~{mask}]", cause)
            w(f"lanes = lanes[{mask}]")
            with w.block("if lanes.size == 0:"):
                w("return")
            for name in extras:
                w(f"{name} = {name}[{mask}]")

    def _emit_ap_retire(self, w: _Writer, new_pc: str | None) -> None:
        w("s_apinstr[lanes] += 1")
        w("ap_stalled[lanes] = -1")
        if new_pc is None:
            w("ap_pc[lanes] += 1")
        else:
            w(f"ap_pc[lanes] = {new_pc}")
        w("progress[lanes] = True")

    def _emit_ep_retire(self, w: _Writer, new_pc: str | None) -> None:
        w("s_epinstr[lanes] += 1")
        w("ep_stalled[lanes] = -1")
        if new_pc is None:
            w("ep_pc[lanes] += 1")
        else:
            w(f"ep_pc[lanes] = {new_pc}")
        w("progress[lanes] = True")

    def _ready_expr(self, q: int, lanes: str = "lanes") -> str:
        return (
            f"(q{q}c[{lanes}] > 0) "
            f"& (q{q}f[{lanes}, q{q}h[{lanes}]] <= now[{lanes}])"
        )

    def _emit_pop(self, w: _Writer, q: int, dest: str, tmp: str) -> None:
        w(f"{tmp} = q{q}h[lanes]")
        w(f"{dest} = q{q}v[lanes, {tmp}]")
        w(f"q{q}h[lanes] = ({tmp} + 1) % q{q}cap[lanes]")
        w(f"q{q}c[lanes] -= 1")

    def _emit_put(
        self, w: _Writer, q: int, value: str, fill: str,
        slot: str = "_s",
    ) -> None:
        w(f"{slot} = (q{q}h[lanes] + q{q}c[lanes]) % q{q}cap[lanes]")
        w(f"q{q}v[lanes, {slot}] = {value}")
        w(f"q{q}f[lanes, {slot}] = {fill}")
        w(f"q{q}c[lanes] += 1")
        with w.block("if trk:"):
            w(f"q_peak[lanes, {q}] = np.maximum("
              f"q_peak[lanes, {q}], q{q}c[lanes])")

    def _emit_schedule_fill(self, w: _Writer, q: int, addr: str) -> None:
        """Inline ``_schedule_fill`` for a literal target queue."""
        self._emit_check_addr(w, addr)
        w("_fill = now[lanes] + latency[lanes]")
        self._emit_put(w, q, f"mem[lanes, {addr}]", "_fill")
        w("_ps = (pend_head[lanes] + pend_count[lanes]) % P")
        w("pend_t[lanes, _ps] = _fill")
        w("pend_count[lanes] += 1")
        w("pend_live += lanes.size")
        w("s_reads[lanes] += 1")
        w("progress[lanes] = True")

    # -- per-instruction blocks ------------------------------------------

    def _emit_ap_block(self, w: _Writer, p: int, entry) -> None:
        kind = entry[0]
        nonlocals = []
        if kind == D.A_LDQ:
            nonlocals = ["mem", "pend_live"]
        elif kind == D.A_HALT:
            nonlocals = ["ap_live"]
        with w.block(f"def _ap{p}(lanes):"):
            if nonlocals:
                w(f"nonlocal {', '.join(nonlocals)}")
            if kind == D.A_ALU:
                _, op, srcs, dest = entry
                temps = []
                for i, s in enumerate(srcs):
                    e = self._src(s, "ap_regs")
                    if s[0] == D.I:
                        temps.append(e)
                    else:
                        w(f"_a{i} = {e}")
                        temps.append(f"_a{i}")
                w(f"ap_regs[lanes, {dest}] = "
                  f"{_alu_np_expr(op, temps)}")
                self._emit_ap_retire(w, None)
            elif kind == D.A_LDQ:
                _, qid, a, b = entry
                w(f"addr = {self._addr_expr(a, b, 'ap_regs')}")
                w(f"_free = q{qid}c[lanes] < q{qid}cap[lanes]")
                self._emit_gate(
                    w, "_free", "ap", D.C_QUEUE_FULL, ("addr",)
                )
                w("bank = addr % nbanks[lanes]")
                w("_ok = ~port_used[lanes] "
                  "& (bank_free[lanes, bank] <= now[lanes])")
                self._emit_gate(
                    w, "_ok", "ap", D.C_MEMORY_BUSY, ("addr", "bank")
                )
                w("port_used[lanes] = True")
                w("bank_free[lanes, bank] = now[lanes] "
                  "+ bank_busy[lanes]")
                self._emit_schedule_fill(w, qid, "addr")
                self._emit_ap_retire(w, None)
            elif kind == D.A_DECBNZ:
                _, reg, target = entry
                w(f"ap_regs[lanes, {reg}] -= 1")
                w(f"_t = ap_regs[lanes, {reg}] != 0")
                self._emit_ap_retire(
                    w, f"np.where(_t, {target}, {p + 1})"
                )
            elif kind == D.A_FROMQ:
                _, qid, cause, dest = entry
                w(f"_h = q{qid}h[lanes]")
                w(f"_rdy = (q{qid}c[lanes] > 0) "
                  f"& (q{qid}f[lanes, _h] <= now[lanes])")
                self._emit_gate(w, "_rdy", "ap", cause, ("_h",))
                w(f"ap_regs[lanes, {dest}] = q{qid}v[lanes, _h]")
                w(f"q{qid}h[lanes] = (_h + 1) % q{qid}cap[lanes]")
                w(f"q{qid}c[lanes] -= 1")
                self._emit_ap_retire(w, None)
            elif kind == D.A_STADDR:
                _, dqi, a, b = entry
                saq = self.qlay.saq
                w(f"_free = q{saq}c[lanes] < q{saq}cap[lanes]")
                self._emit_gate(w, "_free", "ap", D.C_SAQ_FULL)
                w(f"addr = {self._addr_expr(a, b, 'ap_regs')}")
                self._emit_put(
                    w, saq, "addr.astype(np.float64)", "now[lanes]"
                )
                w(f"saq_dqi[lanes, _s] = {dqi}")
                self._emit_ap_retire(w, None)
            elif kind == D.A_BQ:
                _, sense, target = entry
                ebq = self.qlay.ebq
                w(f"_h = q{ebq}h[lanes]")
                w(f"_rdy = (q{ebq}c[lanes] > 0) "
                  f"& (q{ebq}f[lanes, _h] <= now[lanes])")
                self._emit_gate(
                    w, "_rdy", "ap", D.C_LOD_EBQ, ("_h",)
                )
                w(f"_v = q{ebq}v[lanes, _h]")
                w(f"q{ebq}h[lanes] = (_h + 1) % q{ebq}cap[lanes]")
                w(f"q{ebq}c[lanes] -= 1")
                w("_t = _v != 0" if sense else "_t = _v == 0")
                self._emit_ap_retire(
                    w, f"np.where(_t, {target}, {p + 1})"
                )
            elif kind == D.A_BR:
                _, operand, sense, target = entry
                w(f"_v = {self._src(operand, 'ap_regs')}")
                w("_t = _v == 0" if sense else "_t = _v != 0")
                self._emit_ap_retire(
                    w, f"np.where(_t, {target}, {p + 1})"
                )
            elif kind == D.A_STREAM:
                # cold: at most once per stream per lane; the engine
                # method mutates the same arrays the locals alias
                w(f"engine._ap_stream(lanes, _AP_ENTRY_{p})")
            elif kind == D.A_JMP:
                self._emit_ap_retire(w, str(entry[1]))
            elif kind == D.A_HALT:
                w("ap_halt[lanes] = True")
                w("ap_live -= lanes.size")
                self._emit_ap_retire(w, None)
            else:  # A_NOP
                self._emit_ap_retire(w, None)
        w()

    def _emit_ep_block(self, w: _Writer, p: int, entry) -> None:
        kind = entry[0]
        nonlocals = ["ep_live"] if kind == D.E_HALT else []
        with w.block(f"def _ep{p}(lanes):"):
            if nonlocals:
                w(f"nonlocal {', '.join(nonlocals)}")
            if kind == D.E_ALU:
                _, op, srcs, dest_q, dest_reg = entry
                qsrcs = []
                seen = set()
                for tag, payload in srcs:
                    if tag == D.Q and payload not in seen:
                        seen.add(payload)
                        qsrcs.append(payload)
                if qsrcs:
                    terms = [
                        f"({self._ready_expr(q)})" for q in qsrcs
                    ]
                    w(f"_ok = {' & '.join(terms)}")
                    self._emit_gate(w, "_ok", "ep", D.C_LQ_EMPTY)
                if dest_q is not None:
                    w(f"_free = q{dest_q}c[lanes] "
                      f"< q{dest_q}cap[lanes]")
                    self._emit_gate(w, "_free", "ep", D.C_Q_FULL)
                temps = []
                for i, (tag, payload) in enumerate(srcs):
                    if tag == D.Q:
                        self._emit_pop(w, payload, f"_a{i}", f"_h{i}")
                        temps.append(f"_a{i}")
                    elif tag == D.R:
                        w(f"_a{i} = ep_regs[lanes, {payload}]")
                        temps.append(f"_a{i}")
                    else:
                        temps.append(repr(float(payload)))
                w(f"_r = {_alu_np_expr(op, temps)}")
                if dest_q is not None:
                    self._emit_put(w, dest_q, "_r", "now[lanes]")
                else:
                    w(f"ep_regs[lanes, {dest_reg}] = _r")
                self._emit_ep_retire(w, None)
            elif kind == D.E_BR:
                _, operand, sense, target = entry
                w(f"_v = {self._src(operand, 'ep_regs')}")
                w("_t = _v == 0" if sense else "_t = _v != 0")
                self._emit_ep_retire(
                    w, f"np.where(_t, {target}, {p + 1})"
                )
            elif kind == D.E_DECBNZ:
                _, reg, target = entry
                w(f"ep_regs[lanes, {reg}] -= 1")
                w(f"_t = ep_regs[lanes, {reg}] != 0")
                self._emit_ep_retire(
                    w, f"np.where(_t, {target}, {p + 1})"
                )
            elif kind == D.E_JMP:
                self._emit_ep_retire(w, str(entry[1]))
            elif kind == D.E_HALT:
                w("ep_halt[lanes] = True")
                w("ep_live -= lanes.size")
                self._emit_ep_retire(w, None)
            else:  # E_NOP
                self._emit_ep_retire(w, None)
        w()

    # -- components ------------------------------------------------------

    def _emit_completions(self, w: _Writer) -> None:
        with w.block("if pend_live:"):
            with w.block("while True:"):
                w("_cand = ix[pend_count[ix] > 0]")
                with w.block("if _cand.size == 0:"):
                    w("break")
                w("_heads = pend_t[_cand, pend_head[_cand]]")
                w("_mat = _heads <= now[_cand]")
                with w.block("if not _mat.any():"):
                    w("break")
                w("_ml = _cand[_mat]")
                w("pend_head[_ml] = (pend_head[_ml] + 1) % P")
                w("pend_count[_ml] -= 1")
                w("delivered[_ml] = True")
                w("pend_live -= _ml.size")

    def _emit_store_unit(self, w: _Writer) -> None:
        saq = self.qlay.saq
        w(f"_m = q{saq}c[ix] > 0")
        with w.block("if _m.any():"):
            w("sl = ix[_m]")
            w(f"_hh = q{saq}h[sl]")
            w(f"_rdy = q{saq}f[sl, _hh] <= now[sl]")
            w("sl = sl[_rdy]")
            with w.block("if sl.size:"):
                w("_hh = _hh[_rdy]")
                w(f"addr = q{saq}v[sl, _hh].astype(np.int64)")
                dq = self.single_dq
                if dq is not None:
                    w(f"_rdy = ({self._ready_expr(dq, 'sl')})")
                else:
                    w(f"dq = {self.qlay.sdq(0)} + saq_dqi[sl, _hh]")
                    w("_rdy = (q_count[sl, dq] > 0) & ("
                      "q_fill[sl, dq, q_head[sl, dq]] <= now[sl])")
                w("sl = sl[_rdy]")
                w("addr = addr[_rdy]")
                if dq is None:
                    w("dq = dq[_rdy]")
                with w.block("if sl.size:"):
                    w("bank = addr % nbanks[sl]")
                    w("_ok = ~port_used[sl] "
                      "& (bank_free[sl, bank] <= now[sl])")
                    w("sl = sl[_ok]")
                    w("addr = addr[_ok]")
                    w("bank = bank[_ok]")
                    if dq is None:
                        w("dq = dq[_ok]")
                    with w.block("if sl.size:"):
                        self._emit_check_addr(w, "addr")
                        w("port_used[sl] = True")
                        w("bank_free[sl, bank] = now[sl] "
                          "+ bank_busy[sl]")
                        if dq is not None:
                            w(f"_h2 = q{dq}h[sl]")
                            w(f"mem[sl, addr] = q{dq}v[sl, _h2]")
                            w("s_writes[sl] += 1")
                            w(f"_hs = q{saq}h[sl]")
                            w(f"q{saq}h[sl] = (_hs + 1) "
                              f"% q{saq}cap[sl]")
                            w(f"q{saq}c[sl] -= 1")
                            w(f"q{dq}h[sl] = (_h2 + 1) "
                              f"% q{dq}cap[sl]")
                            w(f"q{dq}c[sl] -= 1")
                        else:
                            w("_h2 = q_head[sl, dq]")
                            w("mem[sl, addr] = q_vals[sl, dq, _h2]")
                            w("s_writes[sl] += 1")
                            w(f"_hs = q{saq}h[sl]")
                            w(f"q{saq}h[sl] = (_hs + 1) "
                              f"% q{saq}cap[sl]")
                            w(f"q{saq}c[sl] -= 1")
                            w("q_head[sl, dq] = (_h2 + 1) "
                              "% q_cap[sl, dq]")
                            w("q_count[sl, dq] -= 1")
                        w("progress[sl] = True")

    def _emit_engine_tick(self, w: _Writer) -> None:
        producing = self.stream_kinds & {D.S_LOAD, D.S_GATHER}
        consuming = self.stream_kinds & {D.S_STORE, D.S_SCATTER}
        indexed = self.stream_kinds & {D.S_GATHER, D.S_SCATTER}

        def _kind_mask(kinds: set[int]) -> str:
            terms = [f"(skind == {k})" for k in sorted(kinds)]
            return " | ".join(terms) if len(terms) > 1 else terms[0]

        w("el = ix[n_live[ix] > 0]")
        with w.block("if el.size:"):
            # pre-filter: a lane whose port is taken or whose banks are
            # all busy cannot issue; its whole tick would be a no-op
            # (failed attempts only normalize rr, and rr is read modulo
            # n everywhere, so skipping is unobservable)
            w("_em = ~port_used[el]")
            w("_em &= bank_free[el].min(axis=1) <= now[el]")
            w("el = el[_em]")
        with w.block("if el.size:"):
            w("n = n_live[el]")
            w("S = int(n.max())")
            w("k = el.size")
            w("_nw = now[el]")
            w("_ar = _ARS[:S]")
            w("valid = _ar[None, :] < n[:, None]")
            if producing and consuming:
                w("skind = st_kind[el, :S]")
            w("base = st_base[el, :S]")
            w("addr = base + st_issued[el, :S] * st_stride[el, :S]")
            if not consuming:
                w("produces = valid")
            elif not producing:
                pass  # produces is statically all-False
            else:
                mask = _kind_mask(producing)
                paren = f"({mask})" if len(producing) > 1 else mask
                w(f"produces = {paren} & valid")
            if indexed == self.stream_kinds and indexed:
                w("indexed = valid")
            elif indexed:
                mask = _kind_mask(indexed)
                paren = f"({mask})" if len(indexed) > 1 else mask
                w(f"indexed = {paren} & valid")
            if indexed:
                w("ok = valid.copy()")
                with w.block("if indexed.any():"):
                    w("r, c = np.nonzero(indexed)")
                    w("il = el[r]")
                    w("iq = st_iq[il, c]")
                    w("_ih = q_head[il, iq]")
                    w("_ird = (q_count[il, iq] > 0) & ("
                      "q_fill[il, iq, _ih] <= now[il])")
                    w("ok[r[~_ird], c[~_ird]] = False")
                    w("rl, cl = r[_ird], c[_ird]")
                    with w.block("if rl.size:"):
                        w("_iqr = iq[_ird]")
                        w("_pl = el[rl]")
                        w("_a = _addr(q_vals[_pl, _iqr, "
                          "q_head[_pl, _iqr]])")
                        w("addr[rl, cl] = base[rl, cl] + _a")
                w("bank = addr % nbanks[el][:, None]")
                w("ok &= bank_free[el[:, None], bank] "
                  "<= _nw[:, None]")
            else:
                # bank availability first: it needs no queue gathers
                # and shrinks the queue probes below (ok-masking the
                # probes is commutative -- each only clears ok bits)
                w("bank = addr % nbanks[el][:, None]")
                w("ok = (bank_free[el[:, None], bank] "
                  "<= _nw[:, None]) & valid")
            # the lane pre-filter removed every port_used lane, so no
            # explicit port mask is needed here
            if producing:
                self._emit_produce_full(w)
            if consuming:
                stores = (
                    "valid" if not producing else "valid & ~produces"
                )
                w(f"r, c = np.nonzero(({stores}) & ok)")
                with w.block("if r.size:"):
                    w("dl = el[r]")
                    w("dqs = st_dq[dl, c]")
                    w("_dh = q_head[dl, dqs]")
                    w("_drd = (q_count[dl, dqs] > 0) & ("
                      "q_fill[dl, dqs, _dh] <= now[dl])")
                    w("ok[r[~_drd], c[~_drd]] = False")
            w("pos = (_ar[None, :] - (rr[el] % n)[:, None]) "
              "% n[:, None]")
            w("pos = np.where(ok, pos, _BIG)")
            w("best = pos.argmin(axis=1)")
            w("fails = pos[_ARL[:k], best]")
            w("chosen = fails < _BIG")
            # lanes that issue nothing keep their rr unnormalized; rr
            # is read modulo n everywhere, so this is unobservable
            with w.block("if chosen.any():"):
                w("rows = np.flatnonzero(chosen)")
                w("gl = el[rows]")
                w("gi = best[rows]")
                w("gaddr = addr[rows, gi]")
                w("port_used[gl] = True")
                w("bank_free[gl, bank[rows, gi]] = now[gl] "
                  "+ bank_busy[gl]")
                if producing and consuming:
                    w("gprod = produces[rows, gi]")
                    with w.block("if gprod.any():"):
                        self._emit_stream_fill(
                            w, "gl[gprod]", "gaddr[gprod]",
                            "gi[gprod]",
                        )
                    w("gst = ~gprod")
                    with w.block("if gst.any():"):
                        self._emit_stream_store(
                            w, "gl[gst]", "gaddr[gst]", "gi[gst]"
                        )
                elif producing:
                    self._emit_stream_fill(w, "gl", "gaddr", "gi")
                else:
                    self._emit_stream_store(w, "gl", "gaddr", "gi")
                if indexed == self.stream_kinds and indexed:
                    w("ql = gl")
                    w("iqs = st_iq[ql, gi]")
                    w("_qh = q_head[ql, iqs]")
                    w("q_head[ql, iqs] = (_qh + 1) % q_cap[ql, iqs]")
                    w("q_count[ql, iqs] -= 1")
                elif indexed:
                    w("gind = indexed[rows, gi]")
                    with w.block("if gind.any():"):
                        w("ql = gl[gind]")
                        w("iqs = st_iq[ql, gi[gind]]")
                        w("_qh = q_head[ql, iqs]")
                        w("q_head[ql, iqs] = (_qh + 1) "
                          "% q_cap[ql, iqs]")
                        w("q_count[ql, iqs] -= 1")
                w("_niss = st_issued[gl, gi] + 1")
                w("st_issued[gl, gi] = _niss")
                w("sdone = _niss >= st_count[gl, gi]")
                w("adv = fails[rows] + ~sdone")
                w("rr[gl] = (rr[gl] + adv) % n[rows]")
                with w.block("if sdone.any():"):
                    # vectorized _remove_stream: lanes are unique
                    # (one issue per lane per tick), so plain fancy
                    # scatter updates are safe; slots at or past the
                    # new n_live are dead and never read
                    w("rl = gl[sdone]")
                    w("rs = gi[sdone]")
                    w("_rv = st_tq[rl, rs]")
                    w("_rm = _rv >= 0")
                    w("produced_mask[rl[_rm]] &= ~(_I64 << _rv[_rm])")
                    w("_rv = st_dq[rl, rs]")
                    w("_rm = _rv >= 0")
                    w("consumed_mask[rl[_rm]] &= ~(_I64 << _rv[_rm])")
                    w("_rv = st_iq[rl, rs]")
                    w("_rm = _rv >= 0")
                    w("consumed_mask[rl[_rm]] &= ~(_I64 << _rv[_rm])")
                    w("_rsrc = np.minimum(_ARS[None, :] + "
                      "(_ARS[None, :] >= rs[:, None]), MS - 1)")
                    w("_rdst = rl[:, None]")
                    for f in (
                        "st_kind", "st_base", "st_stride", "st_count",
                        "st_issued", "st_tq", "st_dq", "st_iq",
                    ):
                        w(f"{f}[_rdst, _ARS] = {f}[_rdst, _rsrc]")
                    w("n_live[rl] -= 1")

    def _emit_produce_full(self, w: _Writer) -> None:
        w("r, c = np.nonzero(produces & ok)")
        with w.block("if r.size:"):
            w("pl = el[r]")
            w("tq = st_tq[pl, c]")
            w("full = q_count[pl, tq] >= q_cap[pl, tq]")
            w("ok[r[full], c[full]] = False")

    def _emit_stream_fill(
        self, w: _Writer, lanes: str, addr: str, gi: str
    ) -> None:
        """Inline ``_schedule_fill`` with a dynamic target queue."""
        w(f"pl = {lanes}")
        w(f"pa = {addr}")
        w(f"tqs = st_tq[pl, {gi}]")
        self._emit_check_addr(w, "pa")
        w("_fill = now[pl] + latency[pl]")
        w("_s = (q_head[pl, tqs] + q_count[pl, tqs]) "
          "% q_cap[pl, tqs]")
        w("q_vals[pl, tqs, _s] = mem[pl, pa]")
        w("q_fill[pl, tqs, _s] = _fill")
        w("q_count[pl, tqs] += 1")
        with w.block("if trk:"):
            w("q_peak[pl, tqs] = np.maximum("
              "q_peak[pl, tqs], q_count[pl, tqs])")
        w("_ps = (pend_head[pl] + pend_count[pl]) % P")
        w("pend_t[pl, _ps] = _fill")
        w("pend_count[pl] += 1")
        w("pend_live += pl.size")
        w("s_reads[pl] += 1")
        w("progress[pl] = True")

    def _emit_stream_store(
        self, w: _Writer, lanes: str, addr: str, gi: str
    ) -> None:
        w(f"slv = {lanes}")
        w(f"sa = {addr}")
        self._emit_check_addr(w, "sa")
        w(f"dqs = st_dq[slv, {gi}]")
        w("_dh = q_head[slv, dqs]")
        w("mem[slv, sa] = q_vals[slv, dqs, _dh]")
        w("s_writes[slv] += 1")
        w("q_head[slv, dqs] = (_dh + 1) % q_cap[slv, dqs]")
        w("q_count[slv, dqs] -= 1")
        w("progress[slv] = True")

    def _emit_dispatch(self, w: _Writer, side: str) -> None:
        halt = f"{side}_halt"
        pc = f"{side}_pc"
        plen = len(self.ap) if side == "ap" else len(self.ep)
        err = ("AP" if side == "ap" else "EP") + \
            " ran off the end of program"
        with w.block(f"if {side}_live:"):
            w(f"lanes = ix[~{halt}[ix]]")
            if side == "ep":
                # parked shortcut: a lane that stalled on its last EP
                # attempt re-stalls with the identical cause unless a
                # queue-changing event happened this cycle -- every
                # such event (completion delivery, store-unit/engine
                # pop or push, AP fill) sets delivered/progress before
                # EP steps, so the full probe can be replayed as a
                # single stall-counter increment
                guard = (
                    "~(delivered[lanes] | progress[lanes])"
                    if self.has_pend
                    else "~progress[lanes]"
                )
                with w.block("if lanes.size:"):
                    w("_sc = ep_stalled[lanes]")
                    w(f"_pk = (_sc != -1) & {guard}")
                    with w.block("if _pk.any():"):
                        w("_pkl = lanes[_pk]")
                        w("s_epst[_pkl, _sc[_pk]] += 1")
                        w("lanes = lanes[~_pk]")
            with w.block("if lanes.size:"):
                w(f"pcs = {pc}[lanes]")
                w(f"_cnt = np.bincount(pcs, minlength={plen})")
                w("_nz = np.flatnonzero(_cnt)")
                with w.block("if _nz.size == 1:"):
                    w("p = _nz[0]")
                    with w.block(f"if p >= {plen}:"):
                        w(f"raise SimulationError({err!r})")
                    w(f"_b_{side}[p](lanes)")
                with w.block("else:"):
                    with w.block("for p in _nz:"):
                        with w.block(f"if p >= {plen}:"):
                            w(f"raise SimulationError({err!r})")
                        w(f"_b_{side}[p](lanes[pcs == p])")

    # -- whole-function assembly -----------------------------------------

    def generate(self) -> str:
        w = _Writer()
        w.w("def __batch_lane_loop__(engine, max_cycles, "
            "deadlock_window):")
        w.depth = 1
        self._emit_preamble(w)
        for p, entry in enumerate(self.ap):
            self._emit_ap_block(w, p, entry)
        for p, entry in enumerate(self.ep):
            self._emit_ep_block(w, p, entry)
        w.w(f"_b_ap = [{', '.join(f'_ap{p}' for p in range(len(self.ap)))}]")
        w.w(f"_b_ep = [{', '.join(f'_ep{p}' for p in range(len(self.ep)))}]")
        self._emit_loop(w)
        return "\n".join(w.lines) + "\n"

    def _emit_preamble(self, w: _Writer) -> None:
        e = [
            "st = engine.stats",
            "now = engine.now",
            "active = engine.active",
            "cycles = engine.cycles",
            "last_progress = engine.last_progress",
            "ap_pc = engine.ap_pc",
            "ap_halt = engine.ap_halt",
            "ap_regs = engine.ap_regs",
            "ap_stalled = engine.ap_stalled",
            "ep_pc = engine.ep_pc",
            "ep_halt = engine.ep_halt",
            "ep_regs = engine.ep_regs",
            "ep_stalled = engine.ep_stalled",
            "progress = engine._progress",
            "s_apinstr = st.ap_instructions",
            "s_epinstr = st.ep_instructions",
            "s_apst = st.ap_stalls",
            "s_apfirst = st.ap_first",
            "s_epst = st.ep_stalls",
            "s_epfirst = st.ep_first",
            "s_lod = st.lod_events",
        ]
        if self.uses_memory:
            e += [
                "mem = engine.mem",
                "msize = engine.msize",
                "bank_free = engine.bank_free",
                "port_used = engine.port_used",
                "latency = engine.latency",
                "bank_busy = engine.bank_busy",
                "nbanks = engine.nbanks",
                "s_reads = st.memory_reads",
                "s_writes = st.memory_writes",
            ]
        if self.has_pend:
            e += [
                "pend_t = engine.pend_t",
                "pend_head = engine.pend_head",
                "pend_count = engine.pend_count",
                "P = engine.P",
                "delivered = engine._delivered",
                "pend_live = int(pend_count.sum())",
            ]
        if self.has_staddr:
            e.append("saq_dqi = engine.saq_dqi")
        if self.single_dq is None and (
            self.has_staddr
            or self.stream_kinds & {D.S_STORE, D.S_SCATTER}
            or self.stream_kinds & {D.S_GATHER}
        ) or self.has_stream:
            # dynamic queue-id sites (stream engine, multi-dq store
            # unit) index the full planes
            e += [
                "q_vals = engine.q_vals",
                "q_fill = engine.q_fill",
                "q_head = engine.q_head",
                "q_count = engine.q_count",
                "q_cap = engine.q_cap",
            ]
        if self.has_stream:
            e += [
                "st_kind = engine.st_kind",
                "st_base = engine.st_base",
                "st_stride = engine.st_stride",
                "st_count = engine.st_count",
                "st_issued = engine.st_issued",
                "st_tq = engine.st_tq",
                "st_dq = engine.st_dq",
                "st_iq = engine.st_iq",
                "n_live = engine.n_live",
                "rr = engine.rr",
                "produced_mask = engine.produced_mask",
                "consumed_mask = engine.consumed_mask",
                "MS = engine.max_streams",
                "_ARS = np.arange(engine.max_streams, dtype=np.int64)",
                "_ARL = np.arange(active.shape[0])",
                "_I64 = np.int64(1)",
            ]
        if self.filled_loads:
            e.append("s_osum = st.occupancy_sum")
            e.append("s_omax = st.occupancy_max")
        e.append("trk = engine.track_saturation")
        e.append("q_peak = engine.q_peak")
        e.append("ap_live = int((~ap_halt).sum())")
        e.append("ep_live = int((~ep_halt).sum())")
        for line in e:
            w.w(line)
        for q in sorted(self.views):
            w.w(f"q{q}c = engine.q_count[:, {q}]")
            w.w(f"q{q}h = engine.q_head[:, {q}]")
            w.w(f"q{q}v = engine.q_vals[:, {q}]")
            w.w(f"q{q}f = engine.q_fill[:, {q}]")
            w.w(f"q{q}cap = engine.q_cap[:, {q}]")
        for p, entry in enumerate(self.ap):
            if entry[0] == D.A_STREAM:
                w.w(f"_AP_ENTRY_{p} = engine.ap_prog[{p}]")
        w.w()

    def _emit_loop(self, w: _Writer) -> None:
        occ = bool(self.filled_loads)
        # ``ix`` (the active lane set) is carried across iterations:
        # next round's set is this round's survivors, so the loop scans
        # ``active`` only once.  Flag resets are whole-array fills —
        # frozen lanes never read them, and a memset beats fancy
        # indexing at any lane count.
        w("ix = np.flatnonzero(active)")
        with w.block("while ix.size:"):
            if self.has_pend:
                w("delivered.fill(False)")
            w("progress.fill(False)")
            if self.uses_memory:
                w("port_used.fill(False)")
            if self.has_pend:
                self._emit_completions(w)
            if self.has_staddr:
                self._emit_store_unit(w)
            if self.has_stream:
                self._emit_engine_tick(w)
            self._emit_dispatch(w, "ap")
            self._emit_dispatch(w, "ep")
            if occ:
                terms = [
                    f"q{q}c[ix]" for q in sorted(self.filled_loads)
                ]
                w(f"outst = {' + '.join(terms)}")
                if len(self.filled_loads) == 1:
                    # a view gather already copies; keep as-is
                    pass
                w("s_osum[ix] += outst")
                w("_big = outst > s_omax[ix]")
                with w.block("if _big.any():"):
                    w("s_omax[ix[_big]] = outst[_big]")
            w("now[ix] += 1")
            w("_pr = progress[ix]")
            w("_pl2 = ix[_pr]")
            w("last_progress[_pl2] = now[_pl2]")
            done = ["ap_halt[ix]", "ep_halt[ix]"]
            if self.has_stream:
                done.append("(n_live[ix] == 0)")
            if self.has_staddr:
                done.append(f"(q{self.qlay.saq}c[ix] == 0)")
            if self.has_pend:
                done.append("(pend_count[ix] == 0)")
            w("live = ix")
            if occ:
                w("_ost = outst")
            # a lane is done only once both processors halted, so the
            # freeze check can wait until the halt counters show an
            # active lane past each halt
            with w.block("if ix.size > ap_live and ix.size > ep_live:"):
                w(f"done = {' & '.join(done)}")
                w("dl = ix[done]")
                with w.block("if dl.size:"):
                    w("cycles[dl] = now[dl]")
                    w("active[dl] = False")
                    w("live = ix[~done]")
                    if occ:
                        w("_ost = outst[~done]")
            with w.block("if live.size:"):
                with w.block("if np.any(now[live] >= max_cycles):"):
                    w("raise SimulationError("
                      "f\"exceeded cycle budget {max_cycles}\")")
                w("_pg = _pr if live is ix else progress[live]")
                if self.has_pend:
                    w("_npd = ~_pg & ~delivered[live]")
                else:
                    w("_npd = ~_pg")
                w("idle = live[_npd]")
                with w.block("if idle.size:"):
                    w("tprev = now[idle] - 1")
                    if self.has_pend:
                        w("pend = np.where(pend_count[idle] > 0, "
                          "pend_t[idle, pend_head[idle]], _BIG)")
                    if self.uses_memory:
                        w("bf = bank_free[idle]")
                        w("banks = np.where(bf > tprev[:, None], bf, "
                          "_BIG).min(axis=1)")
                    w("horizon = np.minimum(last_progress[idle] "
                      "+ deadlock_window + 1, max_cycles)")
                    target = "horizon"
                    if self.uses_memory:
                        target = f"np.minimum(banks, {target})"
                    if self.has_pend:
                        target = f"np.minimum(pend, {target})"
                    w(f"target = {target}")
                    w("skipped = target - now[idle]")
                    w("hop = skipped > 0")
                    w("jl = idle[hop]")
                    with w.block("if jl.size:"):
                        w("sk = skipped[hop]")
                        w("ap_c = ap_stalled[jl]")
                        w("apl = ap_c != -1")
                        w("s_apst[jl[apl], ap_c[apl]] += sk[apl]")
                        w("ep_c = ep_stalled[jl]")
                        w("epl = ep_c != -1")
                        w("s_epst[jl[epl], ep_c[epl]] += sk[epl]")
                        if occ:
                            w("s_osum[jl] += _ost[_npd][hop] * sk")
                        w("now[jl] += sk")
                w("overdue = live[now[live] - last_progress[live] "
                  "> deadlock_window]")
                with w.block("if overdue.size:"):
                    w("engine._deadlock_error(int(overdue[0]), "
                      "deadlock_window)")
            w("ix = live")
