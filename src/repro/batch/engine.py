"""Structure-of-arrays lockstep simulator over many machine configs.

One *lane* is one complete SMA machine — AP, EP, stream engine, store
unit, banked memory — described by its own :class:`repro.config.SMAConfig`
(latency, bank count/busy, queue depths).  All lanes run the same
access/execute program pair on the same input data, so a sweep grid of
``N`` timing points becomes ``N`` lanes stepped together: every piece of
architectural state is one numpy array with a leading lane axis, and each
component's per-cycle action is a handful of masked array updates instead
of ``N`` interpreter dispatches.

**Bit-exactness contract.**  For every lane, all statistics the harness
reports (:func:`repro.harness.jobs._run_sma` keys: cycles, instruction
counts, stall-cause cycle counts, LOD episodes, occupancy, memory
traffic) and the final memory image are identical to running that lane's
config through ``SMAMachine.run(scheduler="naive")``.  The Hypothesis
suite in ``tests/test_batch_equivalence.py`` holds this together, the
same way the equivalence suites pin the fast schedulers to naive
ticking.

Three structural ideas:

* **Masked divergent control** — lanes share a program but not a pc
  (timing divergence moves them apart).  Each cycle the processors group
  live lanes by pc; the instruction at a pc is a constant for the whole
  group, so its semantics become one vectorized update on the group's
  lane-index array.
* **Per-lane clocks with idle jumps** — lanes are independent machines,
  so each carries its own ``now``.  A lane whose cycle made no progress
  and delivered no completion is in a steady stall: every cycle until
  its next memory event (earliest in-flight load maturing, earliest busy
  bank freeing) repeats the same stall bit-for-bit, so the lane's clock
  jumps there directly and the per-cycle statistic increments are
  replayed in closed form — the same argument as the scalar joint-idle
  scheduler, applied per lane.
* **Lane freeze** — a finished lane (both processors halted, streams
  drained, SAQ empty, no loads in flight) is removed from the active
  index and costs nothing for the rest of the batch.

Timing-model scope (enforced by :mod:`repro.batch.dispatch`): one memory
port (``accepts_per_cycle == 1``), one stream issue per cycle, no fault
injection, no attached metrics.  Within a cycle the single port is
threaded through the components in machine order (store unit, stream
engine, AP) as one boolean per lane.

In-flight loads need no completion heap: per lane, requests issue at
most one per cycle and share one latency, so fills mature in issue
order — a ring of fill times per lane replaces the heap, and a queue
slot is *filled* exactly when its recorded fill time is ``<= now``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SMAConfig
from ..errors import SimulationError
from ..isa import Op, Program
from . import decode as D

#: sentinel for "no stall cause" / empty times
_NONE = -1
_BIG = np.int64(1) << 62


def _alu_eval(op: Op, args: list[np.ndarray]) -> np.ndarray:
    """Vectorized twin of :data:`repro.isa.ALU_FUNCS`.

    Each branch reproduces the Python-float semantics of the scalar
    table exactly (IEEE-754 double throughout); the ones where numpy's
    native ufunc could differ (``min``/``max`` argument order on ties,
    ``%`` sign correction) are spelled out.
    """
    if op is Op.ADD:
        return args[0] + args[1]
    if op is Op.SUB:
        return args[0] - args[1]
    if op is Op.MUL:
        return args[0] * args[1]
    if op is Op.DIV:
        if np.any(args[1] == 0):
            raise ZeroDivisionError("DIV by zero in simulated program")
        return args[0] / args[1]
    if op is Op.MIN:  # python min(a, b): b if b < a else a
        return np.where(args[1] < args[0], args[1], args[0])
    if op is Op.MAX:  # python max(a, b): b if b > a else a
        return np.where(args[1] > args[0], args[1], args[0])
    if op is Op.MOD:
        a, b = args
        if np.any(b == 0):
            raise ZeroDivisionError("MOD by zero in simulated program")
        # CPython float %: fmod, then fold into the divisor's sign
        r = np.fmod(a, b)
        fix = (r != 0) & ((r < 0) != (b < 0))
        r = np.where(fix, r + b, r)
        return r
    if op is Op.ABS:
        return np.abs(args[0])
    if op is Op.NEG:
        return -args[0]
    if op is Op.SQRT:
        if np.any(args[0] < 0):
            raise ValueError("math domain error")
        return np.sqrt(args[0])
    if op is Op.FLOOR:
        return np.floor(args[0])
    if op is Op.MOV:
        return args[0]
    if op is Op.CMPLT:
        return np.where(args[0] < args[1], 1.0, 0.0)
    if op is Op.CMPLE:
        return np.where(args[0] <= args[1], 1.0, 0.0)
    if op is Op.CMPEQ:
        return np.where(args[0] == args[1], 1.0, 0.0)
    if op is Op.CMPNE:
        return np.where(args[0] != args[1], 1.0, 0.0)
    assert op is Op.SEL
    return np.where(args[0] != 0, args[1], args[2])


@dataclass
class LaneStats:
    """Per-lane statistic arrays collected by one batch run.

    ``lane_dict(i)`` assembles the harness result-dict fragment for lane
    ``i`` with the exact key set, value types and stall-dict key order
    (first-occurrence order) of the scalar job path.
    """

    cycles: np.ndarray
    ap_instructions: np.ndarray
    ep_instructions: np.ndarray
    ap_stalls: np.ndarray        # [lanes, len(D.AP_CAUSES)]
    ap_first: np.ndarray         # first cycle each cause was charged
    ep_stalls: np.ndarray        # [lanes, len(D.EP_CAUSES)]
    ep_first: np.ndarray
    lod_events: np.ndarray
    memory_reads: np.ndarray
    memory_writes: np.ndarray
    occupancy_sum: np.ndarray
    occupancy_max: np.ndarray

    def lane_dict(self, i: int) -> dict:
        ap_order = np.argsort(self.ap_first[i], kind="stable")
        ap_stalls = {
            D.AP_CAUSES[c]: int(self.ap_stalls[i, c])
            for c in ap_order
            if self.ap_stalls[i, c] > 0
        }
        ep_order = np.argsort(self.ep_first[i], kind="stable")
        ep_stalls = {
            D.EP_CAUSES[c]: int(self.ep_stalls[i, c])
            for c in ep_order
            if self.ep_stalls[i, c] > 0
        }
        cycles = int(self.cycles[i])
        lod_stall_cycles = sum(
            int(self.ap_stalls[i, c]) for c in D.LOD_CAUSES
        )
        return {
            "cycles": cycles,
            "ap_instructions": int(self.ap_instructions[i]),
            "ep_instructions": int(self.ep_instructions[i]),
            "ap_stalls": ap_stalls,
            "ep_stalls": ep_stalls,
            "ep_total_stalls": sum(ep_stalls.values()),
            "mean_outstanding_loads":
                int(self.occupancy_sum[i]) / max(cycles, 1),
            "max_outstanding_loads": int(self.occupancy_max[i]),
            "lod_events": int(self.lod_events[i]),
            "lod_stall_cycles": lod_stall_cycles,
            "memory_reads": int(self.memory_reads[i]),
            "memory_writes": int(self.memory_writes[i]),
        }


@dataclass
class BatchOutcome:
    """Everything a batch run produced: stats plus final memory images."""

    stats: LaneStats
    memory: np.ndarray  # [lanes, words]

    def dump_array(self, lane: int, base: int, count: int) -> np.ndarray:
        out = np.zeros(count, dtype=np.float64)
        have = self.memory[lane, base : base + count]
        out[: have.shape[0]] = have
        return out


class LaneEngine:
    """The SoA interpreter: state arrays plus the per-cycle step."""

    def __init__(
        self,
        access_program: Program,
        execute_program: Program,
        configs: list[SMAConfig],
        memory_image: np.ndarray,
        logical_size: int | None = None,
    ):
        L = len(configs)
        if L == 0:
            raise SimulationError("batch run needs at least one lane")
        qlay = D.QueueLayout.from_config(configs[0])
        for cfg in configs:
            if D.QueueLayout.from_config(cfg) != qlay:
                raise SimulationError(
                    "batch lanes must share the structural queue layout"
                )
            if cfg.memory.accepts_per_cycle != 1:
                raise SimulationError(
                    "batch engine models one memory port per cycle"
                )
            if cfg.stream_issue_per_cycle != 1:
                raise SimulationError(
                    "batch engine models one stream issue per cycle"
                )
            if cfg.faults is not None:
                raise SimulationError(
                    "batch engine does not model fault injection"
                )
        self.qlay = qlay
        # kept for the batch-codegen cache key (program text is what
        # the emitter specializes on)
        self.access_program = access_program
        self.execute_program = execute_program
        self.ap_prog = D.decode_access(access_program, qlay)
        self.ep_prog = D.decode_execute(execute_program, qlay)
        self.ap_len = len(self.ap_prog)
        self.ep_len = len(self.ep_prog)
        NQ = qlay.total
        self.NQ = NQ
        self.NL = qlay.num_load

        i64 = np.int64
        caps = np.array(
            [qlay.capacities(cfg) for cfg in configs], dtype=i64
        )
        CAP = int(caps.max())
        self.latency = np.array(
            [cfg.memory.latency for cfg in configs], dtype=i64
        )
        self.bank_busy = np.array(
            [cfg.memory.bank_busy for cfg in configs], dtype=i64
        )
        self.nbanks = np.array(
            [cfg.memory.num_banks for cfg in configs], dtype=i64
        )
        NB = int(self.nbanks.max())
        self.max_streams = int(configs[0].max_streams)
        for cfg in configs:
            if cfg.max_streams != self.max_streams:
                raise SimulationError(
                    "batch lanes must share max_streams"
                )
        S = self.max_streams
        # in-flight loads are bounded by the reserved slots they occupy
        # (load + index queues); the +1 keeps the ring's head != tail
        P = int(
            (caps[:, : qlay.num_load].sum(axis=1)
             + caps[:, qlay.iq(0) : qlay.saq].sum(axis=1)).max()
        ) + 1

        self.now = np.zeros(L, dtype=i64)
        self.active = np.ones(L, dtype=bool)
        self.cycles = np.zeros(L, dtype=i64)
        self.last_progress = np.zeros(L, dtype=i64)

        self.ap_pc = np.zeros(L, dtype=i64)
        self.ap_halt = np.zeros(L, dtype=bool)
        self.ap_regs = np.zeros((L, 32), dtype=np.float64)
        self.ap_stalled = np.full(L, _NONE, dtype=i64)
        self.ep_pc = np.zeros(L, dtype=i64)
        self.ep_halt = np.zeros(L, dtype=bool)
        self.ep_regs = np.zeros((L, 32), dtype=np.float64)
        self.ep_stalled = np.full(L, _NONE, dtype=i64)

        self.q_vals = np.zeros((L, NQ, CAP), dtype=np.float64)
        self.q_fill = np.full((L, NQ, CAP), _BIG, dtype=i64)
        self.q_head = np.zeros((L, NQ), dtype=i64)
        self.q_count = np.zeros((L, NQ), dtype=i64)
        self.q_cap = caps
        self.saq_dqi = np.zeros((L, CAP), dtype=i64)
        #: per-queue occupancy high-water marks, maintained by the
        #: compiled stepper when ``track_saturation`` is set; the
        #: saturation-collapse planner (:mod:`repro.batch.dispatch`)
        #: uses them to prove deep-queue lanes bit-identical to a probe
        self.q_peak = np.zeros((L, NQ), dtype=i64)
        self.track_saturation = False

        self.st_kind = np.zeros((L, S), dtype=i64)
        self.st_base = np.zeros((L, S), dtype=i64)
        self.st_stride = np.zeros((L, S), dtype=i64)
        self.st_count = np.zeros((L, S), dtype=i64)
        self.st_issued = np.zeros((L, S), dtype=i64)
        self.st_tq = np.full((L, S), _NONE, dtype=i64)
        self.st_dq = np.full((L, S), _NONE, dtype=i64)
        self.st_iq = np.full((L, S), _NONE, dtype=i64)
        self.n_live = np.zeros(L, dtype=i64)
        self.rr = np.zeros(L, dtype=i64)
        self.produced_mask = np.zeros(L, dtype=i64)
        self.consumed_mask = np.zeros(L, dtype=i64)

        # only the touched prefix of memory is materialized per lane;
        # bounds checks use the full logical size and the backing grows
        # on demand, so semantics match the scalar flat store exactly
        self.mem = np.broadcast_to(
            memory_image, (L, memory_image.shape[0])
        ).copy()
        self.alloc = memory_image.shape[0]
        self.msize = (
            memory_image.shape[0] if logical_size is None
            else logical_size
        )
        if self.msize < self.alloc:
            raise SimulationError("logical size smaller than image")
        self.bank_free = np.zeros((L, NB), dtype=i64)
        self.port_used = np.zeros(L, dtype=bool)

        self.pend_t = np.zeros((L, P), dtype=i64)
        self.pend_head = np.zeros(L, dtype=i64)
        self.pend_count = np.zeros(L, dtype=i64)
        self.P = P

        self.stats = LaneStats(
            cycles=self.cycles,
            ap_instructions=np.zeros(L, dtype=i64),
            ep_instructions=np.zeros(L, dtype=i64),
            ap_stalls=np.zeros((L, len(D.AP_CAUSES)), dtype=i64),
            ap_first=np.full((L, len(D.AP_CAUSES)), _BIG, dtype=i64),
            ep_stalls=np.zeros((L, len(D.EP_CAUSES)), dtype=i64),
            ep_first=np.full((L, len(D.EP_CAUSES)), _BIG, dtype=i64),
            lod_events=np.zeros(L, dtype=i64),
            memory_reads=np.zeros(L, dtype=i64),
            memory_writes=np.zeros(L, dtype=i64),
            occupancy_sum=np.zeros(L, dtype=i64),
            occupancy_max=np.zeros(L, dtype=i64),
        )
        # per-cycle scratch flags (full-length; reset over the active set)
        self._delivered = np.zeros(L, dtype=bool)
        self._progress = np.zeros(L, dtype=bool)

    # -- small queue helpers (lanes: absolute index array) ---------------

    def _q_ready(self, lanes, qid):
        """head_ready: a head slot exists and its fill time has come."""
        c = self.q_count[lanes, qid] > 0
        h = self.q_head[lanes, qid]
        return c & (self.q_fill[lanes, qid, h] <= self.now[lanes])

    def _q_peek(self, lanes, qid):
        return self.q_vals[lanes, qid, self.q_head[lanes, qid]]

    def _q_pop(self, lanes, qid):
        h = self.q_head[lanes, qid]
        v = self.q_vals[lanes, qid, h]
        self.q_head[lanes, qid] = (h + 1) % self.q_cap[lanes, qid]
        self.q_count[lanes, qid] -= 1
        return v

    def _q_put(self, lanes, qid, values, fill):
        """Append a slot (push when ``fill == now``, reserve otherwise);
        returns the slot index used."""
        slot = (
            self.q_head[lanes, qid] + self.q_count[lanes, qid]
        ) % self.q_cap[lanes, qid]
        self.q_vals[lanes, qid, slot] = values
        self.q_fill[lanes, qid, slot] = fill
        self.q_count[lanes, qid] += 1
        if self.track_saturation:
            np.maximum.at(self.q_peak, (lanes, qid), self.q_count[lanes, qid])
        return slot

    def _as_addr(self, values) -> np.ndarray:
        addr = values.astype(np.int64)
        if np.any(addr != values):
            bad = values[addr != values][0]
            raise SimulationError(f"non-integral address {bad!r}")
        return addr

    def _check_addr(self, addr) -> None:
        if np.any((addr < 0) | (addr >= self.msize)):
            bad = int(addr[(addr < 0) | (addr >= self.msize)][0])
            raise SimulationError(
                f"address {bad} out of range [0, {self.msize})"
            )
        top = int(addr.max(initial=-1))
        if top >= self.alloc:  # rare: touch beyond the staged prefix
            new = min(self.msize, max(top + 1, 2 * self.alloc))
            pad = np.zeros(
                (self.mem.shape[0], new - self.alloc), dtype=np.float64
            )
            self.mem = np.concatenate([self.mem, pad], axis=1)
            self.alloc = new

    # -- stall / retire bookkeeping --------------------------------------

    def _ap_stall(self, lanes, cause: int) -> None:
        st = self.stats
        st.ap_stalls[lanes, cause] += 1
        first = st.ap_first[lanes, cause] == _BIG
        if first.any():
            st.ap_first[lanes[first], cause] = self.now[lanes[first]]
        if cause in D.LOD_CAUSES:
            entering = self.ap_stalled[lanes] != cause
            st.lod_events[lanes[entering]] += 1
        self.ap_stalled[lanes] = cause

    def _ap_retire(self, lanes, new_pc=None) -> None:
        self.stats.ap_instructions[lanes] += 1
        self.ap_stalled[lanes] = _NONE
        if new_pc is None:
            self.ap_pc[lanes] += 1
        else:
            self.ap_pc[lanes] = new_pc
        self._progress[lanes] = True

    def _ep_stall(self, lanes, cause: int) -> None:
        st = self.stats
        st.ep_stalls[lanes, cause] += 1
        first = st.ep_first[lanes, cause] == _BIG
        if first.any():
            st.ep_first[lanes[first], cause] = self.now[lanes[first]]
        self.ep_stalled[lanes] = cause

    def _ep_retire(self, lanes, new_pc=None) -> None:
        self.stats.ep_instructions[lanes] += 1
        self.ep_stalled[lanes] = _NONE
        if new_pc is None:
            self.ep_pc[lanes] += 1
        else:
            self.ep_pc[lanes] = new_pc
        self._progress[lanes] = True

    # -- memory port -----------------------------------------------------

    def _mem_accept(self, lanes, addr):
        """can_accept + accept bookkeeping caller protocol: callers first
        probe with this mask, then apply effects only where True."""
        bank = addr % self.nbanks[lanes]
        ok = ~self.port_used[lanes] & (
            self.bank_free[lanes, bank] <= self.now[lanes]
        )
        return ok, bank

    def _mem_take(self, lanes, bank) -> None:
        """Port/bank bookkeeping for accepted requests."""
        self.port_used[lanes] = True
        self.bank_free[lanes, bank] = (
            self.now[lanes] + self.bank_busy[lanes]
        )

    def _schedule_fill(self, lanes, qid, addr) -> None:
        """Issue a load: reserve the target slot, capture the value now,
        deliver it (slot fill time + pending ring) ``latency`` later."""
        self._check_addr(addr)
        fill = self.now[lanes] + self.latency[lanes]
        self._q_put(lanes, qid, self.mem[lanes, addr], fill)
        slot = (
            self.pend_head[lanes] + self.pend_count[lanes]
        ) % self.P
        self.pend_t[lanes, slot] = fill
        self.pend_count[lanes] += 1
        self.stats.memory_reads[lanes] += 1
        self._progress[lanes] = True

    # -- per-cycle component steps ---------------------------------------

    def _tick_completions(self, ix) -> None:
        """Deliver matured loads (the banked-memory tick).  Fill times
        are strictly increasing per lane (one issue per cycle, constant
        latency), so at most one fill matures per simulated cycle; the
        loop is belt-and-braces."""
        while True:
            cand = ix[self.pend_count[ix] > 0]
            if cand.size == 0:
                return
            heads = self.pend_t[cand, self.pend_head[cand]]
            mature = heads <= self.now[cand]
            if not mature.any():
                return
            ml = cand[mature]
            self.pend_head[ml] = (self.pend_head[ml] + 1) % self.P
            self.pend_count[ml] -= 1
            self._delivered[ml] = True

    def _tick_store_unit(self, ix) -> None:
        SAQ = self.qlay.saq
        lanes = ix[self._q_ready(ix, SAQ)]
        if lanes.size == 0:
            return
        head = self.q_head[lanes, SAQ]
        addr = self.q_vals[lanes, SAQ, head].astype(np.int64)
        dq = self.qlay.sdq(0) + self.saq_dqi[lanes, head]
        ready = self._q_ready(lanes, dq)
        lanes, addr, dq = lanes[ready], addr[ready], dq[ready]
        if lanes.size == 0:
            return
        ok, bank = self._mem_accept(lanes, addr)
        lanes, addr, dq, bank = lanes[ok], addr[ok], dq[ok], bank[ok]
        if lanes.size == 0:
            return
        self._check_addr(addr)
        self._mem_take(lanes, bank)
        self.mem[lanes, addr] = self._q_peek(lanes, dq)
        self.stats.memory_writes[lanes] += 1
        self._q_pop(lanes, SAQ)
        self._q_pop(lanes, dq)
        self._progress[lanes] = True

    def _tick_engine(self, ix) -> None:
        """Stream-engine tick: pick and issue one request per lane.

        ``StreamEngine.tick`` walks the descriptors round-robin, but
        with ``issue_per_cycle == 1`` the walk always stops at its
        first success, its attempt budget covers every live slot, and a
        failed attempt mutates nothing a job result can observe (only
        queue stall *notes*, which the harness never reports).  So the
        walk's outcome is exactly "the first eligible slot in circular
        order from ``rr``" — computed here in one vectorized pass over
        the slot axis instead of sequential per-attempt rounds, with
        the rr bookkeeping reproduced in closed form:
        ``rr' = (rr + fails_before_success [+ 1 if unfinished]) % n``.

        One observable difference is tolerated: a non-integral value at
        the head of an *index* queue raises when its address is
        computed, which the scalar walk would postpone past a cycle
        whose walk stopped earlier — timing of the raise only, and
        only for programs that fault.
        """
        lanes = ix[self.n_live[ix] > 0]
        if lanes.size == 0:
            return
        n = self.n_live[lanes]
        S = int(n.max())
        k = lanes.size

        # eligibility over the full (lane, slot) matrix in one pass
        valid = np.arange(S, dtype=np.int64)[None, :] < n[:, None]
        kind = self.st_kind[lanes, :S]
        base = self.st_base[lanes, :S]
        addr = base + self.st_issued[lanes, :S] * \
            self.st_stride[lanes, :S]
        produces = ((kind == D.S_LOAD) | (kind == D.S_GATHER)) & valid
        indexed = ((kind == D.S_GATHER) | (kind == D.S_SCATTER)) & valid
        ok = valid.copy()
        if indexed.any():
            r, c = np.nonzero(indexed)
            il = lanes[r]
            iq = self.st_iq[il, c]
            ready = self._q_ready(il, iq)
            ok[r[~ready], c[~ready]] = False
            rl, cl = r[ready], c[ready]
            if rl.size:
                a = self._as_addr(self._q_peek(lanes[rl], iq[ready]))
                addr[rl, cl] = base[rl, cl] + a
        if produces.any():
            r, c = np.nonzero(produces)
            pl = lanes[r]
            tq = self.st_tq[pl, c]
            full = self.q_count[pl, tq] >= self.q_cap[pl, tq]
            ok[r[full], c[full]] = False
        stores = valid & ~produces
        if stores.any():
            r, c = np.nonzero(stores & ok)
            if r.size:
                dl = lanes[r]
                ready = self._q_ready(dl, self.st_dq[dl, c])
                ok[r[~ready], c[~ready]] = False
        bank = addr % self.nbanks[lanes][:, None]
        ok &= self.bank_free[lanes[:, None], bank] <= \
            self.now[lanes][:, None]
        ok[self.port_used[lanes]] = False

        # circular walk position of each slot relative to rr % n
        pos = (
            np.arange(S, dtype=np.int64)[None, :]
            - (self.rr[lanes] % n)[:, None]
        ) % n[:, None]
        pos = np.where(ok, pos, _BIG)
        best = pos.argmin(axis=1)
        fails = pos[np.arange(k), best]
        chosen = fails < _BIG
        # all attempts failed: n advances of (rr+1) % n leave rr % n
        nl = lanes[~chosen]
        self.rr[nl] = self.rr[nl] % n[~chosen]
        if not chosen.any():
            return

        rows = np.flatnonzero(chosen)
        gl = lanes[rows]
        gi = best[rows]
        gaddr = addr[rows, gi]
        gprod = produces[rows, gi]
        gind = indexed[rows, gi]
        self._mem_take(gl, bank[rows, gi])
        if gprod.any():
            pl, pa = gl[gprod], gaddr[gprod]
            self._schedule_fill(pl, self.st_tq[pl, gi[gprod]], pa)
        gst = ~gprod
        if gst.any():
            slv, sa = gl[gst], gaddr[gst]
            self._check_addr(sa)
            dq = self.st_dq[slv, gi[gst]]
            self.mem[slv, sa] = self._q_peek(slv, dq)
            self.stats.memory_writes[slv] += 1
            self._q_pop(slv, dq)
            self._progress[slv] = True
        if gind.any():
            ql = gl[gind]
            self._q_pop(ql, self.st_iq[ql, gi[gind]])
        self.st_issued[gl, gi] += 1
        done = self.st_issued[gl, gi] >= self.st_count[gl, gi]
        # rr walked past the failures; an unfinished success steps once
        # more, a finishing success leaves rr at the compacted list
        adv = fails[rows] + ~done
        self.rr[gl] = (self.rr[gl] + adv) % n[rows]
        for lane, slot in zip(gl[done], gi[done]):
            self._remove_stream(int(lane), int(slot))

    def _remove_stream(self, lane: int, slot: int) -> None:
        """Compact one lane's descriptor list (rare: once per finished
        stream), clearing its queue-role bits."""
        n = int(self.n_live[lane])
        tq = int(self.st_tq[lane, slot])
        dq = int(self.st_dq[lane, slot])
        iq = int(self.st_iq[lane, slot])
        if tq >= 0:
            self.produced_mask[lane] &= ~(1 << tq)
        if dq >= 0:
            self.consumed_mask[lane] &= ~(1 << dq)
        if iq >= 0:
            self.consumed_mask[lane] &= ~(1 << iq)
        for field in (
            self.st_kind, self.st_base, self.st_stride, self.st_count,
            self.st_issued, self.st_tq, self.st_dq, self.st_iq,
        ):
            field[lane, slot : n - 1] = field[lane, slot + 1 : n]
        self.n_live[lane] = n - 1

    # -- processors ------------------------------------------------------

    def _read_ap(self, lanes, operand):
        tag, payload = operand
        if tag == D.R:
            return self.ap_regs[lanes, payload]
        return np.full(lanes.size, payload, dtype=np.float64)

    def _step_ap(self, ix) -> None:
        lanes = ix[~self.ap_halt[ix]]
        if lanes.size == 0:
            return
        pcs = self.ap_pc[lanes]
        for p in np.unique(pcs):
            sub = lanes[pcs == p]
            if p >= self.ap_len:
                raise SimulationError("AP ran off the end of program")
            self._ap_exec(sub, self.ap_prog[p], int(p))

    def _ap_exec(self, lanes, entry, p: int) -> None:
        kind = entry[0]
        if kind == D.A_ALU:
            args = [self._read_ap(lanes, s) for s in entry[2]]
            self.ap_regs[lanes, entry[3]] = _alu_eval(entry[1], args)
            self._ap_retire(lanes)
        elif kind == D.A_LDQ:
            qid = entry[1]
            addr = self._as_addr(
                self._read_ap(lanes, entry[2])
                + self._read_ap(lanes, entry[3])
            )
            free = self.q_count[lanes, qid] < self.q_cap[lanes, qid]
            self._ap_stall(lanes[~free], D.C_QUEUE_FULL)
            lanes, addr = lanes[free], addr[free]
            if lanes.size == 0:
                return
            ok, bank = self._mem_accept(lanes, addr)
            self._ap_stall(lanes[~ok], D.C_MEMORY_BUSY)
            lanes, addr, bank = lanes[ok], addr[ok], bank[ok]
            if lanes.size == 0:
                return
            self._mem_take(lanes, bank)
            self._schedule_fill(lanes, qid, addr)
            self._ap_retire(lanes)
        elif kind == D.A_DECBNZ:
            reg = entry[1]
            self.ap_regs[lanes, reg] -= 1
            taken = self.ap_regs[lanes, reg] != 0
            self._ap_retire(
                lanes, np.where(taken, entry[2], p + 1)
            )
        elif kind == D.A_FROMQ:
            qid, cause, dest = entry[1], entry[2], entry[3]
            ready = self._q_ready(lanes, qid)
            self._ap_stall(lanes[~ready], cause)
            lanes = lanes[ready]
            if lanes.size == 0:
                return
            self.ap_regs[lanes, dest] = self._q_pop(lanes, qid)
            self._ap_retire(lanes)
        elif kind == D.A_STADDR:
            SAQ = self.qlay.saq
            free = self.q_count[lanes, SAQ] < self.q_cap[lanes, SAQ]
            self._ap_stall(lanes[~free], D.C_SAQ_FULL)
            lanes = lanes[free]
            if lanes.size == 0:
                return
            addr = self._as_addr(
                self._read_ap(lanes, entry[2])
                + self._read_ap(lanes, entry[3])
            )
            slot = self._q_put(
                lanes, SAQ, addr.astype(np.float64), self.now[lanes]
            )
            self.saq_dqi[lanes, slot] = entry[1]
            self._ap_retire(lanes)
        elif kind == D.A_BQ:
            EBQ = self.qlay.ebq
            ready = self._q_ready(lanes, EBQ)
            self._ap_stall(lanes[~ready], D.C_LOD_EBQ)
            lanes = lanes[ready]
            if lanes.size == 0:
                return
            value = self._q_pop(lanes, EBQ)
            taken = (value != 0) == entry[1]
            self._ap_retire(
                lanes, np.where(taken, entry[2], p + 1)
            )
        elif kind == D.A_BR:
            value = self._read_ap(lanes, entry[1])
            taken = (value == 0) == entry[2]
            self._ap_retire(
                lanes, np.where(taken, entry[3], p + 1)
            )
        elif kind == D.A_STREAM:
            self._ap_stream(lanes, entry)
        elif kind == D.A_JMP:
            self._ap_retire(
                lanes, np.full(lanes.size, entry[1], dtype=np.int64)
            )
        elif kind == D.A_HALT:
            self.ap_halt[lanes] = True
            self._ap_retire(lanes)
        else:  # A_NOP
            self._ap_retire(lanes)

    def _ap_stream(self, lanes, entry) -> None:
        (_, skind, tq, dq, iq, base_op, stride_op, count_op,
         consumed) = entry
        free = self.n_live[lanes] < self.max_streams
        self._ap_stall(lanes[~free], D.C_STREAM_SLOTS)
        lanes = lanes[free]
        if lanes.size == 0:
            return
        busy = np.zeros(lanes.size, dtype=bool)
        if tq >= 0:
            busy |= (self.produced_mask[lanes] >> tq) & 1 == 1
        for qid in consumed:
            busy |= (self.consumed_mask[lanes] >> qid) & 1 == 1
        self._ap_stall(lanes[busy], D.C_STREAM_QUEUE_BUSY)
        lanes = lanes[~busy]
        if lanes.size == 0:
            return
        base = self._as_addr(self._read_ap(lanes, base_op))
        stride = (
            self._as_addr(self._read_ap(lanes, stride_op))
            if stride_op is not None
            else np.ones(lanes.size, dtype=np.int64)
        )
        count = self._as_addr(self._read_ap(lanes, count_op))
        if np.any(count < 0):
            raise SimulationError("negative stream count")
        live = count > 0  # zero-length streams never activate
        ll = lanes[live]
        if ll.size:
            slot = self.n_live[ll]
            self.st_kind[ll, slot] = skind
            self.st_base[ll, slot] = base[live]
            self.st_stride[ll, slot] = stride[live]
            self.st_count[ll, slot] = count[live]
            self.st_issued[ll, slot] = 0
            self.st_tq[ll, slot] = tq
            self.st_dq[ll, slot] = dq
            self.st_iq[ll, slot] = iq
            self.n_live[ll] += 1
            if tq >= 0:
                self.produced_mask[ll] |= 1 << tq
            if dq >= 0:
                self.consumed_mask[ll] |= 1 << dq
            if iq >= 0:
                self.consumed_mask[ll] |= 1 << iq
        self._ap_retire(lanes)

    def _read_ep(self, lanes, operand):
        tag, payload = operand
        if tag == D.R:
            return self.ep_regs[lanes, payload]
        return np.full(lanes.size, payload, dtype=np.float64)

    def _step_ep(self, ix) -> None:
        lanes = ix[~self.ep_halt[ix]]
        if lanes.size == 0:
            return
        pcs = self.ep_pc[lanes]
        for p in np.unique(pcs):
            sub = lanes[pcs == p]
            if p >= self.ep_len:
                raise SimulationError("EP ran off the end of program")
            self._ep_exec(sub, self.ep_prog[p], int(p))

    def _ep_exec(self, lanes, entry, p: int) -> None:
        kind = entry[0]
        if kind == D.E_ALU:
            srcs = entry[2]
            ok = np.ones(lanes.size, dtype=bool)
            for tag, payload in srcs:
                if tag == D.Q:
                    sub = np.flatnonzero(ok)
                    ready = self._q_ready(lanes[sub], payload)
                    ok[sub[~ready]] = False
            self._ep_stall(lanes[~ok], D.C_LQ_EMPTY)
            lanes = lanes[ok]
            if lanes.size == 0:
                return
            dest_q = entry[3]
            if dest_q is not None:
                free = (
                    self.q_count[lanes, dest_q]
                    < self.q_cap[lanes, dest_q]
                )
                self._ep_stall(lanes[~free], D.C_Q_FULL)
                lanes = lanes[free]
                if lanes.size == 0:
                    return
            args = [
                self._q_pop(lanes, payload) if tag == D.Q
                else self._read_ep(lanes, (tag, payload))
                for tag, payload in srcs
            ]
            result = _alu_eval(entry[1], args)
            if dest_q is not None:
                self._q_put(lanes, dest_q, result, self.now[lanes])
            else:
                self.ep_regs[lanes, entry[4]] = result
            self._ep_retire(lanes)
        elif kind == D.E_BR:
            value = self._read_ep(lanes, entry[1])
            taken = (value == 0) == entry[2]
            self._ep_retire(
                lanes, np.where(taken, entry[3], p + 1)
            )
        elif kind == D.E_DECBNZ:
            reg = entry[1]
            self.ep_regs[lanes, reg] -= 1
            taken = self.ep_regs[lanes, reg] != 0
            self._ep_retire(
                lanes, np.where(taken, entry[2], p + 1)
            )
        elif kind == D.E_JMP:
            self._ep_retire(
                lanes, np.full(lanes.size, entry[1], dtype=np.int64)
            )
        elif kind == D.E_HALT:
            self.ep_halt[lanes] = True
            self._ep_retire(lanes)
        else:  # E_NOP
            self._ep_retire(lanes)

    # -- the run loop ----------------------------------------------------

    def _deadlock_error(self, lane: int, deadlock_window: int) -> None:
        """Raise the deadlock diagnostic for one overdue lane (shared by
        the interpreted loop and generated lane steppers)."""
        raise SimulationError(
            "deadlock: no forward progress for "
            f"{deadlock_window} cycles at cycle "
            f"{int(self.now[lane])} (lane {lane}); "
            f"AP@{int(self.ap_pc[lane])} "
            f"halted={bool(self.ap_halt[lane])}; "
            f"EP@{int(self.ep_pc[lane])} "
            f"halted={bool(self.ep_halt[lane])}; "
            f"live streams={int(self.n_live[lane])}"
        )

    def run(
        self,
        max_cycles: int = 10_000_000,
        deadlock_window: int = 10_000,
        compiled: bool | None = None,
    ) -> BatchOutcome:
        """Run every lane to completion.

        ``compiled`` selects the stepper: ``None`` (default) uses the
        program-specialized generated loop when the emitter supports the
        program, falling back to the interpreted loop; ``True`` requires
        the generated loop (raises :class:`SimulationError` when the
        program cannot be specialized); ``False`` forces the
        interpreted loop.  All three produce bit-identical statistics
        and memory images.
        """
        if compiled is None or compiled:
            from .cache import get_or_compile

            artifact = get_or_compile(self)
            if artifact is not None:
                artifact.fn(self, max_cycles, deadlock_window)
                return BatchOutcome(stats=self.stats, memory=self.mem)
            if compiled:
                raise SimulationError(
                    "program cannot be specialized by the batch "
                    "emitter (compiled=True)"
                )
        st = self.stats
        NL = self.NL
        while True:
            ix = np.flatnonzero(self.active)
            if ix.size == 0:
                break
            self._delivered[ix] = False
            self._progress[ix] = False
            self.port_used[ix] = False

            self._tick_completions(ix)
            self._tick_store_unit(ix)
            self._tick_engine(ix)
            self._step_ap(ix)
            self._step_ep(ix)

            outst = self.q_count[ix, :NL].sum(axis=1)
            st.occupancy_sum[ix] += outst
            bigger = outst > st.occupancy_max[ix]
            st.occupancy_max[ix[bigger]] = outst[bigger]
            self.now[ix] += 1

            prog = self._progress[ix]
            self.last_progress[ix[prog]] = self.now[ix[prog]]

            done = (
                self.ap_halt[ix]
                & self.ep_halt[ix]
                & (self.n_live[ix] == 0)
                & (self.q_count[ix, self.qlay.saq] == 0)
                & (self.pend_count[ix] == 0)
            )
            dl = ix[done]
            if dl.size:
                self.cycles[dl] = self.now[dl]
                self.active[dl] = False
            live = ix[~done]
            if live.size == 0:
                continue
            if np.any(self.now[live] >= max_cycles):
                raise SimulationError(
                    f"exceeded cycle budget {max_cycles}"
                )

            idle = live[
                ~self._progress[live] & ~self._delivered[live]
            ]
            if idle.size:
                self._idle_jump(
                    idle, outst[~done][
                        ~self._progress[live] & ~self._delivered[live]
                    ],
                    max_cycles, deadlock_window,
                )
            overdue = live[
                self.now[live] - self.last_progress[live]
                > deadlock_window
            ]
            if overdue.size:
                self._deadlock_error(int(overdue[0]), deadlock_window)
        return BatchOutcome(stats=st, memory=self.mem)

    def _idle_jump(
        self, lanes, outst, max_cycles: int, deadlock_window: int
    ) -> None:
        """Fast-forward steady stalls: the just-simulated cycle made no
        progress and delivered nothing, so every cycle until the lane's
        next memory event repeats it exactly — add its statistic
        increments in closed form and jump the lane clock."""
        tprev = self.now[lanes] - 1  # the cycle just simulated
        pend = np.where(
            self.pend_count[lanes] > 0,
            self.pend_t[lanes, self.pend_head[lanes]],
            _BIG,
        )
        bf = self.bank_free[lanes]
        banks = np.where(bf > tprev[:, None], bf, _BIG).min(axis=1)
        horizon = np.minimum(
            self.last_progress[lanes] + deadlock_window + 1, max_cycles
        )
        target = np.minimum(np.minimum(pend, banks), horizon)
        skipped = target - self.now[lanes]
        hop = skipped > 0
        lanes, skipped = lanes[hop], skipped[hop]
        if lanes.size == 0:
            return
        ap_c = self.ap_stalled[lanes]
        apl = ap_c != _NONE  # non-halted AP repeats its stall cause
        self.stats.ap_stalls[lanes[apl], ap_c[apl]] += skipped[apl]
        ep_c = self.ep_stalled[lanes]
        epl = ep_c != _NONE
        self.stats.ep_stalls[lanes[epl], ep_c[epl]] += skipped[epl]
        self.stats.occupancy_sum[lanes] += outst[hop] * skipped
        self.now[lanes] += skipped
