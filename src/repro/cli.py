"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``kernels``
    List the workload suite with categories and descriptions.

``run KERNEL``
    Run one suite kernel on both machines (verified against the
    reference) and print the comparison.

``compile KERNEL``
    Print the lowered scalar / access / execute programs for a kernel.

``experiment ID [ID ...]``
    Run reconstructed experiments by identifier (``R-T1`` .. ``R-F8``,
    ``all``; spelling is forgiving — ``rf8`` selects ``R-F8``); figure
    experiments can add ``--plot`` for an ASCII chart,
    and ``--csv`` emits machine-readable output.  ``--jobs N`` fans the
    experiment's simulation jobs over N worker processes; ``--cache DIR``
    reuses results across invocations (keyed by kernel, config, and code
    version).  ``--metrics`` captures a RunReport (stall attribution +
    counters) per simulation job, ``--metrics-dir DIR`` persists them as
    JSON, and ``--n`` overrides the problem size (what the CI metrics
    smoke step uses).

``sweep ID``
    Crash-safe experiment sweep: ``experiment`` plus a mandatory result
    cache, per-job ``--timeout``, bounded ``--retries`` with pool
    recovery, and ``--resume`` to continue an interrupted sweep (only
    uncached jobs re-execute).  ``--inject-fault MODE[:VALUE]``
    exercises the recovery paths on purpose (see
    ``repro.harness.faults``); CI uses it to prove kill-resume and
    corrupt-cache quarantine actually work.  ``--backend batch`` steps
    the sweep's eligible SMA jobs in lockstep through the SoA batch
    engine (``repro.batch``) — bit-identical results, cached under the
    same keys.  ``--batch-workers N`` shards the batch lane groups over
    N fingerprint-seeded worker processes.

``serve``
    Sweep-as-a-service: a stdlib asyncio HTTP server over the harness.
    Clients POST job specs; identical in-flight jobs coalesce onto one
    execution, the backlog is bounded (429 on overflow), results land
    in a content-addressed store (byte-identical results share one
    blob), and preemptible jobs run in checkpointed slices so a
    drained or crashed worker's job resumes on another worker without
    lost cycles.  ``--promote DIR`` seeds the store from an existing
    ``sweep`` cache.  See ``repro.service``.

``submit ID``
    Run an experiment's simulation jobs through a running ``serve``
    instance (``run_jobs(backend="service")``): results stream back as
    they land and can be flushed into a local ``--cache`` for offline
    reuse.

``batch KERNEL``
    Dense (latency × queue-depth × bank-count) sweep of one kernel
    through the batch engine: thousands of timing configurations as
    numpy lanes in one process.  Eligible lane groups run through the
    program-specialized batch codegen stepper (saturation-collapsed,
    bit-identical to the interpreted engine; see
    ``repro.batch.emitter``), and ``--batch-workers N`` shards them
    over N worker processes.  Grid axes take comma-separated values
    and inclusive ``LO-HI`` ranges (``--latencies 1,2,4-8``); output is
    one CSV row per grid point, with a points/second summary on stderr.

``checkpoint save/load``
    Mid-run machine checkpoints.  ``save`` runs a kernel for
    ``--cycles`` cycles, snapshots the full machine state and writes it
    (with its sha256 digest) to ``--out``; ``load`` rebuilds the same
    machine, restores the snapshot, verifies the digest, and runs to
    completion.  Restore is fingerprint-checked: loading a checkpoint
    into a machine built from different programs or config is an error.

``report KERNEL``
    Where did every cycle go?  Runs the kernel on both machines with the
    metrics layer attached and prints the stall-attribution breakdown
    (see ``repro.metrics``); ``--out DIR`` writes JSON/CSV exports.

``timeline KERNEL``
    Per-cycle pipeline view of a kernel on the SMA (the decoupling made
    visible; see ``repro.trace.timeline``).

``profile KERNEL``
    cProfile one kernel's SMA simulation and attribute exclusive time to
    simulator components (access processor, stream engine, memory, ...);
    ``--scheduler`` picks the simulation loop (naive / joint-idle /
    event-horizon) so loop costs can be compared, ``--top K`` adds the K
    hottest individual functions.

``codegen show KERNEL`` / ``codegen list``
    Dump the program-specialized tick function the ``"codegen"``
    scheduler compiles for a kernel (see ``repro.codegen``), or list the
    in-process artifact cache with its hit/miss counters.

``verify KERNEL``
    Check a kernel's per-address write sequences on each machine against
    sequential semantics (the strongest correctness check; see
    ``repro.verify``).

``parse FILE``
    Parse a kernel-source file (see ``repro.kernels.lang``), run it on
    both machines with random data, and verify against the reference.

Examples::

    python -m repro kernels
    python -m repro run hydro --n 512 --latency 16
    python -m repro compile tridiag
    python -m repro experiment R-F1 --plot
    python -m repro timeline tridiag --n 32 --last 60
    python -m repro parse mykernel.k --n 128
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .config import MemoryConfig, QueueConfig, ScalarConfig, SMAConfig
from .errors import KernelError
from .harness import EXPERIMENTS, compare_spec, run_experiment
from .harness.plot import render_plot
from .kernels import (
    all_kernels,
    get_kernel,
    lower_scalar,
    lower_sma,
    parse_kernel,
    run_reference,
)


def _configs(latency: int):
    mem = MemoryConfig(latency=latency, bank_busy=max(1, latency // 2))
    return (
        SMAConfig(memory=mem, queues=QueueConfig()),
        ScalarConfig(memory=mem),
    )


def cmd_kernels(_args) -> int:
    width = max(len(s.name) for s in all_kernels())
    for spec in all_kernels():
        print(f"{spec.name:<{width}}  [{spec.category:<10}] "
              f"{spec.description}")
    return 0


def cmd_run(args) -> int:
    spec = get_kernel(args.kernel)
    sma_cfg, scalar_cfg = _configs(args.latency)
    result = compare_spec(
        spec, args.n, sma_config=sma_cfg, scalar_config=scalar_cfg
    )
    print(f"kernel   {spec.name} (n={result.n}, latency={args.latency})")
    print(f"scalar   {result.scalar.cycles} cycles")
    print(f"SMA      {result.sma.cycles} cycles")
    print(f"speedup  {result.speedup:.2f}x")
    print("\nSMA detail:")
    print(result.sma.result.summary())
    print("\n(both runs verified word-exact against the reference)")
    return 0


def cmd_compile(args) -> int:
    spec = get_kernel(args.kernel)
    kernel, _ = spec.instantiate(args.n)
    print(kernel.pretty())
    scalar = lower_scalar(kernel)
    sma = lower_sma(kernel)
    print("\n--- scalar program ---")
    print(scalar.program.listing())
    print("\n--- SMA access program ---")
    print(sma.access_program.listing())
    print("\n--- SMA execute program ---")
    print(sma.execute_program.listing())
    return 0


def _experiment_id_summary() -> str:
    """Render the experiment registry as compact help text, e.g.
    ``R-T1..R-T7, R-F1..R-F9`` — derived from ``EXPERIMENTS`` so the CLI
    help can never drift from the registered set."""
    groups: dict[str, list[int]] = {}
    odd: list[str] = []
    for eid in EXPERIMENTS:
        head, _, tail = eid.rpartition("-")
        stem, digits = tail.rstrip("0123456789"), tail[len(tail.rstrip("0123456789")):]
        if not digits:
            odd.append(eid)
            continue
        groups.setdefault(f"{head}-{stem}", []).append(int(digits))
    parts = []
    for prefix, nums in groups.items():
        nums.sort()
        if len(nums) > 1 and nums == list(range(nums[0], nums[-1] + 1)):
            parts.append(f"{prefix}{nums[0]}..{prefix}{nums[-1]}")
        else:
            parts.extend(f"{prefix}{k}" for k in nums)
    return ", ".join(parts + sorted(odd))


def _normalize_experiment_id(raw: str) -> str:
    """Map user spellings onto canonical experiment ids: ``rf8``,
    ``r-f8`` and ``R-F8`` all select ``R-F8``."""
    folded = raw.replace("-", "").replace("_", "").upper()
    for experiment_id in EXPERIMENTS:
        if experiment_id.replace("-", "").upper() == folded:
            return experiment_id
    return raw


def cmd_experiment(args) -> int:
    from contextlib import nullcontext

    if "all" in args.ids:
        ids = list(EXPERIMENTS)
    else:
        ids = [_normalize_experiment_id(raw) for raw in args.ids]
    metrics = getattr(args, "metrics", False)
    if metrics:
        from .metrics import capture_reports

        if getattr(args, "jobs", 1) != 1:
            print("--metrics capture is serial; ignoring --jobs",
                  file=sys.stderr)
            args.jobs = 1
        context = capture_reports(args.metrics_dir)
    else:
        context = nullcontext(None)
    with context as collector:
        for experiment_id in ids:
            if experiment_id not in EXPERIMENTS:
                print(f"unknown experiment {experiment_id!r}; "
                      f"known: {sorted(EXPERIMENTS)} or 'all'",
                      file=sys.stderr)
                return 2
            # only pass harness kwargs when requested, so experiment
            # callables that don't take them keep working
            kwargs = {}
            if getattr(args, "jobs", 1) != 1:
                kwargs["jobs"] = args.jobs
            if getattr(args, "cache", None):
                kwargs["cache_dir"] = args.cache
            if getattr(args, "n", None) is not None:
                kwargs["n"] = args.n
            table = run_experiment(experiment_id, **kwargs)
            if args.csv:
                print(table.to_csv(), end="")
            else:
                print(table.to_text())
            if args.plot and experiment_id.startswith("R-F"):
                try:
                    print()
                    print(render_plot(table))
                except ValueError as exc:
                    print(f"  (no plot: {exc})")
            print()
        if collector is not None:
            where = (f" under {collector.directory}"
                     if collector.directory is not None else "")
            print(f"captured {len(collector.reports)} RunReport(s){where}")
    return 0


def cmd_sweep(args) -> int:
    import inspect
    from pathlib import Path

    from .harness import harness_policy
    from .harness.faults import FaultSpec

    experiment_id = _normalize_experiment_id(args.id)
    if experiment_id not in EXPERIMENTS:
        print(f"unknown experiment {args.id!r}; "
              f"known: {sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2
    backend_kwargs = {}
    if args.backend != "scalar":
        fn = EXPERIMENTS[experiment_id]
        if "backend" in inspect.signature(fn).parameters:
            backend_kwargs["backend"] = args.backend
            if args.batch_workers != 1:
                backend_kwargs["batch_workers"] = args.batch_workers
        else:
            print(f"{experiment_id} has no dense SMA sweep; "
                  f"ignoring --backend {args.backend}", file=sys.stderr)
    elif args.batch_workers != 1:
        print("--batch-workers only applies with --backend batch; "
              "ignoring it", file=sys.stderr)
    cache = Path(args.cache)
    cached_entries = list(cache.glob("*.json")) if cache.is_dir() else []
    if cached_entries and not args.resume:
        print(f"cache {cache} already holds {len(cached_entries)} "
              "result(s); pass --resume to continue the sweep or point "
              "--cache at a fresh directory", file=sys.stderr)
        return 2
    cache.mkdir(parents=True, exist_ok=True)

    inject = None
    if args.inject_fault:
        try:
            # the token file makes one-shot faults fire once per sweep
            # even across pool workers (and across --resume reruns)
            inject = FaultSpec.parse(
                args.inject_fault, token_path=str(cache / ".fault-token")
            )
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2

    kwargs = {"cache_dir": str(cache), **backend_kwargs}
    if args.jobs != 1:
        kwargs["jobs"] = args.jobs
    if args.n is not None:
        kwargs["n"] = args.n
    with harness_policy(
        timeout=args.timeout, retries=args.retries, inject=inject
    ) as stats:
        table = run_experiment(experiment_id, **kwargs)
    if args.csv:
        print(table.to_csv(), end="")
    else:
        print(table.to_text())
    print(f"\nsweep {experiment_id}: {stats.summary()}", file=sys.stderr)
    return 0


def cmd_serve(args) -> int:
    import asyncio

    from .harness.parallel import HarnessPolicy
    from .service import ContentStore, SweepServer

    store = ContentStore(args.store)
    if args.promote:
        imported = store.promote(args.promote)
        print(f"promoted {imported} cached result(s) from {args.promote}",
              file=sys.stderr)
    policy = HarnessPolicy(timeout=args.timeout, retries=args.retries)
    server = SweepServer(
        store,
        host=args.host,
        port=args.port,
        workers=args.workers,
        pool_workers=args.pool_workers,
        max_backlog=args.max_backlog,
        policy=policy,
        slice_cycles=args.slice_cycles,
    )

    async def serve() -> None:
        host, port = await server.start()
        # the bound URL goes to stdout (line-buffered) so wrappers and
        # the CI smoke can discover a --port 0 allocation
        print(f"serving on http://{host}:{port}", flush=True)
        await server.serve_forever()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        print("interrupted; store is consistent (atomic writes)",
              file=sys.stderr)
    return 0


def cmd_submit(args) -> int:
    import inspect

    from .harness import harness_policy
    from .service.client import ServiceClient, ServiceError

    experiment_id = _normalize_experiment_id(args.id)
    if experiment_id not in EXPERIMENTS:
        print(f"unknown experiment {args.id!r}; "
              f"known: {sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2
    if not ServiceClient(args.url).healthz():
        print(f"no sweep service answering at {args.url}",
              file=sys.stderr)
        return 2
    kwargs = {"backend": "service"}
    if "backend" not in inspect.signature(
        EXPERIMENTS[experiment_id]
    ).parameters:
        print(f"{experiment_id} does not forward a backend; its jobs "
              "run locally", file=sys.stderr)
        kwargs = {}
    if args.cache:
        kwargs["cache_dir"] = args.cache
    if args.n is not None:
        kwargs["n"] = args.n
    try:
        with harness_policy(service_url=args.url) as stats:
            table = run_experiment(experiment_id, **kwargs)
    except ServiceError as exc:
        print(f"service run failed: {exc}", file=sys.stderr)
        return 1
    if args.csv:
        print(table.to_csv(), end="")
    else:
        print(table.to_text())
    print(f"\nsubmit {experiment_id}: {stats.summary()}", file=sys.stderr)
    return 0


def _parse_axis(spec: str) -> tuple[int, ...]:
    """Parse one grid axis: comma-separated positive ints and inclusive
    ``LO-HI`` ranges, e.g. ``"1,2,4-8,16"``."""
    values: list[int] = []
    for item in spec.split(","):
        item = item.strip()
        lo, dash, hi = item.partition("-")
        try:
            if dash:
                start, stop = int(lo), int(hi)
                if start > stop:
                    raise ValueError
                values.extend(range(start, stop + 1))
            else:
                values.append(int(item))
        except ValueError:
            raise ValueError(
                f"bad grid axis item {item!r}; expected an int or LO-HI"
            ) from None
    if any(v < 1 for v in values):
        raise ValueError(f"grid axis values must be >= 1: {spec!r}")
    return tuple(values)


def cmd_batch(args) -> int:
    import time

    from .harness import harness_policy
    from .harness.jobs import BatchJob
    from .harness.parallel import run_jobs

    try:
        get_kernel(args.kernel)  # fail fast on an unknown kernel name
        batch_job = BatchJob(
            args.kernel, args.n, args.seed, machine=args.machine,
            latencies=_parse_axis(args.latencies),
            queue_depths=_parse_axis(args.queue_depths),
            bank_counts=_parse_axis(args.banks),
            check=args.check,
        )
    except (KeyError, ValueError, KernelError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    jobs = batch_job.expand()
    start = time.perf_counter()
    with harness_policy() as stats:
        results = run_jobs(jobs, cache_dir=args.cache, backend="batch",
                           batch_workers=args.batch_workers)
    wall = time.perf_counter() - start
    print("latency,queue_depth,banks,cycles,memory_reads,memory_writes,"
          "mean_outstanding_loads")
    i = 0
    for latency in batch_job.latencies:
        for depth in batch_job.queue_depths:
            for banks in batch_job.bank_counts:
                res = results[i]
                print(f"{latency},{depth},{banks},{res['cycles']},"
                      f"{res['memory_reads']},{res['memory_writes']},"
                      f"{res['mean_outstanding_loads']:.4f}")
                i += 1
    rate = len(jobs) / wall if wall > 0 else float("inf")
    print(f"batch {args.kernel} (n={batch_job.n}): {len(jobs)} grid "
          f"point(s) in {wall:.2f}s ({rate:.0f} points/s); "
          f"{stats.summary()}", file=sys.stderr)
    return 0


def _checkpoint_machine(kernel_name: str, n: int, seed: int, latency: int):
    """Build the (machine, spec) a ``checkpoint`` snapshot belongs to —
    save and load must construct it identically for the fingerprint
    check to pass."""
    from dataclasses import replace as _replace

    from .core import SMAMachine
    from .harness.runner import _fit_memory, _load_inputs

    spec = get_kernel(kernel_name)
    kernel, inputs = spec.instantiate(n, seed)
    lowered = lower_sma(kernel)
    sma_cfg, _ = _configs(latency)
    cfg = _replace(sma_cfg, memory=_fit_memory(sma_cfg.memory,
                                               lowered.layout))
    machine = SMAMachine(lowered.access_program, lowered.execute_program,
                         cfg)
    _load_inputs(machine, lowered.layout, kernel, inputs)
    return machine, spec


def cmd_checkpoint(args) -> int:
    import json
    from pathlib import Path

    from .core import snapshot_digest
    from .errors import CheckpointError

    if args.action == "save":
        machine, spec = _checkpoint_machine(
            args.kernel, args.n, args.seed, args.latency
        )
        stepped = machine.step_cycles(args.cycles)
        snap = machine.snapshot()
        payload = {
            "kernel": spec.name,
            "n": args.n,
            "seed": args.seed,
            "latency": args.latency,
            "digest": snapshot_digest(snap),
            "snapshot": snap,
        }
        out = Path(args.out)
        out.write_text(json.dumps(payload) + "\n")
        print(f"saved {spec.name} @ cycle {machine.cycle} "
              f"({stepped} stepped) to {out}")
        print(f"digest {payload['digest']}")
        return 0

    # load: rebuild the identical machine, restore, verify, finish
    try:
        payload = json.loads(Path(args.file).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read checkpoint {args.file}: {exc}",
              file=sys.stderr)
        return 2
    try:
        machine, spec = _checkpoint_machine(
            payload["kernel"], payload["n"], payload["seed"],
            payload["latency"],
        )
        machine.restore(payload["snapshot"])
    except (KeyError, TypeError) as exc:
        print(f"malformed checkpoint {args.file}: {exc}", file=sys.stderr)
        return 2
    except CheckpointError as exc:
        print(f"checkpoint rejected: {exc}", file=sys.stderr)
        return 2
    restored = machine.state_digest()
    if restored != payload["digest"]:
        print(f"digest mismatch after restore: {restored} != "
              f"{payload['digest']}", file=sys.stderr)
        return 1
    print(f"restored {spec.name} @ cycle {machine.cycle}")
    print(f"digest {restored} (verified)")
    result = machine.run()
    print(f"ran to completion: {result.cycles} cycles total")
    return 0


def cmd_report(args) -> int:
    from pathlib import Path

    from .harness.runner import run_on_scalar, run_on_sma

    spec = get_kernel(args.kernel)
    kernel, inputs = spec.instantiate(args.n)
    sma_cfg, scalar_cfg = _configs(args.latency)
    runs = []
    if args.machine in ("both", "sma"):
        runs.append(run_on_sma(kernel, inputs, sma_cfg, metrics=True))
    if args.machine in ("both", "scalar"):
        runs.append(run_on_scalar(kernel, inputs, scalar_cfg, metrics=True))
    out_dir = Path(args.out) if args.out else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
    for run in runs:
        report = run.report
        report.n = args.n
        print(f"== {report.machine} · {spec.name} "
              f"(n={args.n}, latency={args.latency}) ==")
        print(report.breakdown_text())
        print()
        if out_dir is not None:
            stem = f"runreport-{report.machine}-{spec.name}"
            (out_dir / f"{stem}.json").write_text(report.to_json() + "\n")
            (out_dir / f"{stem}.csv").write_text(report.to_csv())
    if out_dir is not None:
        print(f"wrote {2 * len(runs)} file(s) under {out_dir}")
    return 0


def cmd_timeline(args) -> int:
    from .core import SMAMachine
    from .harness.runner import _fit_memory, _load_inputs
    from .trace import TimelineRecorder
    from dataclasses import replace as _replace

    spec = get_kernel(args.kernel)
    kernel, inputs = spec.instantiate(args.n)
    lowered = lower_sma(kernel)
    sma_cfg, _ = _configs(args.latency)
    cfg = _replace(sma_cfg, memory=_fit_memory(sma_cfg.memory,
                                               lowered.layout))
    machine = SMAMachine(lowered.access_program, lowered.execute_program,
                         cfg)
    _load_inputs(machine, lowered.layout, kernel, inputs)
    recorder = TimelineRecorder()
    result = machine.run(observer=recorder)
    print(f"{spec.name}: {result.cycles} cycles "
          f"(showing {args.first}..{args.last})\n")
    print(recorder.render(args.first, args.last))
    return 0


#: component attribution for ``repro profile``: simulator source file ->
#: human-readable component name (anything else lands in "other"; the
#: codegen package and its generated ``<sma-codegen:...>`` frames are
#: matched by path in :func:`profile_attribution`, so emission/compile
#: cost and generated-loop cost show up as separate components)
_PROFILE_COMPONENTS = {
    "access_processor.py": "access processor",
    "execute_processor.py": "execute processor",
    "descriptors.py": "stream engine",
    "store_unit.py": "store unit",
    "banks.py": "banked memory",
    "main_memory.py": "main memory",
    "operand_queue.py": "operand queues",
    "queue_file.py": "operand queues",
    "machine.py": "scheduler core",
    "classify.py": "metrics",
    "report.py": "metrics",
    "samplers.py": "metrics",
}


def profile_attribution(stats) -> dict[str, float]:
    """Fold a :class:`pstats.Stats` table into per-component exclusive
    time (seconds), keyed by the names in ``_PROFILE_COMPONENTS``."""
    import os

    totals: dict[str, float] = {}
    for (filename, _lineno, _name), entry in stats.stats.items():
        tottime = entry[2]
        if filename.startswith("<sma-batch-codegen"):
            component = "batch generated code"
        elif filename.startswith("<sma-codegen"):
            component = "generated code"
        elif f"{os.sep}codegen{os.sep}" in filename:
            component = "codegen compile"
        else:
            component = _PROFILE_COMPONENTS.get(
                os.path.basename(filename), "other"
            )
        totals[component] = totals.get(component, 0.0) + tottime
    return totals


def cmd_profile(args) -> int:
    import cProfile
    import os
    import pstats
    import time
    from dataclasses import replace as _replace

    from .core import SMAMachine
    from .harness.runner import _fit_memory, _load_inputs

    spec = get_kernel(args.kernel)
    kernel, inputs = spec.instantiate(args.n)
    lowered = lower_sma(kernel)
    sma_cfg, _ = _configs(args.latency)
    cfg = _replace(sma_cfg, memory=_fit_memory(sma_cfg.memory,
                                               lowered.layout))
    machine = SMAMachine(lowered.access_program, lowered.execute_program,
                         cfg)
    _load_inputs(machine, lowered.layout, kernel, inputs)

    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    result = machine.run(scheduler=args.scheduler)
    profiler.disable()
    wall = time.perf_counter() - start

    rate = result.cycles / wall if wall > 0 else float("inf")
    print(f"== profile · {spec.name} (n={args.n}, "
          f"latency={args.latency}, scheduler={args.scheduler}) ==")
    print(f"cycles {result.cycles}   wall {wall:.3f}s   "
          f"{rate / 1e6:.2f} Mcycles/s\n")

    stats = pstats.Stats(profiler)
    totals = profile_attribution(stats)
    grand = sum(totals.values()) or 1.0
    print(f"{'component':<20} {'tottime':>9} {'share':>7}")
    for component, tottime in sorted(
        totals.items(), key=lambda item: item[1], reverse=True
    ):
        print(f"{component:<20} {tottime:>8.4f}s "
              f"{100.0 * tottime / grand:>6.1f}%")

    if args.top:
        print(f"\nhottest {args.top} function(s) by exclusive time:")
        stats.sort_stats("tottime")
        width = len(str(args.top))
        shown = 0
        for key in stats.fcn_list:
            filename, lineno, name = key
            tottime = stats.stats[key][2]
            location = f"{os.path.basename(filename)}:{lineno}"
            print(f"  {shown + 1:>{width}}. {tottime:>8.4f}s  "
                  f"{name}  ({location})")
            shown += 1
            if shown >= args.top:
                break
    return 0


def cmd_codegen(args) -> int:
    from dataclasses import replace as _replace

    from .codegen import (
        cached_artifacts,
        compiled_loop_for,
        compiled_step_for,
        stats as codegen_stats,
    )
    from .core import SMAMachine
    from .harness.runner import _fit_memory, _load_inputs

    if args.action == "list":
        artifacts = cached_artifacts()
        if not artifacts:
            print("codegen cache is empty")
        for artifact in artifacts:
            lines = artifact.source.count("\n")
            print(f"{artifact.key[:12]}  {artifact.kind:<4}  "
                  f"{lines:>5} lines  engine={artifact.uses_engine} "
                  f"su={artifact.uses_su} memory={artifact.uses_memory}")
        print(f"hits {codegen_stats.hits}  misses {codegen_stats.misses}  "
              f"compiles {codegen_stats.compiles}  "
              f"evictions {codegen_stats.evictions}  "
              f"unsupported {codegen_stats.unsupported}")
        return 0

    spec = get_kernel(args.kernel)
    kernel, inputs = spec.instantiate(args.n)
    lowered = lower_sma(kernel)
    sma_cfg, _ = _configs(args.latency)
    cfg = _replace(sma_cfg, memory=_fit_memory(sma_cfg.memory,
                                               lowered.layout))
    machine = SMAMachine(lowered.access_program, lowered.execute_program,
                         cfg)
    _load_inputs(machine, lowered.layout, kernel, inputs)
    compiled = (compiled_loop_for if args.kind == "loop"
                else compiled_step_for)
    artifact = compiled(machine)
    if artifact is None:
        print(f"{spec.name}: program cannot be specialized; runs fall "
              "back to the event-horizon scheduler")
        return 1
    print(artifact.source, end="")
    return 0


def cmd_verify(args) -> int:
    from .verify import verify_kernel_writes

    spec = get_kernel(args.kernel)
    kernel, inputs = spec.instantiate(args.n)
    machines = (
        [args.machine] if args.machine != "all"
        else ["sma", "sma-nostream", "scalar"]
    )
    failed = False
    for machine in machines:
        mismatches = verify_kernel_writes(kernel, inputs, machine)
        if mismatches:
            failed = True
            print(f"{machine}: {len(mismatches)} write-sequence "
                  "mismatch(es) against sequential semantics:")
            for mismatch in mismatches[:10]:
                print(f"  {mismatch}")
        else:
            print(f"{machine}: per-address write sequences match "
                  "sequential semantics")
    return 1 if failed else 0


def cmd_parse(args) -> int:
    source = open(args.file).read()
    kernel = parse_kernel(source, **{args.param: args.n})
    print(kernel.pretty())
    rng = np.random.default_rng(args.seed)
    inputs = {
        decl.name: rng.uniform(0.1, 1.0, decl.size)
        for decl in kernel.arrays
    }
    golden = run_reference(kernel, inputs)
    from .harness.runner import run_on_scalar, run_on_sma

    sma = run_on_sma(kernel, inputs)
    scalar = run_on_scalar(kernel, inputs)
    for name, want in golden.items():
        for run in (sma, scalar):
            if not np.array_equal(run.outputs[name], want):
                print(f"MISMATCH: {run.machine} array {name}",
                      file=sys.stderr)
                return 1
    print(f"\nverified on both machines; scalar {scalar.cycles} cycles, "
          f"SMA {sma.cycles} cycles ({scalar.cycles / sma.cycles:.2f}x)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    from .core import SMAMachine

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Structured Memory Access architecture reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("kernels", help="list the workload suite")

    p_run = sub.add_parser("run", help="run one kernel on both machines")
    p_run.add_argument("kernel")
    p_run.add_argument("--n", type=int, default=256)
    p_run.add_argument("--latency", type=int, default=8)

    p_compile = sub.add_parser("compile", help="show lowered programs")
    p_compile.add_argument("kernel")
    p_compile.add_argument("--n", type=int, default=16)

    p_exp = sub.add_parser("experiment", help="run experiments by id")
    p_exp.add_argument("ids", nargs="+",
                       help=f"{_experiment_id_summary()}, or 'all'")
    p_exp.add_argument("--plot", action="store_true",
                       help="ASCII chart for figure experiments")
    p_exp.add_argument("--csv", action="store_true",
                       help="emit CSV instead of the aligned table")
    p_exp.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="fan simulation jobs over N worker processes "
                            "(default 1: serial, deterministic)")
    p_exp.add_argument("--cache", default=None, metavar="DIR",
                       help="cache job results as JSON under DIR, keyed "
                            "by (kernel, config, code version)")
    p_exp.add_argument("--n", type=int, default=None,
                       help="override the experiment's problem size")
    p_exp.add_argument("--metrics", action="store_true",
                       help="capture a RunReport (stall attribution + "
                            "counters) for every simulation job")
    p_exp.add_argument("--metrics-dir", default=None, metavar="DIR",
                       help="write captured RunReports as JSON under DIR")

    p_sweep = sub.add_parser(
        "sweep",
        help="crash-safe experiment sweep: cached, resumable, with "
             "per-job timeouts, bounded retries, and fault injection",
    )
    p_sweep.add_argument(
        "id", help=f"experiment id ({_experiment_id_summary()})"
    )
    p_sweep.add_argument("--cache", required=True, metavar="DIR",
                         help="result cache directory (required: it is "
                              "what makes the sweep resumable)")
    p_sweep.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="fan jobs over N worker processes")
    p_sweep.add_argument("--n", type=int, default=None,
                         help="override the experiment's problem size")
    p_sweep.add_argument("--resume", action="store_true",
                         help="continue into a non-empty cache (only "
                              "uncached jobs execute)")
    p_sweep.add_argument("--timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="per-job wall-clock timeout (pool mode)")
    p_sweep.add_argument("--retries", type=int, default=2, metavar="K",
                         help="retry a failed/timed-out/killed job up to "
                              "K times (default 2)")
    p_sweep.add_argument("--inject-fault", default=None,
                         metavar="MODE[:VALUE]",
                         help="inject a fault to exercise recovery: "
                              "worker-kill, cache-corrupt, mem-error:p, "
                              "driver-kill:k, sleep:s")
    p_sweep.add_argument("--csv", action="store_true",
                         help="emit CSV instead of the aligned table")
    p_sweep.add_argument("--backend", default="scalar",
                         choices=["scalar", "batch"],
                         help="run eligible SMA jobs through the SoA "
                              "batch engine (bit-identical, much faster "
                              "on dense grids)")
    p_sweep.add_argument("--batch-workers", type=int, default=1,
                         metavar="N",
                         help="with --backend batch: shard the batch "
                              "lane groups over N worker processes "
                              "(default 1: in-driver)")

    p_serve = sub.add_parser(
        "serve",
        help="sweep-as-a-service: asyncio job server with request "
             "coalescing and a content-addressed result store",
    )
    p_serve.add_argument("--store", required=True, metavar="DIR",
                         help="content-addressed store root "
                              "(blobs/ + index/, created if missing)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0,
                         help="listen port (default 0: kernel-assigned; "
                              "the bound URL is printed on stdout)")
    p_serve.add_argument("--workers", type=int, default=2, metavar="N",
                         help="scheduler fleet size (default 2)")
    p_serve.add_argument("--pool-workers", type=int, default=None,
                         metavar="N",
                         help="process-pool size (default: --workers)")
    p_serve.add_argument("--max-backlog", type=int, default=256,
                         metavar="N",
                         help="distinct jobs in flight before further "
                              "submissions get 429 (default 256)")
    p_serve.add_argument("--timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="per-attempt wall-clock timeout")
    p_serve.add_argument("--retries", type=int, default=2, metavar="K",
                         help="retry a failed/timed-out/killed job up "
                              "to K times (default 2)")
    p_serve.add_argument("--slice-cycles", type=int, default=None,
                         metavar="CYCLES",
                         help="checkpoint interval for preemptible jobs "
                              "(default 100000)")
    p_serve.add_argument("--promote", default=None, metavar="DIR",
                         help="seed the store from an existing "
                              "'repro sweep' cache directory")

    p_submit = sub.add_parser(
        "submit",
        help="run an experiment's simulation jobs through a running "
             "'repro serve' instance",
    )
    p_submit.add_argument(
        "id", help=f"experiment id ({_experiment_id_summary()})"
    )
    p_submit.add_argument("--url", required=True,
                          help="service base URL, e.g. "
                               "http://127.0.0.1:8141")
    p_submit.add_argument("--cache", default=None, metavar="DIR",
                          help="also flush results into a local harness "
                               "cache as they stream back")
    p_submit.add_argument("--n", type=int, default=None,
                          help="override the experiment's problem size")
    p_submit.add_argument("--csv", action="store_true",
                          help="emit CSV instead of the aligned table")

    p_batch = sub.add_parser(
        "batch",
        help="dense latency × queue-depth × bank-count sweep of one "
             "kernel through the SoA batch engine",
    )
    p_batch.add_argument("kernel")
    p_batch.add_argument("--n", type=int, default=64)
    p_batch.add_argument("--seed", type=int, default=12345)
    p_batch.add_argument("--machine", default="sma",
                         choices=["sma", "sma-nostream"])
    p_batch.add_argument("--latencies", default="1,2,4,8,16,32,64",
                         metavar="AXIS",
                         help="comma-separated ints / LO-HI ranges "
                              "(default '1,2,4,8,16,32,64')")
    p_batch.add_argument("--queue-depths", default="8", metavar="AXIS",
                         help="queue-depth axis (default '8')")
    p_batch.add_argument("--banks", default="8", metavar="AXIS",
                         help="bank-count axis (default '8')")
    p_batch.add_argument("--check", action="store_true",
                         help="verify every lane word-exact against the "
                              "reference interpreter")
    p_batch.add_argument("--cache", default=None, metavar="DIR",
                         help="flush per-point results under DIR (same "
                              "keys as the scalar path)")
    p_batch.add_argument("--batch-workers", type=int, default=1,
                         metavar="N",
                         help="shard the grid's lane groups over N "
                              "worker processes (split along "
                              "saturation-class lines; default 1 runs "
                              "everything in the driver process)")

    p_ckpt = sub.add_parser(
        "checkpoint",
        help="save / load a mid-run machine snapshot",
    )
    ckpt_sub = p_ckpt.add_subparsers(dest="action", required=True)
    p_save = ckpt_sub.add_parser(
        "save", help="run a kernel partway and snapshot it"
    )
    p_save.add_argument("kernel")
    p_save.add_argument("--n", type=int, default=64)
    p_save.add_argument("--seed", type=int, default=12345)
    p_save.add_argument("--latency", type=int, default=8)
    p_save.add_argument("--cycles", type=int, default=50, metavar="K",
                        help="cycles to simulate before the snapshot")
    p_save.add_argument("--out", required=True, metavar="FILE",
                        help="checkpoint JSON output path")
    p_load = ckpt_sub.add_parser(
        "load", help="restore a snapshot and run it to completion"
    )
    p_load.add_argument("file", help="checkpoint JSON written by 'save'")

    p_report = sub.add_parser(
        "report",
        help="stall-attribution RunReport for one kernel "
             "(where did every cycle go?)",
    )
    p_report.add_argument("kernel")
    p_report.add_argument("--n", type=int, default=256)
    p_report.add_argument("--latency", type=int, default=8)
    p_report.add_argument("--machine", default="both",
                          choices=["both", "sma", "scalar"])
    p_report.add_argument("--out", default=None, metavar="DIR",
                          help="also write JSON + CSV exports under DIR")

    p_timeline = sub.add_parser(
        "timeline", help="per-cycle pipeline view of a kernel on the SMA"
    )
    p_timeline.add_argument("kernel")
    p_timeline.add_argument("--n", type=int, default=32)
    p_timeline.add_argument("--latency", type=int, default=8)
    p_timeline.add_argument("--first", type=int, default=0)
    p_timeline.add_argument("--last", type=int, default=40)

    p_profile = sub.add_parser(
        "profile",
        help="cProfile one kernel's simulation and attribute exclusive "
             "time to simulator components",
    )
    p_profile.add_argument("kernel")
    p_profile.add_argument("--n", type=int, default=256)
    p_profile.add_argument("--latency", type=int, default=8)
    p_profile.add_argument("--scheduler", default="event-horizon",
                           choices=list(SMAMachine.SCHEDULERS),
                           help="simulation loop to profile "
                                "(default: event-horizon)")
    p_profile.add_argument("--top", type=int, default=0, metavar="K",
                           help="also list the K hottest functions")

    p_codegen = sub.add_parser(
        "codegen",
        help="inspect the program-specialized codegen backend",
    )
    cg_sub = p_codegen.add_subparsers(dest="action", required=True)
    p_cg_show = cg_sub.add_parser(
        "show",
        help="emit and print the specialized tick-function source for "
             "one kernel",
    )
    p_cg_show.add_argument("kernel")
    p_cg_show.add_argument("--n", type=int, default=64)
    p_cg_show.add_argument("--latency", type=int, default=8)
    p_cg_show.add_argument("--kind", default="loop",
                           choices=["loop", "step"],
                           help="whole-run machine loop or cluster-node "
                                "step function (default: loop)")
    cg_sub.add_parser(
        "list",
        help="list this process's cached artifacts and cache statistics",
    )

    p_verify = sub.add_parser(
        "verify",
        help="check a kernel's per-address write sequences against "
             "sequential semantics",
    )
    p_verify.add_argument("kernel")
    p_verify.add_argument("--n", type=int, default=64)
    p_verify.add_argument("--machine", default="all",
                          choices=["all", "sma", "sma-nostream", "scalar"])

    p_parse = sub.add_parser("parse", help="parse and run a kernel source file")
    p_parse.add_argument("file")
    p_parse.add_argument("--n", type=int, default=64)
    p_parse.add_argument("--param", default="n",
                         help="name the --n value binds (default 'n')")
    p_parse.add_argument("--seed", type=int, default=12345)

    return parser


_COMMANDS = {
    "kernels": cmd_kernels,
    "run": cmd_run,
    "compile": cmd_compile,
    "experiment": cmd_experiment,
    "sweep": cmd_sweep,
    "serve": cmd_serve,
    "submit": cmd_submit,
    "batch": cmd_batch,
    "checkpoint": cmd_checkpoint,
    "report": cmd_report,
    "timeline": cmd_timeline,
    "profile": cmd_profile,
    "codegen": cmd_codegen,
    "verify": cmd_verify,
    "parse": cmd_parse,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
