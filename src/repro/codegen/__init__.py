"""Program-specialized codegen backend (the ``"codegen"`` scheduler).

Instead of interpreting the same predecoded instruction tuples millions
of times per sweep, this package walks a machine's decoded programs and
configuration once and emits a *straight-line* Python tick function
specialized to that (program, config) pair: operands and immediates
become literals, statically impossible queue/ready checks disappear,
and the per-component ``tick_fast`` bodies are fused into a single
loop.  The source is compiled once and cached (see
:mod:`repro.codegen.cache`); :class:`repro.core.SMAMachine` runs the
compiled function through the ``"codegen"`` entry of its scheduler
registry.

Bit-identity with naive ticking — cycles, memory image, every stats
bucket — is property-tested in ``tests/test_event_horizon.py``; the
emitter contract is documented in ARCHITECTURE section 18.
"""

from .cache import (
    CodegenArtifact,
    artifact_key,
    cached_artifacts,
    clear_cache,
    get_or_compile,
    stats,
)
from .emitter import BaseEmitter, MachineLoopEmitter, NodeStepEmitter, \
    Unsupported


def compiled_loop_for(machine) -> CodegenArtifact | None:
    """Compiled whole-run loop for a standalone machine (or ``None``
    when the program cannot be specialized)."""
    return get_or_compile(machine, "loop")


def compiled_step_for(machine) -> CodegenArtifact | None:
    """Compiled one-cycle step function for a cluster node (or
    ``None`` when the program cannot be specialized)."""
    return get_or_compile(machine, "step")


__all__ = [
    "BaseEmitter",
    "CodegenArtifact",
    "MachineLoopEmitter",
    "NodeStepEmitter",
    "Unsupported",
    "artifact_key",
    "cached_artifacts",
    "clear_cache",
    "compiled_loop_for",
    "compiled_step_for",
    "get_or_compile",
    "stats",
]
