"""Compile-once cache for program-specialized tick functions.

Artifacts are keyed by everything the emitted source depends on:

* the **code fingerprint** of the simulator sources themselves (the same
  :func:`repro.harness.parallel.code_fingerprint` that invalidates the
  sweep cache) — editing any simulator module invalidates every cached
  artifact;
* the artifact **kind** (``"loop"`` for a whole-run machine loop,
  ``"step"`` for a cluster node's one-cycle step function);
* whether the machine **owns its memory** (a cluster node does not);
* the full text of both **programs** and the repr of the **config** —
  the same material :func:`repro.core.checkpoint.machine_fingerprint`
  hashes, because those are exactly the inputs the emitter specializes
  on (operands, queue capacities, bank counts, latencies...).

The cache is a bounded in-process LRU.  Machines the emitter cannot
specialize (exotic operand shapes the interpreters would reject at
execution time) land in a negative cache so the run loop falls back to
the event-horizon scheduler without re-attempting emission every run.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

#: maximum retained compiled artifacts; eviction is least-recently-used
MAX_ENTRIES = 64


@dataclass
class CodegenArtifact:
    """One compiled (program, config) specialization."""

    key: str
    kind: str  # "loop" | "step"
    source: str
    fn: Callable
    #: static capabilities — the run loop falls back when live machine
    #: state needs a subsystem the program provably never uses (possible
    #: only through manual state injection, never through snapshots of
    #: the same program)
    uses_engine: bool
    uses_su: bool
    uses_memory: bool


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    compiles: int = 0
    evictions: int = 0
    unsupported: int = 0


_CACHE: OrderedDict[str, CodegenArtifact] = OrderedDict()
_UNSUPPORTED: set[str] = set()
stats = CacheStats()


def _code_fingerprint() -> str:
    """The repo-wide source fingerprint (monkeypatchable in tests to
    simulate a simulator-source edit invalidating every artifact)."""
    from ..harness.parallel import code_fingerprint

    return code_fingerprint()


def artifact_key(machine, kind: str) -> str:
    """Cache key for one (machine, kind) pair (see module docstring)."""
    from ..core.checkpoint import _program_text

    h = hashlib.sha256()
    h.update(_code_fingerprint().encode())
    h.update(b"\0")
    h.update(kind.encode())
    h.update(b"\0")
    h.update(b"owns" if machine._owns_memory else b"shared")
    h.update(b"\0")
    h.update(_program_text(machine.ap.program).encode())
    h.update(b"\0")
    h.update(_program_text(machine.ep.program).encode())
    h.update(b"\0")
    h.update(repr(machine.config).encode())
    return h.hexdigest()


def clear_cache() -> None:
    """Drop every cached artifact and reset the counters (tests)."""
    _CACHE.clear()
    _UNSUPPORTED.clear()
    stats.hits = stats.misses = stats.compiles = 0
    stats.evictions = stats.unsupported = 0


def cached_artifacts() -> list[CodegenArtifact]:
    """Current cache contents, least- to most-recently used."""
    return list(_CACHE.values())


def get_or_compile(machine, kind: str) -> CodegenArtifact | None:
    """Return the compiled artifact for ``machine``, emitting and
    compiling on first use; ``None`` when the program cannot be
    specialized (the caller falls back to the event-horizon loop)."""
    key = artifact_key(machine, kind)
    if key in _UNSUPPORTED:
        return None
    artifact = _CACHE.get(key)
    if artifact is not None:
        stats.hits += 1
        _CACHE.move_to_end(key)
        return artifact
    stats.misses += 1
    from .emitter import MachineLoopEmitter, NodeStepEmitter, Unsupported

    emitter_cls = MachineLoopEmitter if kind == "loop" else NodeStepEmitter
    try:
        emitter = emitter_cls(machine)
        source = emitter.generate()
    except Unsupported:
        stats.unsupported += 1
        _UNSUPPORTED.add(key)
        return None
    artifact = compile_source(
        key, kind, source,
        uses_engine=emitter.has_stream,
        uses_su=emitter.has_staddr,
        uses_memory=emitter.uses_memory,
    )
    _CACHE[key] = artifact
    while len(_CACHE) > MAX_ENTRIES:
        _CACHE.popitem(last=False)
        stats.evictions += 1
    return artifact


def compile_source(
    key: str,
    kind: str,
    source: str,
    *,
    uses_engine: bool,
    uses_su: bool,
    uses_memory: bool,
) -> CodegenArtifact:
    """Compile one emitted source body into a callable artifact.

    The filename embeds the key prefix so cProfile attribution (and
    tracebacks) can tell generated frames apart — ``repro profile``
    folds ``<sma-codegen:...>`` frames into a dedicated component.
    """
    from .runtime import runtime_namespace

    stats.compiles += 1
    entry = "__sma_codegen_loop__" if kind == "loop" else \
        "__sma_codegen_step__"
    code = compile(source, f"<sma-codegen:{key[:12]}>", "exec")
    namespace = runtime_namespace()
    exec(code, namespace)
    return CodegenArtifact(
        key=key, kind=kind, source=source, fn=namespace[entry],
        uses_engine=uses_engine, uses_su=uses_su, uses_memory=uses_memory,
    )
