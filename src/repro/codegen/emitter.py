"""Specializing emitters: one (program, config) pair in, one
straight-line Python tick function out.

The interpreters in :mod:`repro.core` pay per-cycle dispatch for
generality: every simulated cycle re-reads the same decoded tuples,
re-branches on the same operand tags and re-checks queues the program
can never touch.  The emitters here walk the decoded programs and the
machine configuration *once* and write out the exact cycle body this
machine will execute:

* operands and immediates become literals (``ap_regs[3]``, ``(2.5)``),
  ALU functions become inline expressions with identical semantics;
* queue capacities, bank counts, port widths, latencies and memory size
  are baked in as constants;
* dead checks are elided — no store-unit body without a ``staddr``, no
  stream-engine body without a stream op, no completion delivery for a
  program that never issues a load;
* per-instruction dispatch becomes a binary if-tree over literal pcs.

:class:`BaseEmitter` is the template-method skeleton (shared analysis,
line buffer, queue/memory/processor emission helpers); the two concrete
emitters assemble different outputs from the same parts:

``MachineLoopEmitter``
    a whole-run loop with the event-horizon scheduler's structure —
    completion delivery, jump planning, closed-form replay and deadlock
    accounting specialized to the components this program can wake.
    *Every* hot counter lives in a function local and is synced back to
    the machine in a ``finally``: processor pcs/stall state, per-queue
    traffic and occupancy counters (the lazy flush bodies are inlined
    at each mutation site against local state), the load-occupancy
    aggregate, and the banked-memory counters and port window.  Stream
    and store-unit work dispatches to per-site bodies over the queues
    the program names statically, memory completions ride a local FIFO
    as plain ``(time, seq, queue_index, token, value)`` tuples
    delivered inline (completion order is issue order under one
    constant latency; re-boxed onto the heap in the
    ``partial(queue.fill, token)`` shape the checkpoint layer
    recognizes before returning), and the stall
    snapshot/replay pair of the fast-forward contract is emitted as a
    flat tuple over exactly the counters this program's stall sites can
    touch.  Because that localization bakes in who owns every piece of
    async state, the compiled loop requires the stream-descriptor list,
    store-address queue and completion heap to be empty at entry; the
    run adapter delegates mid-flight resumes to the (bit-identical)
    event-horizon interpreter.

``NodeStepEmitter``
    a one-cycle step function for a cluster node, equivalent to
    ``SMAMachine.step_cycle(tick_memory=False)``: the cluster owns the
    shared memory tick and the clock, so all state stays in machine
    attributes, queues sample per cycle, and the metrics hook is
    preserved.

Both outputs are bit-identical to naive ticking — property-tested in
``tests/test_event_horizon.py``.  A program using operand shapes the
interpreters would only reject at execution time raises
:class:`Unsupported` and the run loop falls back to the event-horizon
scheduler (see ARCHITECTURE section 18 for the full contract).
"""

from __future__ import annotations

from contextlib import contextmanager

from ..core import access_processor as _apm
from ..core import execute_processor as _epm
from ..errors import QueueError
from ..isa import Op, Queue

#: AP ops that start a stream descriptor (delegated to
#: ``AccessProcessor._start_stream`` — cold path, runs once per stream)
_STREAM_OPS = frozenset((Op.STREAMLD, Op.GATHER, Op.STREAMST, Op.SCATTER))
_PRODUCING_STREAMS = frozenset((Op.STREAMLD, Op.GATHER))
_CONSUMING_STREAMS = frozenset((Op.STREAMST, Op.SCATTER))
_INDEXED_STREAMS = frozenset((Op.GATHER, Op.SCATTER))

#: queue-counter suffixes for the loop mode's per-queue locals
_QF = {
    "empty_stalls": "em",
    "full_stalls": "fu",
    "pops": "po",
    "pushes": "pu",
}


class Unsupported(Exception):
    """The program cannot be specialized; fall back to event-horizon."""


def _alu_expr(op: Op, a: list[str]) -> str:
    """Python expression with semantics identical to ``ALU_FUNCS[op]``
    (:mod:`repro.isa.opcodes`); ``a`` holds operand sub-expressions."""

    def need(k: int) -> None:
        if len(a) != k:
            raise Unsupported(f"{op} with {len(a)} operands")

    if op is Op.ADD:
        need(2)
        return f"({a[0]} + {a[1]})"
    if op is Op.SUB:
        need(2)
        return f"({a[0]} - {a[1]})"
    if op is Op.MUL:
        need(2)
        return f"({a[0]} * {a[1]})"
    if op is Op.DIV:
        need(2)
        return f"_div({a[0]}, {a[1]})"
    if op is Op.MOD:
        need(2)
        return f"_mod({a[0]}, {a[1]})"
    if op is Op.MIN:
        need(2)
        return f"min({a[0]}, {a[1]})"
    if op is Op.MAX:
        need(2)
        return f"max({a[0]}, {a[1]})"
    if op is Op.ABS:
        need(1)
        return f"abs({a[0]})"
    if op is Op.NEG:
        need(1)
        return f"(-({a[0]}))"
    if op is Op.SQRT:
        need(1)
        return f"_sqrt({a[0]})"
    if op is Op.FLOOR:
        need(1)
        return f"float(_floor({a[0]}))"
    if op is Op.MOV:
        need(1)
        return f"({a[0]})"
    if op is Op.CMPLT:
        need(2)
        return f"(1.0 if {a[0]} < {a[1]} else 0.0)"
    if op is Op.CMPLE:
        need(2)
        return f"(1.0 if {a[0]} <= {a[1]} else 0.0)"
    if op is Op.CMPEQ:
        need(2)
        return f"(1.0 if {a[0]} == {a[1]} else 0.0)"
    if op is Op.CMPNE:
        need(2)
        return f"(1.0 if {a[0]} != {a[1]} else 0.0)"
    if op is Op.SEL:
        need(3)
        return f"({a[1]} if {a[0]} != 0 else {a[2]})"
    raise Unsupported(f"no expression form for {op}")


class BaseEmitter:
    """Template-method skeleton shared by both specializers.

    Subclasses set :attr:`loop_mode` and implement :meth:`generate`;
    the base class provides program analysis, the line buffer, and the
    per-site emission helpers for queues, the memory port and the four
    component bodies.
    """

    loop_mode = True  # False: cluster-node step function

    def __init__(self, machine):
        self.m = machine
        self.lines: list[str] = []
        self.depth = 0
        cfg = machine.config
        self.nbanks = cfg.memory.num_banks
        self.accepts = cfg.memory.accepts_per_cycle
        self.bank_busy = cfg.memory.bank_busy
        self.latency = cfg.memory.latency
        self.msize = machine.memory.size
        self.issue_per_cycle = machine.engine.issue_per_cycle
        # queue object -> flat index in machine._queue_list (the hoisted
        # name of queue i is "q{i}", its slots "q{i}s", its stats "q{i}t")
        self.qindex = {
            id(q): i for i, q in enumerate(machine._queue_list)
        }
        self.n_load = len(machine.queues.load)
        self.saq_i = self.qindex[id(machine.queues.store_addr)]
        self.ebq_i = self.qindex[id(machine.queues.ep_to_ap_branch)]
        self.used_queues: set[int] = set()
        # -- static program analysis (what can this machine ever do?) --
        ap_ops = [instr.op for instr in machine.ap.program]
        self.has_staddr = Op.STADDR in ap_ops
        self.has_ldq = Op.LDQ in ap_ops
        stream_ops = [op for op in ap_ops if op in _STREAM_OPS]
        self.has_stream = bool(stream_ops)
        self.has_producing = any(
            op in _PRODUCING_STREAMS for op in stream_ops
        )
        self.has_consuming = any(
            op in _CONSUMING_STREAMS for op in stream_ops
        )
        self.has_indexed = any(op in _INDEXED_STREAMS for op in stream_ops)
        #: can this program ever put a completion in flight?
        self.uses_memory = self.has_ldq or self.has_producing
        # -- static site lists (ordered, first-appearance) --------------
        #: queues that can receive a memory completion (ldq and
        #: producing-stream targets) — the marker dispatch set
        self.comp_targets: list[int] = []
        #: producing-stream target queues / consuming-stream data
        #: queues / indexed-stream index queues
        self.produce_sites: list[int] = []
        self.consume_sites: list[int] = []
        self.index_sites: list[int] = []
        #: store-data queue indices named by ``staddr`` instructions
        self.staddr_dqis: list[int] = []
        #: stall causes either processor can ever record
        self.ap_causes: list[str] = []
        self.ep_causes: list[str] = []
        self._collect_queues()
        self.has_lod = any(c.startswith("lod_") for c in self.ap_causes)
        #: stall causes recorded by delegated reference methods (stream
        #: start) directly in the stats dict — never localized
        self._dyn_causes = {"stream_slots", "stream_queue_busy"}
        #: loop mode shadows dense stream descriptors into parallel
        #: lists (next address, strides, remaining count, site id) so
        #: the per-attempt engine loop and the horizon probe index
        #: lists instead of reading descriptor attributes; indexed
        #: streams (gather/scatter) keep the attribute path
        self._shadow_streams = (
            self.loop_mode and self.has_stream and not self.has_indexed
        )

    # -- line buffer ------------------------------------------------------

    def w(self, line: str = "") -> None:
        self.lines.append("    " * self.depth + line if line else "")

    @contextmanager
    def block(self, header: str):
        self.w(header)
        self.depth += 1
        yield
        self.depth -= 1

    # -- queue naming -----------------------------------------------------

    def q(self, queue) -> int:
        """Flat index of a statically known queue; marks it hoisted."""
        i = self.qindex.get(id(queue))
        if i is None:  # pragma: no cover - queues come from the file
            raise Unsupported("operand queue not in the machine's file")
        self.used_queues.add(i)
        return i

    def is_load(self, i: int) -> bool:
        return i < self.n_load

    def qc(self, i: int, field: str) -> str:
        """L-value of queue ``i``'s traffic/stall counter ``field`` —
        a function local in loop mode, the stats attribute otherwise."""
        if self.loop_mode:
            return f"q{i}_{_QF[field]}"
        return f"q{i}t.{field}"

    def head_ready(self, i: int) -> str:
        """Condition: queue ``i`` non-empty with a filled head slot
        (loop mode tests the maintained length local, not the deque)."""
        if self.loop_mode:
            return f"q{i}_n and q{i}s[0].filled"
        return f"q{i}s and q{i}s[0].filled"

    def full_cond(self, i: int, cap: int) -> str:
        """Condition: queue ``i`` at capacity."""
        if self.loop_mode:
            return f"q{i}_n >= {cap}"
        return f"len(q{i}s) >= {cap}"

    def _resolve(self, operand) -> int:
        """Flat index of an ISA queue operand (stream instructions name
        their queues statically even though base/stride/count are
        register values resolved at start time)."""
        if not isinstance(operand, Queue):
            raise Unsupported(f"stream queue operand {operand!r}")
        try:
            return self.q(self.m.queues.resolve(operand))
        except QueueError as exc:
            raise Unsupported(str(exc)) from None

    # -- operand decoding -------------------------------------------------

    def ap_operand(self, decoded) -> str:
        tag, payload = decoded
        if tag == _apm._O_REG:
            return f"ap_regs[{payload}]"
        if tag == _apm._O_IMM:
            return f"({payload!r})"
        raise Unsupported(f"AP operand {payload!r}")

    def ep_operand(self, decoded) -> str:
        tag, payload = decoded
        if tag == _epm._O_REG:
            return f"ep_regs[{payload}]"
        if tag == _epm._O_IMM:
            return f"({payload!r})"
        raise Unsupported(f"EP operand {payload!r}")

    # -- lazy-occupancy accounting (loop mode only) -----------------------

    def emit_flush(self, i: int) -> None:
        """Inline ``OperandQueue._lazy_flush`` for hoisted queue ``i``
        against its localized occupancy state (loop mode runs every
        queue in lazy mode for the whole run, so the ``_lazy`` flag test
        is statically True and elided)."""
        if not self.loop_mode:
            return
        with self.block(f"if now > q{i}_sy:"):
            self.w(f"_span = now - q{i}_sy")
            self.w(f"q{i}_sa += _span")
            self.w(f"q{i}_oc += q{i}_n * _span")
            with self.block(f"if q{i}_n > q{i}_mx:"):
                self.w(f"q{i}_mx = q{i}_n")
            self.w(f"q{i}_hl[q{i}_n] += _span")
            self.w(f"q{i}_sy = now")

    def emit_agg(self, delta: int) -> None:
        """Inline ``LoadOccupancyAggregate.change(now, delta)`` against
        the localized aggregate (statically a load-queue site)."""
        if not self.loop_mode:
            return
        with self.block("if now > agg_sync:"):
            with self.block("if agg_total > agg_max:"):
                self.w("agg_max = agg_total")
            self.w("agg_sync = now")
        self.w(f"agg_total += {delta}" if delta >= 0
               else f"agg_total -= {-delta}")

    def emit_pop(self, i: int, dest: str | None) -> None:
        """Inline ``queue.pop()`` on hoisted queue ``i`` (head already
        verified ready by the caller); loop mode recycles the popped
        slot onto the token freelist (see :meth:`emit_reserve_token`)."""
        self.emit_flush(i)
        if self.is_load(i):
            self.emit_agg(-1)
        self.w(f"{self.qc(i, 'pops')} += 1")
        if self.loop_mode:
            if dest is None:
                self.w(f"fl_ap(q{i}_pl())")
            else:
                self.w(f"_sl = q{i}_pl()")
                self.w(f"{dest} = _sl.value")
                self.w("fl_ap(_sl)")
            self.w(f"q{i}_n -= 1")
        else:
            value = f"q{i}s.popleft().value"
            self.w(f"{dest} = {value}" if dest is not None else value)

    def emit_reserve_token(self) -> None:
        """``_tok = <fresh empty slot>`` in loop mode, preferring the
        token freelist over constructing a ``_Slot`` (~9x cheaper than
        ``__init__``).  Recycled slots are safe to reuse: every pop site
        requires the head to be filled first, and a filled slot can have
        no completion marker still pointing at it (``fill`` runs exactly
        once per reservation — a second fill raises)."""
        with self.block("if fl:"):
            self.w("_tok = fl_po()")
            self.w("_tok.filled = False")
        with self.block("else:"):
            self.w("_tok = _Slot()")

    def emit_push(self, i: int, value_expr: str) -> None:
        """Inline ``queue.push(value)`` on hoisted queue ``i`` (space
        already verified by the caller)."""
        self.emit_flush(i)
        if self.is_load(i):
            self.emit_agg(1)
        if self.loop_mode:
            with self.block("if fl:"):
                self.w("_tok = fl_po()")
                self.w("_tok.filled = True")
                self.w(f"_tok.value = {value_expr}")
            with self.block("else:"):
                self.w(f"_tok = _Slot(True, {value_expr})")
            self.w(f"q{i}_ap(_tok)")
            self.w(f"q{i}_n += 1")
        else:
            self.w(f"q{i}s.append(_Slot(True, {value_expr}))")
        self.w(f"{self.qc(i, 'pushes')} += 1")

    # -- memory port ------------------------------------------------------

    def port_vars(self) -> tuple[str, str]:
        """Names holding the per-cycle issue window ``(cycle, count)``;
        loop mode keeps them in function-level locals, step mode reads
        the shared attribute (the cluster's memory is shared)."""
        if self.loop_mode:
            return "iss_cyc", "iss_cnt"
        self.w("_pcyc, _pcnt = banked._issues_at")
        return "_pcyc", "_pcnt"

    def port_busy(self, cycv: str, cntv: str, addr: str) -> str:
        """Reject condition of ``BankedMemory.try_issue`` as an
        expression (True = port saturated or bank busy)."""
        return (
            f"({cycv} == now and {cntv} >= {self.accepts}) "
            f"or bank_free[{addr} % {self.nbanks}] > now"
        )

    def port_free(self, cycv: str, cntv: str) -> str:
        """Accept condition (port window open and the bank free check
        appended by the caller)."""
        return f"({cycv} != now or {cntv} < {self.accepts})"

    def emit_accept(self, cycv: str, cntv: str, bankv: str) -> None:
        """Accept-side bookkeeping of ``try_issue`` (port window, bank
        busy span, contention counters); the read/write counter and the
        data effect stay at the call site."""
        if self.loop_mode:
            with self.block(f"if {cycv} == now:"):
                self.w(f"{cntv} += 1")
            with self.block("else:"):
                self.w(f"{cycv} = now")
                self.w(f"{cntv} = 1")
            self.w(f"bank_free[{bankv}] = now + {self.bank_busy}")
            self.w(f"mbusy += {self.bank_busy}")
        else:
            self.w(
                f"banked._issues_at = (now, {cntv} + 1) "
                f"if {cycv} == now else (now, 1)"
            )
            self.w(f"bank_free[{bankv}] = now + {self.bank_busy}")
            self.w(f"mstats.busy_bank_cycles += {self.bank_busy}")
        self.w(f"pba[{bankv}] += 1")

    def emit_completion(self, qi: int, tok: str = "_tok",
                        res: str = "_res") -> None:
        """Schedule a completion for hoisted queue ``qi``.

        Loop mode appends a plain ``(time, seq, queue_index, token,
        value)`` marker tuple to a local deque delivered inline by the
        loop's own dispatch: with one constant memory latency and a
        nondecreasing clock, completion order is issue order, so the
        FIFO replaces the heap's O(log n) sifts (entries are re-boxed
        to the ``partial(queue.fill, token)`` callback shape
        ``checkpoint._completion_entry`` recognizes — in sorted order,
        which is a valid heap — before the function returns).  Step
        mode pushes the callback shape onto the shared heap directly
        because the cluster's memory tick delivers it."""
        if self.loop_mode:
            self.w("seq += 1")
            self.w(f"_ct = now + {self.latency}")
            with self.block("if _ct < _nc:"):
                self.w("_nc = _ct")
            self.w(f"cq_ap((_ct, seq, {qi}, {tok}, {res}))")
        else:
            self.w("_sq = banked._seq + 1")
            self.w("banked._seq = _sq")
            self.w(
                f"heappush(comps, (now + {self.latency}, _sq, "
                f"partial(q{qi}.fill, {tok}), {res}))"
            )

    def emit_as_address(self, value_expr: str, addr_var: str) -> None:
        """Inline ``as_address``: integral check with the identical
        :class:`MemoryError_` diagnostic."""
        self.w(f"_v = {value_expr}")
        self.w(f"{addr_var} = int(_v)")
        with self.block(f"if {addr_var} != _v:"):
            self.w('raise MemoryError_("non-integral address %r" % (_v,))')

    # -- processor state names (mode-dependent) ---------------------------

    @property
    def ap_pc(self):
        return "ap_pc" if self.loop_mode else "ap.pc"

    @property
    def ap_stalled(self):
        return "ap_stalled" if self.loop_mode else "ap._stalled_on"

    @property
    def ep_pc(self):
        return "ep_pc" if self.loop_mode else "ep.pc"

    @property
    def ep_stalled(self):
        return "ep_stalled" if self.loop_mode else "ep._stalled_on"

    def emit_ap_retire(self, next_pc: str) -> None:
        self.w("ap_i += 1" if self.loop_mode
               else "ap_stats.instructions += 1")
        self.emit_live()
        self.w(f"{self.ap_stalled} = None")
        self.w(f"{self.ap_pc} = {next_pc}")

    def emit_ep_retire(self, next_pc: str) -> None:
        self.w("ep_i += 1" if self.loop_mode
               else "ep_stats.instructions += 1")
        self.emit_live()
        self.w(f"{self.ep_stalled} = None")
        self.w(f"{self.ep_pc} = {next_pc}")

    def emit_live(self) -> None:
        """Mark the cycle as having made forward progress (loop mode).

        Every progress counter the reference sums (``ap_i``, ``ep_i``,
        ``req_n``, ``st_n``, ``m_reads``, ``m_writes``) is monotonic, so
        the sum changes iff some increment site fired this cycle; the
        loop-mode memory counters only ever move together with a retire,
        an engine issue or a store, so flagging those sites is exactly
        the reference's ``progress != last_progress`` comparison without
        re-summing six locals every cycle."""
        if self.loop_mode:
            self.w("_live = True")

    def ap_cause_ref(self, cause: str) -> str | None:
        """Function-local counter for one AP stall cause (loop mode),
        ``None`` when the cause stays dict-based."""
        if self.loop_mode and cause not in self._dyn_causes:
            return f"apc{self.ap_causes.index(cause)}"
        return None

    def ep_cause_ref(self, cause: str) -> str | None:
        if self.loop_mode and cause not in self._dyn_causes:
            return f"epc{self.ep_causes.index(cause)}"
        return None

    def emit_ap_stall(self, cause: str) -> None:
        ref = self.ap_cause_ref(cause)
        if ref is not None:
            self.w(f"{ref} += 1")
        else:
            self.w(f'ap_st[{cause!r}] = ap_st.get({cause!r}, 0) + 1')
        if cause.startswith("lod_"):
            with self.block(f"if {self.ap_stalled} != {cause!r}:"):
                self.w("ap_lod += 1" if self.loop_mode
                       else "ap_stats.lod_events += 1")
        self.w(f"{self.ap_stalled} = {cause!r}")

    def emit_ep_stall(self, cause: str) -> None:
        ref = self.ep_cause_ref(cause)
        if ref is not None:
            self.w(f"{ref} += 1")
        else:
            self.w(f'ep_st[{cause!r}] = ep_st.get({cause!r}, 0) + 1')
        self.w(f"{self.ep_stalled} = {cause!r}")

    # -- pc dispatch ------------------------------------------------------

    def emit_pc_tree(self, count: int, pc_var: str, leaf) -> None:
        """Binary if-tree over literal pcs ``0..count-1`` (the caller
        guarantees ``pc_var`` is in range)."""

        def rec(lo: int, hi: int) -> None:
            if hi - lo == 1:
                leaf(lo)
                return
            mid = (lo + hi) // 2
            with self.block(f"if {pc_var} < {mid}:"):
                rec(lo, mid)
            with self.block("else:"):
                rec(mid, hi)

        rec(0, count)

    # -- AP body ----------------------------------------------------------

    def emit_ap_dispatch(self) -> None:
        ap = self.m.ap
        plen = len(ap.program)
        off_end = (
            f"AP ran off the end of program {ap.program.name!r}"
        )
        pc_var = self.ap_pc if self.loop_mode else "_pc"
        if not self.loop_mode and plen:
            self.w("_pc = ap.pc")
        with self.block(f"if {pc_var} >= {plen}:"):
            self.w(f"raise SimulationError({off_end!r})")
        if plen:
            self.emit_pc_tree(plen, pc_var, self.emit_ap_instr)

    def emit_ap_instr(self, pc: int) -> None:
        ap = self.m.ap
        entry = ap._decoded[pc]
        kind = entry[0]
        op = ap.program[pc].op
        nxt = str(pc + 1)
        if kind == _apm._A_ALU:
            if entry[3] is None:
                raise Unsupported(f"AP ALU at pc {pc} without register dest")
            args = [self.ap_operand(d) for d in entry[2]]
            self.w(f"ap_regs[{entry[3]}] = {_alu_expr(op, args)}")
            self.emit_ap_retire(nxt)
            return
        if kind == _apm._A_LDQ:
            self._emit_ap_ldq(pc, entry, nxt)
            return
        if kind == _apm._A_DECBNZ:
            index, target = entry[1], entry[2]
            self._check_target(target, len(ap.program))
            self.w(f"ap_regs[{index}] -= 1")
            self.w("ap_i += 1" if self.loop_mode
                   else "ap_stats.instructions += 1")
            self.emit_live()
            self.w(f"{self.ap_stalled} = None")
            self.w(
                f"{self.ap_pc} = {target} "
                f"if ap_regs[{index}] != 0 else {nxt}"
            )
            return
        if kind == _apm._A_FROMQ:
            self._emit_ap_fromq(pc, entry, nxt)
            return
        if kind == _apm._A_STADDR:
            self._emit_ap_staddr(pc, entry, nxt)
            return
        if kind == _apm._A_BQ:
            self._emit_ap_bq(pc, entry, nxt)
            return
        if kind == _apm._A_BR:
            cond = self.ap_operand(entry[1])
            target = entry[3]
            self._check_target(target, len(ap.program))
            cmp_op = "==" if entry[2] else "!="
            self.w("ap_i += 1" if self.loop_mode
                   else "ap_stats.instructions += 1")
            self.emit_live()
            self.w(f"{self.ap_stalled} = None")
            self.w(
                f"{self.ap_pc} = {target} "
                f"if {cond} {cmp_op} 0 else {nxt}"
            )
            return
        if kind == _apm._A_STREAM:
            # cold path (runs once per started stream): delegate to the
            # reference method, which handles slot/role stalls and
            # descriptor construction
            if self.loop_mode:
                self.w("ap._stalled_on = ap_stalled")
            with self.block(f"if ap._start_stream(ap_prog[{pc}]):"):
                if self.loop_mode:
                    if self._shadow_streams:
                        # the rebuild below reads descriptor.issued, so
                        # flush the authoritative shadow counts onto
                        # the pre-existing descriptors first (the new
                        # one sits past the old _ns, freshly built)
                        self._emit_stream_issued_writeback()
                    self.w("_ns = len(streams)")
                    if self._shadow_streams:
                        self._emit_stream_shadow_refresh()
                self.emit_ap_retire(nxt)
            if self.loop_mode:
                with self.block("else:"):
                    self.w("ap_stalled = ap._stalled_on")
            return
        if kind == _apm._A_JMP:
            target = entry[1]
            self._check_target(target, len(ap.program))
            self.emit_ap_retire(str(target))
            return
        if kind == _apm._A_HALT:
            self.w("ap_halted = True" if self.loop_mode
                   else "ap.halted = True")
            self.emit_ap_retire(nxt)
            return
        # _A_NOP
        self.emit_ap_retire(nxt)

    @staticmethod
    def _check_target(target, plen) -> None:
        if not isinstance(target, int) or target < 0:
            raise Unsupported(f"branch target {target!r}")

    def _emit_ap_ldq(self, pc: int, entry, nxt: str) -> None:
        i = self.q(entry[1])
        a = self.ap_operand(entry[2])
        b = self.ap_operand(entry[3])
        self.emit_as_address(f"{a} + {b}", "addr")
        with self.block(f"if {self.full_cond(i, entry[1].capacity)}:"):
            self.w(f"{self.qc(i, 'full_stalls')} += 1")
            self.emit_ap_stall("queue_full")
        with self.block("else:"):
            cycv, cntv = self.port_vars()
            with self.block(f"if {self.port_busy(cycv, cntv, 'addr')}:"):
                self.emit_ap_stall("memory_busy")
            with self.block("else:"):
                # reserve (space just checked), then the try_issue
                # accept path, read effect at issue, completion at
                # now + latency — the reference order
                self.emit_flush(i)
                if self.is_load(i):
                    self.emit_agg(1)
                if self.loop_mode:
                    self.emit_reserve_token()
                    self.w(f"q{i}_ap(_tok)")
                    self.w(f"q{i}_n += 1")
                else:
                    self.w("_tok = _Slot()")
                    self.w(f"q{i}s.append(_tok)")
                self.w(f"_bank = addr % {self.nbanks}")
                self.emit_accept(cycv, cntv, "_bank")
                self.w("m_reads += 1" if self.loop_mode
                       else "mstats.reads += 1")
                with self.block(f"if 0 <= addr < {self.msize}:"):
                    self.w("_res = float(words[addr])")
                with self.block("else:"):
                    self.w("_res = storage.read(addr)")
                self.emit_completion(i)
                self.emit_ap_retire(nxt)

    def _emit_ap_fromq(self, pc: int, entry, nxt: str) -> None:
        i = self.q(entry[1])
        cause = entry[2]
        if entry[3] is None:
            raise Unsupported(f"AP FROMQ at pc {pc} without register dest")
        with self.block(f"if {self.head_ready(i)}:"):
            self.emit_pop(i, f"ap_regs[{entry[3]}]")
            self.emit_ap_retire(nxt)
        with self.block("else:"):
            self.w(f"{self.qc(i, 'empty_stalls')} += 1")
            self.emit_ap_stall(cause)

    def _emit_ap_staddr(self, pc: int, entry, nxt: str) -> None:
        s = self.saq_i
        self.used_queues.add(s)
        saq = self.m.queues.store_addr
        with self.block(f"if {self.full_cond(s, saq.capacity)}:"):
            self.w(f"{self.qc(s, 'full_stalls')} += 1")
            self.emit_ap_stall("saq_full")
        with self.block("else:"):
            a = self.ap_operand(entry[2])
            b = self.ap_operand(entry[3])
            self.emit_as_address(f"{a} + {b}", "addr")
            self.emit_push(s, f"(addr, {entry[1]})")
            self.emit_ap_retire(nxt)

    def _emit_ap_bq(self, pc: int, entry, nxt: str) -> None:
        e = self.ebq_i
        self.used_queues.add(e)
        target = entry[2]
        self._check_target(target, len(self.m.ap.program))
        cmp_op = "!=" if entry[1] else "=="  # BQNZ taken when value != 0
        with self.block(f"if {self.head_ready(e)}:"):
            self.emit_pop(e, "_val")
            self.w("ap_i += 1" if self.loop_mode
                   else "ap_stats.instructions += 1")
            self.emit_live()
            self.w(f"{self.ap_stalled} = None")
            self.w(
                f"{self.ap_pc} = {target} "
                f"if _val {cmp_op} 0 else {nxt}"
            )
        with self.block("else:"):
            self.w(f"{self.qc(e, 'empty_stalls')} += 1")
            self.emit_ap_stall("lod_ebq")

    # -- EP body ----------------------------------------------------------

    def emit_ep_dispatch(self) -> None:
        ep = self.m.ep
        plen = len(ep.program)
        off_end = (
            f"EP ran off the end of program {ep.program.name!r}"
        )
        pc_var = self.ep_pc if self.loop_mode else "_pc"
        if not self.loop_mode and plen:
            self.w("_pc = ep.pc")
        with self.block(f"if {pc_var} >= {plen}:"):
            self.w(f"raise SimulationError({off_end!r})")
        if plen:
            self.emit_pc_tree(plen, pc_var, self.emit_ep_instr)

    def emit_ep_instr(self, pc: int) -> None:
        ep = self.m.ep
        entry = ep._decoded[pc]
        kind = entry[0]
        op = ep.program[pc].op
        nxt = str(pc + 1)
        if kind == _epm._D_ALU:
            self._emit_ep_alu(pc, entry, op, nxt)
            return
        if kind == _epm._D_BR:
            cond = self.ep_operand(entry[1])
            target = entry[3]
            self._check_target(target, len(ep.program))
            cmp_op = "==" if entry[2] else "!="
            self.w("ep_i += 1" if self.loop_mode
                   else "ep_stats.instructions += 1")
            self.emit_live()
            self.w(f"{self.ep_stalled} = None")
            self.w(
                f"{self.ep_pc} = {target} "
                f"if {cond} {cmp_op} 0 else {nxt}"
            )
            return
        if kind == _epm._D_DECBNZ:
            index, target = entry[1], entry[2]
            self._check_target(target, len(ep.program))
            self.w(f"ep_regs[{index}] -= 1")
            self.w("ep_i += 1" if self.loop_mode
                   else "ep_stats.instructions += 1")
            self.emit_live()
            self.w(f"{self.ep_stalled} = None")
            self.w(
                f"{self.ep_pc} = {target} "
                f"if ep_regs[{index}] != 0 else {nxt}"
            )
            return
        if kind == _epm._D_JMP:
            target = entry[1]
            self._check_target(target, len(ep.program))
            self.emit_ep_retire(str(target))
            return
        if kind == _epm._D_HALT:
            self.w("ep_halted = True" if self.loop_mode
                   else "ep.halted = True")
            self.emit_ep_retire(nxt)
            return
        # _D_NOP
        self.emit_ep_retire(nxt)

    def _emit_ep_alu(self, pc: int, entry, op: Op, nxt: str) -> None:
        srcs = entry[2]
        dest_queue, dest_reg = entry[3], entry[4]
        if dest_queue is None and dest_reg is None:
            raise Unsupported(f"EP ALU at pc {pc} without a destination")
        # (queue index, src position) for every queue source, in order
        qsrcs = [
            (self.q(payload), pos)
            for pos, (tag, payload) in enumerate(srcs)
            if tag == _epm._O_QUEUE
        ]
        di = self.q(dest_queue) if dest_queue is not None else None

        def body() -> None:
            args: list[str] = []
            for pos, (tag, payload) in enumerate(srcs):
                if tag == _epm._O_QUEUE:
                    i = self.qindex[id(payload)]
                    self.emit_pop(i, f"_a{pos}")
                    args.append(f"_a{pos}")
                else:
                    args.append(self.ep_operand((tag, payload)))
            result = _alu_expr(op, args)
            if di is not None:
                self.emit_push(di, result)
            else:
                self.w(f"ep_regs[{dest_reg}] = {result}")
            self.emit_ep_retire(nxt)

        # head checks for every queue source (in order), then the dest
        # space check, then the pops — the reference's atomic-issue order
        conds: list[tuple[str, callable]] = []
        for i, _pos in qsrcs:
            def stall_src(i=i):
                self.w(f"{self.qc(i, 'empty_stalls')} += 1")
                self.emit_ep_stall("lq_empty")
            conds.append((f"not ({self.head_ready(i)})", stall_src))
        if di is not None:
            def stall_dest():
                self.w(f"{self.qc(di, 'full_stalls')} += 1")
                self.emit_ep_stall("q_full")
            conds.append(
                (self.full_cond(di, dest_queue.capacity), stall_dest)
            )
        if not conds:
            body()
            return
        for pos, (cond, stall) in enumerate(conds):
            kw = "if" if pos == 0 else "elif"
            with self.block(f"{kw} {cond}:"):
                stall()
        with self.block("else:"):
            body()

    # -- stream engine body -----------------------------------------------

    def emit_engine_body(self) -> None:
        """The round-robin issue loop of ``StreamEngine.tick_fast``,
        with branches for stream kinds this program never starts elided
        (caller wraps in ``if streams:``).  Loop mode dispatches each
        attempt to a per-site body over the queues the stream
        instructions name statically so every counter stays local."""
        if self._shadow_streams:
            self._emit_engine_body_shadow()
            return
        rr = "rr" if self.loop_mode else "engine._rr"
        # the attempt bound is the stream count at entry (the reference
        # computes it once), while the modulus tracks removals; loop
        # mode maintains the live count in _ns instead of calling len()
        live = "_ns" if self.loop_mode else "len(streams)"
        self.w("_issued = 0")
        self.w("_attempts = 0")
        self.w(f"_n = {live}")
        with self.block(
            f"while _issued < {self.issue_per_cycle} and _attempts < _n:"
        ):
            self.w(f"_desc = streams[{rr} % {live}]")
            self.w("_ok = False")
            self._emit_engine_addr()
            guard = "if addr is not None:" if self.has_indexed else None
            if guard:
                with self.block(guard):
                    self._emit_engine_attempt()
            else:
                self._emit_engine_attempt()
            with self.block("if _ok:"):
                if self._all_indexed():
                    self._emit_index_pop()
                elif self.has_indexed:
                    with self.block("if _desc.indexed:"):
                        self._emit_index_pop()
                self.w("_desc.issued += 1")
                self.w("_issued += 1")
                with self.block("if _desc.issued >= _desc.count:"):
                    self.w("streams.remove(_desc)")
                    if self.loop_mode:
                        self.w("_ns -= 1")
                    with self.block(f"if not {live}:"):
                        self.w("break")
                    self.w("continue")
            self.w(f"{rr} = ({rr} + 1) % {live}")
            self.w("_attempts += 1")
        with self.block("if _issued == 0:"):
            self.w("eng_blocked += 1" if self.loop_mode
                   else "engine_stats.blocked_cycles += 1")
        with self.block("else:"):
            self.w("req_n += _issued" if self.loop_mode
                   else "engine_stats.requests_issued += _issued")
            self.emit_live()

    def _all_indexed(self) -> bool:
        return self.has_indexed and not any(
            instr.op in (Op.STREAMLD, Op.STREAMST)
            for instr in self.m.ap.program
        )

    # -- dense-stream descriptor shadowing (loop mode) --------------------

    def _stream_sites(self) -> list[tuple[str, int]]:
        """Static site table for shadowed dispatch: produce sites first,
        then consume sites; the list position is the runtime site id."""
        return [("p", k) for k in self.produce_sites] + \
            [("c", k) for k in self.consume_sites]

    def _emit_stream_issued_writeback(self) -> None:
        """Flush the shadow remaining-counts back onto the live
        descriptors (``issued = count - remaining``) — needed wherever
        descriptor state becomes observable: sync, deadlock report and
        the shadow rebuild on a stream start."""
        with self.block("for _j2 in range(_ns):"):
            self.w("_d2 = streams[_j2]")
            self.w("_d2.issued = _d2.count - s_rem[_j2]")

    def _emit_stream_shadow_refresh(self) -> None:
        """(Re)build the descriptor shadow lists — cold path, run at
        entry and after each delegated stream start.  ``s_addr`` holds
        the next dense address (advanced by ``s_stride`` on issue),
        ``s_rem`` the requests left, ``s_site`` the static dispatch id
        resolved from the descriptor's direction and queue."""
        self.w("s_addr = []")
        self.w("s_stride = []")
        self.w("s_rem = []")
        self.w("s_site = []")
        with self.block("for _d in streams:"):
            self.w("s_addr.append(_d.base + _d.issued * _d.stride)")
            self.w("s_stride.append(_d.stride)")
            self.w("s_rem.append(_d.count - _d.issued)")
            for sid, (kind, k) in enumerate(self._stream_sites()):
                kw = "if" if sid == 0 else "elif"
                cond = (
                    f"_d.produces and _d.target is q{k}" if kind == "p"
                    else f"not _d.produces and _d.data_queue is q{k}"
                )
                with self.block(f"{kw} {cond}:"):
                    self.w(f"s_site.append({sid})")
            with self.block("else:"):
                self.w(
                    'raise SimulationError('
                    '"codegen: unspecialized stream descriptor")'
                )

    def _emit_engine_body_shadow(self) -> None:
        """Round-robin issue loop over the shadow lists: two subscripts
        and an int compare reach the per-site body, against five
        attribute reads on the descriptor path."""
        self.w("_issued = 0")
        self.w("_attempts = 0")
        self.w("_n = _ns")
        with self.block(
            f"while _issued < {self.issue_per_cycle} and _attempts < _n:"
        ):
            self.w("_j = rr % _ns")
            self.w("_ok = False")
            self.w("addr = s_addr[_j]")
            self.w("_site = s_site[_j]")
            for sid, (kind, k) in enumerate(self._stream_sites()):
                kw = "if" if sid == 0 else "elif"
                with self.block(f"{kw} _site == {sid}:"):
                    if kind == "p":
                        self._emit_produce_site(k)
                    else:
                        self._emit_consume_site(k)
            with self.block("if _ok:"):
                self.w("s_addr[_j] = addr + s_stride[_j]")
                self.w("_issued += 1")
                self.w("_rem = s_rem[_j] - 1")
                with self.block("if _rem:"):
                    self.w("s_rem[_j] = _rem")
                with self.block("else:"):
                    # the shadowed index is the descriptor's position,
                    # so deleting by index is the reference's
                    # streams.remove(_desc)
                    self.w("del streams[_j]")
                    self.w("del s_addr[_j]")
                    self.w("del s_stride[_j]")
                    self.w("del s_rem[_j]")
                    self.w("del s_site[_j]")
                    self.w("_ns -= 1")
                    with self.block("if not _ns:"):
                        self.w("break")
                    self.w("continue")
            # (_j + 1) % _ns without the modulo: _j is already reduced
            self.w("rr = _j + 1")
            with self.block("if rr == _ns:"):
                self.w("rr = 0")
            self.w("_attempts += 1")
        with self.block("if _issued == 0:"):
            self.w("eng_blocked += 1")
        with self.block("else:"):
            self.w("req_n += _issued")
            self.w("_live = True")

    def _emit_engine_addr(self) -> None:
        dense = "addr = _desc.base + _desc.issued * _desc.stride"
        if not self.has_indexed:
            self.w(dense)
            return

        def indexed_calc() -> None:
            self.w("_islots = _desc.index_queue._slots")
            with self.block("if _islots and _islots[0].filled:"):
                self.w("_iv = _islots[0].value")
                self.w("_ia = int(_iv)")
                with self.block("if _ia != _iv:"):
                    self.w(
                        'raise MemoryError_('
                        '"non-integral address %r" % (_iv,))'
                    )
                self.w("addr = _desc.base + _ia")
            with self.block("else:"):
                self.w("addr = None")

        if self._all_indexed():
            indexed_calc()
        else:
            with self.block("if _desc.indexed:"):
                indexed_calc()
            with self.block("else:"):
                self.w(dense)

    def _emit_engine_attempt(self) -> None:
        if self.has_producing and self.has_consuming:
            with self.block("if _desc.produces:"):
                self._emit_engine_produce()
            with self.block("else:"):
                self._emit_engine_consume()
        elif self.has_producing:
            self._emit_engine_produce()
        else:
            self._emit_engine_consume()

    def _emit_engine_produce(self) -> None:
        if self.loop_mode:
            self.w("_t = _desc.target")
            for n, k in enumerate(self.produce_sites):
                kw = "if" if n == 0 else "elif"
                with self.block(f"{kw} _t is q{k}:"):
                    self._emit_produce_site(k)
            with self.block("else:"):
                self.w(
                    'raise SimulationError('
                    '"codegen: unspecialized stream target")'
                )
            return
        self.w("_t = _desc.target")
        self.w("_tslots = _t._slots")
        with self.block("if len(_tslots) >= _t.capacity:"):
            self.w("_t.stats.full_stalls += 1")
        with self.block("else:"):
            cycv, cntv = self.port_vars()
            self.w(f"_bank = addr % {self.nbanks}")
            with self.block(
                f"if {self.port_free(cycv, cntv)} "
                f"and bank_free[_bank] <= now:"
            ):
                self.w("_tok = _Slot()")
                self.w("_tslots.append(_tok)")
                self.emit_accept(cycv, cntv, "_bank")
                self.w("mstats.reads += 1")
                with self.block(f"if 0 <= addr < {self.msize}:"):
                    self.w("_res = float(words[addr])")
                with self.block("else:"):
                    self.w("_res = storage.read(addr)")
                self.w("_sq = banked._seq + 1")
                self.w("banked._seq = _sq")
                self.w(
                    f"heappush(comps, (now + {self.latency}, _sq, "
                    f"partial(_t.fill, _tok), _res))"
                )
                self.w("_ok = True")

    def _emit_produce_site(self, k: int) -> None:
        cap = self.m._queue_list[k].capacity
        with self.block(f"if q{k}_n >= {cap}:"):
            self.w(f"q{k}_fu += 1")
        with self.block("else:"):
            self.w(f"_bank = addr % {self.nbanks}")
            with self.block(
                f"if {self.port_free('iss_cyc', 'iss_cnt')} "
                f"and bank_free[_bank] <= now:"
            ):
                self.emit_flush(k)
                if self.is_load(k):
                    self.emit_agg(1)
                self.emit_reserve_token()
                self.w(f"q{k}_ap(_tok)")
                self.w(f"q{k}_n += 1")
                self.emit_accept("iss_cyc", "iss_cnt", "_bank")
                self.w("m_reads += 1")
                with self.block(f"if 0 <= addr < {self.msize}:"):
                    self.w("_res = float(words[addr])")
                with self.block("else:"):
                    self.w("_res = storage.read(addr)")
                self.emit_completion(k)
                self.w("_ok = True")

    def _emit_engine_consume(self) -> None:
        if self.loop_mode:
            self.w("_dqv = _desc.data_queue")
            for n, k in enumerate(self.consume_sites):
                kw = "if" if n == 0 else "elif"
                with self.block(f"{kw} _dqv is q{k}:"):
                    self._emit_consume_site(k)
            with self.block("else:"):
                self.w(
                    'raise SimulationError('
                    '"codegen: unspecialized stream data queue")'
                )
            return
        self.w("_dq = _desc.data_queue")
        self.w("_dslots = _dq._slots")
        with self.block("if not _dslots or not _dslots[0].filled:"):
            self.w("_dq.stats.empty_stalls += 1")
        with self.block("else:"):
            cycv, cntv = self.port_vars()
            self.w(f"_bank = addr % {self.nbanks}")
            with self.block(
                f"if {self.port_free(cycv, cntv)} "
                f"and bank_free[_bank] <= now:"
            ):
                self.emit_accept(cycv, cntv, "_bank")
                self.w("mstats.writes += 1")
                with self.block(f"if 0 <= addr < {self.msize}:"):
                    self.w("words[addr] = _dslots[0].value")
                with self.block("else:"):
                    self.w("storage.write(addr, _dslots[0].value)")
                self.w("_dq.stats.pops += 1")
                self.w("_dslots.popleft()")
                self.w("_ok = True")

    def _emit_consume_site(self, k: int) -> None:
        with self.block(f"if not ({self.head_ready(k)}):"):
            self.w(f"q{k}_em += 1")
        with self.block("else:"):
            self.w(f"_bank = addr % {self.nbanks}")
            with self.block(
                f"if {self.port_free('iss_cyc', 'iss_cnt')} "
                f"and bank_free[_bank] <= now:"
            ):
                self.emit_accept("iss_cyc", "iss_cnt", "_bank")
                self.w("m_writes += 1")
                with self.block(f"if 0 <= addr < {self.msize}:"):
                    self.w(f"words[addr] = q{k}s[0].value")
                with self.block("else:"):
                    self.w(f"storage.write(addr, q{k}s[0].value)")
                self.emit_flush(k)
                if self.is_load(k):
                    self.emit_agg(-1)
                self.w(f"q{k}_po += 1")
                self.w(f"fl_ap(q{k}_pl())")
                self.w(f"q{k}_n -= 1")
                self.w("_ok = True")

    def _emit_index_pop(self) -> None:
        if self.loop_mode:
            self.w("_iqv = _desc.index_queue")
            for n, k in enumerate(self.index_sites):
                kw = "if" if n == 0 else "elif"
                with self.block(f"{kw} _iqv is q{k}:"):
                    self.emit_flush(k)
                    if self.is_load(k):
                        self.emit_agg(-1)
                    self.w(f"q{k}_po += 1")
                    self.w(f"fl_ap(q{k}_pl())")
                    self.w(f"q{k}_n -= 1")
            with self.block("else:"):
                self.w(
                    'raise SimulationError('
                    '"codegen: unspecialized stream index queue")'
                )
            return
        self.w("_iq = _desc.index_queue")
        self.w("_iqslots = _iq._slots")
        self.w("_iq.stats.pops += 1")
        self.w("_iqslots.popleft()")

    # -- store unit body --------------------------------------------------

    def emit_su_body(self) -> None:
        """``StoreUnit.tick_fast`` under the caller's non-empty-SAQ
        guard; loop mode dispatches over the store-data queue indices
        the program's ``staddr`` instructions name statically."""
        s = self.saq_i
        self.used_queues.add(s)
        if self.loop_mode:
            with self.block(f"if q{s}s[0].filled:"):
                self.w(f"addr, _dqi = q{s}s[0].value")
                for n, dqi in enumerate(self.staddr_dqis):
                    k = self.qindex[id(self.m.queues.store_data[dqi])]
                    kw = "if" if n == 0 else "elif"
                    with self.block(f"{kw} _dqi == {dqi}:"):
                        self._emit_su_site(s, k)
                with self.block("else:"):
                    self.w(
                        'raise SimulationError('
                        '"codegen: unspecialized store-data queue")'
                    )
            return
        with self.block(f"if q{s}s[0].filled:"):
            self.w(f"addr, _dqi = q{s}s[0].value")
            self.w("_dq = sdqs[_dqi]")
            self.w("_dslots = _dq._slots")
            with self.block("if not _dslots or not _dslots[0].filled:"):
                self.w("su_stats.data_wait_cycles += 1")
                self.w("_dq.stats.empty_stalls += 1")
            with self.block("else:"):
                cycv, cntv = self.port_vars()
                with self.block(
                    f"if {self.port_busy(cycv, cntv, 'addr')}:"
                ):
                    self.w("su_stats.memory_wait_cycles += 1")
                with self.block("else:"):
                    self.w(f"_bank = addr % {self.nbanks}")
                    self.emit_accept(cycv, cntv, "_bank")
                    self.w("mstats.writes += 1")
                    with self.block(f"if 0 <= addr < {self.msize}:"):
                        self.w("words[addr] = _dslots[0].value")
                    with self.block("else:"):
                        self.w("storage.write(addr, _dslots[0].value)")
                    # saq.pop() then data_queue.pop(), reference order
                    self.w(f"q{s}t.pops += 1")
                    self.w(f"q{s}s.popleft()")
                    self.w("_dq.stats.pops += 1")
                    self.w("_dslots.popleft()")
                    self.w("su_stats.stores_issued += 1")

    def _emit_su_site(self, s: int, k: int) -> None:
        with self.block(f"if not ({self.head_ready(k)}):"):
            self.w("su_dw += 1")
            self.w(f"q{k}_em += 1")
        with self.block("else:"):
            with self.block(
                f"if {self.port_busy('iss_cyc', 'iss_cnt', 'addr')}:"
            ):
                self.w("su_mw += 1")
            with self.block("else:"):
                self.w(f"_bank = addr % {self.nbanks}")
                self.emit_accept("iss_cyc", "iss_cnt", "_bank")
                self.w("m_writes += 1")
                with self.block(f"if 0 <= addr < {self.msize}:"):
                    self.w(f"words[addr] = q{k}s[0].value")
                with self.block("else:"):
                    self.w(f"storage.write(addr, q{k}s[0].value)")
                # saq.pop() then data_queue.pop(), reference order
                self.emit_flush(s)
                self.w(f"q{s}_po += 1")
                self.w(f"fl_ap(q{s}_pl())")
                self.w(f"q{s}_n -= 1")
                self.emit_flush(k)
                if self.is_load(k):
                    self.emit_agg(-1)
                self.w(f"q{k}_po += 1")
                self.w(f"fl_ap(q{k}_pl())")
                self.w(f"q{k}_n -= 1")
                self.w("st_n += 1")
                self.w("_live = True")

    # -- shared prologue pieces -------------------------------------------

    def _collect_queues(self) -> None:
        """Pre-pass: mark every statically referenced queue, record the
        stream/store/completion site lists and the stall causes either
        processor can ever record (step mode additionally hoists the
        full queue file because it samples every queue per cycle)."""

        def note(lst: list, v) -> None:
            if v not in lst:
                lst.append(v)

        m = self.m
        for pc, instr in enumerate(m.ap.program):
            entry = m.ap._decoded[pc]
            kind = entry[0]
            if kind == _apm._A_LDQ:
                i = self.qindex.get(id(entry[1]))
                if i is not None:
                    self.used_queues.add(i)
                    note(self.comp_targets, i)
                note(self.ap_causes, "queue_full")
                note(self.ap_causes, "memory_busy")
            elif kind == _apm._A_FROMQ:
                i = self.qindex.get(id(entry[1]))
                if i is not None:
                    self.used_queues.add(i)
                note(self.ap_causes, entry[2])
            elif kind == _apm._A_STADDR:
                self.used_queues.add(self.saq_i)
                note(self.ap_causes, "saq_full")
                dqi = entry[1]
                if isinstance(dqi, int) and \
                        0 <= dqi < len(m.queues.store_data):
                    note(self.staddr_dqis, dqi)
                    self.used_queues.add(
                        self.qindex[id(m.queues.store_data[dqi])]
                    )
                else:
                    raise Unsupported(f"staddr data-queue index {dqi!r}")
            elif kind == _apm._A_BQ:
                self.used_queues.add(self.ebq_i)
                note(self.ap_causes, "lod_ebq")
            elif kind == _apm._A_STREAM:
                note(self.ap_causes, "stream_slots")
                note(self.ap_causes, "stream_queue_busy")
                op = instr.op
                if op is Op.STREAMLD:
                    t = self._resolve(instr.dest)
                    note(self.produce_sites, t)
                    note(self.comp_targets, t)
                elif op is Op.GATHER:
                    t = self._resolve(instr.dest)
                    note(self.produce_sites, t)
                    note(self.comp_targets, t)
                    note(self.index_sites, self._resolve(instr.srcs[0]))
                elif op is Op.STREAMST:
                    note(self.consume_sites, self._resolve(instr.srcs[0]))
                else:  # SCATTER
                    note(self.consume_sites, self._resolve(instr.srcs[0]))
                    note(self.index_sites, self._resolve(instr.srcs[1]))
        if self.has_staddr:
            self.used_queues.add(self.saq_i)
        for pc, instr in enumerate(m.ep.program):
            entry = m.ep._decoded[pc]
            if entry[0] != _epm._D_ALU:
                continue
            for tag, payload in entry[2]:
                if tag == _epm._O_QUEUE:
                    i = self.qindex.get(id(payload))
                    if i is not None:
                        self.used_queues.add(i)
                    note(self.ep_causes, "lq_empty")
            if entry[3] is not None:
                i = self.qindex.get(id(entry[3]))
                if i is not None:
                    self.used_queues.add(i)
                note(self.ep_causes, "q_full")
        if not self.loop_mode:
            self.used_queues.update(range(len(m._queue_list)))

    def emit_queue_hoists(self) -> None:
        for i in sorted(self.used_queues):
            self.w(f"q{i} = machine._queue_list[{i}]")
            self.w(f"q{i}s = q{i}._slots")
            self.w(f"q{i}t = q{i}.stats")

    def emit_common_hoists(self) -> None:
        self.w("ap = machine.ap")
        self.w("ep = machine.ep")
        self.w("banked = machine.banked")
        self.w("mstats = banked.stats")
        self.w("storage = banked.storage")
        self.w("words = storage._words")
        self.w("bank_free = banked._bank_free_at")
        self.w("pba = mstats.per_bank_accesses")
        self.w("ap_stats = ap.stats")
        self.w("ep_stats = ep.stats")
        self.w("ap_st = ap_stats.stall_cycles")
        self.w("ep_st = ep_stats.stall_cycles")
        self.w("ap_regs = ap.registers")
        self.w("ep_regs = ep.registers")
        if self.uses_memory:
            self.w("comps = banked._completions")
        if self.has_stream:
            self.w("engine = machine.engine")
            self.w("engine_stats = engine.stats")
            self.w("streams = engine._streams")
            self.w("ap_prog = ap.program")
        if self.has_staddr:
            self.w("su_stats = machine.store_unit.stats")
            if not self.loop_mode:
                self.w("sdqs = machine.queues.store_data")

    def header_comment(self) -> list[str]:
        m = self.m
        return [
            f"# specialized for access program "
            f"{m.ap.program.name!r} ({len(m.ap.program)} instrs), "
            f"execute program {m.ep.program.name!r} "
            f"({len(m.ep.program)} instrs)",
            f"# memory: {self.nbanks} banks, latency {self.latency}, "
            f"bank_busy {self.bank_busy}, "
            f"{self.accepts} accepts/cycle, {self.msize} words",
            f"# subsystems: streams={self.has_stream} "
            f"(produce={self.has_producing}, consume={self.has_consuming},"
            f" indexed={self.has_indexed}), store_unit={self.has_staddr}, "
            f"loads={self.uses_memory}",
        ]

    def generate(self) -> str:  # pragma: no cover - abstract
        raise NotImplementedError


class MachineLoopEmitter(BaseEmitter):
    """Whole-run loop for a standalone machine (``kind="loop"``)."""

    loop_mode = True

    # -- fast-forward probe -----------------------------------------------

    def emit_horizon_inline(self, t: str) -> None:
        """Specialized ``machine.next_event_time(t)`` into ``_hz``.

        Emitted only at the jump site, where both processors are halted
        or stalled and the cycle made no progress, which prunes the
        probe statically: the EP contributes nothing (halted or stalled
        is ``None`` either way), the AP contributes only a
        ``memory_busy`` bank horizon (recomputed by pc dispatch over
        the program's LDQ sites — pc and registers are frozen while
        stalled), and the engine/store-unit/completion probes appear
        only when this program can ever wake them."""
        self.w("_hz = None")
        if self.uses_memory:
            with self.block("if _nc < _INF:"):
                self.w("_hz = _nc")
                with self.block(f"if _hz < {t}:"):
                    self.w(f"_hz = {t}")
        if self.has_ldq:
            with self.block('if ap_stalled == "memory_busy":'):
                ldq_pcs = [
                    (pc, entry)
                    for pc, entry in enumerate(self.m.ap._decoded)
                    if entry[0] == _apm._A_LDQ
                ]
                for n, (pc, entry) in enumerate(ldq_pcs):
                    kw = "if" if n == 0 else "elif"
                    a = self.ap_operand(entry[2])
                    b = self.ap_operand(entry[3])
                    with self.block(f"{kw} ap_pc == {pc}:"):
                        # the stalled ldq already ran as_address on this
                        # frozen (pc, registers) pair, so the sum is
                        # known integral
                        self.w(
                            f"_t5 = bank_free["
                            f"int({a} + {b}) % {self.nbanks}]"
                        )
                with self.block("else:"):
                    self.w(f"_t5 = {t}")
                with self.block(f"if _t5 < {t}:"):
                    self.w(f"_t5 = {t}")
                with self.block("if _hz is None or _t5 < _hz:"):
                    self.w("_hz = _t5")
        if self.has_staddr:
            s = self.saq_i
            with self.block(f"if {self.head_ready(s)}:"):
                self.w(f"_sa, _sdqi = q{s}s[0].value")
                for n, dqi in enumerate(self.staddr_dqis):
                    k = self.qindex[id(self.m.queues.store_data[dqi])]
                    kw = "if" if n == 0 else "elif"
                    with self.block(f"{kw} _sdqi == {dqi}:"):
                        self.w(f"_sd = q{k}s")
                        self.w(f"_sdn = q{k}_n")
                    if n == len(self.staddr_dqis) - 1:
                        with self.block("else:"):
                            self.w("_sd = ()")
                            self.w("_sdn = 0")
                with self.block("if _sdn and _sd[0].filled:"):
                    self.w(f"_t4 = bank_free[_sa % {self.nbanks}]")
                    with self.block(f"if _t4 < {t}:"):
                        self.w(f"_t4 = {t}")
                    with self.block("if _hz is None or _t4 < _hz:"):
                        self.w("_hz = _t4")
        if self.has_stream:
            if self._shadow_streams:
                with self.block("for _j in range(_ns):"):
                    self._emit_horizon_stream_shadow(t)
            else:
                with self.block("for _d in streams:"):
                    self._emit_horizon_stream(t)

    def _emit_horizon_stream_shadow(self, t: str) -> None:
        """Per-stream probe body over the shadow lists (dense streams
        only): issuability by site id, bank horizon from the maintained
        next address."""
        self.w("_site = s_site[_j]")
        for sid, (kind, k) in enumerate(self._stream_sites()):
            kw = "if" if sid == 0 else "elif"
            with self.block(f"{kw} _site == {sid}:"):
                if kind == "p":
                    cap = self.m._queue_list[k].capacity
                    with self.block(f"if q{k}_n >= {cap}:"):
                        self.w("continue")
                else:
                    with self.block(f"if not ({self.head_ready(k)}):"):
                        self.w("continue")
        self.w(f"_t3 = bank_free[s_addr[_j] % {self.nbanks}]")
        with self.block(f"if _t3 <= {t}:"):
            self.w(f"_hz = {t}")
            self.w("break")
        with self.block("if _hz is None or _t3 < _hz:"):
            self.w("_hz = _t3")

    def _emit_horizon_stream(self, t: str) -> None:
        def indexed_case() -> None:
            self.w("_iqv = _d.index_queue")
            for n, k in enumerate(self.index_sites):
                kw = "if" if n == 0 else "elif"
                with self.block(f"{kw} _iqv is q{k}:"):
                    with self.block(f"if not ({self.head_ready(k)}):"):
                        self.w("continue")
                    self.w(f"_iv = q{k}s[0].value")
            with self.block("else:"):
                self.w(
                    'raise SimulationError('
                    '"codegen: unspecialized stream index queue")'
                )
            self.w("_ii = int(_iv)")
            with self.block("if _ii != _iv:"):
                # malformed index: probe says "now" so the scheduler
                # takes a live step and the issue path raises as usual
                self.w(f"_hz = {t}")
                self.w("break")
            self.w("_haddr = _d.base + _ii")

        dense = "_haddr = _d.base + _d.issued * _d.stride"
        if self._all_indexed():
            indexed_case()
        elif self.has_indexed:
            with self.block("if _d.indexed:"):
                indexed_case()
            with self.block("else:"):
                self.w(dense)
        else:
            self.w(dense)

        def produce_check() -> None:
            self.w("_t2 = _d.target")
            for n, k in enumerate(self.produce_sites):
                kw = "if" if n == 0 else "elif"
                cap = self.m._queue_list[k].capacity
                with self.block(f"{kw} _t2 is q{k}:"):
                    with self.block(f"if q{k}_n >= {cap}:"):
                        self.w("continue")
            with self.block("else:"):
                self.w(
                    'raise SimulationError('
                    '"codegen: unspecialized stream target")'
                )

        def consume_check() -> None:
            self.w("_dqv = _d.data_queue")
            for n, k in enumerate(self.consume_sites):
                kw = "if" if n == 0 else "elif"
                with self.block(f"{kw} _dqv is q{k}:"):
                    with self.block(f"if not ({self.head_ready(k)}):"):
                        self.w("continue")
            with self.block("else:"):
                self.w(
                    'raise SimulationError('
                    '"codegen: unspecialized stream data queue")'
                )

        if self.has_producing and self.has_consuming:
            with self.block("if _d.produces:"):
                produce_check()
            with self.block("else:"):
                consume_check()
        elif self.has_producing:
            produce_check()
        else:
            consume_check()
        self.w(f"_t3 = bank_free[_haddr % {self.nbanks}]")
        with self.block(f"if _t3 <= {t}:"):
            self.w(f"_hz = {t}")
            self.w("break")
        with self.block("if _hz is None or _t3 < _hz:"):
            self.w("_hz = _t3")

    # -- stall snapshot/replay, specialized to this program's sites -------

    def _snapshot_fields(self) -> list[tuple[str, str]]:
        """(current-value expression, replay bump statement) per counter
        a fully-idle cycle of *this* program can increment — the static
        projection of ``stall_snapshot`` / ``_replay_fast``."""
        fields: list[tuple[str, str]] = []
        for c in self.ap_causes:
            ref = self.ap_cause_ref(c)
            if ref is not None:
                fields.append((ref, f"{ref} += _d * _count"))
            else:
                fields.append((
                    f"ap_st.get({c!r}, 0)",
                    f"ap_st[{c!r}] += _d * _count",
                ))
        if self.has_lod:
            fields.append(("ap_lod", "ap_lod += _d * _count"))
        for c in self.ep_causes:
            ref = self.ep_cause_ref(c)
            if ref is not None:
                fields.append((ref, f"{ref} += _d * _count"))
            else:
                fields.append((
                    f"ep_st.get({c!r}, 0)",
                    f"ep_st[{c!r}] += _d * _count",
                ))
        if self.has_stream:
            fields.append(("eng_blocked", "eng_blocked += _d * _count"))
        if self.has_staddr:
            fields.append(("su_dw", "su_dw += _d * _count"))
            fields.append(("su_mw", "su_mw += _d * _count"))
        for i in sorted(self.used_queues):
            fields.append((f"q{i}_em", f"q{i}_em += _d * _count"))
            fields.append((f"q{i}_fu", f"q{i}_fu += _d * _count"))
        return fields

    def _emit_snapshot(self, fields) -> None:
        exprs = ", ".join(cur for cur, _ in fields)
        if len(fields) == 1:
            exprs += ","
        self.w(f"snapshot = ({exprs})")

    def _emit_replay(self, fields) -> None:
        for idx, (cur, bump) in enumerate(fields):
            self.w(f"_d = {cur} - snapshot[{idx}]")
            with self.block("if _d:"):
                self.w(bump)
        self.w("cyc += _count")

    # -- assembly ---------------------------------------------------------

    def generate(self) -> str:
        self.lines = []
        for line in self.header_comment():
            self.w(line)
        self.w(
            "def __sma_codegen_loop__("
            "machine, max_cycles, deadlock_window, clock, agg):"
        )
        self.depth += 1
        self.emit_common_hoists()
        self.emit_queue_hoists()
        # localized queue state: bound mutators, traffic/stall counters
        # and the lazy-occupancy fields, synced back in the finally
        for i in sorted(self.used_queues):
            self.w(f"q{i}_ap = q{i}s.append")
            self.w(f"q{i}_pl = q{i}s.popleft")
            self.w(f"q{i}_n = len(q{i}s)")
            self.w(f"q{i}_em = q{i}t.empty_stalls")
            self.w(f"q{i}_fu = q{i}t.full_stalls")
            self.w(f"q{i}_po = q{i}t.pops")
            self.w(f"q{i}_pu = q{i}t.pushes")
            self.w(f"q{i}_sa = q{i}t.samples")
            self.w(f"q{i}_oc = q{i}t.occupancy_sum")
            self.w(f"q{i}_mx = q{i}t.occupancy_max")
            # occupancy histogram as a dense list (indices 0..capacity),
            # merged back into the stats dict on exit
            self.w(
                f"q{i}_hl = [0] * {self.m._queue_list[i].capacity + 1}"
            )
            self.w(f"q{i}_sy = q{i}._synced")
        self.w("agg_total = agg.total")
        self.w("agg_max = agg.max_seen")
        self.w("agg_sync = agg._synced")
        # localized processor / component / memory state
        self.w("ap_pc = ap.pc")
        self.w("ap_halted = ap.halted")
        self.w("ap_stalled = ap._stalled_on")
        self.w("ep_pc = ep.pc")
        self.w("ep_halted = ep.halted")
        self.w("ep_stalled = ep._stalled_on")
        self.w("ap_i = ap_stats.instructions")
        self.w("ep_i = ep_stats.instructions")
        self.w("ap_lod = ap_stats.lod_events")
        # localized stall-cause counters (stream-start causes stay
        # dict-based — the delegated reference method records them)
        for c in self.ap_causes:
            ref = self.ap_cause_ref(c)
            if ref is not None:
                self.w(f"{ref} = ap_st.get({c!r}, 0)")
        for c in self.ep_causes:
            ref = self.ep_cause_ref(c)
            if ref is not None:
                self.w(f"{ref} = ep_st.get({c!r}, 0)")
        if self.has_stream:
            self.w("req_n = engine_stats.requests_issued")
            self.w("eng_blocked = engine_stats.blocked_cycles")
            self.w("rr = engine._rr")
            self.w("_ns = len(streams)")
            if self._shadow_streams:
                self._emit_stream_shadow_refresh()
        else:
            self.w("req_n = 0")
        if self.has_staddr:
            self.w("st_n = su_stats.stores_issued")
            self.w("su_dw = su_stats.data_wait_cycles")
            self.w("su_mw = su_stats.memory_wait_cycles")
        else:
            self.w("st_n = 0")
        self.w("m_reads = mstats.reads")
        self.w("m_writes = mstats.writes")
        self.w("mcomp = mstats.completions")
        self.w("mbusy = mstats.busy_bank_cycles")
        self.w("iss_cyc, iss_cnt = banked._issues_at")
        if self.uses_memory:
            self.w("seq = banked._seq")
            # completions ride a local FIFO during the run (see
            # emit_completion); the heap-as-FIFO equivalence needs every
            # in-flight entry to share this run's constant latency, so
            # entries from a previous run are not admissible
            with self.block("if comps:"):
                self.w(
                    'raise SimulationError('
                    '"codegen: completion heap must be empty at entry")'
                )
            self.w("cq = deque()")
            self.w("cq_ap = cq.append")
            self.w("cq_pl = cq.popleft")
            self.w('_INF = float("inf")')
            self.w("_nc = _INF")
        # slot freelist: popped tokens are dead (filled, no pending
        # completion) and are recycled by emit_reserve_token/emit_push
        self.w("fl = []")
        self.w("fl_ap = fl.append")
        self.w("fl_po = fl.pop")
        self.w("cyc = machine.cycle")
        self.w("last_progress_cycle = 0")
        # the reference seeds last_progress to -1, so its first executed
        # cycle always registers progress; seeding the flag true matches
        self.w("_live = True")
        with self.block("try:"):
            self._emit_loop()
        with self.block("finally:"):
            self._emit_sync(full=True)
        self.depth -= 1
        return "\n".join(self.lines) + "\n"

    def _emit_sync(self, full: bool = False) -> None:
        self.w("ap.pc = ap_pc")
        self.w("ap.halted = ap_halted")
        self.w("ap._stalled_on = ap_stalled")
        self.w("ep.pc = ep_pc")
        self.w("ep.halted = ep_halted")
        self.w("ep._stalled_on = ep_stalled")
        # stall-cause write-back (partial sync needs it too: the
        # deadlock report reads the stats dicts); a zero counter is
        # never inserted — the interpreters only create keys on the
        # first stall
        for c in self.ap_causes:
            ref = self.ap_cause_ref(c)
            if ref is not None:
                with self.block(f"if {ref}:"):
                    self.w(f"ap_st[{c!r}] = {ref}")
        for c in self.ep_causes:
            ref = self.ep_cause_ref(c)
            if ref is not None:
                with self.block(f"if {ref}:"):
                    self.w(f"ep_st[{c!r}] = {ref}")
        if self._shadow_streams:
            # live descriptors carry a stale issued count while the
            # shadow lists are authoritative; the deadlock report (and
            # any exit-path observer) reads the descriptors
            self._emit_stream_issued_writeback()
        if not full:
            return
        self.w("machine.cycle = cyc")
        self.w("ap_stats.instructions = ap_i")
        self.w("ep_stats.instructions = ep_i")
        self.w("ap_stats.lod_events = ap_lod")
        if self.has_stream:
            self.w("engine_stats.requests_issued = req_n")
            self.w("engine_stats.blocked_cycles = eng_blocked")
            self.w("engine._rr = rr")
        if self.has_staddr:
            self.w("su_stats.stores_issued = st_n")
            self.w("su_stats.data_wait_cycles = su_dw")
            self.w("su_stats.memory_wait_cycles = su_mw")
        self.w("mstats.reads = m_reads")
        self.w("mstats.writes = m_writes")
        self.w("mstats.completions = mcomp")
        self.w("mstats.busy_bank_cycles = mbusy")
        self.w("banked._issues_at = (iss_cyc, iss_cnt)")
        for i in sorted(self.used_queues):
            self.w(f"q{i}t.empty_stalls = q{i}_em")
            self.w(f"q{i}t.full_stalls = q{i}_fu")
            self.w(f"q{i}t.pops = q{i}_po")
            self.w(f"q{i}t.pushes = q{i}_pu")
            self.w(f"q{i}t.samples = q{i}_sa")
            self.w(f"q{i}t.occupancy_sum = q{i}_oc")
            self.w(f"q{i}t.occupancy_max = q{i}_mx")
            self.w(f"_h = q{i}t.histogram")
            with self.block(f"for _n2, _sp in enumerate(q{i}_hl):"):
                with self.block("if _sp:"):
                    self.w("_h[_n2] = _h.get(_n2, 0) + _sp")
            self.w(f"q{i}._synced = q{i}_sy")
        self.w("agg.total = agg_total")
        self.w("agg.max_seen = agg_max")
        self.w("agg._synced = agg_sync")
        if self.uses_memory:
            self.w("banked._seq = seq")
            # re-box marker completions (left by a budget abort) into
            # the partial(queue.fill, token) callback shape the
            # checkpoint layer and the interpreters expect; the deque
            # is (time, seq)-sorted and the heap is empty (entry
            # requirement), so sorted appends rebuild a valid heap
            with self.block("for _e in cq:"):
                self.w("_k = _e[2]")
                for n, qi in enumerate(self.comp_targets):
                    kw = "if" if n == 0 else "elif"
                    with self.block(f"{kw} _k == {qi}:"):
                        self.w(
                            f"comps.append((_e[0], _e[1], "
                            f"partial(q{qi}.fill, _e[3]), _e[4]))"
                        )

    def _emit_delivery(self) -> None:
        """Inline completion delivery: pop every due marker entry and
        apply ``queue.fill`` by static dispatch on the queue index
        (pre-existing callback entries cannot occur — the run adapter
        requires an empty completion heap at entry)."""
        self.w("delivered = False")
        with self.block("if _nc <= now:"):
            with self.block("while cq and cq[0][0] <= now:"):
                self.w("_e = cq_pl()")
                self.w("mcomp += 1")
                self.w("_k = _e[2]")
                for n, qi in enumerate(self.comp_targets):
                    kw = "if" if n == 0 else "elif"
                    name = self.m._queue_list[qi].name
                    msg = f"{name}: slot filled twice"
                    with self.block(f"{kw} _k == {qi}:"):
                        self.w("_tok = _e[3]")
                        with self.block("if _tok.filled:"):
                            self.w(f"raise QueueError({msg!r})")
                        self.w("_tok.filled = True")
                        self.w("_tok.value = _e[4]")
                        self.w(f"q{qi}_pu += 1")
                with self.block("else:"):
                    self.w(
                        'raise SimulationError('
                        '"codegen: unspecialized completion target")'
                    )
            self.w("_nc = cq[0][0] if cq else _INF")
            self.w("delivered = True")

    def _emit_loop(self) -> None:
        fields = self._snapshot_fields()
        done_parts = ["ap_halted", "ep_halted"]
        if self.has_stream:
            done_parts.append("not _ns")
        if self.has_staddr:
            done_parts.append(f"not q{self.saq_i}_n")
        if self.uses_memory and self.m._owns_memory:
            done_parts.append("not cq")
        with self.block(
            f"while not ({' and '.join(done_parts)}):"
        ):
            self.w("now = cyc")
            with self.block("if now >= max_cycles:"):
                self.w(
                    'raise SimulationError('
                    '"exceeded cycle budget %s" % (max_cycles,))'
                )
            if self.uses_memory:
                self._emit_delivery()
            self.w("snapshot = None")
            plan_parts = []
            if self.uses_memory:
                plan_parts.append("not delivered")
            plan_parts.append("(ap_halted or ap_stalled is not None)")
            plan_parts.append("(ep_halted or ep_stalled is not None)")
            # the reference probes the horizon here and only snapshots
            # when no event is imminent — worthwhile when the snapshot
            # allocates stats copies, but this snapshot is a flat tuple
            # of locals, far cheaper than the probe.  Snapshot
            # unconditionally; an imminent event just clamps the jump
            # target to ``cyc`` below (``_count == 0``, no replay), so
            # results are unchanged.
            with self.block(f"if {' and '.join(plan_parts)}:"):
                self._emit_snapshot(fields)
            if self.has_staddr:
                with self.block(f"if q{self.saq_i}_n:"):
                    self.emit_su_body()
            if self.has_stream:
                with self.block("if _ns:"):
                    self.emit_engine_body()
            with self.block("if not ap_halted:"):
                self.emit_ap_dispatch()
            with self.block("if not ep_halted:"):
                self.emit_ep_dispatch()
            self.w("cyc = now + 1")
            # the reference re-sums its progress counters and compares;
            # every increment site here also raises the ``_live`` flag
            # (see emit_live), which is the same predicate without the
            # per-cycle six-term sum
            with self.block("if _live:"):
                self.w("_live = False")
                self.w("last_progress_cycle = cyc")
                self.w("continue")
            with self.block("if snapshot is not None:"):
                self.emit_horizon_inline("cyc")
                self.w("_tgt = _hz")
                self.w("_bound = last_progress_cycle + deadlock_window + 1")
                with self.block("if _tgt is None or _tgt > _bound:"):
                    self.w("_tgt = _bound")
                with self.block("if _tgt > max_cycles:"):
                    self.w("_tgt = max_cycles")
                self.w("_count = _tgt - cyc")
                with self.block("if _count > 0:"):
                    self._emit_replay(fields)
            with self.block(
                "if cyc - last_progress_cycle > deadlock_window:"
            ):
                self._emit_sync()
                self.w("machine.cycle = cyc")
                self.w("raise SimulationError(")
                self.w(
                    '    "deadlock: no forward progress for %s cycles'
                    ' at cycle %s; %s"'
                )
                self.w(
                    "    % (deadlock_window, cyc, "
                    "machine.deadlock_report()))"
                )


class NodeStepEmitter(BaseEmitter):
    """One-cycle step function for a cluster node (``kind="step"``),
    equivalent to ``step_cycle(tick_memory=False)``: the cluster ticks
    the shared memory and drives the clock."""

    loop_mode = False

    def generate(self) -> str:
        m = self.m
        self.lines = []
        for line in self.header_comment():
            self.w(line)
        self.w("def __sma_codegen_step__(machine, now):")
        self.depth += 1
        self.emit_common_hoists()
        self.emit_queue_hoists()
        if self.has_staddr:
            s = self.saq_i
            with self.block(f"if q{s}s:"):
                self.emit_su_body()
        if self.has_stream:
            with self.block("if streams:"):
                self.emit_engine_body()
        with self.block("if not ap.halted:"):
            self.emit_ap_dispatch()
        with self.block("if not ep.halted:"):
            self.emit_ep_dispatch()
        # queues.sample(), unrolled over the full queue file
        for i in range(len(m._queue_list)):
            self.w(f"_n = len(q{i}s)")
            self.w(f"q{i}t.samples += 1")
            self.w(f"q{i}t.occupancy_sum += _n")
            with self.block(f"if _n > q{i}t.occupancy_max:"):
                self.w(f"q{i}t.occupancy_max = _n")
            self.w(f"_h = q{i}t.histogram")
            self.w("_h[_n] = _h.get(_n, 0) + 1")
        # load-queue occupancy fold (step_cycle's outstanding counters)
        load_sum = " + ".join(
            f"len(q{i}s)" for i in range(self.n_load)
        ) or "0"
        self.w(f"_out = {load_sum}")
        self.w("machine._occupancy_sum += _out")
        with self.block("if _out > machine._occupancy_max:"):
            self.w("machine._occupancy_max = _out")
        self.w("_mx = machine._metrics")
        with self.block("if _mx is not None:"):
            self.w("_mx.on_cycle(machine, now)")
        self.w("machine.cycle = now + 1")
        self.depth -= 1
        return "\n".join(self.lines) + "\n"
