"""Execution namespace for generated tick functions.

A generated source body (see :mod:`repro.codegen.emitter`) is plain
Python that refers to a small, fixed set of support names — heap
primitives for the completion queue, the queue slot type, the simulator
error types and the ALU helper functions whose semantics are defined in
:mod:`repro.isa.opcodes`.  :func:`runtime_namespace` builds a fresh
globals dict providing exactly those names; everything else a generated
function touches arrives through its parameters (the machine) or through
literals baked in at emission time.

Keeping the namespace minimal is part of the emitter contract
(ARCHITECTURE section 18): a generated body may only depend on machine
state reachable from its parameters and on these process-wide-stable
helpers, so a cached artifact can be reused for any machine with the
same (program, config, code-fingerprint) key.
"""

from __future__ import annotations

import math
from collections import deque
from functools import partial
from heapq import heappop, heappush

from ..errors import MemoryError_, QueueError, SimulationError
from ..isa.opcodes import _div, _mod
from ..queues.operand_queue import _Slot


def runtime_namespace() -> dict:
    """Fresh globals for ``exec``-ing one generated artifact."""
    return {
        "heappush": heappush,
        "heappop": heappop,
        "deque": deque,
        "partial": partial,
        "_Slot": _Slot,
        "SimulationError": SimulationError,
        "MemoryError_": MemoryError_,
        "QueueError": QueueError,
        # ALU semantics shared with the interpreters (repro.isa.opcodes)
        "_div": _div,
        "_mod": _mod,
        "_sqrt": math.sqrt,
        "_floor": math.floor,
    }
