"""Machine configuration dataclasses.

All timing parameters of the simulated machines live here so that the
experiment harness can sweep them.  The defaults model a plausible early-80s
memory system relative to a single-cycle processor:

* main memory access latency of 8 processor cycles,
* 8-way low-order interleaving with a bank busy time of 4 cycles
  (so unit-stride streams sustain one word per cycle, while stride-8
  streams collapse onto one bank and sustain one word per 4 cycles),
* architectural queues of 8 entries,
* up to 4 concurrently active structured-access descriptors.

Use :func:`dataclasses.replace` to derive swept variants, e.g.::

    cfg = replace(default_sma_config(), memory=replace(mem, latency=32))
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class MemoryConfig:
    """Parameters of the banked, pipelined main memory.

    Attributes
    ----------
    size:
        Number of 64-bit words of addressable storage.
    num_banks:
        Degree of low-order interleaving.  Bank of address ``a`` is
        ``a % num_banks``.
    latency:
        Cycles from request acceptance to data availability (loads) or
        commit (stores).
    bank_busy:
        Cycles a bank stays busy after accepting a request; a second
        request to the same bank within this window is a *bank conflict*
        and is rejected (the requester retries).
    accepts_per_cycle:
        Upper bound on requests the memory port accepts per cycle,
        independent of banking.
    """

    size: int = 1 << 16
    num_banks: int = 8
    latency: int = 8
    bank_busy: int = 4
    accepts_per_cycle: int = 1

    def __post_init__(self) -> None:
        if self.size <= 0 or self.num_banks <= 0:
            raise ValueError("size and num_banks must be positive")
        if self.latency < 1 or self.bank_busy < 1:
            raise ValueError("latency and bank_busy must be >= 1")
        if self.accepts_per_cycle < 1:
            raise ValueError("accepts_per_cycle must be >= 1")


@dataclass(frozen=True)
class QueueConfig:
    """Depths of the architectural FIFO queues coupling AP, EP and memory."""

    load_queue_depth: int = 8     # memory -> EP operand queues (LQ0..)
    store_data_depth: int = 8     # EP -> memory store-data queues (SDQ0..)
    store_addr_depth: int = 8     # AP -> memory store-address queue (SAQ)
    index_queue_depth: int = 8    # memory -> AP internal index queues (IQ0..)
    ep_to_ap_data_depth: int = 4  # EP -> AP data queue (EAQ)
    ep_to_ap_branch_depth: int = 4  # EP -> AP branch queue (EBQ)

    def __post_init__(self) -> None:
        for name in (
            "load_queue_depth",
            "store_data_depth",
            "store_addr_depth",
            "index_queue_depth",
            "ep_to_ap_data_depth",
            "ep_to_ap_branch_depth",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")


@dataclass(frozen=True)
class CacheConfig:
    """Parameters of the baseline machine's set-associative data cache.

    The cache is a timing model layered over the flat backing store:
    write-back, write-allocate, LRU replacement.
    """

    size_words: int = 256
    line_words: int = 4
    associativity: int = 2
    hit_time: int = 1
    #: cycles to move one word of a line between memory and cache after the
    #: initial access latency has elapsed.
    transfer_cycles: int = 1

    def __post_init__(self) -> None:
        if self.line_words <= 0 or self.size_words <= 0:
            raise ValueError("cache sizes must be positive")
        if self.size_words % (self.line_words * self.associativity):
            raise ValueError(
                "size_words must be a multiple of line_words * associativity"
            )
        if self.hit_time < 1 or self.transfer_cycles < 0:
            raise ValueError("bad cache timing parameters")

    @property
    def num_sets(self) -> int:
        return self.size_words // (self.line_words * self.associativity)


@dataclass(frozen=True)
class FaultConfig:
    """Transient-fault injection parameters for the banked memory.

    A non-``None`` :attr:`SMAConfig.faults` wraps the machine's memory in
    :class:`repro.memory.banks.FaultyMemory`, which deterministically
    rejects a fraction of requests (timing-only perturbation) and can
    drop in-flight load completions to exercise the deadlock watchdog.
    """

    #: probability in [0, 1) that a request is transiently rejected; the
    #: requester retries next cycle, so this perturbs timing only.
    reject_prob: float = 0.0
    #: number of accepted load completions to silently drop (each leaves a
    #: reserved-but-never-filled queue slot, which the run watchdog reports
    #: as a deadlock instead of hanging).
    drop_completions: int = 0
    #: mixed into the deterministic fault predicate so distinct seeds give
    #: distinct (but reproducible) fault patterns.
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.reject_prob < 1.0:
            raise ValueError("reject_prob must be in [0, 1)")
        if self.drop_completions < 0:
            raise ValueError("drop_completions must be >= 0")


@dataclass(frozen=True)
class SpeculationConfig:
    """Speculative access-processor parameters (LOD run-ahead).

    A non-``None`` :attr:`SMAConfig.speculation` lets the AP speculate
    past loss-of-decoupling stalls (``lod_eaq``/``lod_ebq``): instead of
    waiting for the EP to deliver a data-dependent address or branch
    outcome, a deterministic predictor supplies a value, the AP
    checkpoints its architectural state and runs ahead, and any memory
    traffic it issues is poison-tagged until the prediction resolves.
    A misprediction rolls the shadow state back, squashes the poisoned
    traffic, and charges ``rollback_penalty`` cycles to the
    ``misspeculation`` stall bucket.
    """

    #: probability in [0, 1] that any given prediction is correct.  The
    #: predictor is deterministic per (pc, episode, seed): the same run
    #: always predicts the same way.  ``0.0`` never speculates at all
    #: (bit-identical to a non-speculative machine); ``1.0`` is a
    #: perfect oracle.
    accuracy: float = 1.0
    #: oracle mode shortcut: ``"coin"`` uses :attr:`accuracy`,
    #: ``"perfect"`` forces every prediction correct, ``"never"``
    #: disables speculation while keeping the config present.
    mode: str = "coin"
    #: maximum simultaneously outstanding speculative frames (nested
    #: speculation depth).  Swept by experiment R-F9.
    max_depth: int = 4
    #: recovery cycles charged to the ``misspeculation`` bucket after a
    #: rollback, before the AP may issue again.
    rollback_penalty: int = 2
    #: mixed into the deterministic prediction coin.
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.accuracy <= 1.0:
            raise ValueError("accuracy must be in [0, 1]")
        if self.mode not in ("coin", "perfect", "never"):
            raise ValueError(
                f"unknown speculation mode {self.mode!r}; "
                "known: 'coin', 'perfect', 'never'"
            )
        if self.max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if self.rollback_penalty < 0:
            raise ValueError("rollback_penalty must be >= 0")

    @property
    def enabled(self) -> bool:
        """Whether this configuration can ever open a speculative frame."""
        return self.mode != "never" and (
            self.mode == "perfect" or self.accuracy > 0.0
        )


@dataclass(frozen=True)
class SMAConfig:
    """Full configuration of the decoupled SMA machine."""

    memory: MemoryConfig = field(default_factory=MemoryConfig)
    queues: QueueConfig = field(default_factory=QueueConfig)
    #: number of structured-access descriptors that may be in flight.  The
    #: hardware analogue is one descriptor register per architectural queue,
    #: so the default matches the default queue complement (8 LQ + 4 SDQ +
    #: 4 IQ); a program that needs more concurrent streams than this
    #: deadlocks rather than degrades, so the compiler's stream count is
    #: validated against the queue counts instead.
    max_streams: int = 16
    #: stream-engine issue bandwidth (requests per cycle across descriptors).
    stream_issue_per_cycle: int = 1
    #: number of architectural load queues (LQ0..LQn-1) visible to the EP.
    num_load_queues: int = 8
    #: number of store-data queues (SDQ0..) and index queues (IQ0..).
    num_store_queues: int = 4
    num_index_queues: int = 4
    #: optional transient-fault injection (see :class:`FaultConfig`);
    #: ``None`` (the default) means a fault-free memory system.
    faults: FaultConfig | None = None
    #: optional speculative AP mode (see :class:`SpeculationConfig`);
    #: ``None`` (the default) keeps the AP strictly non-speculative.
    speculation: SpeculationConfig | None = None

    def __post_init__(self) -> None:
        if self.max_streams < 1 or self.stream_issue_per_cycle < 1:
            raise ValueError("stream engine parameters must be >= 1")
        if min(self.num_load_queues, self.num_store_queues,
               self.num_index_queues) < 1:
            raise ValueError("queue counts must be >= 1")


@dataclass(frozen=True)
class ScalarConfig:
    """Configuration of the baseline in-order von Neumann machine."""

    memory: MemoryConfig = field(default_factory=MemoryConfig)
    #: optional data cache; ``None`` means loads go straight to banked memory.
    cache: CacheConfig | None = None
    #: optional hardware prefetcher layered on the cache (experiment R-T5);
    #: an instance of :class:`repro.memory.prefetch.PrefetchConfig`.
    #: Requires ``cache`` to be set.
    prefetch: object | None = None

    def __post_init__(self) -> None:
        if self.prefetch is not None and self.cache is None:
            raise ValueError("prefetch requires a cache configuration")


def default_sma_config(**overrides) -> SMAConfig:
    """Return the reference SMA configuration, with keyword overrides
    applied to the top level (e.g. ``default_sma_config(max_streams=8)``)."""
    return replace(SMAConfig(), **overrides) if overrides else SMAConfig()


def default_scalar_config(**overrides) -> ScalarConfig:
    """Return the reference scalar-baseline configuration."""
    return replace(ScalarConfig(), **overrides) if overrides else ScalarConfig()
