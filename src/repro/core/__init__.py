"""The SMA machine core: processors, stream engine, store unit, coupling."""

from .access_processor import AccessProcessor, APStats
from .checkpoint import canonical_json, digest as snapshot_digest
from .cluster import ClusterResult, SMACluster
from .descriptors import (
    StreamDescriptor,
    StreamEngine,
    StreamEngineStats,
    StreamKind,
)
from .execute_processor import EPStats, ExecuteProcessor
from .machine import SMAMachine, SMAResult
from .store_unit import StoreUnit, StoreUnitStats

__all__ = [
    "APStats",
    "ClusterResult",
    "SMACluster",
    "AccessProcessor",
    "EPStats",
    "ExecuteProcessor",
    "SMAMachine",
    "SMAResult",
    "StoreUnit",
    "StoreUnitStats",
    "StreamDescriptor",
    "StreamEngine",
    "StreamEngineStats",
    "StreamKind",
    "canonical_json",
    "snapshot_digest",
]
