"""The Access Processor (AP).

The AP executes the *access program*: integer/address arithmetic, loop
control for memory traversal, and the structured memory instructions.  It
is a single-issue, in-order machine — one instruction per cycle unless a
resource stalls it, in which case the same instruction retries next cycle
and the stall cycle is attributed to a cause:

=================  =========================================================
``stream_slots``   ``streamld``/``streamst``/``gather``/``scatter`` found no
                   free descriptor slot in the stream engine
``queue_full``     ``ldq`` could not reserve its destination queue slot
``memory_busy``    ``ldq`` was rejected by the banked memory (conflict/port)
``saq_full``       ``staddr`` found the store-address queue full
``lod_eaq``        waiting on a value the EP must compute (data-dependent
                   address) — a **loss-of-decoupling** event
``lod_ebq``        waiting on an EP-resolved branch outcome — also LOD
``iq_empty``       ``fromq`` on an index queue whose head has not returned
=================  =========================================================

The distinction between the two ``lod_*`` causes and the rest is what the
loss-of-decoupling experiment (R-T4) measures: ordinary stalls mean the
memory or queues are saturated (decoupling is *working*); LOD stalls mean
the AP has been dragged back to the EP's speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError
from ..isa import ACCESS_OPS, ALU_FUNCS, ALU_OPS, Imm, Op, Program, Queue, Reg
from ..isa.operands import NUM_REGS, QueueSpace
from ..memory.banks import BankedMemory
from ..memory.main_memory import as_address
from ..queues import QueueFile
from .descriptors import StreamDescriptor, StreamEngine, StreamKind


@dataclass
class APStats:
    instructions: int = 0
    stall_cycles: dict[str, int] = field(default_factory=dict)
    #: number of distinct LOD episodes (entries into a lod_* stall).
    lod_events: int = 0

    def total_stalls(self) -> int:
        return sum(self.stall_cycles.values())

    def lod_stall_cycles(self) -> int:
        return sum(
            v for k, v in self.stall_cycles.items() if k.startswith("lod_")
        )


class AccessProcessor:
    """In-order interpreter of the access instruction stream."""

    def __init__(
        self,
        program: Program,
        queues: QueueFile,
        memory: BankedMemory,
        engine: StreamEngine,
    ):
        self.program = program
        self.queues = queues
        self.memory = memory
        self.engine = engine
        self.registers: list[float] = [0] * NUM_REGS
        self.pc = 0
        self.halted = False
        self.stats = APStats()
        self._stalled_on: str | None = None
        for instr in program:
            if instr.op not in ACCESS_OPS:
                raise SimulationError(
                    f"{instr.op.value} is not a valid access-processor op"
                )

    # ------------------------------------------------------------------

    def _stall(self, cause: str) -> None:
        st = self.stats.stall_cycles
        st[cause] = st.get(cause, 0) + 1
        if cause.startswith("lod_") and self._stalled_on != cause:
            self.stats.lod_events += 1
        self._stalled_on = cause

    def _read(self, operand) -> float:
        if isinstance(operand, Reg):
            return self.registers[operand.index]
        if isinstance(operand, Imm):
            return operand.value
        raise SimulationError(
            f"AP operand {operand} must be a register or immediate here"
        )

    def step(self, now: int) -> None:
        """Attempt to execute one instruction this cycle."""
        if self.halted:
            return
        if self.pc >= len(self.program):
            raise SimulationError(
                f"AP ran off the end of program {self.program.name!r}"
            )
        instr = self.program[self.pc]
        op = instr.op
        if op in ALU_OPS:
            self._alu(instr)
        elif op is Op.HALT:
            self.halted = True
            self._retire()
            return
        elif op is Op.NOP:
            pass
        elif op is Op.JMP:
            self._retire(instr.branch_target())
            return
        elif op in (Op.BEQZ, Op.BNEZ):
            value = self._read(instr.srcs[0])
            taken = (value == 0) == (op is Op.BEQZ)
            self._retire(instr.branch_target() if taken else None)
            return
        elif op is Op.DECBNZ:
            assert isinstance(instr.dest, Reg)
            self.registers[instr.dest.index] -= 1
            taken = self.registers[instr.dest.index] != 0
            self._retire(instr.branch_target() if taken else None)
            return
        elif op in (Op.STREAMLD, Op.GATHER, Op.STREAMST, Op.SCATTER):
            if not self._start_stream(instr):
                return
        elif op is Op.LDQ:
            if not self._ldq(instr, now):
                return
        elif op is Op.STADDR:
            if not self._staddr(instr):
                return
        elif op is Op.FROMQ:
            if not self._fromq(instr):
                return
        elif op in (Op.BQNZ, Op.BQEZ):
            ebq = self.queues.ep_to_ap_branch
            if not ebq.head_ready():
                ebq.note_empty_stall()
                self._stall("lod_ebq")
                return
            value = ebq.pop()
            taken = (value != 0) == (op is Op.BQNZ)
            self._retire(instr.branch_target() if taken else None)
            return
        else:  # pragma: no cover - exhaustive over ACCESS_OPS
            raise SimulationError(f"unhandled AP op {op}")
        self._retire()

    def _retire(self, new_pc: int | None = None) -> None:
        self.stats.instructions += 1
        self._stalled_on = None
        self.pc = new_pc if new_pc is not None else self.pc + 1

    # -- op implementations ---------------------------------------------

    def _alu(self, instr) -> None:
        args = [self._read(s) for s in instr.srcs]
        result = ALU_FUNCS[instr.op](*args)
        assert isinstance(instr.dest, Reg), "AP ALU dest must be a register"
        self.registers[instr.dest.index] = result

    def _start_stream(self, instr) -> bool:
        if not self.engine.has_free_slot():
            self._stall("stream_slots")
            return False
        produced, consumed = self.engine.queue_roles_in_use()
        # dest is the produced queue (loads/gathers); queue sources are
        # consumed (store data, gather/scatter indices)
        if isinstance(instr.dest, Queue):
            if self.queues.resolve(instr.dest) in produced:
                self._stall("stream_queue_busy")
                return False
        for s in instr.srcs:
            if isinstance(s, Queue) and self.queues.resolve(s) in consumed:
                self._stall("stream_queue_busy")
                return False
        op = instr.op
        if op is Op.STREAMLD:
            dest = instr.dest
            assert isinstance(dest, Queue)
            desc = StreamDescriptor(
                StreamKind.LOAD,
                base=as_address(self._read(instr.srcs[0])),
                stride=as_address(self._read(instr.srcs[1])),
                count=as_address(self._read(instr.srcs[2])),
                target=self.queues.resolve(dest),
            )
        elif op is Op.GATHER:
            dest = instr.dest
            index_q = instr.srcs[0]
            assert isinstance(dest, Queue) and isinstance(index_q, Queue)
            desc = StreamDescriptor(
                StreamKind.GATHER,
                base=as_address(self._read(instr.srcs[1])),
                count=as_address(self._read(instr.srcs[2])),
                target=self.queues.resolve(dest),
                index_queue=self.queues.resolve(index_q),
            )
        elif op is Op.STREAMST:
            data_q = instr.srcs[0]
            assert isinstance(data_q, Queue)
            desc = StreamDescriptor(
                StreamKind.STORE,
                base=as_address(self._read(instr.srcs[1])),
                stride=as_address(self._read(instr.srcs[2])),
                count=as_address(self._read(instr.srcs[3])),
                data_queue=self.queues.resolve(data_q),
            )
        else:  # SCATTER
            data_q, index_q = instr.srcs[0], instr.srcs[1]
            assert isinstance(data_q, Queue) and isinstance(index_q, Queue)
            desc = StreamDescriptor(
                StreamKind.SCATTER,
                base=as_address(self._read(instr.srcs[2])),
                count=as_address(self._read(instr.srcs[3])),
                data_queue=self.queues.resolve(data_q),
                index_queue=self.queues.resolve(index_q),
            )
        self.engine.start(desc)
        return True

    def _ldq(self, instr, now: int) -> bool:
        dest = instr.dest
        assert isinstance(dest, Queue)
        target = self.queues.resolve(dest)
        addr = as_address(
            self._read(instr.srcs[0]) + self._read(instr.srcs[1])
        )
        if not target.can_reserve():
            target.note_full_stall()
            self._stall("queue_full")
            return False
        if not self.memory.can_accept(addr, now):
            self._stall("memory_busy")
            return False
        token = target.reserve()
        accepted = self.memory.try_issue(
            addr, now, on_complete=lambda v, t=token, q=target: q.fill(t, v)
        )
        assert accepted
        return True

    def _staddr(self, instr) -> bool:
        data_q = instr.srcs[0]
        assert isinstance(data_q, Queue) and data_q.space is QueueSpace.SDQ
        saq = self.queues.store_addr
        if not saq.can_reserve():
            saq.note_full_stall()
            self._stall("saq_full")
            return False
        addr = as_address(
            self._read(instr.srcs[1]) + self._read(instr.srcs[2])
        )
        saq.push((addr, data_q.index))
        return True

    def _fromq(self, instr) -> bool:
        src = instr.srcs[0]
        assert isinstance(src, Queue)
        queue = self.queues.resolve(src)
        if not queue.head_ready():
            queue.note_empty_stall()
            if src.space is QueueSpace.EAQ:
                self._stall("lod_eaq")
            elif src.space is QueueSpace.EBQ:
                self._stall("lod_ebq")
            else:
                self._stall("iq_empty")
            return False
        assert isinstance(instr.dest, Reg)
        self.registers[instr.dest.index] = queue.pop()
        return True
