"""The Access Processor (AP).

The AP executes the *access program*: integer/address arithmetic, loop
control for memory traversal, and the structured memory instructions.  It
is a single-issue, in-order machine — one instruction per cycle unless a
resource stalls it, in which case the same instruction retries next cycle
and the stall cycle is attributed to a cause:

=================  =========================================================
``stream_slots``   ``streamld``/``streamst``/``gather``/``scatter`` found no
                   free descriptor slot in the stream engine
``queue_full``     ``ldq`` could not reserve its destination queue slot
``memory_busy``    ``ldq`` was rejected by the banked memory (conflict/port)
``saq_full``       ``staddr`` found the store-address queue full
``lod_eaq``        waiting on a value the EP must compute (data-dependent
                   address) — a **loss-of-decoupling** event
``lod_ebq``        waiting on an EP-resolved branch outcome — also LOD
``iq_empty``       ``fromq`` on an index queue whose head has not returned
=================  =========================================================

The distinction between the two ``lod_*`` causes and the rest is what the
loss-of-decoupling experiment (R-T4) measures: ordinary stalls mean the
memory or queues are saturated (decoupling is *working*); LOD stalls mean
the AP has been dragged back to the EP's speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import MemoryError_, SimulationError
from ..isa import ACCESS_OPS, ALU_FUNCS, ALU_OPS, Imm, Op, Program, Queue, Reg
from ..isa.operands import NUM_REGS, QueueSpace
from ..memory.banks import BankedMemory
from ..memory.main_memory import as_address
from ..queues import QueueFile
from .descriptors import StreamDescriptor, StreamEngine, StreamKind


@dataclass
class APStats:
    instructions: int = 0
    stall_cycles: dict[str, int] = field(default_factory=dict)
    #: number of distinct LOD episodes (entries into a lod_* stall).
    lod_events: int = 0

    def total_stalls(self) -> int:
        return sum(self.stall_cycles.values())

    def lod_stall_cycles(self) -> int:
        return sum(
            v for k, v in self.stall_cycles.items() if k.startswith("lod_")
        )


# decoded-instruction kinds (first element of each decode tuple); plain
# ints so the fast step dispatches on integer compares, not enum hashing
(_A_ALU, _A_LDQ, _A_DECBNZ, _A_FROMQ, _A_STADDR, _A_BQ, _A_BR, _A_STREAM,
 _A_JMP, _A_HALT, _A_NOP) = range(11)

# decoded-operand tags: register index / immediate value / invalid
_O_REG, _O_IMM, _O_BAD = range(3)


class AccessProcessor:
    """In-order interpreter of the access instruction stream."""

    __slots__ = (
        "program", "queues", "memory", "engine", "registers", "pc",
        "halted", "stats", "_stalled_on", "_decoded", "_saq", "_ebq",
        "_bank_free", "_nbanks", "_accepts", "_prog", "_plen", "_spec",
    )

    def __init__(
        self,
        program: Program,
        queues: QueueFile,
        memory: BankedMemory,
        engine: StreamEngine,
    ):
        self.program = program
        self.queues = queues
        self.memory = memory
        self.engine = engine
        self.registers: list[float] = [0] * NUM_REGS
        self.pc = 0
        self.halted = False
        self.stats = APStats()
        self._stalled_on: str | None = None
        #: SpeculationEngine when the machine runs in speculative AP mode;
        #: None keeps every hook on the baseline (bit-identical) path.
        self._spec = None
        for instr in program:
            if instr.op not in ACCESS_OPS:
                raise SimulationError(
                    f"{instr.op.value} is not a valid access-processor op"
                )
        # decode cache + memory-model constants for step_fast; the
        # bank-free list and the config values are stable for the
        # machine's lifetime (BankedMemory mutates the list in place)
        self._decoded = [self._decode(pc) for pc in range(len(program))]
        # bounds-check cache for step_fast; valid only while self.program
        # is still the construction-time object (identity-checked there)
        self._prog = program
        self._plen = len(program)
        self._saq = queues.store_addr
        self._ebq = queues.ep_to_ap_branch
        self._bank_free = memory._bank_free_at
        self._nbanks = memory.config.num_banks
        self._accepts = memory.config.accepts_per_cycle

    # -- decode cache (step_fast) ----------------------------------------

    def _decode(self, pc: int):
        """Decode one instruction into a kind-tagged tuple for
        :meth:`step_fast`.  Operands the reference :meth:`step` would
        reject at execution time are tagged ``_O_BAD`` so the fast path
        raises the identical error at the identical cycle."""
        instr = self.program[pc]
        op = instr.op
        if op in ALU_OPS:
            dest = instr.dest
            return (
                _A_ALU,
                ALU_FUNCS[op],
                tuple(self._decode_operand(s) for s in instr.srcs),
                dest.index if isinstance(dest, Reg) else None,
            )
        if op is Op.HALT:
            return (_A_HALT,)
        if op is Op.NOP:
            return (_A_NOP,)
        if op is Op.JMP:
            return (_A_JMP, instr.branch_target())
        if op in (Op.BEQZ, Op.BNEZ):
            return (
                _A_BR,
                self._decode_operand(instr.srcs[0]),
                op is Op.BEQZ,
                instr.branch_target(),
            )
        if op is Op.DECBNZ:
            assert isinstance(instr.dest, Reg)
            return (_A_DECBNZ, instr.dest.index, instr.branch_target())
        if op in (Op.STREAMLD, Op.GATHER, Op.STREAMST, Op.SCATTER):
            return (_A_STREAM, instr)
        if op is Op.LDQ:
            dest = instr.dest
            assert isinstance(dest, Queue)
            return (
                _A_LDQ,
                self.queues.resolve(dest),
                self._decode_operand(instr.srcs[0]),
                self._decode_operand(instr.srcs[1]),
            )
        if op is Op.STADDR:
            data_q = instr.srcs[0]
            assert isinstance(data_q, Queue) and \
                data_q.space is QueueSpace.SDQ
            return (
                _A_STADDR,
                data_q.index,
                self._decode_operand(instr.srcs[1]),
                self._decode_operand(instr.srcs[2]),
            )
        if op is Op.FROMQ:
            src = instr.srcs[0]
            assert isinstance(src, Queue)
            if src.space is QueueSpace.EAQ:
                cause = "lod_eaq"
            elif src.space is QueueSpace.EBQ:
                cause = "lod_ebq"
            else:
                cause = "iq_empty"
            dest = instr.dest
            return (
                _A_FROMQ,
                self.queues.resolve(src),
                cause,
                dest.index if isinstance(dest, Reg) else None,
            )
        assert op in (Op.BQNZ, Op.BQEZ)  # exhaustive over ACCESS_OPS
        return (_A_BQ, op is Op.BQNZ, instr.branch_target())

    @staticmethod
    def _decode_operand(operand):
        if isinstance(operand, Reg):
            return (_O_REG, operand.index)
        if isinstance(operand, Imm):
            return (_O_IMM, operand.value)
        return (_O_BAD, operand)

    # ------------------------------------------------------------------

    def _stall(self, cause: str) -> None:
        st = self.stats.stall_cycles
        st[cause] = st.get(cause, 0) + 1
        if cause.startswith("lod_") and self._stalled_on != cause:
            self.stats.lod_events += 1
        self._stalled_on = cause

    def _read(self, operand) -> float:
        if isinstance(operand, Reg):
            return self.registers[operand.index]
        if isinstance(operand, Imm):
            return operand.value
        raise SimulationError(
            f"AP operand {operand} must be a register or immediate here"
        )

    def step(self, now: int) -> None:
        """Attempt to execute one instruction this cycle."""
        if self.halted:
            return
        spec = self._spec
        if spec is not None and spec.ap_blocked(self, now):
            return
        if self.pc >= len(self.program):
            raise SimulationError(
                f"AP ran off the end of program {self.program.name!r}"
            )
        instr = self.program[self.pc]
        op = instr.op
        if op in ALU_OPS:
            self._alu(instr)
        elif op is Op.HALT:
            self.halted = True
            self._retire()
            return
        elif op is Op.NOP:
            pass
        elif op is Op.JMP:
            self._retire(instr.branch_target())
            return
        elif op in (Op.BEQZ, Op.BNEZ):
            value = self._read(instr.srcs[0])
            taken = (value == 0) == (op is Op.BEQZ)
            self._retire(instr.branch_target() if taken else None)
            return
        elif op is Op.DECBNZ:
            assert isinstance(instr.dest, Reg)
            self.registers[instr.dest.index] -= 1
            taken = self.registers[instr.dest.index] != 0
            self._retire(instr.branch_target() if taken else None)
            return
        elif op in (Op.STREAMLD, Op.GATHER, Op.STREAMST, Op.SCATTER):
            if not self._start_stream(instr):
                return
        elif op is Op.LDQ:
            if not self._ldq(instr, now):
                return
        elif op is Op.STADDR:
            if not self._staddr(instr):
                return
        elif op is Op.FROMQ:
            if not self._fromq(instr):
                return
        elif op in (Op.BQNZ, Op.BQEZ):
            if spec is not None:
                value = spec.ap_branch_value(self)
                if value is None:
                    return
            else:
                ebq = self.queues.ep_to_ap_branch
                if not ebq.head_ready():
                    ebq.note_empty_stall()
                    self._stall("lod_ebq")
                    return
                value = ebq.pop()
            taken = (value != 0) == (op is Op.BQNZ)
            self._retire(instr.branch_target() if taken else None)
            return
        else:  # pragma: no cover - exhaustive over ACCESS_OPS
            raise SimulationError(f"unhandled AP op {op}")
        self._retire()

    def step_fast(self, now: int) -> None:
        """Decode-cached twin of :meth:`step` for the event-horizon
        scheduler's hot loop.  Must stay behaviorally identical to
        ``step`` (same stall causes and LOD episode counting, same stats,
        same errors at the same cycle); the Hypothesis equivalence suite
        in ``tests/test_event_horizon.py`` holds the two together."""
        if self.halted:
            return
        pc = self.pc
        # bounds-check against the live program (not just the decode
        # cache) so a program swapped after construction still faults
        # identically; the identity test keeps the common case to one
        # cached-length compare
        if pc >= self._plen or self.program is not self._prog:
            if pc >= len(self.program):
                raise SimulationError(
                    f"AP ran off the end of program {self.program.name!r}"
                )
        decoded = self._decoded
        entry = decoded[pc]
        kind = entry[0]
        stats = self.stats
        registers = self.registers
        if kind == _A_ALU:
            args = []
            for tag, payload in entry[2]:
                if tag == _O_REG:
                    args.append(registers[payload])
                elif tag == _O_IMM:
                    args.append(payload)
                else:
                    raise SimulationError(
                        f"AP operand {payload} must be a register or "
                        "immediate here"
                    )
            registers[entry[3]] = entry[1](*args)
            stats.instructions += 1
            self._stalled_on = None
            self.pc = pc + 1
            return
        if kind == _A_LDQ:
            tag, payload = entry[2]
            if tag == _O_REG:
                a = registers[payload]
            elif tag == _O_IMM:
                a = payload
            else:
                raise SimulationError(
                    f"AP operand {payload} must be a register or "
                    "immediate here"
                )
            tag, payload = entry[3]
            if tag == _O_REG:
                b = registers[payload]
            elif tag == _O_IMM:
                b = payload
            else:
                raise SimulationError(
                    f"AP operand {payload} must be a register or "
                    "immediate here"
                )
            addr = as_address(a + b)
            target = entry[1]
            if len(target._slots) >= target.capacity:
                target.stats.full_stalls += 1
                st = stats.stall_cycles
                st["queue_full"] = st.get("queue_full", 0) + 1
                self._stalled_on = "queue_full"
                return
            memory = self.memory
            cyc, cnt = memory._issues_at
            if (cyc == now and cnt >= self._accepts) or \
                    self._bank_free[addr % self._nbanks] > now:
                st = stats.stall_cycles
                st["memory_busy"] = st.get("memory_busy", 0) + 1
                self._stalled_on = "memory_busy"
                return
            token = target.reserve()
            accepted = memory.try_issue(
                addr, now,
                on_complete=lambda v, t=token, q=target: q.fill(t, v),
            )
            assert accepted
            stats.instructions += 1
            self._stalled_on = None
            self.pc = pc + 1
            return
        if kind == _A_DECBNZ:
            index = entry[1]
            registers[index] -= 1
            stats.instructions += 1
            self._stalled_on = None
            self.pc = entry[2] if registers[index] != 0 else pc + 1
            return
        if kind == _A_FROMQ:
            queue = entry[1]
            slots = queue._slots
            if not slots or not slots[0].filled:
                queue.stats.empty_stalls += 1
                cause = entry[2]
                st = stats.stall_cycles
                st[cause] = st.get(cause, 0) + 1
                if cause != "iq_empty" and self._stalled_on != cause:
                    stats.lod_events += 1
                self._stalled_on = cause
                return
            registers[entry[3]] = queue.pop()
            stats.instructions += 1
            self._stalled_on = None
            self.pc = pc + 1
            return
        if kind == _A_STADDR:
            saq = self._saq
            if len(saq._slots) >= saq.capacity:
                saq.stats.full_stalls += 1
                st = stats.stall_cycles
                st["saq_full"] = st.get("saq_full", 0) + 1
                self._stalled_on = "saq_full"
                return
            tag, payload = entry[2]
            if tag == _O_REG:
                a = registers[payload]
            elif tag == _O_IMM:
                a = payload
            else:
                raise SimulationError(
                    f"AP operand {payload} must be a register or "
                    "immediate here"
                )
            tag, payload = entry[3]
            if tag == _O_REG:
                b = registers[payload]
            elif tag == _O_IMM:
                b = payload
            else:
                raise SimulationError(
                    f"AP operand {payload} must be a register or "
                    "immediate here"
                )
            saq.push((as_address(a + b), entry[1]))
            stats.instructions += 1
            self._stalled_on = None
            self.pc = pc + 1
            return
        if kind == _A_BQ:
            ebq = self._ebq
            slots = ebq._slots
            if not slots or not slots[0].filled:
                ebq.stats.empty_stalls += 1
                st = stats.stall_cycles
                st["lod_ebq"] = st.get("lod_ebq", 0) + 1
                if self._stalled_on != "lod_ebq":
                    stats.lod_events += 1
                self._stalled_on = "lod_ebq"
                return
            value = ebq.pop()
            taken = (value != 0) == entry[1]
            stats.instructions += 1
            self._stalled_on = None
            self.pc = entry[2] if taken else pc + 1
            return
        if kind == _A_BR:
            tag, payload = entry[1]
            if tag == _O_REG:
                value = registers[payload]
            elif tag == _O_IMM:
                value = payload
            else:
                raise SimulationError(
                    f"AP operand {payload} must be a register or "
                    "immediate here"
                )
            taken = (value == 0) == entry[2]
            stats.instructions += 1
            self._stalled_on = None
            self.pc = entry[3] if taken else pc + 1
            return
        if kind == _A_STREAM:
            if not self._start_stream(entry[1]):
                return
            stats.instructions += 1
            self._stalled_on = None
            self.pc = pc + 1
            return
        if kind == _A_JMP:
            stats.instructions += 1
            self._stalled_on = None
            self.pc = entry[1]
            return
        if kind == _A_HALT:
            self.halted = True
            stats.instructions += 1
            self._stalled_on = None
            self.pc = pc + 1
            return
        # _A_NOP
        stats.instructions += 1
        self._stalled_on = None
        self.pc = pc + 1

    def next_event_time(self, now: int) -> int | None:
        """Event-horizon contract: earliest cycle the AP can act with
        every other component frozen.

        Unstalled and not halted: ``now``.  Stalled on ``memory_busy``:
        the target bank's free time — the one stall that time alone
        resolves (the stalled ``ldq``'s address is recomputable because
        pc and registers are frozen while stalled; the per-cycle port
        limit is ignored, which is conservative).  Every other stall
        cause waits on another component, hence ``None``.
        """
        if self.halted:
            return None
        cause = self._stalled_on
        if cause is None:
            return now
        if cause != "memory_busy":
            return None
        entry = self._decoded[self.pc]
        if entry[0] != _A_LDQ:  # pragma: no cover - memory_busy => ldq
            return now
        registers = self.registers
        tag, payload = entry[2]
        a = registers[payload] if tag == _O_REG else payload
        tag, payload = entry[3]
        b = registers[payload] if tag == _O_REG else payload
        t = self._bank_free[as_address(a + b) % self._nbanks]
        return t if t > now else now

    def _retire(self, new_pc: int | None = None) -> None:
        self.stats.instructions += 1
        self._stalled_on = None
        self.pc = new_pc if new_pc is not None else self.pc + 1

    # -- op implementations ---------------------------------------------

    def _alu(self, instr) -> None:
        args = [self._read(s) for s in instr.srcs]
        result = ALU_FUNCS[instr.op](*args)
        assert isinstance(instr.dest, Reg), "AP ALU dest must be a register"
        self.registers[instr.dest.index] = result

    def _start_stream(self, instr) -> bool:
        spec = self._spec
        if spec is not None and spec.ap_stream_barrier(self):
            # descriptors cannot be squashed, so they are speculation
            # barriers: wait until every open frame has resolved
            return False
        if not self.engine.has_free_slot():
            self._stall("stream_slots")
            return False
        produced, consumed = self.engine.queue_roles_in_use()
        # dest is the produced queue (loads/gathers); queue sources are
        # consumed (store data, gather/scatter indices)
        if isinstance(instr.dest, Queue):
            if self.queues.resolve(instr.dest) in produced:
                self._stall("stream_queue_busy")
                return False
        for s in instr.srcs:
            if isinstance(s, Queue) and self.queues.resolve(s) in consumed:
                self._stall("stream_queue_busy")
                return False
        op = instr.op
        if op is Op.STREAMLD:
            dest = instr.dest
            assert isinstance(dest, Queue)
            desc = StreamDescriptor(
                StreamKind.LOAD,
                base=as_address(self._read(instr.srcs[0])),
                stride=as_address(self._read(instr.srcs[1])),
                count=as_address(self._read(instr.srcs[2])),
                target=self.queues.resolve(dest),
            )
        elif op is Op.GATHER:
            dest = instr.dest
            index_q = instr.srcs[0]
            assert isinstance(dest, Queue) and isinstance(index_q, Queue)
            desc = StreamDescriptor(
                StreamKind.GATHER,
                base=as_address(self._read(instr.srcs[1])),
                count=as_address(self._read(instr.srcs[2])),
                target=self.queues.resolve(dest),
                index_queue=self.queues.resolve(index_q),
            )
        elif op is Op.STREAMST:
            data_q = instr.srcs[0]
            assert isinstance(data_q, Queue)
            desc = StreamDescriptor(
                StreamKind.STORE,
                base=as_address(self._read(instr.srcs[1])),
                stride=as_address(self._read(instr.srcs[2])),
                count=as_address(self._read(instr.srcs[3])),
                data_queue=self.queues.resolve(data_q),
            )
        else:  # SCATTER
            data_q, index_q = instr.srcs[0], instr.srcs[1]
            assert isinstance(data_q, Queue) and isinstance(index_q, Queue)
            desc = StreamDescriptor(
                StreamKind.SCATTER,
                base=as_address(self._read(instr.srcs[2])),
                count=as_address(self._read(instr.srcs[3])),
                data_queue=self.queues.resolve(data_q),
                index_queue=self.queues.resolve(index_q),
            )
        self.engine.start(desc)
        return True

    def _ldq(self, instr, now: int) -> bool:
        dest = instr.dest
        assert isinstance(dest, Queue)
        target = self.queues.resolve(dest)
        spec = self._spec
        speculative = spec is not None and spec.in_flight()
        try:
            addr = as_address(
                self._read(instr.srcs[0]) + self._read(instr.srcs[1])
            )
        except (MemoryError_, ValueError, OverflowError):
            if not speculative:
                raise
            addr = 0  # wrong-path garbage address; the load is doomed
        if speculative:
            # wrong-path addresses may be out of range; clamp so a doomed
            # speculative load cannot crash the simulation
            addr %= self.memory.storage.size
        if not target.can_reserve():
            target.note_full_stall()
            self._stall("queue_full")
            return False
        if not self.memory.can_accept(addr, now):
            self._stall("memory_busy")
            return False
        token = target.reserve()
        if spec is not None:
            spec.note_reserved(target, token)
        accepted = self.memory.try_issue(
            addr, now, on_complete=lambda v, t=token, q=target: q.fill(t, v)
        )
        assert accepted
        return True

    def _staddr(self, instr) -> bool:
        data_q = instr.srcs[0]
        assert isinstance(data_q, Queue) and data_q.space is QueueSpace.SDQ
        saq = self.queues.store_addr
        if not saq.can_reserve():
            saq.note_full_stall()
            self._stall("saq_full")
            return False
        spec = self._spec
        try:
            addr = as_address(
                self._read(instr.srcs[1]) + self._read(instr.srcs[2])
            )
        except (MemoryError_, ValueError, OverflowError):
            if not (spec is not None and spec.in_flight()):
                raise
            addr = 0  # wrong-path garbage; slot dies before commit
        slot = saq.push((addr, data_q.index))
        if spec is not None:
            spec.note_reserved(saq, slot)
        return True

    def _fromq(self, instr) -> bool:
        src = instr.srcs[0]
        assert isinstance(src, Queue)
        queue = self.queues.resolve(src)
        spec = self._spec
        if spec is not None:
            return spec.ap_fromq(self, instr, src, queue)
        if not queue.head_ready():
            queue.note_empty_stall()
            if src.space is QueueSpace.EAQ:
                self._stall("lod_eaq")
            elif src.space is QueueSpace.EBQ:
                self._stall("lod_ebq")
            else:
                self._stall("iq_empty")
            return False
        assert isinstance(instr.dest, Reg)
        self.registers[instr.dest.index] = queue.pop()
        return True
