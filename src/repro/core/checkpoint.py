"""Full-state checkpoint/restore for SMA machines and clusters.

This generalizes the PR-3/4 ``stall_snapshot``/``replay_stall_cycles``
contract — which captures only the counters a fully-idle cycle increments
— to the *entire* mutable state of a machine: processor register files
and PCs, queue contents (including reserved-but-unfilled slots), live
stream descriptors, the banked memory's bank timers and in-flight
completion heap, the functional memory image, and the optional metrics
layer's buckets and samplers.

Snapshots are **JSON-clean** dictionaries so they can be written to disk
(``repro checkpoint save``) and diffed; :func:`digest` hashes the
canonical JSON form, giving a deterministic ``state_digest`` that two
runs can compare for bit-identical state.

Design constraints honored here:

* **In-place restore.**  Several components cache references into each
  other's containers for the fast step paths
  (``SMAMachine._load_slots``, ``QueueFile._sample_pairs``,
  ``AccessProcessor._bank_free``, metric-registry getters).  Restore
  therefore mutates every container in place (``deque.clear``/
  ``extend``, ``list[:] = ``, ``dict.clear``/``update``) and never
  rebinds an attribute that anything else may hold.
* **Completion callbacks are symbolic.**  The banked memory's heap holds
  closures (``partial(queue.fill, slot)`` from the fast paths, or the
  reference paths' ``lambda v, t=token, q=target: q.fill(t, v)``), which
  cannot be serialized.  Both shapes close over exactly a target queue
  and a slot token, so each entry is encoded as ``(queue locator, slot
  position)`` and re-materialized against the restored queue contents.
* **Fingerprinted.**  A snapshot embeds a hash of the programs and
  configuration it was taken from; restoring onto a machine built from
  anything else raises :class:`repro.errors.CheckpointError` instead of
  silently corrupting state.

Snapshots may only be taken between runs (or between manual
``step_cycle`` calls) — never from inside a running scheduler loop,
where the queues may be in lazy-sampling mode.
"""

from __future__ import annotations

import hashlib
import heapq
import json
from functools import partial

import numpy as np

from ..errors import CheckpointError
from .descriptors import StreamDescriptor, StreamKind

FORMAT_VERSION = 1


# -- canonical form / digest ------------------------------------------------

def canonical_json(snapshot: dict) -> str:
    """Canonical serialization: sorted keys, no whitespace."""
    return json.dumps(snapshot, sort_keys=True, separators=(",", ":"))


def digest(snapshot: dict) -> str:
    """sha256 over the canonical JSON form of a snapshot."""
    return hashlib.sha256(canonical_json(snapshot).encode()).hexdigest()


def _program_text(program) -> str:
    return "\n".join(repr(instr) for instr in program)


def machine_fingerprint(machine) -> str:
    """Hash of everything a snapshot is *relative to*: both programs and
    the full configuration.  Stored in the snapshot and re-checked on
    restore."""
    h = hashlib.sha256()
    h.update(_program_text(machine.ap.program).encode())
    h.update(b"\0")
    h.update(_program_text(machine.ep.program).encode())
    h.update(b"\0")
    h.update(repr(machine.config).encode())
    return h.hexdigest()


def cluster_fingerprint(cluster) -> str:
    h = hashlib.sha256()
    for node in cluster.nodes:
        h.update(machine_fingerprint(node).encode())
        h.update(b"\0")
    return h.hexdigest()


# -- component encoders -----------------------------------------------------

#: scalar stat fields captured per processor-stats type (``stall_cycles``
#: is handled structurally).  Explicit lists, keyed by the stats class
#: name: a field rename or a new counter must be registered here, and a
#: mismatch raises :class:`CheckpointError` instead of silently restoring
#: stale/zero counts (the old code probed ``lod_events`` via ``hasattr``,
#: which a rename would have turned into a silent drop).
_PROCESSOR_STAT_FIELDS = {
    "APStats": ("instructions", "lod_events"),
    "EPStats": ("instructions",),
}


def _stat_fields(stats) -> tuple[str, ...]:
    name = type(stats).__name__
    try:
        return _PROCESSOR_STAT_FIELDS[name]
    except KeyError:
        raise CheckpointError(
            f"unknown processor stats type {name!r}; register its fields "
            "in checkpoint._PROCESSOR_STAT_FIELDS"
        ) from None


def _processor_state(proc) -> dict:
    stats = proc.stats
    data = {
        "registers": list(proc.registers),
        "pc": proc.pc,
        "halted": proc.halted,
        "stalled_on": proc._stalled_on,
        "stall_cycles": dict(stats.stall_cycles),
    }
    for name in _stat_fields(stats):
        try:
            data[name] = getattr(stats, name)
        except AttributeError:
            raise CheckpointError(
                f"{type(stats).__name__} lost registered stat field "
                f"{name!r}; update checkpoint._PROCESSOR_STAT_FIELDS"
            ) from None
    return data


def _restore_processor(proc, data: dict) -> None:
    proc.registers[:] = data["registers"]
    proc.pc = data["pc"]
    proc.halted = data["halted"]
    proc._stalled_on = data["stalled_on"]
    stats = proc.stats
    stats.stall_cycles.clear()
    stats.stall_cycles.update(data["stall_cycles"])
    for name in _stat_fields(stats):
        if name not in data:
            raise CheckpointError(
                f"snapshot is missing processor stat field {name!r} for "
                f"{type(stats).__name__}"
            )
        if not hasattr(stats, name):
            raise CheckpointError(
                f"{type(stats).__name__} lost registered stat field "
                f"{name!r}; update checkpoint._PROCESSOR_STAT_FIELDS"
            )
        setattr(stats, name, data[name])


def _engine_state(engine, qindex: dict) -> dict:
    def _qref(queue):
        return None if queue is None else qindex[id(queue)]

    stats = engine.stats
    return {
        "rr": engine._rr,
        "streams": [
            {
                "kind": desc.kind.value,
                "base": desc.base,
                "count": desc.count,
                "stride": desc.stride,
                "issued": desc.issued,
                "target": _qref(desc.target),
                "data_queue": _qref(desc.data_queue),
                "index_queue": _qref(desc.index_queue),
            }
            for desc in engine._streams
        ],
        "stats": {
            "streams_started": stats.streams_started,
            "requests_issued": stats.requests_issued,
            "blocked_cycles": stats.blocked_cycles,
            "max_live_streams": stats.max_live_streams,
        },
    }


def _restore_engine(engine, data: dict, qlist) -> None:
    def _queue(ref):
        return None if ref is None else qlist[ref]

    streams = []
    for entry in data["streams"]:
        desc = StreamDescriptor(
            kind=StreamKind(entry["kind"]),
            base=entry["base"],
            count=entry["count"],
            stride=entry["stride"],
            target=_queue(entry["target"]),
            data_queue=_queue(entry["data_queue"]),
            index_queue=_queue(entry["index_queue"]),
        )
        desc.issued = entry["issued"]
        streams.append(desc)
    engine._streams[:] = streams
    engine._rr = data["rr"]
    stats, src = engine.stats, data["stats"]
    stats.streams_started = src["streams_started"]
    stats.requests_issued = src["requests_issued"]
    stats.blocked_cycles = src["blocked_cycles"]
    stats.max_live_streams = src["max_live_streams"]


def _store_unit_state(store_unit) -> dict:
    stats = store_unit.stats
    return {
        "stores_issued": stats.stores_issued,
        "data_wait_cycles": stats.data_wait_cycles,
        "memory_wait_cycles": stats.memory_wait_cycles,
    }


def _restore_store_unit(store_unit, data: dict) -> None:
    stats = store_unit.stats
    stats.stores_issued = data["stores_issued"]
    stats.data_wait_cycles = data["data_wait_cycles"]
    stats.memory_wait_cycles = data["memory_wait_cycles"]


def _memory_state(memory) -> dict:
    """Sparse image of the functional store (it is mostly zeros)."""
    nonzero = np.flatnonzero(memory._words)
    return {
        "size": memory.size,
        "nonzero": [
            [int(a), float(memory._words[a])] for a in nonzero
        ],
    }


def _restore_memory(memory, data: dict) -> None:
    if memory.size != data["size"]:
        raise CheckpointError(
            f"memory size mismatch: snapshot has {data['size']}, "
            f"machine has {memory.size}"
        )
    memory._words[:] = 0.0
    for addr, value in data["nonzero"]:
        memory._words[addr] = value


def _completion_entry(callback):
    """Recognize the two callback shapes the simulator schedules and
    return ``(queue, slot)``; anything else is un-checkpointable."""
    if isinstance(callback, partial):
        # partial(queue.fill, slot) — the tick_fast path
        bound = callback.func
        if getattr(bound, "__name__", "") == "fill" and len(callback.args) == 1:
            return bound.__self__, callback.args[0]
    defaults = getattr(callback, "__defaults__", None)
    if defaults is not None and len(defaults) == 2:
        # lambda v, t=token, q=target: q.fill(t, v) — the reference paths
        return defaults[1], defaults[0]
    raise CheckpointError(
        f"unrecognized completion callback {callback!r}; "
        "cannot checkpoint this machine state"
    )


def _banked_state(banked, qlocate) -> dict:
    """Encode the banked memory's timing state.  ``qlocate(queue)``
    returns the JSON-clean locator of a queue (an index for a machine,
    a ``[node, index]`` pair for a cluster)."""
    completions = []
    for time, seq, callback, result in banked._completions:
        queue, slot = _completion_entry(callback)
        for pos, candidate in enumerate(queue._slots):
            if candidate is slot:
                break
        else:
            raise CheckpointError(
                "in-flight completion targets a slot no longer in its queue"
            )
        completions.append([
            time, seq, qlocate(queue), pos,
            None if result is None else float(result),
        ])
    stats = banked.stats
    data = {
        "bank_free_at": list(banked._bank_free_at),
        "seq": banked._seq,
        "issues_at": list(banked._issues_at),
        "completions": completions,
        "stats": {
            "reads": stats.reads,
            "writes": stats.writes,
            "bank_conflicts": stats.bank_conflicts,
            "port_rejects": stats.port_rejects,
            "busy_bank_cycles": stats.busy_bank_cycles,
            "completions": stats.completions,
            "per_bank_accesses": list(stats.per_bank_accesses),
        },
    }
    if banked.fault_injection:
        data["faults"] = {
            "injected_rejects": banked.injected_rejects,
            "dropped_completions": banked.dropped_completions,
            "drop_budget": banked._drop_budget,
        }
    return data


def _restore_banked(banked, data: dict, qresolve) -> None:
    """``qresolve(locator)`` is the inverse of ``qlocate`` above; queue
    contents must already have been restored (slot positions refer to
    the restored deques)."""
    banked._bank_free_at[:] = data["bank_free_at"]
    banked._seq = data["seq"]
    banked._issues_at = tuple(data["issues_at"])
    entries = []
    for time, seq, locator, pos, result in data["completions"]:
        queue = qresolve(locator)
        try:
            slot = queue._slots[pos]
        except IndexError:
            raise CheckpointError(
                f"completion slot {pos} missing from queue {queue.name}"
            ) from None
        if slot.filled:
            raise CheckpointError(
                f"completion targets an already-filled slot in {queue.name}"
            )
        entries.append((time, seq, partial(queue.fill, slot), result))
    banked._completions[:] = entries
    heapq.heapify(banked._completions)
    stats, src = banked.stats, data["stats"]
    stats.reads = src["reads"]
    stats.writes = src["writes"]
    stats.bank_conflicts = src["bank_conflicts"]
    stats.port_rejects = src["port_rejects"]
    stats.busy_bank_cycles = src["busy_bank_cycles"]
    stats.completions = src["completions"]
    stats.per_bank_accesses[:] = src["per_bank_accesses"]
    faults = data.get("faults")
    if faults is not None:
        if not banked.fault_injection:
            raise CheckpointError(
                "snapshot was taken with fault injection enabled but the "
                "target machine's memory is fault-free"
            )
        banked.injected_rejects = faults["injected_rejects"]
        banked.dropped_completions = faults["dropped_completions"]
        banked._drop_budget = faults["drop_budget"]
    elif banked.fault_injection:
        raise CheckpointError(
            "snapshot was taken without fault injection but the target "
            "machine injects faults"
        )


def _metrics_state(metrics) -> dict:
    return {
        "buckets": dict(metrics.buckets),
        "last_bucket": metrics._last_bucket,
        "prev": [
            metrics._prev_ap,
            metrics._prev_ep,
            metrics._prev_store,
            metrics._prev_blocked,
            metrics._prev_full,
        ],
        "samplers": [
            {
                "name": s.name,
                "samples": s.samples,
                "total": s.total,
                "maximum": s.maximum,
            }
            for s in metrics.registry.samplers
        ],
    }


def _restore_metrics(metrics, data: dict) -> None:
    metrics.buckets.clear()
    metrics.buckets.update(data["buckets"])
    metrics._last_bucket = data["last_bucket"]
    (
        metrics._prev_ap,
        metrics._prev_ep,
        metrics._prev_store,
        metrics._prev_blocked,
        metrics._prev_full,
    ) = data["prev"]
    by_name = {s.name: s for s in metrics.registry.samplers}
    for entry in data["samplers"]:
        sampler = by_name.get(entry["name"])
        if sampler is None:
            raise CheckpointError(
                f"snapshot has sampler {entry['name']!r} the target "
                "machine does not"
            )
        sampler.samples = entry["samples"]
        sampler.total = entry["total"]
        sampler.maximum = entry["maximum"]


# -- machine-level snapshot / restore ---------------------------------------

def _require_settled(machine) -> None:
    for queue in machine._queue_list:
        if queue._lazy:
            raise CheckpointError(
                "cannot snapshot while queues are in lazy-sampling mode "
                "(i.e. from inside a running scheduler loop)"
            )


def snapshot_machine(machine, include_memory: bool = True) -> dict:
    """JSON-clean image of a machine's full mutable state.

    ``include_memory=False`` is the cluster-node form: the shared
    functional store and banked timing state are captured once at cluster
    level instead.
    """
    _require_settled(machine)
    qlist = machine._queue_list
    qindex = {id(q): i for i, q in enumerate(qlist)}
    data = {
        "version": FORMAT_VERSION,
        "kind": "machine",
        "fingerprint": machine_fingerprint(machine),
        "cycle": machine.cycle,
        "occupancy_sum": machine._occupancy_sum,
        "occupancy_max": machine._occupancy_max,
        "ap": _processor_state(machine.ap),
        "ep": _processor_state(machine.ep),
        "engine": _engine_state(machine.engine, qindex),
        "store_unit": _store_unit_state(machine.store_unit),
        "queues": [q.snapshot_state() for q in qlist],
        "metrics": (
            None if machine._metrics is None
            else _metrics_state(machine._metrics)
        ),
    }
    if machine._spec is not None:
        if not machine._spec.idle():
            raise CheckpointError(
                "cannot snapshot mid-speculation (open frames); step the "
                "machine until every prediction has resolved first"
            )
        data["speculation"] = machine._spec.snapshot_state()
    if include_memory:
        data["memory"] = _memory_state(machine.memory)
        data["banked"] = _banked_state(
            machine.banked, lambda q: qindex[id(q)]
        )
    return data


def restore_machine(machine, data: dict, include_memory: bool = True) -> None:
    if data.get("version") != FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported snapshot version {data.get('version')!r}"
        )
    if data.get("kind") != "machine":
        raise CheckpointError(
            f"expected a machine snapshot, got {data.get('kind')!r}"
        )
    if data["fingerprint"] != machine_fingerprint(machine):
        raise CheckpointError(
            "snapshot fingerprint does not match this machine's programs "
            "and configuration"
        )
    qlist = machine._queue_list
    if len(data["queues"]) != len(qlist):
        raise CheckpointError("queue complement mismatch")
    if (data["metrics"] is None) != (machine._metrics is None):
        raise CheckpointError(
            "metrics attachment differs between snapshot and machine "
            "(attach_metrics() before restoring a metrics snapshot)"
        )
    for queue, qdata in zip(qlist, data["queues"]):
        queue.restore_state(qdata)
    _restore_processor(machine.ap, data["ap"])
    _restore_processor(machine.ep, data["ep"])
    _restore_engine(machine.engine, data["engine"], qlist)
    _restore_store_unit(machine.store_unit, data["store_unit"])
    if data["metrics"] is not None:
        _restore_metrics(machine._metrics, data["metrics"])
    spec_data = data.get("speculation")
    if spec_data is not None:
        # the engine may not exist yet (snapshot restored before the
        # machine's first cycle); build it around the serialized oracle
        # instead of re-running the reference pre-run
        if not machine._spec_ready or machine._spec is None:
            machine._ensure_speculation(oracle=spec_data["oracle"])
        if machine._spec is None:
            raise CheckpointError(
                "snapshot carries speculation state but this machine's "
                "configuration disables speculation"
            )
        machine._spec.restore_state(spec_data)
    else:
        # the snapshot predates the engine (taken before the machine's
        # first cycle); match that state exactly — the engine will be
        # rebuilt, oracle and all, on the next step
        machine._spec = None
        machine.ap._spec = None
        machine._spec_ready = False
    if include_memory:
        _restore_memory(machine.memory, data["memory"])
        _restore_banked(machine.banked, data["banked"], lambda i: qlist[i])
    machine.cycle = data["cycle"]
    machine._occupancy_sum = data["occupancy_sum"]
    machine._occupancy_max = data["occupancy_max"]


# -- cluster-level snapshot / restore ---------------------------------------

def snapshot_cluster(cluster) -> dict:
    locate = {}
    for n, node in enumerate(cluster.nodes):
        for i, queue in enumerate(node._queue_list):
            locate[id(queue)] = [n, i]
    return {
        "version": FORMAT_VERSION,
        "kind": "cluster",
        "fingerprint": cluster_fingerprint(cluster),
        "cycle": cluster.cycle,
        "finish_cycles": list(cluster.finish_cycles),
        "nodes": [
            snapshot_machine(node, include_memory=False)
            for node in cluster.nodes
        ],
        "memory": _memory_state(cluster.memory),
        "banked": _banked_state(cluster.banked, lambda q: locate[id(q)]),
    }


def restore_cluster(cluster, data: dict) -> None:
    if data.get("version") != FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported snapshot version {data.get('version')!r}"
        )
    if data.get("kind") != "cluster":
        raise CheckpointError(
            f"expected a cluster snapshot, got {data.get('kind')!r}"
        )
    if data["fingerprint"] != cluster_fingerprint(cluster):
        raise CheckpointError(
            "snapshot fingerprint does not match this cluster's programs "
            "and configuration"
        )
    if len(data["nodes"]) != len(cluster.nodes):
        raise CheckpointError("node count mismatch")
    for node, node_data in zip(cluster.nodes, data["nodes"]):
        restore_machine(node, node_data, include_memory=False)
    _restore_memory(cluster.memory, data["memory"])
    _restore_banked(
        cluster.banked,
        data["banked"],
        lambda loc: cluster.nodes[loc[0]]._queue_list[loc[1]],
    )
    cluster.cycle = data["cycle"]
    cluster.finish_cycles[:] = data["finish_cycles"]
