"""SMA multiprocessor cluster (future-work extension).

A natural growth path for a decoupled node is replication: several SMA
processor pairs sharing one banked main memory.  Each node keeps its own
queues, stream engine and store unit — the *only* shared resource is the
memory, so the interesting question the cluster answers is **how much of a
node's standalone performance survives memory interference**, as a
function of the interleaving degree and the nodes' access patterns.

The cluster owns the memory tick: every simulated cycle it delivers
completions once, then steps each node (round-robin order rotates each
cycle so no node gets a standing priority at the memory port).  Nodes run
disjoint address ranges — the runner lays each kernel out in its own
region — so no coherence protocol is needed; the contention being studied
is bandwidth, not sharing.

**Cluster cycle fast-forward.**  The latency-dominated regime that makes
single-machine fast-forward pay off (see :mod:`repro.core.machine`) is
*worse* in a cluster: contention stretches every memory round-trip, so a
larger fraction of cycles are jointly idle — every node stalled on a
pending completion.  ``run`` detects joint idleness the same way the
machine does (two consecutive cycles in which no node retired an
instruction, issued a request or committed a store, and no completion
fired), then jumps the shared clock to ``banked.next_event_time`` and
replays each still-running node's skipped-cycle statistics in closed form
through the node's own ``stall_snapshot``/``replay_stall_cycles`` pair —
the same replay contract ``SMAMachine._run`` honors, which never touches
the memory model, so a non-owning node replays exactly like a standalone
machine.  Finished nodes are frozen (naive ticking does not step them
either), and the shared memory needs no replay of its own: a jointly-idle
cycle issues no accesses, so bank-free times and port counters are static
until the next completion.  Everything stays bit-identical to naive
ticking (property-tested in ``tests/test_cluster_fast_forward.py``),
including per-node metrics buckets — ``attach_metrics`` works in cluster
mode because the node classifiers replay in closed form just as they do
standalone.

Used by experiment R-F8 (`bench_fig8_multiprocessor.py`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..config import SMAConfig
from ..errors import SimulationError
from ..isa import Program
from ..memory import BankedMemory, MainMemory
from . import machine as machine_mod
from .machine import SMAMachine, SMAResult


@dataclass
class ClusterResult:
    """Per-node results plus shared-memory contention statistics."""

    cycles: int
    nodes: list[SMAResult]
    bank_conflicts: int
    port_rejects: int
    memory_utilization: float
    #: cycle at which each node transitioned to done (== elapsed cycles,
    #: exact even across fast-forward jumps)
    finish_cycles: list[int] = field(default_factory=list)

    def summary(self) -> str:
        lines = [f"cluster cycles      {self.cycles}"]
        for i, node in enumerate(self.nodes):
            lines.append(
                f"node {i}: {node.cycles} cycles, "
                f"{node.memory_reads + node.memory_writes} memory ops"
            )
        lines.append(f"bank conflicts      {self.bank_conflicts}")
        lines.append(f"memory utilization  {self.memory_utilization:.3f}")
        return "\n".join(lines)

    def contention(self) -> dict:
        """Shared-memory contention section (JSON-serializable)."""
        return {
            "bank_conflicts": self.bank_conflicts,
            "port_rejects": self.port_rejects,
            "memory_utilization": self.memory_utilization,
        }


class SMACluster:
    """N SMA nodes contending for one banked memory."""

    def __init__(
        self,
        programs: list[tuple[Program, Program]],
        config: SMAConfig | None = None,
    ):
        if not programs:
            raise ValueError("cluster needs at least one node")
        self.config = config or SMAConfig()
        self.memory = MainMemory(self.config.memory.size)
        if self.config.faults is not None:
            from ..memory.banks import FaultyMemory

            self.banked = FaultyMemory(
                self.memory, self.config.memory, self.config.faults
            )
        else:
            self.banked = BankedMemory(self.memory, self.config.memory)
        node_config = replace(self.config)
        self.nodes = [
            SMAMachine(ap, ep, node_config, shared_memory=self.banked)
            for ap, ep in programs
        ]
        self.cycle = 0
        #: cycle each node finished at (None while running)
        self.finish_cycles: list[int | None] = [None] * len(self.nodes)

    def load_array(self, base: int, values) -> None:
        """Stage workload data into the shared memory."""
        self.memory.load_array(base, values)

    def dump_array(self, base: int, count: int):
        return self.memory.dump_array(base, count)

    def attach_metrics(self):
        """Attach a stall-attribution metrics layer to every node.

        Returns the list of per-node :class:`SMAMachineMetrics`.  Each
        node gets its own registry (counter names collide across nodes
        otherwise); the shared memory's counters are published into every
        node's registry, getter-based over the one shared stats object.
        Like the single-machine case, attaching metrics keeps cluster
        fast-forward enabled — node classifiers and samplers replay in
        closed form.
        """
        return [node.attach_metrics() for node in self.nodes]

    def done(self) -> bool:
        return all(n.done() for n in self.nodes) and self.banked.quiescent()

    def _step_all(self, steppers: list | None = None) -> None:
        """Simulate one cluster cycle: memory tick, then every running
        node, in an order that rotates with the cycle number.

        A node whose ``done()`` flips during (or before) its step is
        recorded in ``finish_cycles`` *immediately* at the current cycle.
        (The old code deferred recording to the node's next visit, one
        cycle late under naive ticking and a whole jump late under
        fast-forward.)

        ``steppers``, when given, holds one compiled per-node step
        function (or ``None``) per node — the codegen scheduler's
        specialized replacement for ``step_cycle(tick_memory=False)``.
        """
        now = self.cycle
        self.banked.tick(now)
        count = len(self.nodes)
        # rotate service order so the memory port is shared fairly; the
        # rotation is a pure function of the cycle number, so it is
        # unaffected by clock jumps
        rotation = now % count
        for offset in range(count):
            index = (rotation + offset) % count
            node = self.nodes[index]
            if node.done():
                if self.finish_cycles[index] is None:
                    # finished via this cycle's memory tick (the final
                    # completion drained the last pending access)
                    self.finish_cycles[index] = now
                continue
            node.cycle = now
            fn = steppers[index] if steppers is not None else None
            if fn is not None:
                fn(node, now)
            else:
                node.step_cycle(tick_memory=False)
            if self.finish_cycles[index] is None and node.done():
                self.finish_cycles[index] = node.cycle
        self.cycle = now + 1

    def _compiled_steppers(self) -> list | None:
        """Per-node compiled step functions for the codegen scheduler.

        Entries are ``None`` for nodes the emitter cannot specialize
        (those fall back to the interpreted ``step_cycle``); the whole
        list is ``None`` — reverting the run to the event-horizon
        template stepping — when a memory observer is attached, because
        generated bodies read the functional store directly and would
        bypass the observer hook.
        """
        if self.memory.observer is not None:
            return None
        from ..codegen import compiled_step_for

        steppers = [compiled_step_for(node) for node in self.nodes]
        return [art.fn if art is not None else None for art in steppers]

    def step_cycles(self, count: int) -> int:
        """Step up to ``count`` cluster cycles (stopping early when every
        node is done); returns the number actually simulated."""
        stepped = 0
        while stepped < count and not self.done():
            self._step_all()
            stepped += 1
        return stepped

    # -- checkpoint / restore --------------------------------------------

    def snapshot(self) -> dict:
        """Cluster checkpoint: per-node machine snapshots composed with
        the shared clock, functional store and banked timing state (see
        :mod:`repro.core.checkpoint`)."""
        from .checkpoint import snapshot_cluster

        return snapshot_cluster(self)

    def restore(self, data: dict) -> None:
        """Inverse of :meth:`snapshot` (fingerprint-checked)."""
        from .checkpoint import restore_cluster

        restore_cluster(self, data)

    def state_digest(self) -> str:
        """Deterministic sha256 over the canonical snapshot encoding."""
        from .checkpoint import digest

        return digest(self.snapshot())

    def _progress_state(self) -> tuple[int, ...]:
        """Changes iff any node made forward progress or memory moved."""
        return tuple(
            part for node in self.nodes for part in node.progress_state()
        ) + (self.banked.stats.reads + self.banked.stats.writes,)

    def next_event_time(self, now: int) -> int | None:
        """Event-horizon contract for the whole cluster: the earliest
        cycle at which *any* node can make externally visible progress,
        i.e. the minimum over the running nodes' own horizons (each of
        which already includes the shared memory's earliest pending
        completion).  The explicit completion clamp covers the tail case
        where every node has halted but shared-memory traffic is still
        draining."""
        best = self.banked.next_completion_time(now)
        for node in self.nodes:
            if node.done():
                continue
            t = node.next_event_time(now)
            if t is not None and (best is None or t < best):
                best = t
        return best

    def run(
        self,
        max_cycles: int = 10_000_000,
        deadlock_window: int = 10_000,
        fast_forward: bool | None = None,
        scheduler: str | None = None,
    ) -> ClusterResult:
        """Run every node to completion under shared-memory contention.

        ``scheduler`` picks the loop exactly as in
        :meth:`SMAMachine.run` — any key of
        :data:`SMAMachine.SCHEDULERS` (``"naive"`` / ``"joint-idle"`` /
        ``"event-horizon"`` / ``"codegen"``); when ``None`` it is
        derived from ``fast_forward``, which itself defaults to the
        process-wide :data:`repro.core.machine.FAST_FORWARD`.  The
        codegen scheduler runs the event-horizon loop with each node's
        interpreted ``step_cycle`` replaced by its compiled
        program-specialized step function (unspecializable nodes fall
        back per node).  Cycle counts and every per-node statistic are
        bit-identical across all four.
        """
        if scheduler is None:
            if fast_forward is None:
                fast_forward = machine_mod.FAST_FORWARD
            scheduler = "event-horizon" if fast_forward else "naive"
        elif scheduler not in SMAMachine.SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; expected one of "
                + ", ".join(SMAMachine.SCHEDULERS)
            )
        if self.banked.fault_injection and scheduler != "naive":
            # see SMAMachine.run: only naive ticking exercises the
            # injected faults faithfully
            scheduler = "naive"
        spec_cfg = self.config.speculation
        if (spec_cfg is not None and spec_cfg.enabled
                and scheduler != "naive"):
            # see SMAMachine.run: the fast loops bypass the speculation
            # hooks, so speculative clusters run under naive ticking
            scheduler = "naive"
        if scheduler == "codegen":
            self._run_event_horizon(
                max_cycles, deadlock_window,
                steppers=self._compiled_steppers(),
            )
        elif scheduler == "event-horizon":
            self._run_event_horizon(max_cycles, deadlock_window)
        else:
            self._run_joint_idle(
                max_cycles, deadlock_window, scheduler == "joint-idle"
            )
        return self._collect()

    def _run_event_horizon(
        self, max_cycles: int, deadlock_window: int,
        steppers: list | None = None,
    ) -> None:
        """Contract-driven cluster loop, subsuming the two-consecutive-
        idle-cycle heuristic of :meth:`_run_joint_idle`.

        Each iteration asks the cluster horizon whether anything can move
        before ``now + 2``; if not, it snapshots every running node,
        steps one live template cycle, confirms joint idleness with the
        progress tuple, recomputes the horizon from the post-template
        stall causes (pre-step flags can be stale) and replays the
        skipped span through every running node's
        ``replay_stall_cycles`` — the same replay contract the
        single-machine loops honor, so everything stays bit-identical to
        naive ticking.  Nodes step through their reference
        ``step_cycle`` path (per-cycle queue sampling): the cluster's
        win is jump *eligibility* — one idle cycle instead of two, and
        contract-verified rather than inferred — not per-cycle cost.
        The codegen scheduler reuses this loop with ``steppers`` — each
        node's compiled program-specialized step function — attacking
        exactly that per-cycle cost while inheriting the jump logic.
        """
        last_state: tuple = ()
        last_progress = 0
        while not self.done():
            now = self.cycle
            if now >= max_cycles:
                raise SimulationError(
                    f"exceeded cycle budget {max_cycles}"
                )
            snapshots = None
            t = self.next_event_time(now)
            if t is None or t > now + 1:
                snapshots = [
                    (node, node.stall_snapshot())
                    for node in self.nodes
                    if not node.done()
                ]
            self._step_all(steppers)
            state = self._progress_state()
            if state != last_state:
                last_state = state
                last_progress = self.cycle
                continue
            if snapshots is not None:
                target = self.next_event_time(self.cycle)
                bound = last_progress + deadlock_window + 1
                if target is None or target > bound:
                    target = bound
                if target > max_cycles:
                    target = max_cycles
                count = target - self.cycle
                if count > 0:
                    for node, snapshot in snapshots:
                        node.replay_stall_cycles(snapshot, count)
                    self.cycle += count
            if self.cycle - last_progress > deadlock_window:
                raise SimulationError(
                    f"cluster deadlock at cycle {self.cycle}: "
                    + self._deadlock_reports()
                )

    def _run_joint_idle(
        self,
        max_cycles: int,
        deadlock_window: int,
        fast_forward: bool,
    ) -> None:
        """The PR 3 loop: naive ticking, optionally jumping the shared
        clock after two consecutive jointly-idle cycles."""
        banked = self.banked
        last_state: tuple = ()
        last_progress = 0
        prev_idle = False  # previous cycle was jointly idle
        while not self.done():
            if self.cycle >= max_cycles:
                raise SimulationError(f"exceeded cycle budget {max_cycles}")
            if prev_idle and fast_forward:
                # every node is in a steady stall: simulate one more
                # cycle as the per-node replay template, then jump the
                # shared clock to the next memory event
                running = [
                    (node, node.stall_snapshot())
                    for node in self.nodes
                    if not node.done()
                ]
                pending_before = banked.pending_completions
                self._step_all()
                state = self._progress_state()
                if (
                    state == last_state
                    and banked.pending_completions == pending_before
                ):
                    # no node moved and nothing completed: every cycle
                    # until the next memory event repeats this one
                    # exactly, on every node
                    horizon = min(
                        last_progress + deadlock_window + 1, max_cycles
                    )
                    target = banked.next_event_time(self.cycle - 1)
                    if target is None or target > horizon:
                        target = horizon
                    skipped = target - self.cycle
                    if skipped > 0:
                        for node, snapshot in running:
                            node.replay_stall_cycles(snapshot, skipped)
                        self.cycle += skipped
                    if self.cycle - last_progress > deadlock_window:
                        raise SimulationError(
                            f"cluster deadlock at cycle {self.cycle}: "
                            + self._deadlock_reports()
                        )
                    continue
                # the candidate cycle made progress somewhere — fall
                # through to the ordinary bookkeeping below
            else:
                self._step_all()
            state = self._progress_state()
            if state != last_state:
                last_state = state
                last_progress = self.cycle
                prev_idle = False
                p_pending = banked.pending_completions
            else:
                if self.cycle - last_progress > deadlock_window:
                    raise SimulationError(
                        f"cluster deadlock at cycle {self.cycle}: "
                        + self._deadlock_reports()
                    )
                # a cycle that only delivered a completion is not idle:
                # the filled slot can unblock a node next cycle
                pending = banked.pending_completions
                prev_idle = pending == p_pending
                p_pending = pending

    def _collect(self) -> ClusterResult:
        for index, node in enumerate(self.nodes):
            if self.finish_cycles[index] is None:
                self.finish_cycles[index] = node.cycle
        mstats = self.banked.stats
        cycles = max(self.cycle, 1)
        return ClusterResult(
            cycles=self.cycle,
            nodes=[n.collect_result() for n in self.nodes],
            bank_conflicts=mstats.bank_conflicts,
            port_rejects=mstats.port_rejects,
            memory_utilization=mstats.utilization(
                cycles, self.config.memory.num_banks
            ),
            finish_cycles=[
                finish if finish is not None else self.cycle
                for finish in self.finish_cycles
            ],
        )

    def _deadlock_reports(self) -> str:
        return "; ".join(
            f"node{i}: {n.deadlock_report()}"
            for i, n in enumerate(self.nodes)
        )
