"""SMA multiprocessor cluster (future-work extension).

A natural growth path for a decoupled node is replication: several SMA
processor pairs sharing one banked main memory.  Each node keeps its own
queues, stream engine and store unit — the *only* shared resource is the
memory, so the interesting question the cluster answers is **how much of a
node's standalone performance survives memory interference**, as a
function of the interleaving degree and the nodes' access patterns.

The cluster owns the memory tick: every simulated cycle it delivers
completions once, then steps each node (round-robin order rotates each
cycle so no node gets a standing priority at the memory port).  Nodes run
disjoint address ranges — the runner lays each kernel out in its own
region — so no coherence protocol is needed; the contention being studied
is bandwidth, not sharing.

Used by experiment R-F8 (`bench_fig8_multiprocessor.py`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..config import SMAConfig
from ..errors import SimulationError
from ..isa import Program
from ..memory import BankedMemory, MainMemory
from .machine import SMAMachine, SMAResult


@dataclass
class ClusterResult:
    """Per-node results plus shared-memory contention statistics."""

    cycles: int
    nodes: list[SMAResult]
    bank_conflicts: int
    port_rejects: int
    memory_utilization: float

    def summary(self) -> str:
        lines = [f"cluster cycles      {self.cycles}"]
        for i, node in enumerate(self.nodes):
            lines.append(
                f"node {i}: {node.cycles} cycles, "
                f"{node.memory_reads + node.memory_writes} memory ops"
            )
        lines.append(f"bank conflicts      {self.bank_conflicts}")
        lines.append(f"memory utilization  {self.memory_utilization:.3f}")
        return "\n".join(lines)


class SMACluster:
    """N SMA nodes contending for one banked memory."""

    def __init__(
        self,
        programs: list[tuple[Program, Program]],
        config: SMAConfig | None = None,
    ):
        if not programs:
            raise ValueError("cluster needs at least one node")
        self.config = config or SMAConfig()
        self.memory = MainMemory(self.config.memory.size)
        self.banked = BankedMemory(self.memory, self.config.memory)
        node_config = replace(self.config)
        self.nodes = [
            SMAMachine(ap, ep, node_config, shared_memory=self.banked)
            for ap, ep in programs
        ]
        self.cycle = 0
        #: cycle each node finished at (None while running)
        self.finish_cycles: list[int | None] = [None] * len(self.nodes)

    def load_array(self, base: int, values) -> None:
        """Stage workload data into the shared memory."""
        self.memory.load_array(base, values)

    def dump_array(self, base: int, count: int):
        return self.memory.dump_array(base, count)

    def done(self) -> bool:
        return all(n.done() for n in self.nodes) and self.banked.quiescent()

    def run(
        self,
        max_cycles: int = 10_000_000,
        deadlock_window: int = 10_000,
    ) -> ClusterResult:
        """Run every node to completion under shared-memory contention."""
        last_state: tuple = ()
        last_progress = 0
        while not self.done():
            if self.cycle >= max_cycles:
                raise SimulationError(f"exceeded cycle budget {max_cycles}")
            self.banked.tick(self.cycle)
            # rotate service order so the memory port is shared fairly
            order = list(range(len(self.nodes)))
            rotation = self.cycle % len(self.nodes)
            order = order[rotation:] + order[:rotation]
            for index in order:
                node = self.nodes[index]
                if not node.done():
                    node.cycle = self.cycle
                    node.step_cycle(tick_memory=False)
                elif self.finish_cycles[index] is None:
                    self.finish_cycles[index] = self.cycle
            state = tuple(
                part for node in self.nodes for part in node.progress_state()
            ) + (self.banked.stats.reads + self.banked.stats.writes,)
            if state != last_state:
                last_state = state
                last_progress = self.cycle
            elif self.cycle - last_progress > deadlock_window:
                reports = "; ".join(
                    f"node{i}: {n.deadlock_report()}"
                    for i, n in enumerate(self.nodes)
                )
                raise SimulationError(
                    f"cluster deadlock at cycle {self.cycle}: {reports}"
                )
            self.cycle += 1
        for index, node in enumerate(self.nodes):
            if self.finish_cycles[index] is None:
                self.finish_cycles[index] = self.cycle
        mstats = self.banked.stats
        cycles = max(self.cycle, 1)
        return ClusterResult(
            cycles=self.cycle,
            nodes=[n.collect_result() for n in self.nodes],
            bank_conflicts=mstats.bank_conflicts,
            port_rejects=mstats.port_rejects,
            memory_utilization=mstats.utilization(
                cycles, self.config.memory.num_banks
            ),
        )
