"""Structured-access descriptors and the stream engine.

This is the architectural heart of the SMA proposal: instead of computing
and issuing every operand address itself, the access processor hands the
memory system a *descriptor* of a whole structured access — ``(base,
stride, count)`` for dense streams, or an index-queue-driven pattern for
gather/scatter — with a single instruction.  The **stream engine** then
autonomously walks the descriptor, issuing one memory request per cycle
(subject to queue space, bank conflicts and port bandwidth) while the AP
continues executing.  This is what lets a one-instruction loop body sustain
one operand per cycle from an 8-cycle-latency memory.

Four descriptor kinds:

``LOAD``     for i in count: pop M[base + i*stride] into the target queue
``STORE``    for i in count: M[base + i*stride] = pop(data queue)
``GATHER``   for i in count: M[base + pop(index queue)] into target queue
``SCATTER``  for i in count: M[base + pop(index queue)] = pop(data queue)

Loads reserve their destination-queue slot at issue so values arrive in
stream order regardless of bank timing (see
:mod:`repro.queues.operand_queue`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import partial
from heapq import heappush

from ..errors import SimulationError
from ..memory.banks import BankedMemory
from ..memory.main_memory import as_address
from ..queues import OperandQueue
from ..queues.operand_queue import _Slot


class StreamKind(enum.Enum):
    LOAD = "load"
    STORE = "store"
    GATHER = "gather"
    SCATTER = "scatter"


@dataclass(slots=True)
class StreamDescriptor:
    """One in-flight structured access."""

    kind: StreamKind
    base: int
    count: int
    stride: int = 1
    #: destination queue for LOAD / GATHER values.
    target: OperandQueue | None = None
    #: source of store data for STORE / SCATTER.
    data_queue: OperandQueue | None = None
    #: source of indices for GATHER / SCATTER.
    index_queue: OperandQueue | None = None
    issued: int = 0
    #: role flags derived from ``kind``, resolved once so the per-cycle
    #: issue paths branch on plain bools instead of enum membership
    produces: bool = field(init=False, repr=False, default=False)
    indexed: bool = field(init=False, repr=False, default=False)

    def __post_init__(self) -> None:
        if self.count < 0:
            raise SimulationError(f"negative stream count {self.count}")
        self.produces = self.kind in (StreamKind.LOAD, StreamKind.GATHER)
        self.indexed = self.kind in (StreamKind.GATHER, StreamKind.SCATTER)
        if self.produces:
            if self.target is None:
                raise SimulationError(f"{self.kind.value} stream needs a target queue")
        else:
            if self.data_queue is None:
                raise SimulationError(f"{self.kind.value} stream needs a data queue")
        if self.indexed:
            if self.index_queue is None:
                raise SimulationError(f"{self.kind.value} stream needs an index queue")

    @property
    def done(self) -> bool:
        return self.issued >= self.count

    def next_address(self) -> int | None:
        """Address of the next request, or None if it needs an index that
        has not arrived yet."""
        if self.kind in (StreamKind.LOAD, StreamKind.STORE):
            return self.base + self.issued * self.stride
        assert self.index_queue is not None
        if not self.index_queue.head_ready():
            return None
        return self.base + as_address(self.index_queue.peek())


@dataclass
class StreamEngineStats:
    streams_started: int = 0
    requests_issued: int = 0
    #: cycles in which at least one descriptor was live but nothing issued.
    blocked_cycles: int = 0
    max_live_streams: int = 0


class StreamEngine:
    """Round-robin issue across up to ``max_streams`` live descriptors."""

    __slots__ = (
        "memory", "max_streams", "issue_per_cycle", "_streams", "_rr",
        "stats",
    )

    def __init__(
        self,
        memory: BankedMemory,
        max_streams: int,
        issue_per_cycle: int = 1,
    ):
        self.memory = memory
        self.max_streams = max_streams
        self.issue_per_cycle = issue_per_cycle
        self._streams: list[StreamDescriptor] = []
        self._rr = 0
        self.stats = StreamEngineStats()

    def has_free_slot(self) -> bool:
        return len(self._streams) < self.max_streams

    def start(self, descriptor: StreamDescriptor) -> None:
        """Activate a descriptor (AP calls this when executing a stream
        instruction); requires a free slot."""
        if not self.has_free_slot():
            raise SimulationError("stream engine slots exhausted")
        if descriptor.count > 0:
            self._streams.append(descriptor)
            self.stats.streams_started += 1
            self.stats.max_live_streams = max(
                self.stats.max_live_streams, len(self._streams)
            )

    def idle(self) -> bool:
        return not self._streams

    def queue_roles_in_use(self) -> tuple[set[OperandQueue], set[OperandQueue]]:
        """``(produced, consumed)`` queues across live descriptors.

        Two live streams must never *produce into* the same queue (their
        values would interleave and FIFO order would no longer equal
        program order) nor *consume from* the same queue.  A
        producer/consumer pair on one queue is legal — that is exactly how
        gathers chain (``streamld`` produces indices into an IQ that the
        ``gather`` descriptor consumes).  The access processor checks these
        sets, role-matched, before starting a stream.
        """
        produced: set[OperandQueue] = set()
        consumed: set[OperandQueue] = set()
        for d in self._streams:
            if d.target is not None:
                produced.add(d.target)
            if d.data_queue is not None:
                consumed.add(d.data_queue)
            if d.index_queue is not None:
                consumed.add(d.index_queue)
        return produced, consumed

    @property
    def live_streams(self) -> int:
        return len(self._streams)

    def tick(self, now: int) -> int:
        """Issue up to ``issue_per_cycle`` requests; returns issue count."""
        if not self._streams:
            return 0
        issued = 0
        attempts = 0
        n = len(self._streams)
        # Round-robin over descriptors: each gets one attempt per cycle.
        while issued < self.issue_per_cycle and attempts < n:
            desc = self._streams[self._rr % len(self._streams)]
            if self._try_issue(desc, now):
                issued += 1
                if desc.done:
                    self._streams.remove(desc)
                    if not self._streams:
                        break
                    continue  # keep rr pointing at the next stream
            self._rr = (self._rr + 1) % max(len(self._streams), 1)
            attempts += 1
        if issued == 0:
            self.stats.blocked_cycles += 1
        else:
            self.stats.requests_issued += issued
        return issued

    def _try_issue(self, desc: StreamDescriptor, now: int) -> bool:
        addr = desc.next_address()
        if addr is None:
            return False  # waiting for an index
        if desc.kind in (StreamKind.LOAD, StreamKind.GATHER):
            target = desc.target
            assert target is not None
            if not target.can_reserve():
                target.note_full_stall()
                return False
            if not self.memory.can_accept(addr, now):
                return False
            token = target.reserve()
            accepted = self.memory.try_issue(
                addr,
                now,
                on_complete=lambda v, t=token, q=target: q.fill(t, v),
            )
            assert accepted, "can_accept and try_issue disagreed"
        else:
            data_queue = desc.data_queue
            assert data_queue is not None
            if not data_queue.head_ready():
                data_queue.note_empty_stall()
                return False
            if not self.memory.can_accept(addr, now):
                return False
            value = data_queue.peek()
            accepted = self.memory.try_issue(
                addr, now, is_write=True, value=value
            )
            assert accepted
            data_queue.pop()
        if desc.kind in (StreamKind.GATHER, StreamKind.SCATTER):
            assert desc.index_queue is not None
            desc.index_queue.pop()
        desc.issued += 1
        return True

    # -- event-horizon fast path ----------------------------------------

    def tick_fast(self, now: int) -> int:
        """Hand-inlined twin of :meth:`tick` for the event-horizon
        scheduler's hot loop.

        Must stay behaviorally identical to ``tick`` + ``_try_issue`` —
        same issue order, same stall notes, same stats — with the
        per-attempt method calls (``next_address``, ``can_reserve``,
        ``head_ready``, ``can_accept``) flattened into local deque and
        list accesses.  The Hypothesis equivalence suite
        (``tests/test_event_horizon.py``) holds the two paths together.
        """
        streams = self._streams
        if not streams:
            return 0
        memory = self.memory
        config = memory.config
        bank_free = memory._bank_free_at
        nbanks = config.num_banks
        accepts = config.accepts_per_cycle
        bank_busy = config.bank_busy
        latency = config.latency
        mstats = memory.stats
        storage = memory.storage
        words = storage._words
        msize = storage.size
        observer = storage.observer
        comps = memory._completions
        issued = 0
        attempts = 0
        n = len(streams)
        while issued < self.issue_per_cycle and attempts < n:
            desc = streams[self._rr % len(streams)]
            ok = False
            if desc.indexed:
                islots = desc.index_queue._slots
                if islots and islots[0].filled:
                    addr = desc.base + as_address(islots[0].value)
                else:
                    addr = None
            else:
                addr = desc.base + desc.issued * desc.stride
            if addr is not None:
                if desc.produces:
                    target = desc.target
                    if len(target._slots) >= target.capacity:
                        target.stats.full_stalls += 1
                    else:
                        cyc, cnt = memory._issues_at
                        bank = addr % nbanks
                        if (cyc != now or cnt < accepts) and \
                                bank_free[bank] <= now:
                            # inline target.reserve() + the accept side of
                            # BankedMemory.try_issue (whose port/bank
                            # checks just passed), in the reference order:
                            # reserve, bookkeeping, read, completion
                            if target._lazy:
                                if target._clock[0] > target._synced:
                                    target._lazy_flush()
                                agg = target._agg
                                if agg is not None:
                                    agg.change(now, 1)
                            token = _Slot()
                            target._slots.append(token)
                            memory._issues_at = (
                                (now, cnt + 1) if cyc == now else (now, 1)
                            )
                            bank_free[bank] = now + bank_busy
                            mstats.busy_bank_cycles += bank_busy
                            mstats.per_bank_accesses[bank] += 1
                            mstats.reads += 1
                            if observer is None and 0 <= addr < msize:
                                result = float(words[addr])
                            else:
                                # observer hook or out-of-range fault
                                result = storage.read(addr)
                            memory._seq += 1
                            heappush(comps, (
                                now + latency, memory._seq,
                                partial(target.fill, token), result,
                            ))
                            ok = True
                else:
                    data_queue = desc.data_queue
                    dslots = data_queue._slots
                    if not dslots or not dslots[0].filled:
                        data_queue.stats.empty_stalls += 1
                    else:
                        cyc, cnt = memory._issues_at
                        bank = addr % nbanks
                        if (cyc != now or cnt < accepts) and \
                                bank_free[bank] <= now:
                            memory._issues_at = (
                                (now, cnt + 1) if cyc == now else (now, 1)
                            )
                            bank_free[bank] = now + bank_busy
                            mstats.busy_bank_cycles += bank_busy
                            mstats.per_bank_accesses[bank] += 1
                            mstats.writes += 1
                            if observer is None and 0 <= addr < msize:
                                words[addr] = dslots[0].value
                            else:
                                storage.write(addr, dslots[0].value)
                            # inline data_queue.pop() (head just checked)
                            if data_queue._lazy:
                                if data_queue._clock[0] > \
                                        data_queue._synced:
                                    data_queue._lazy_flush()
                                agg = data_queue._agg
                                if agg is not None:
                                    agg.change(now, -1)
                            data_queue.stats.pops += 1
                            dslots.popleft()
                            ok = True
            if ok:
                if desc.indexed:
                    # inline index_queue.pop() (head verified above)
                    iq = desc.index_queue
                    if iq._lazy:
                        if iq._clock[0] > iq._synced:
                            iq._lazy_flush()
                        agg = iq._agg
                        if agg is not None:
                            agg.change(now, -1)
                    iq.stats.pops += 1
                    iq._slots.popleft()
                desc.issued += 1
                issued += 1
                if desc.issued >= desc.count:
                    streams.remove(desc)
                    if not streams:
                        break
                    continue  # keep rr pointing at the next stream
            self._rr = (self._rr + 1) % len(streams)
            attempts += 1
        if issued == 0:
            self.stats.blocked_cycles += 1
        else:
            self.stats.requests_issued += issued
        return issued

    def next_event_time(self, now: int) -> int | None:
        """Event-horizon contract: earliest cycle the engine can issue a
        request with every other component frozen.

        Per live descriptor: a missing index, a full target queue or an
        empty data queue can only be resolved by *another* component
        (memory completion, EP pop/push, store unit), so such a
        descriptor contributes nothing; a descriptor blocked only by its
        target bank's busy window wakes when the bank frees.  The
        per-cycle port limit resets every cycle and is ignored
        (conservative: at worst this returns ``now`` and the scheduler
        does not jump).  Unlike ``tick``/``_try_issue`` this probe is
        pure — it never records stall notes.
        """
        streams = self._streams
        if not streams:
            return None
        bank_free = self.memory._bank_free_at
        nbanks = self.memory.config.num_banks
        best = None
        for desc in streams:
            if desc.indexed:
                islots = desc.index_queue._slots
                if not islots or not islots[0].filled:
                    continue  # waiting on an index producer
                idx = islots[0].value
                i = int(idx)
                if i != idx:
                    # malformed index: force a live step so the reference
                    # issue path raises its usual diagnostic
                    return now
                addr = desc.base + i
            else:
                addr = desc.base + desc.issued * desc.stride
            if desc.produces:
                target = desc.target
                if len(target._slots) >= target.capacity:
                    continue  # waiting on the consumer
            else:
                dslots = desc.data_queue._slots
                if not dslots or not dslots[0].filled:
                    continue  # waiting on the data producer
            t = bank_free[addr % nbanks]
            if t <= now:
                return now
            if best is None or t < best:
                best = t
        return best
