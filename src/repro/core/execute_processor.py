"""The Execute Processor (EP).

The EP executes the *compute program*: pure arithmetic, with no notion of
addresses.  Its distinguishing feature is **queue operands**: an ALU source
naming ``lq<i>`` pops the head of load queue *i* (stalling until the memory
has delivered it), and an ALU destination naming ``sdq<i>`` / ``eaq`` /
``ebq`` pushes the result toward memory or the access processor (stalling
while the queue is full).

Stall causes recorded per cycle:

``lq_empty``   a queue source's head value has not arrived yet
``q_full``     the destination queue has no free slot

A queue may appear at most once among an instruction's operands — popping
the same queue twice in one cycle has no sensible in-order hardware
analogue, and the code generators never emit it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError
from ..isa import ALU_FUNCS, ALU_OPS, EXECUTE_OPS, Imm, Op, Program, Queue, Reg
from ..isa.operands import NUM_REGS, QueueSpace
from ..queues import QueueFile


@dataclass
class EPStats:
    instructions: int = 0
    stall_cycles: dict[str, int] = field(default_factory=dict)

    def total_stalls(self) -> int:
        return sum(self.stall_cycles.values())


_EP_DEST_SPACES = (QueueSpace.SDQ, QueueSpace.EAQ, QueueSpace.EBQ)

# decoded-instruction kinds (first element of each decode tuple); plain
# ints so the fast step dispatches on integer compares, not enum hashing
_D_HALT, _D_NOP, _D_JMP, _D_BR, _D_DECBNZ, _D_ALU = range(6)

# decoded-operand tags: register index / immediate value / queue / invalid
_O_REG, _O_IMM, _O_QUEUE, _O_BAD = range(4)


class ExecuteProcessor:
    """In-order interpreter of the compute instruction stream."""

    __slots__ = (
        "program", "queues", "registers", "pc", "halted", "stats",
        "_stalled_on", "_src_queues", "_dest_queues", "_decoded",
        "_prog", "_plen",
    )

    def __init__(self, program: Program, queues: QueueFile):
        self.program = program
        self.queues = queues
        self.registers: list[float] = [0.0] * NUM_REGS
        self.pc = 0
        self.halted = False
        self.stats = EPStats()
        #: stall cause currently holding the EP (None when advancing);
        #: consumed by the timeline viewer in repro.trace.timeline
        self._stalled_on: str | None = None
        self._validate(program)
        # predecode: resolve queue operands to their backing queues once
        # (resolution is pure, and step() runs every simulated cycle)
        self._src_queues = [
            tuple(
                queues.resolve(s) if isinstance(s, Queue) else None
                for s in instr.srcs
            )
            for instr in program
        ]
        self._dest_queues = [
            queues.resolve(instr.dest)
            if isinstance(instr.dest, Queue) else None
            for instr in program
        ]
        self._decoded = [self._decode(pc) for pc in range(len(program))]
        # bounds-check cache for step_fast; valid only while self.program
        # is still the construction-time object (identity-checked there)
        self._prog = program
        self._plen = len(program)

    # -- decode cache (step_fast) ----------------------------------------

    def _decode(self, pc: int):
        """Decode one instruction into a kind-tagged tuple for
        :meth:`step_fast`.  Decoding is pure; any operand that the
        reference :meth:`step` would reject *at execution time* is tagged
        ``_O_BAD`` so the fast path raises the identical error at the
        identical cycle, not at construction."""
        instr = self.program[pc]
        op = instr.op
        if op is Op.HALT:
            return (_D_HALT,)
        if op is Op.NOP:
            return (_D_NOP,)
        if op is Op.JMP:
            return (_D_JMP, instr.branch_target())
        if op in (Op.BEQZ, Op.BNEZ):
            return (
                _D_BR,
                self._decode_operand(instr.srcs[0]),
                op is Op.BEQZ,
                instr.branch_target(),
            )
        if op is Op.DECBNZ:
            assert isinstance(instr.dest, Reg)
            return (_D_DECBNZ, instr.dest.index, instr.branch_target())
        assert op in ALU_OPS, f"unhandled EP op {op}"
        srcs = tuple(
            (_O_QUEUE, backing) if backing is not None
            else self._decode_operand(src)
            for src, backing in zip(instr.srcs, self._src_queues[pc])
        )
        dest_queue = self._dest_queues[pc]
        dest_reg = (
            instr.dest.index
            if dest_queue is None and isinstance(instr.dest, Reg) else None
        )
        return (_D_ALU, ALU_FUNCS[op], srcs, dest_queue, dest_reg)

    @staticmethod
    def _decode_operand(operand):
        if isinstance(operand, Reg):
            return (_O_REG, operand.index)
        if isinstance(operand, Imm):
            return (_O_IMM, operand.value)
        return (_O_BAD, operand)

    def _validate(self, program: Program) -> None:
        for instr in program:
            if instr.op not in EXECUTE_OPS:
                raise SimulationError(
                    f"{instr.op.value} is not a valid execute-processor op"
                )
            queues = [s for s in instr.srcs if isinstance(s, Queue)]
            for q in queues:
                if q.space is not QueueSpace.LQ:
                    raise SimulationError(
                        f"EP can only pop load queues, not {q}"
                    )
            if isinstance(instr.dest, Queue):
                if instr.dest.space not in _EP_DEST_SPACES:
                    raise SimulationError(
                        f"EP cannot push to {instr.dest} (read-only space)"
                    )
                queues.append(instr.dest)
            if len(set(queues)) != len(queues):
                raise SimulationError(
                    f"queue named twice in one instruction: {instr}"
                )

    def _stall(self, cause: str) -> None:
        st = self.stats.stall_cycles
        st[cause] = st.get(cause, 0) + 1
        self._stalled_on = cause

    def step(self, now: int) -> None:
        """Attempt to execute one instruction this cycle."""
        if self.halted:
            return
        if self.pc >= len(self.program):
            raise SimulationError(
                f"EP ran off the end of program {self.program.name!r}"
            )
        instr = self.program[self.pc]
        op = instr.op
        if op is Op.HALT:
            self.halted = True
            self._retire()
            return
        if op is Op.NOP:
            self._retire()
            return
        if op is Op.JMP:
            self._retire(instr.branch_target())
            return
        if op in (Op.BEQZ, Op.BNEZ):
            value = self._read_reg_or_imm(instr.srcs[0])
            taken = (value == 0) == (op is Op.BEQZ)
            self._retire(instr.branch_target() if taken else None)
            return
        if op is Op.DECBNZ:
            assert isinstance(instr.dest, Reg)
            self.registers[instr.dest.index] -= 1
            taken = self.registers[instr.dest.index] != 0
            self._retire(instr.branch_target() if taken else None)
            return
        assert op in ALU_OPS, f"unhandled EP op {op}"
        # check queue readiness before popping anything (atomic issue)
        src_queues = self._src_queues[self.pc]
        for backing in src_queues:
            if backing is not None and not backing.head_ready():
                backing.note_empty_stall()
                self._stall("lq_empty")
                return
        dest_queue = self._dest_queues[self.pc]
        if dest_queue is not None and not dest_queue.can_reserve():
            dest_queue.note_full_stall()
            self._stall("q_full")
            return
        registers = self.registers
        args = [
            backing.pop() if backing is not None
            else (
                registers[src.index] if isinstance(src, Reg) else src.value
            )
            for src, backing in zip(instr.srcs, src_queues)
        ]
        result = ALU_FUNCS[op](*args)
        if dest_queue is not None:
            dest_queue.push(result)
        else:
            assert isinstance(instr.dest, Reg)
            self.registers[instr.dest.index] = result
        self._retire()

    def step_fast(self, now: int) -> None:
        """Decode-cached twin of :meth:`step` for the event-horizon
        scheduler's hot loop: dispatches on predecoded kind tags and
        inlines the queue head/slot checks.  Must stay behaviorally
        identical to ``step`` (same stalls, same stats, same errors at
        the same cycle); the Hypothesis equivalence suite holds the two
        together."""
        if self.halted:
            return
        pc = self.pc
        # bounds-check against the live program (not just the decode
        # cache) so a program swapped after construction still faults
        # identically; the identity test keeps the common case to one
        # cached-length compare
        if pc >= self._plen or self.program is not self._prog:
            if pc >= len(self.program):
                raise SimulationError(
                    f"EP ran off the end of program {self.program.name!r}"
                )
        decoded = self._decoded
        entry = decoded[pc]
        kind = entry[0]
        stats = self.stats
        registers = self.registers
        if kind == _D_ALU:
            srcs = entry[2]
            for tag, payload in srcs:
                if tag == _O_QUEUE:
                    slots = payload._slots
                    if not slots or not slots[0].filled:
                        payload.stats.empty_stalls += 1
                        st = stats.stall_cycles
                        st["lq_empty"] = st.get("lq_empty", 0) + 1
                        self._stalled_on = "lq_empty"
                        return
            dest_queue = entry[3]
            if dest_queue is not None and \
                    len(dest_queue._slots) >= dest_queue.capacity:
                dest_queue.stats.full_stalls += 1
                st = stats.stall_cycles
                st["q_full"] = st.get("q_full", 0) + 1
                self._stalled_on = "q_full"
                return
            # unrolled argument fetch for the 1- and 2-source shapes the
            # code generators emit (the list-building fallback covers any
            # other arity)
            if len(srcs) == 2:
                tag, payload = srcs[0]
                a0 = (
                    payload.pop() if tag == _O_QUEUE
                    else registers[payload] if tag == _O_REG else payload
                )
                tag, payload = srcs[1]
                a1 = (
                    payload.pop() if tag == _O_QUEUE
                    else registers[payload] if tag == _O_REG else payload
                )
                result = entry[1](a0, a1)
            elif len(srcs) == 1:
                tag, payload = srcs[0]
                result = entry[1](
                    payload.pop() if tag == _O_QUEUE
                    else registers[payload] if tag == _O_REG else payload
                )
            else:
                result = entry[1](*[
                    payload.pop() if tag == _O_QUEUE
                    else (registers[payload] if tag == _O_REG else payload)
                    for tag, payload in srcs
                ])
            if dest_queue is not None:
                dest_queue.push(result)
            else:
                registers[entry[4]] = result
            stats.instructions += 1
            self._stalled_on = None
            self.pc = pc + 1
            return
        if kind == _D_BR:
            tag, payload = entry[1]
            if tag == _O_REG:
                value = registers[payload]
            elif tag == _O_IMM:
                value = payload
            else:
                raise SimulationError(
                    f"EP branch condition {payload} must be a register "
                    "or immediate"
                )
            taken = (value == 0) == entry[2]
            stats.instructions += 1
            self._stalled_on = None
            self.pc = entry[3] if taken else pc + 1
            return
        if kind == _D_DECBNZ:
            index = entry[1]
            registers[index] -= 1
            stats.instructions += 1
            self._stalled_on = None
            self.pc = entry[2] if registers[index] != 0 else pc + 1
            return
        if kind == _D_JMP:
            stats.instructions += 1
            self._stalled_on = None
            self.pc = entry[1]
            return
        if kind == _D_HALT:
            self.halted = True
            stats.instructions += 1
            self._stalled_on = None
            self.pc = pc + 1
            return
        # _D_NOP
        stats.instructions += 1
        self._stalled_on = None
        self.pc = pc + 1

    def next_event_time(self, now: int) -> int | None:
        """Event-horizon contract: the EP can act immediately unless it
        is halted or stalled — and an EP stall (``lq_empty``/``q_full``)
        is only ever resolved by another component filling or draining
        the queue, never by the passage of time."""
        if self.halted or self._stalled_on is not None:
            return None
        return now

    def _retire(self, new_pc: int | None = None) -> None:
        self.stats.instructions += 1
        self._stalled_on = None
        self.pc = new_pc if new_pc is not None else self.pc + 1

    def _read_reg_or_imm(self, operand) -> float:
        if isinstance(operand, Reg):
            return self.registers[operand.index]
        if isinstance(operand, Imm):
            return operand.value
        raise SimulationError(
            f"EP branch condition {operand} must be a register or immediate"
        )

    def _read(self, operand) -> float:
        if isinstance(operand, Reg):
            return self.registers[operand.index]
        if isinstance(operand, Imm):
            return operand.value
        assert isinstance(operand, Queue)
        return self.queues.resolve(operand).pop()
