"""The Execute Processor (EP).

The EP executes the *compute program*: pure arithmetic, with no notion of
addresses.  Its distinguishing feature is **queue operands**: an ALU source
naming ``lq<i>`` pops the head of load queue *i* (stalling until the memory
has delivered it), and an ALU destination naming ``sdq<i>`` / ``eaq`` /
``ebq`` pushes the result toward memory or the access processor (stalling
while the queue is full).

Stall causes recorded per cycle:

``lq_empty``   a queue source's head value has not arrived yet
``q_full``     the destination queue has no free slot

A queue may appear at most once among an instruction's operands — popping
the same queue twice in one cycle has no sensible in-order hardware
analogue, and the code generators never emit it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError
from ..isa import ALU_FUNCS, ALU_OPS, EXECUTE_OPS, Imm, Op, Program, Queue, Reg
from ..isa.operands import NUM_REGS, QueueSpace
from ..queues import QueueFile


@dataclass
class EPStats:
    instructions: int = 0
    stall_cycles: dict[str, int] = field(default_factory=dict)

    def total_stalls(self) -> int:
        return sum(self.stall_cycles.values())


_EP_DEST_SPACES = (QueueSpace.SDQ, QueueSpace.EAQ, QueueSpace.EBQ)


class ExecuteProcessor:
    """In-order interpreter of the compute instruction stream."""

    def __init__(self, program: Program, queues: QueueFile):
        self.program = program
        self.queues = queues
        self.registers: list[float] = [0.0] * NUM_REGS
        self.pc = 0
        self.halted = False
        self.stats = EPStats()
        #: stall cause currently holding the EP (None when advancing);
        #: consumed by the timeline viewer in repro.trace.timeline
        self._stalled_on: str | None = None
        self._validate(program)
        # predecode: resolve queue operands to their backing queues once
        # (resolution is pure, and step() runs every simulated cycle)
        self._src_queues = [
            tuple(
                queues.resolve(s) if isinstance(s, Queue) else None
                for s in instr.srcs
            )
            for instr in program
        ]
        self._dest_queues = [
            queues.resolve(instr.dest)
            if isinstance(instr.dest, Queue) else None
            for instr in program
        ]

    def _validate(self, program: Program) -> None:
        for instr in program:
            if instr.op not in EXECUTE_OPS:
                raise SimulationError(
                    f"{instr.op.value} is not a valid execute-processor op"
                )
            queues = [s for s in instr.srcs if isinstance(s, Queue)]
            for q in queues:
                if q.space is not QueueSpace.LQ:
                    raise SimulationError(
                        f"EP can only pop load queues, not {q}"
                    )
            if isinstance(instr.dest, Queue):
                if instr.dest.space not in _EP_DEST_SPACES:
                    raise SimulationError(
                        f"EP cannot push to {instr.dest} (read-only space)"
                    )
                queues.append(instr.dest)
            if len(set(queues)) != len(queues):
                raise SimulationError(
                    f"queue named twice in one instruction: {instr}"
                )

    def _stall(self, cause: str) -> None:
        st = self.stats.stall_cycles
        st[cause] = st.get(cause, 0) + 1
        self._stalled_on = cause

    def step(self, now: int) -> None:
        """Attempt to execute one instruction this cycle."""
        if self.halted:
            return
        if self.pc >= len(self.program):
            raise SimulationError(
                f"EP ran off the end of program {self.program.name!r}"
            )
        instr = self.program[self.pc]
        op = instr.op
        if op is Op.HALT:
            self.halted = True
            self._retire()
            return
        if op is Op.NOP:
            self._retire()
            return
        if op is Op.JMP:
            self._retire(instr.branch_target())
            return
        if op in (Op.BEQZ, Op.BNEZ):
            value = self._read_reg_or_imm(instr.srcs[0])
            taken = (value == 0) == (op is Op.BEQZ)
            self._retire(instr.branch_target() if taken else None)
            return
        if op is Op.DECBNZ:
            assert isinstance(instr.dest, Reg)
            self.registers[instr.dest.index] -= 1
            taken = self.registers[instr.dest.index] != 0
            self._retire(instr.branch_target() if taken else None)
            return
        assert op in ALU_OPS, f"unhandled EP op {op}"
        # check queue readiness before popping anything (atomic issue)
        src_queues = self._src_queues[self.pc]
        for backing in src_queues:
            if backing is not None and not backing.head_ready():
                backing.note_empty_stall()
                self._stall("lq_empty")
                return
        dest_queue = self._dest_queues[self.pc]
        if dest_queue is not None and not dest_queue.can_reserve():
            dest_queue.note_full_stall()
            self._stall("q_full")
            return
        registers = self.registers
        args = [
            backing.pop() if backing is not None
            else (
                registers[src.index] if isinstance(src, Reg) else src.value
            )
            for src, backing in zip(instr.srcs, src_queues)
        ]
        result = ALU_FUNCS[op](*args)
        if dest_queue is not None:
            dest_queue.push(result)
        else:
            assert isinstance(instr.dest, Reg)
            self.registers[instr.dest.index] = result
        self._retire()

    def _retire(self, new_pc: int | None = None) -> None:
        self.stats.instructions += 1
        self._stalled_on = None
        self.pc = new_pc if new_pc is not None else self.pc + 1

    def _read_reg_or_imm(self, operand) -> float:
        if isinstance(operand, Reg):
            return self.registers[operand.index]
        if isinstance(operand, Imm):
            return operand.value
        raise SimulationError(
            f"EP branch condition {operand} must be a register or immediate"
        )

    def _read(self, operand) -> float:
        if isinstance(operand, Reg):
            return self.registers[operand.index]
        if isinstance(operand, Imm):
            return operand.value
        assert isinstance(operand, Queue)
        return self.queues.resolve(operand).pop()
