"""The coupled SMA machine: AP + EP + stream engine + store unit + memory.

:class:`SMAMachine` owns one instance of every component and advances them
in lockstep, one simulated cycle per iteration:

1. memory completions are delivered (filling reserved queue slots),
2. the store unit tries to commit one paired store,
3. the stream engine issues structured-access requests,
4. the access processor and the execute processor each attempt one
   instruction,
5. queue occupancies are sampled.

The run ends when both processors have halted *and* all asynchronous work
has drained (streams finished, SAQ empty, memory quiescent).  A watchdog
aborts with a diagnostic if no forward progress happens for
``deadlock_window`` cycles — with an in-order machine and FIFO queues this
always indicates a miscompiled program (e.g. EP pops a queue the AP never
feeds), and the stall-cause breakdown in the exception message says which.

**Cycle fast-forward.**  In the latency-dominated regime (long memory
latency, shallow queues, loss-of-decoupling recurrences) most simulated
cycles are *fully idle*: every unit is stalled waiting on a pending memory
completion, and stepping the machine changes nothing but time-weighted
statistics.  ``run`` detects this — two consecutive cycles in which no
instruction retired, no request issued, no store committed and no
completion fired — and jumps the clock directly to the next memory event
(earliest pending completion, or earliest busy bank becoming free),
replaying the idle cycle's statistic increments in closed form so every
counter stays bit-identical to naive ticking.  The fast path disables
itself when an ``observer`` is attached, so trace collectors still see
every cycle; ``fast_forward=False`` forces naive ticking (used by the
differential property tests and the throughput benchmark).

The metrics layer (:meth:`SMAMachine.attach_metrics`) is *not* an
observer: its per-cycle stall classifier and stride samplers replay in
closed form inside ``replay_stall_cycles``, so attaching metrics keeps
the fast path enabled and every bucket total bit-identical to naive
ticking (property-tested in ``tests/test_metrics.py``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any

from ..config import SMAConfig
from ..errors import SimulationError
from ..isa import Program
from ..memory import BankedMemory, MainMemory
from ..queues import QueueFile
from .access_processor import AccessProcessor, APStats
from .descriptors import StreamEngine, StreamEngineStats
from .execute_processor import EPStats, ExecuteProcessor
from .store_unit import StoreUnit, StoreUnitStats

#: process-wide default for the cycle fast-forward path.  ``SMAMachine.run``
#: consults this when its ``fast_forward`` argument is ``None``; the
#: throughput benchmark flips it to time naive ticking through unmodified
#: harness code paths.
FAST_FORWARD = True


def set_fast_forward(enabled: bool) -> bool:
    """Set the process-wide fast-forward default; returns the old value."""
    global FAST_FORWARD
    previous = FAST_FORWARD
    FAST_FORWARD = bool(enabled)
    return previous


@dataclass
class SMAResult:
    """Everything measured during one SMA run."""

    cycles: int
    ap: APStats
    ep: EPStats
    engine: StreamEngineStats
    store_unit: StoreUnitStats
    memory_reads: int
    memory_writes: int
    bank_conflicts: int
    port_rejects: int
    memory_utilization: float
    #: time-weighted mean number of occupied load-queue slots — the
    #: run-ahead ("slip") the decoupling achieved.
    mean_outstanding_loads: float
    max_outstanding_loads: int
    queue_stats: dict[str, Any] = field(default_factory=dict)
    #: per-bucket cycle partition (see repro.metrics.attribution); None
    #: unless metrics were attached to the machine.
    stall_breakdown: dict[str, int] | None = None
    #: speculative-AP counters (see repro.core.speculation); None unless
    #: the machine ran with speculation enabled.
    speculation: dict[str, int] | None = None

    @property
    def instructions(self) -> int:
        return self.ap.instructions + self.ep.instructions

    @property
    def lod_events(self) -> int:
        return self.ap.lod_events

    @property
    def lod_stall_cycles(self) -> int:
        return self.ap.lod_stall_cycles()

    def to_dict(self) -> dict:
        """JSON-serializable flat summary (for harness consumers)."""
        out = {
            "cycles": self.cycles,
            "ap_instructions": self.ap.instructions,
            "ep_instructions": self.ep.instructions,
            "ap_stalls": dict(self.ap.stall_cycles),
            "ep_stalls": dict(self.ep.stall_cycles),
            "streams_started": self.engine.streams_started,
            "stream_requests": self.engine.requests_issued,
            "memory_reads": self.memory_reads,
            "memory_writes": self.memory_writes,
            "bank_conflicts": self.bank_conflicts,
            "port_rejects": self.port_rejects,
            "memory_utilization": self.memory_utilization,
            "mean_outstanding_loads": self.mean_outstanding_loads,
            "max_outstanding_loads": self.max_outstanding_loads,
            "lod_events": self.lod_events,
            "lod_stall_cycles": self.lod_stall_cycles,
        }
        if self.stall_breakdown is not None:
            out["stall_breakdown"] = dict(self.stall_breakdown)
        if self.speculation is not None:
            out["speculation"] = dict(self.speculation)
        return out

    def summary(self) -> str:
        """Multi-line human-readable digest."""
        lines = [
            f"cycles                 {self.cycles}",
            f"AP instructions        {self.ap.instructions}"
            f"  (stalls {self.ap.total_stalls()}: {self.ap.stall_cycles})",
            f"EP instructions        {self.ep.instructions}"
            f"  (stalls {self.ep.total_stalls()}: {self.ep.stall_cycles})",
            f"streams started        {self.engine.streams_started}"
            f"  requests {self.engine.requests_issued}",
            f"memory reads/writes    {self.memory_reads}/{self.memory_writes}"
            f"  conflicts {self.bank_conflicts}",
            f"memory utilization     {self.memory_utilization:.3f}",
            f"mean outstanding loads {self.mean_outstanding_loads:.2f}"
            f"  (max {self.max_outstanding_loads})",
            f"LOD events             {self.lod_events}"
            f"  ({self.lod_stall_cycles} stall cycles)",
        ]
        return "\n".join(lines)


class SMAMachine:
    """A complete decoupled access/execute machine instance."""

    def __init__(
        self,
        access_program: Program,
        execute_program: Program,
        config: SMAConfig | None = None,
        shared_memory: BankedMemory | None = None,
    ):
        self.config = config or SMAConfig()
        if shared_memory is not None:
            # multiprocessor configuration: several machines contend for
            # one banked memory (see repro.core.cluster); the cluster owns
            # the memory tick
            self.memory = shared_memory.storage
            self.banked = shared_memory
            self._owns_memory = False
        else:
            self.memory = MainMemory(self.config.memory.size)
            if self.config.faults is not None:
                from ..memory.banks import FaultyMemory

                self.banked = FaultyMemory(
                    self.memory, self.config.memory, self.config.faults
                )
            else:
                self.banked = BankedMemory(self.memory, self.config.memory)
            self._owns_memory = True
        self.queues = QueueFile(self.config)
        self.engine = StreamEngine(
            self.banked,
            self.config.max_streams,
            self.config.stream_issue_per_cycle,
        )
        self.store_unit = StoreUnit(self.queues, self.banked)
        self.ap = AccessProcessor(
            access_program, self.queues, self.banked, self.engine
        )
        self.ep = ExecuteProcessor(execute_program, self.queues)
        for program in (access_program, execute_program):
            for base, values in program.data:
                self.memory.load_array(base, values)
        self.cycle = 0
        self._occupancy_sum = 0
        self._occupancy_max = 0
        #: stall-attribution layer, attached via attach_metrics(); unlike
        #: an observer it does not disable cycle fast-forward
        self._metrics = None
        # flat queue view, built once: used by the per-cycle sampling and
        # by the fast-forward statistics replay
        self._queue_list = self.queues.all_queues()
        self._load_slots = [q._slots for q in self.queues.load]
        #: speculative-AP engine (repro.core.speculation), built lazily by
        #: _ensure_speculation so the oracle pre-run sees loaded inputs
        self._spec = None
        self._spec_ready = False

    # -- convenience for loading workloads ------------------------------

    def load_array(self, base: int, values) -> None:
        """Place a workload array into memory before running."""
        self.memory.load_array(base, values)

    def dump_array(self, base: int, count: int):
        """Read back a result array after running."""
        return self.memory.dump_array(base, count)

    # -- observability ---------------------------------------------------

    def attach_metrics(self, samplers=None, registry=None):
        """Attach the stall-attribution metrics layer; returns it.

        Unlike ``run(observer=...)`` this keeps the cycle fast-forward
        path enabled: the classifier and any stride samplers are replayed
        in closed form by ``replay_stall_cycles``.  ``samplers=None``
        installs the default load-queue-occupancy sampler; pass an empty
        tuple for none.
        """
        from ..metrics import SMAMachineMetrics, StrideSampler

        if samplers is None:
            samplers = (
                StrideSampler(
                    "load_queue_occupancy",
                    lambda m: sum(map(len, m._load_slots)),
                    stride=64,
                ),
            )
        self._metrics = SMAMachineMetrics(
            self, registry=registry, samplers=samplers
        )
        return self._metrics

    # -- the simulation loop ---------------------------------------------

    def done(self) -> bool:
        """True when both processors halted and all async work drained."""
        return (
            self.ap.halted
            and self.ep.halted
            and self.engine.idle()
            and not self.store_unit.pending()
            and (not self._owns_memory or self.banked.quiescent())
            and (self._spec is None or self._spec.idle())
        )

    # kept for any external callers of the old private name
    _done = done

    def step_cycle(self, tick_memory: bool = True) -> None:
        """Advance the machine by one cycle.

        ``tick_memory=False`` is used by :class:`repro.core.cluster.
        SMACluster`, which owns the shared memory and ticks it exactly
        once per cycle for all member machines.
        """
        now = self.cycle
        if not self._spec_ready:
            self._ensure_speculation()
        if tick_memory:
            self.banked.tick(now)
        self.store_unit.tick(now)
        self.engine.tick(now)
        self.ap.step(now)
        self.ep.step(now)
        if self._spec is not None:
            # end-of-cycle prediction resolution: both processors have
            # acted, so any EP confirmation pushed this cycle is visible
            self._spec.on_cycle(self, now)
        self.queues.sample()
        outstanding = sum(map(len, self._load_slots))
        self._occupancy_sum += outstanding
        if outstanding > self._occupancy_max:
            self._occupancy_max = outstanding
        if self._metrics is not None:
            self._metrics.on_cycle(self, now)
        self.cycle += 1

    def _ensure_speculation(self, oracle: dict | None = None) -> None:
        """Build the speculation engine on first use (idempotent).
        ``oracle`` supplies pre-recorded prediction tables (checkpoint
        restore), skipping the reference pre-run.

        Deferred past construction so the oracle pre-run observes the
        same initial memory image as the speculative run — workloads are
        loaded with :meth:`load_array` after the machine is built.  A
        config whose :attr:`SpeculationConfig.enabled` is false (accuracy
        0 or mode ``"never"``) never creates an engine at all, keeping
        such runs bit-identical to a machine with no speculation config.
        """
        self._spec_ready = True
        spec_cfg = self.config.speculation
        if spec_cfg is None or not spec_cfg.enabled or self._spec is not None:
            return
        from .speculation import SpeculationEngine

        self._spec = SpeculationEngine(self, spec_cfg, oracle=oracle)
        self.ap._spec = self._spec

    def step_cycles(self, count: int) -> int:
        """Step up to ``count`` cycles (stopping early at completion);
        returns the number actually simulated.  Convenience for taking
        mid-run checkpoints at a known cycle."""
        stepped = 0
        while stepped < count and not self.done():
            self.step_cycle()
            stepped += 1
        return stepped

    # -- checkpoint / restore --------------------------------------------

    def snapshot(self) -> dict:
        """JSON-clean image of the machine's full mutable state (see
        :mod:`repro.core.checkpoint`).  Take only between runs / steps,
        never from inside a scheduler loop."""
        from .checkpoint import snapshot_machine

        return snapshot_machine(self)

    def restore(self, data: dict) -> None:
        """Inverse of :meth:`snapshot`; the machine must have been built
        from the same programs and configuration (fingerprint-checked,
        :class:`repro.errors.CheckpointError` otherwise).  All containers
        are mutated in place, so cached references stay valid."""
        from .checkpoint import restore_machine

        restore_machine(self, data)

    def state_digest(self) -> str:
        """Deterministic sha256 over the canonical snapshot encoding; two
        machines with bit-identical state produce the same digest."""
        from .checkpoint import digest

        return digest(self.snapshot())

    def progress_state(self) -> tuple[int, ...]:
        """A tuple that changes iff the machine made forward progress
        (used for deadlock detection, here and in the cluster)."""
        return (
            self.ap.stats.instructions,
            self.ep.stats.instructions,
            self.engine.stats.requests_issued,
            self.store_unit.stats.stores_issued,
        )

    def deadlock_report(self) -> str:
        return (
            f"AP@{self.ap.pc} halted={self.ap.halted} "
            f"stalls={self.ap.stats.stall_cycles}; "
            f"EP@{self.ep.pc} halted={self.ep.halted} "
            f"stalls={self.ep.stats.stall_cycles}; "
            f"live streams={self.engine.live_streams}"
        )

    def collect_result(self) -> SMAResult:
        """Snapshot the statistics gathered so far into an SMAResult."""
        mstats = self.banked.stats
        cycles = max(self.cycle, 1)
        return SMAResult(
            cycles=self.cycle,
            ap=self.ap.stats,
            ep=self.ep.stats,
            engine=self.engine.stats,
            store_unit=self.store_unit.stats,
            memory_reads=mstats.reads,
            memory_writes=mstats.writes,
            bank_conflicts=mstats.bank_conflicts,
            port_rejects=mstats.port_rejects,
            memory_utilization=mstats.utilization(
                cycles, self.config.memory.num_banks
            ),
            mean_outstanding_loads=self._occupancy_sum / cycles,
            max_outstanding_loads=self._occupancy_max,
            queue_stats={q.name: q.stats for q in self.queues.all_queues()},
            stall_breakdown=(
                self._metrics.stall_breakdown()
                if self._metrics is not None else None
            ),
            speculation=(
                self._spec.stats.to_dict()
                if self._spec is not None else None
            ),
        )

    # -- scheduler registry ----------------------------------------------
    #
    # Each entry maps a scheduler name to an unobserved loop adapter
    # ``(machine, max_cycles, deadlock_window) -> SMAResult``.  The CLI
    # (``--scheduler`` choices), the cluster and the benchmark shoot-out
    # all iterate this mapping, so registering a scheduler here is the
    # single step needed to surface it everywhere.

    def _scheduler_naive(self, max_cycles, deadlock_window):
        return self._run_joint_idle(max_cycles, deadlock_window, False)

    def _scheduler_joint_idle(self, max_cycles, deadlock_window):
        return self._run_joint_idle(max_cycles, deadlock_window, True)

    def _scheduler_event_horizon(self, max_cycles, deadlock_window):
        return self._run_event_horizon(max_cycles, deadlock_window, None)

    def _scheduler_codegen(self, max_cycles, deadlock_window):
        return self._run_codegen(max_cycles, deadlock_window)

    #: accepted values for ``run(scheduler=...)``, in reference-first
    #: order (the first entry is the baseline the others must match)
    SCHEDULERS = {
        "naive": _scheduler_naive,
        "joint-idle": _scheduler_joint_idle,
        "event-horizon": _scheduler_event_horizon,
        "codegen": _scheduler_codegen,
    }

    def run(
        self,
        max_cycles: int = 10_000_000,
        deadlock_window: int = 10_000,
        observer=None,
        fast_forward: bool | None = None,
        scheduler: str | None = None,
    ) -> SMAResult:
        """Run to completion; returns the collected statistics.

        ``observer``, if given, is called as ``observer(machine, cycle)``
        once per simulated cycle after all components have stepped — the
        hook the trace collectors in :mod:`repro.trace` attach through.
        An observer forces naive ticking unless it declares
        ``wants_every_cycle = False``, in which case the event-horizon
        loop drives it and reports skipped spans through the observer's
        optional ``on_replay(machine, start_cycle, count)`` hook.

        ``scheduler`` selects the simulation loop explicitly:

        ``"naive"``          tick every cycle (the reference loop)
        ``"joint-idle"``     the PR 3 heuristic: jump to the next memory
                             event after two consecutive fully-idle cycles
        ``"event-horizon"``  per-component ``next_event_time`` contracts +
                             decode-cached fast step paths (default)
        ``"codegen"``        a straight-line loop compiled for this exact
                             (program, config) pair — event-horizon
                             structure with all dispatch specialized away
                             (:mod:`repro.codegen`); falls back to
                             event-horizon when the machine cannot be
                             specialized

        When ``scheduler`` is ``None`` it is derived from ``fast_forward``
        (which itself defaults to the module-wide :data:`FAST_FORWARD`):
        ``True`` → event-horizon, ``False`` → naive.  Cycle counts and
        every statistic are bit-identical across all four (see the module
        docstring, ``tests/test_fast_forward.py`` and
        ``tests/test_event_horizon.py``).
        """
        if scheduler is None:
            if fast_forward is None:
                fast_forward = FAST_FORWARD
            scheduler = "event-horizon" if fast_forward else "naive"
        elif scheduler not in self.SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; expected one of "
                + ", ".join(self.SCHEDULERS)
            )
        if self.banked.fault_injection and scheduler != "naive":
            # the fast schedulers inline memory acceptance (tick_fast /
            # step_fast) and jump over cycles in which the deterministic
            # fault predicate would have changed its verdict; only naive
            # ticking exercises the injected faults faithfully
            scheduler = "naive"
        spec_cfg = self.config.speculation
        if (spec_cfg is not None and spec_cfg.enabled
                and scheduler != "naive"):
            # like faults: the fast schedulers inline queue pops and hoist
            # the done() predicate, bypassing the speculation hooks; only
            # the naive loop drives prediction/resolution faithfully
            scheduler = "naive"
        if observer is not None:
            if scheduler in ("event-horizon", "codegen") and not getattr(
                observer, "wants_every_cycle", True
            ):
                # generated loops carry no observer hook; a replay-aware
                # observer rides the interpreted event-horizon loop
                return self._run_event_horizon(
                    max_cycles, deadlock_window, observer
                )
            return self._run_traced(max_cycles, deadlock_window, observer)
        return self.SCHEDULERS[scheduler](self, max_cycles, deadlock_window)

    def _run_joint_idle(
        self, max_cycles: int, deadlock_window: int, fast_forward: bool
    ) -> SMAResult:
        """The unobserved simulation loop (optionally fast-forwarding).

        The progress probe is kept as five plain integers — retired AP/EP
        instructions, stream requests, committed stores, memory traffic —
        compared in place, so the hot loop allocates nothing when the
        machine is advancing normally.
        """
        step = self.step_cycle
        done = self.done
        banked = self.banked
        ap_stats = self.ap.stats
        ep_stats = self.ep.stats
        engine_stats = self.engine.stats
        su_stats = self.store_unit.stats
        mstats = banked.stats
        last_progress_cycle = 0
        p_ap = p_ep = p_req = p_st = p_mem = p_pend = -1
        prev_idle = False  # previous cycle was fully idle (steady stall)
        while not done():
            if self.cycle >= max_cycles:
                raise SimulationError(
                    f"exceeded cycle budget {max_cycles}"
                )
            if prev_idle and fast_forward:
                # the machine is in a steady stall: simulate one more
                # cycle as the replay template, then jump to the next
                # memory event
                snapshot = self._stall_snapshot()
                pending_before = banked.pending_completions
                step()
                if (
                    ap_stats.instructions == p_ap
                    and ep_stats.instructions == p_ep
                    and engine_stats.requests_issued == p_req
                    and su_stats.stores_issued == p_st
                    and mstats.reads + mstats.writes == p_mem
                    and banked.pending_completions == pending_before
                ):
                    # nothing moved and nothing completed: every cycle
                    # until the next memory event repeats this one exactly
                    horizon = min(
                        last_progress_cycle + deadlock_window + 1,
                        max_cycles,
                    )
                    target = banked.next_event_time(self.cycle - 1)
                    if target is None or target > horizon:
                        target = horizon
                    skipped = target - self.cycle
                    if skipped > 0:
                        self._replay_stall_cycles(snapshot, skipped)
                    if self.cycle - last_progress_cycle > deadlock_window:
                        raise SimulationError(
                            "deadlock: no forward progress for "
                            f"{deadlock_window} cycles at cycle "
                            f"{self.cycle}; " + self.deadlock_report()
                        )
                    continue
                # the candidate cycle made progress (or delivered data) —
                # fall through to the ordinary bookkeeping below
            else:
                step()
            mem = mstats.reads + mstats.writes
            ap_i = ap_stats.instructions
            ep_i = ep_stats.instructions
            req = engine_stats.requests_issued
            st = su_stats.stores_issued
            if (
                ap_i != p_ap or ep_i != p_ep or req != p_req
                or st != p_st or mem != p_mem
            ):
                p_ap = ap_i
                p_ep = ep_i
                p_req = req
                p_st = st
                p_mem = mem
                p_pend = banked.pending_completions
                last_progress_cycle = self.cycle
                prev_idle = False
            else:
                if self.cycle - last_progress_cycle > deadlock_window:
                    raise SimulationError(
                        "deadlock: no forward progress for "
                        f"{deadlock_window} cycles at cycle {self.cycle}; "
                        + self.deadlock_report()
                    )
                # a cycle that only delivered a completion is not idle:
                # the filled slot can unblock a consumer next cycle
                pending = banked.pending_completions
                prev_idle = pending == p_pend
                p_pend = pending
        return self.collect_result()

    def _run_traced(
        self, max_cycles: int, deadlock_window: int, observer
    ) -> SMAResult:
        """Naive per-cycle loop with the observer hook (trace collectors
        must see every cycle, so fast-forward is never applied here)."""
        last_progress_cycle = 0
        p_ap = p_ep = p_req = p_st = p_mem = -1
        while not self.done():
            if self.cycle >= max_cycles:
                raise SimulationError(
                    f"exceeded cycle budget {max_cycles}"
                )
            self.step_cycle()
            observer(self, self.cycle - 1)
            mem = self.banked.stats.reads + self.banked.stats.writes
            ap_i = self.ap.stats.instructions
            ep_i = self.ep.stats.instructions
            req = self.engine.stats.requests_issued
            st = self.store_unit.stats.stores_issued
            if (
                ap_i != p_ap or ep_i != p_ep or req != p_req
                or st != p_st or mem != p_mem
            ):
                p_ap, p_ep, p_req, p_st, p_mem = ap_i, ep_i, req, st, mem
                last_progress_cycle = self.cycle
            elif self.cycle - last_progress_cycle > deadlock_window:
                raise SimulationError(
                    "deadlock: no forward progress for "
                    f"{deadlock_window} cycles at cycle {self.cycle}; "
                    + self.deadlock_report()
                )
        return self.collect_result()

    # kept for any external callers of the old private name
    _run = _run_joint_idle

    # -- event-horizon scheduling ----------------------------------------

    def next_event_time(self, now: int) -> int | None:
        """Earliest cycle ≥ ``now`` at which any component of this
        machine can make externally visible progress, assuming nothing
        external intervenes: the minimum over the per-component
        ``next_event_time`` contracts (AP, EP, stream engine, store
        unit) and the earliest pending memory completion.  ``None``
        means no amount of waiting will wake this machine — only an
        external event (for a cluster node: another node's memory
        traffic completing) can."""
        best = self.banked.next_completion_time(now)
        for t in (
            self.ap.next_event_time(now),
            self.ep.next_event_time(now),
            self.engine.next_event_time(now),
            self.store_unit.next_event_time(now),
        ):
            if t is not None and (best is None or t < best):
                best = t
        return best

    def _run_event_horizon(
        self, max_cycles: int, deadlock_window: int, observer
    ) -> SMAResult:
        """The event-horizon simulation loop (see module docstring).

        Queue-occupancy statistics switch to lazy (event-driven)
        accounting for the duration: occupancies change only on
        reserve/pop, so each mutation flushes the elapsed span at the
        stable length instead of every cycle sampling every queue —
        bit-identical totals at a fraction of the bookkeeping cost.  The
        ``finally`` re-syncs the queues and folds the load-queue
        aggregate into the machine-level occupancy counters.
        """
        clock = [self.cycle]
        load_queues = self.queues.load
        occ_before = [q.stats.occupancy_sum for q in load_queues]
        agg = self.queues.begin_lazy_sampling(clock)
        try:
            self._event_horizon_loop(
                max_cycles, deadlock_window, clock, observer
            )
        finally:
            clock[0] = self.cycle
            self.queues.end_lazy_sampling(agg)
            self._occupancy_sum += sum(
                q.stats.occupancy_sum - before
                for q, before in zip(load_queues, occ_before)
            )
            if agg.max_seen > self._occupancy_max:
                self._occupancy_max = agg.max_seen
        return self.collect_result()

    def _event_horizon_loop(
        self, max_cycles: int, deadlock_window: int, clock, observer
    ) -> None:
        """One fused loop: inlined completion delivery, fast component
        step paths, and contract-driven jumps.

        A jump is only *planned* when this cycle delivered no completion
        and both processors ended their last step blocked; it is only
        *taken* after one live template cycle confirms (via the plain-int
        progress probe) that nothing moved, and the horizon is then
        recomputed from the post-template stall causes — the pre-step
        flags can be stale (e.g. the EP freed a queue after the AP's
        stall was recorded), so a contract miss downgrades to a skipped
        jump, never a wrong one.  Replayed spans go through
        :meth:`_replay_fast`; deadlock and cycle-budget diagnostics fire
        at the identical cycle as naive ticking.
        """
        banked = self.banked
        ap = self.ap
        ep = self.ep
        engine = self.engine
        su = self.store_unit
        metrics = self._metrics
        comps = banked._completions
        engine_streams = engine._streams
        owns_memory = self._owns_memory
        mstats = banked.stats
        saq_slots = self.queues.store_addr._slots
        ap_stats = ap.stats
        ep_stats = ep.stats
        engine_stats = engine.stats
        su_stats = su.stats
        pop = heapq.heappop
        su_tick = su.tick_fast
        engine_tick = engine.tick_fast
        ap_step = ap.step_fast
        ep_step = ep.step_fast
        horizon = self.next_event_time
        take_snapshot = self.stall_snapshot
        on_replay = (
            getattr(observer, "on_replay", None)
            if observer is not None else None
        )
        last_progress_cycle = 0
        p_ap = p_ep = p_req = p_st = p_mem = -1
        # the loop condition is self.done() spelled out over the hoisted
        # locals (identity-stable containers), saving five delegated
        # calls per simulated cycle
        while not (
            ap.halted and ep.halted and not engine_streams
            and not saq_slots and (not owns_memory or not comps)
        ):
            now = self.cycle
            if now >= max_cycles:
                raise SimulationError(
                    f"exceeded cycle budget {max_cycles}"
                )
            clock[0] = now
            delivered = False
            while comps and comps[0][0] <= now:
                _, _, callback, result = pop(comps)
                mstats.completions += 1
                callback(result)
                delivered = True
            snapshot = None
            if (
                not delivered
                and (ap.halted or ap._stalled_on is not None)
                and (ep.halted or ep._stalled_on is not None)
            ):
                t = horizon(now)
                if t is None or t > now + 1:
                    snapshot = take_snapshot()
            # each fast step begins with the same emptiness/halt check;
            # doing it here skips the call entirely on quiet components
            if saq_slots:
                su_tick(now)
            if engine_streams:
                engine_tick(now)
            if not ap.halted:
                ap_step(now)
            if not ep.halted:
                ep_step(now)
            if metrics is not None:
                metrics.on_cycle(self, now)
            self.cycle = now + 1
            if observer is not None:
                observer(self, now)
            mem = mstats.reads + mstats.writes
            ap_i = ap_stats.instructions
            ep_i = ep_stats.instructions
            req = engine_stats.requests_issued
            st = su_stats.stores_issued
            if (
                ap_i != p_ap or ep_i != p_ep or req != p_req
                or st != p_st or mem != p_mem
            ):
                p_ap = ap_i
                p_ep = ep_i
                p_req = req
                p_st = st
                p_mem = mem
                last_progress_cycle = self.cycle
                continue
            if snapshot is not None:
                target = horizon(self.cycle)
                bound = last_progress_cycle + deadlock_window + 1
                if target is None or target > bound:
                    target = bound
                if target > max_cycles:
                    target = max_cycles
                count = target - self.cycle
                if count > 0:
                    start = self.cycle
                    self._replay_fast(snapshot, count)
                    if on_replay is not None:
                        on_replay(self, start, count)
            if self.cycle - last_progress_cycle > deadlock_window:
                raise SimulationError(
                    "deadlock: no forward progress for "
                    f"{deadlock_window} cycles at cycle {self.cycle}; "
                    + self.deadlock_report()
                )

    # -- program-specialized codegen scheduling --------------------------

    def _run_codegen(self, max_cycles: int, deadlock_window: int) -> SMAResult:
        """Run the straight-line loop compiled for this (program, config)
        pair (see :mod:`repro.codegen`).

        The compiled artifact bakes in exactly what the emitter saw, so
        this falls back to the interpreted event-horizon loop — which is
        bit-identical — whenever the live machine strays from that:
        per-cycle metrics or a memory observer attached, a swapped
        program object (the decode caches would be stale), an operand
        shape the emitter cannot specialize, or a mid-flight start (live
        stream descriptors, pending store addresses or in-flight
        completions at entry — e.g. a restored snapshot or a resumed
        budget abort).  The compiled loop fully localizes the async
        subsystems' bookkeeping, so it requires them quiescent when it
        takes over; register/queue/memory contents may be anything.
        Fault injection never reaches here: :meth:`run` downgrades
        every non-naive scheduler to naive first.
        """
        artifact = None
        if (
            self._metrics is None
            and self.memory.observer is None
            and self.ap.program is self.ap._prog
            and self.ep.program is self.ep._prog
            and not self.engine._streams
            and not self.queues.store_addr._slots
            and not self.banked._completions
        ):
            from ..codegen import compiled_loop_for

            artifact = compiled_loop_for(self)
        if artifact is None:
            return self._run_event_horizon(max_cycles, deadlock_window, None)
        # identical lazy-occupancy bracket to _run_event_horizon: the
        # generated loop mutates queues with inlined flush bodies against
        # the same clock cell and load-queue aggregate
        clock = [self.cycle]
        load_queues = self.queues.load
        occ_before = [q.stats.occupancy_sum for q in load_queues]
        agg = self.queues.begin_lazy_sampling(clock)
        try:
            artifact.fn(self, max_cycles, deadlock_window, clock, agg)
        finally:
            clock[0] = self.cycle
            self.queues.end_lazy_sampling(agg)
            self._occupancy_sum += sum(
                q.stats.occupancy_sum - before
                for q, before in zip(load_queues, occ_before)
            )
            if agg.max_seen > self._occupancy_max:
                self._occupancy_max = agg.max_seen
        return self.collect_result()

    def _replay_fast(self, snapshot, count: int) -> None:
        """Closed-form replay for the event-horizon loop: identical to
        :meth:`replay_stall_cycles` minus the per-queue occupancy
        sampling, which the lazy accounting installed by
        ``QueueFile.begin_lazy_sampling`` already covers by span (queue
        contents do not change across a confirmed-idle span, so the next
        flush attributes every skipped cycle at the correct length)."""
        ap_before, lod_before, ep_before, blocked_before, \
            dwait_before, mwait_before, queues_before = snapshot
        ap = self.ap.stats
        for cause, value in ap.stall_cycles.items():
            delta = value - ap_before.get(cause, 0)
            if delta:
                ap.stall_cycles[cause] = value + delta * count
        ap.lod_events += (ap.lod_events - lod_before) * count
        ep = self.ep.stats
        for cause, value in ep.stall_cycles.items():
            delta = value - ep_before.get(cause, 0)
            if delta:
                ep.stall_cycles[cause] = value + delta * count
        engine_stats = self.engine.stats
        engine_stats.blocked_cycles += (
            engine_stats.blocked_cycles - blocked_before
        ) * count
        su = self.store_unit.stats
        su.data_wait_cycles += (su.data_wait_cycles - dwait_before) * count
        su.memory_wait_cycles += (
            su.memory_wait_cycles - mwait_before
        ) * count
        for queue, (empty_before, full_before) in zip(
            self._queue_list, queues_before
        ):
            stats = queue.stats
            delta = stats.empty_stalls - empty_before
            if delta:
                stats.empty_stalls += delta * count
            delta = stats.full_stalls - full_before
            if delta:
                stats.full_stalls += delta * count
        if self._metrics is not None:
            self._metrics.on_replay(self, self.cycle, count)
        self.cycle += count

    # -- fast-forward statistics replay ---------------------------------
    #
    # The snapshot/replay pair below is the *replay contract*: any driver
    # that steps this machine — its own ``_run`` loop, or an
    # :class:`repro.core.cluster.SMACluster` that owns the shared memory
    # tick — may snapshot before a candidate idle cycle and, once the
    # cycle is confirmed fully idle, replay it ``count`` times in closed
    # form.  Neither method touches the memory model, so a non-owning
    # cluster node replays exactly like a standalone machine.

    def stall_snapshot(self):
        """Snapshot of every counter a fully-idle cycle can increment,
        taken immediately before simulating the replay-template cycle."""
        ap = self.ap.stats
        ep = self.ep.stats
        su = self.store_unit.stats
        return (
            dict(ap.stall_cycles),
            ap.lod_events,
            dict(ep.stall_cycles),
            self.engine.stats.blocked_cycles,
            su.data_wait_cycles,
            su.memory_wait_cycles,
            [
                (q.stats.empty_stalls, q.stats.full_stalls)
                for q in self._queue_list
            ],
        )

    def replay_stall_cycles(self, snapshot, count: int) -> None:
        """Advance the clock by ``count`` cycles, applying the statistic
        increments of the just-simulated idle cycle (the delta against
        ``snapshot``) in closed form.

        Sound because a fully-idle cycle leaves every piece of machine
        state untouched except monotone counters: queue contents, PCs,
        stall causes and the stream engine's round-robin pointer are all
        unchanged, so each skipped cycle would have incremented exactly
        the same counters by exactly the same amounts.
        """
        ap_before, lod_before, ep_before, blocked_before, \
            dwait_before, mwait_before, queues_before = snapshot
        ap = self.ap.stats
        for cause, value in ap.stall_cycles.items():
            delta = value - ap_before.get(cause, 0)
            if delta:
                ap.stall_cycles[cause] = value + delta * count
        ap.lod_events += (ap.lod_events - lod_before) * count
        ep = self.ep.stats
        for cause, value in ep.stall_cycles.items():
            delta = value - ep_before.get(cause, 0)
            if delta:
                ep.stall_cycles[cause] = value + delta * count
        engine_stats = self.engine.stats
        engine_stats.blocked_cycles += (
            engine_stats.blocked_cycles - blocked_before
        ) * count
        su = self.store_unit.stats
        su.data_wait_cycles += (su.data_wait_cycles - dwait_before) * count
        su.memory_wait_cycles += (su.memory_wait_cycles - mwait_before) * count
        for queue, (empty_before, full_before) in zip(
            self._queue_list, queues_before
        ):
            stats = queue.stats
            delta = stats.empty_stalls - empty_before
            if delta:
                stats.empty_stalls += delta * count
            delta = stats.full_stalls - full_before
            if delta:
                stats.full_stalls += delta * count
            occupancy = len(queue)
            stats.samples += count
            stats.occupancy_sum += occupancy * count
            # the template cycle sampled this occupancy, so the bucket
            # already exists (and occupancy_max already covers it)
            stats.histogram[occupancy] += count
        self._occupancy_sum += sum(map(len, self._load_slots)) * count
        if self._metrics is not None:
            # skipped cycles are self.cycle .. self.cycle + count - 1
            self._metrics.on_replay(self, self.cycle, count)
        self.cycle += count

    # old private names, kept for external callers
    _stall_snapshot = stall_snapshot
    _replay_stall_cycles = replay_stall_cycles
