"""The coupled SMA machine: AP + EP + stream engine + store unit + memory.

:class:`SMAMachine` owns one instance of every component and advances them
in lockstep, one simulated cycle per iteration:

1. memory completions are delivered (filling reserved queue slots),
2. the store unit tries to commit one paired store,
3. the stream engine issues structured-access requests,
4. the access processor and the execute processor each attempt one
   instruction,
5. queue occupancies are sampled.

The run ends when both processors have halted *and* all asynchronous work
has drained (streams finished, SAQ empty, memory quiescent).  A watchdog
aborts with a diagnostic if no forward progress happens for
``deadlock_window`` cycles — with an in-order machine and FIFO queues this
always indicates a miscompiled program (e.g. EP pops a queue the AP never
feeds), and the stall-cause breakdown in the exception message says which.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..config import SMAConfig
from ..errors import SimulationError
from ..isa import Program
from ..memory import BankedMemory, MainMemory
from ..queues import QueueFile
from .access_processor import AccessProcessor, APStats
from .descriptors import StreamEngine, StreamEngineStats
from .execute_processor import EPStats, ExecuteProcessor
from .store_unit import StoreUnit, StoreUnitStats


@dataclass
class SMAResult:
    """Everything measured during one SMA run."""

    cycles: int
    ap: APStats
    ep: EPStats
    engine: StreamEngineStats
    store_unit: StoreUnitStats
    memory_reads: int
    memory_writes: int
    bank_conflicts: int
    port_rejects: int
    memory_utilization: float
    #: time-weighted mean number of occupied load-queue slots — the
    #: run-ahead ("slip") the decoupling achieved.
    mean_outstanding_loads: float
    max_outstanding_loads: int
    queue_stats: dict[str, Any] = field(default_factory=dict)

    @property
    def instructions(self) -> int:
        return self.ap.instructions + self.ep.instructions

    @property
    def lod_events(self) -> int:
        return self.ap.lod_events

    @property
    def lod_stall_cycles(self) -> int:
        return self.ap.lod_stall_cycles()

    def to_dict(self) -> dict:
        """JSON-serializable flat summary (for harness consumers)."""
        return {
            "cycles": self.cycles,
            "ap_instructions": self.ap.instructions,
            "ep_instructions": self.ep.instructions,
            "ap_stalls": dict(self.ap.stall_cycles),
            "ep_stalls": dict(self.ep.stall_cycles),
            "streams_started": self.engine.streams_started,
            "stream_requests": self.engine.requests_issued,
            "memory_reads": self.memory_reads,
            "memory_writes": self.memory_writes,
            "bank_conflicts": self.bank_conflicts,
            "port_rejects": self.port_rejects,
            "memory_utilization": self.memory_utilization,
            "mean_outstanding_loads": self.mean_outstanding_loads,
            "max_outstanding_loads": self.max_outstanding_loads,
            "lod_events": self.lod_events,
            "lod_stall_cycles": self.lod_stall_cycles,
        }

    def summary(self) -> str:
        """Multi-line human-readable digest."""
        lines = [
            f"cycles                 {self.cycles}",
            f"AP instructions        {self.ap.instructions}"
            f"  (stalls {self.ap.total_stalls()}: {self.ap.stall_cycles})",
            f"EP instructions        {self.ep.instructions}"
            f"  (stalls {self.ep.total_stalls()}: {self.ep.stall_cycles})",
            f"streams started        {self.engine.streams_started}"
            f"  requests {self.engine.requests_issued}",
            f"memory reads/writes    {self.memory_reads}/{self.memory_writes}"
            f"  conflicts {self.bank_conflicts}",
            f"memory utilization     {self.memory_utilization:.3f}",
            f"mean outstanding loads {self.mean_outstanding_loads:.2f}"
            f"  (max {self.max_outstanding_loads})",
            f"LOD events             {self.lod_events}"
            f"  ({self.lod_stall_cycles} stall cycles)",
        ]
        return "\n".join(lines)


class SMAMachine:
    """A complete decoupled access/execute machine instance."""

    def __init__(
        self,
        access_program: Program,
        execute_program: Program,
        config: SMAConfig | None = None,
        shared_memory: BankedMemory | None = None,
    ):
        self.config = config or SMAConfig()
        if shared_memory is not None:
            # multiprocessor configuration: several machines contend for
            # one banked memory (see repro.core.cluster); the cluster owns
            # the memory tick
            self.memory = shared_memory.storage
            self.banked = shared_memory
            self._owns_memory = False
        else:
            self.memory = MainMemory(self.config.memory.size)
            self.banked = BankedMemory(self.memory, self.config.memory)
            self._owns_memory = True
        self.queues = QueueFile(self.config)
        self.engine = StreamEngine(
            self.banked,
            self.config.max_streams,
            self.config.stream_issue_per_cycle,
        )
        self.store_unit = StoreUnit(self.queues, self.banked)
        self.ap = AccessProcessor(
            access_program, self.queues, self.banked, self.engine
        )
        self.ep = ExecuteProcessor(execute_program, self.queues)
        for program in (access_program, execute_program):
            for base, values in program.data:
                self.memory.load_array(base, values)
        self.cycle = 0
        self._occupancy_sum = 0
        self._occupancy_max = 0

    # -- convenience for loading workloads ------------------------------

    def load_array(self, base: int, values) -> None:
        """Place a workload array into memory before running."""
        self.memory.load_array(base, values)

    def dump_array(self, base: int, count: int):
        """Read back a result array after running."""
        return self.memory.dump_array(base, count)

    # -- the simulation loop ---------------------------------------------

    def done(self) -> bool:
        """True when both processors halted and all async work drained."""
        return (
            self.ap.halted
            and self.ep.halted
            and self.engine.idle()
            and not self.store_unit.pending()
            and (not self._owns_memory or self.banked.quiescent())
        )

    # kept for any external callers of the old private name
    _done = done

    def step_cycle(self, tick_memory: bool = True) -> None:
        """Advance the machine by one cycle.

        ``tick_memory=False`` is used by :class:`repro.core.cluster.
        SMACluster`, which owns the shared memory and ticks it exactly
        once per cycle for all member machines.
        """
        now = self.cycle
        if tick_memory:
            self.banked.tick(now)
        self.store_unit.tick(now)
        self.engine.tick(now)
        self.ap.step(now)
        self.ep.step(now)
        self.queues.sample()
        outstanding = sum(len(q) for q in self.queues.load)
        self._occupancy_sum += outstanding
        if outstanding > self._occupancy_max:
            self._occupancy_max = outstanding
        self.cycle += 1

    def progress_state(self) -> tuple[int, ...]:
        """A tuple that changes iff the machine made forward progress
        (used for deadlock detection, here and in the cluster)."""
        return (
            self.ap.stats.instructions,
            self.ep.stats.instructions,
            self.engine.stats.requests_issued,
            self.store_unit.stats.stores_issued,
        )

    def deadlock_report(self) -> str:
        return (
            f"AP@{self.ap.pc} halted={self.ap.halted} "
            f"stalls={self.ap.stats.stall_cycles}; "
            f"EP@{self.ep.pc} halted={self.ep.halted} "
            f"stalls={self.ep.stats.stall_cycles}; "
            f"live streams={self.engine.live_streams}"
        )

    def collect_result(self) -> SMAResult:
        """Snapshot the statistics gathered so far into an SMAResult."""
        mstats = self.banked.stats
        cycles = max(self.cycle, 1)
        return SMAResult(
            cycles=self.cycle,
            ap=self.ap.stats,
            ep=self.ep.stats,
            engine=self.engine.stats,
            store_unit=self.store_unit.stats,
            memory_reads=mstats.reads,
            memory_writes=mstats.writes,
            bank_conflicts=mstats.bank_conflicts,
            port_rejects=mstats.port_rejects,
            memory_utilization=mstats.utilization(
                cycles, self.config.memory.num_banks
            ),
            mean_outstanding_loads=self._occupancy_sum / cycles,
            max_outstanding_loads=self._occupancy_max,
            queue_stats={q.name: q.stats for q in self.queues.all_queues()},
        )

    def run(
        self,
        max_cycles: int = 10_000_000,
        deadlock_window: int = 10_000,
        observer=None,
    ) -> SMAResult:
        """Run to completion; returns the collected statistics.

        ``observer``, if given, is called as ``observer(machine, cycle)``
        once per simulated cycle after all components have stepped — the
        hook the trace collectors in :mod:`repro.trace` attach through.
        """
        last_progress_cycle = 0
        last_progress_state: tuple[int, ...] = ()
        while not self.done():
            if self.cycle >= max_cycles:
                raise SimulationError(
                    f"exceeded cycle budget {max_cycles}"
                )
            self.step_cycle()
            if observer is not None:
                observer(self, self.cycle - 1)
            memory_traffic = (
                self.banked.stats.reads + self.banked.stats.writes,
            )
            state = self.progress_state() + memory_traffic
            if state != last_progress_state:
                last_progress_state = state
                last_progress_cycle = self.cycle
            elif self.cycle - last_progress_cycle > deadlock_window:
                raise SimulationError(
                    "deadlock: no forward progress for "
                    f"{deadlock_window} cycles at cycle {self.cycle}; "
                    + self.deadlock_report()
                )
        return self.collect_result()
