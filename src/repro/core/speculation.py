"""Speculative access-processor run-ahead (the LOD-recovery subsystem).

The paper's central negative result is that loss-of-decoupling events —
data-dependent addresses (``FROMQ`` from the EAQ) and execute-resolved
branches (``BQNZ``/``BQEZ`` on the EBQ) — drag the access processor back
to the execute processor's speed, collapsing the run-ahead advantage.
This module implements the modern fix (Szafarczyk et al., "Compiler
Support for Speculation in Decoupled Access/Execute Architectures"):
instead of stalling at a LOD point, the AP asks a predictor for the
value, checkpoints its architectural state, and keeps issuing memory
traffic *speculatively*.

Mechanism
---------

* **Predictor.**  Deterministic per (pc, episode, seed): a hash coin
  decides *a priori* whether each prediction is correct.  A correct
  prediction supplies the exact value the EP will eventually deliver
  (obtained from an *oracle pre-run*: a non-speculative clone of the
  machine executed once up front, with taps recording every EAQ/EBQ pop
  value in order); an incorrect one supplies a deliberately wrong value
  (flipped branch direction / perturbed address).  ``accuracy=0`` or
  ``mode="never"`` never opens a frame, so such runs are bit-identical
  to a non-speculative machine; ``mode="perfect"`` always predicts
  correctly.

* **Frames.**  Each speculation pushes a frame recording the AP shadow
  state (registers, pc), the pop-sequence cursor, the coin verdict, and
  every queue slot the AP subsequently pops or reserves.  Nested
  speculation (up to ``max_depth`` frames) lets the AP run past several
  unresolved LOD points at once.

* **Poison.**  Queue slots reserved (loads) or pushed (store addresses)
  while any frame is open are poison-tagged; ``OperandQueue.head_ready``
  hides poisoned heads from the EP and the store unit, so speculative
  data never leaks into non-speculative state.  Store *data* stays in
  the SDQ and stores only commit after the producing frame commits.

* **Resolution.**  The EP keeps executing the non-speculative path; its
  EAQ/EBQ pushes are the confirmations.  While predictions are pending
  on a queue the AP never consumes that queue's real head — arrivals
  are matched FIFO against pending frames at end of cycle.  A confirmed
  frame commits once every outer frame has committed: the confirming
  arrival is popped, its reserved slots are un-poisoned.  A refuted
  frame rolls back: reserved slots are squashed (including their
  in-flight memory completions), popped slots are re-inserted at the
  head, the AP shadow state is restored, and the AP stalls for
  ``rollback_penalty`` cycles on the new ``misspeculation`` cause.

* **Accounting.**  Statistics are *not* rolled back: wrong-path
  instructions, memory traffic and stall cycles are work the machine
  really did.  The metrics partition gains a ``misspeculation`` bucket
  (recovery penalty + speculation barriers); every elapsed cycle stays
  attributed to exactly one bucket.

Speculation runs only under the reference (naive) scheduler — the fast
schedulers downgrade, exactly as fault injection does.  Streams are
speculation barriers: a descriptor op stalls (``spec_barrier``) until
all frames resolve.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..config import SpeculationConfig
from ..errors import QueueError, SimulationError
from ..isa.operands import QueueSpace


@dataclass
class SpeculationStats:
    """What the speculative AP did during one run."""

    #: frames opened (predictions made)
    predictions: int = 0
    #: predictions the coin decided would be correct
    correct_predictions: int = 0
    #: frames committed (prediction confirmed by the EP's value)
    commits: int = 0
    #: rollbacks performed (each may undo several nested frames)
    rollbacks: int = 0
    #: in-flight memory completions squashed by rollbacks
    squashed_completions: int = 0
    #: speculation refused because the oracle table was exhausted
    #: (the reference run never popped this far — program is ending)
    oracle_refusals: int = 0
    #: speculation refused because ``max_depth`` frames were open
    depth_refusals: int = 0
    #: deepest simultaneous frame nesting observed
    max_depth: int = 0

    def to_dict(self) -> dict:
        return {
            "predictions": self.predictions,
            "correct_predictions": self.correct_predictions,
            "commits": self.commits,
            "rollbacks": self.rollbacks,
            "squashed_completions": self.squashed_completions,
            "oracle_refusals": self.oracle_refusals,
            "depth_refusals": self.depth_refusals,
            "max_depth": self.max_depth,
        }


@dataclass
class _Frame:
    """One open speculation: shadow state + undo log + verdict."""

    key: str                 # "eaq" | "ebq"
    pc: int                  # AP pc of the speculated instruction
    registers: list          # AP register file at entry
    halted: bool             # AP halted flag at entry (always False)
    pop_seq: dict            # pop-sequence cursors at entry
    correct: bool            # coin verdict, decided at prediction time
    value: float             # the true (oracle) value being predicted
    resolved: bool = False   # confirming arrival observed
    #: (queue, slot) reserved/pushed while this frame was innermost
    reserved: list = field(default_factory=list)
    #: (queue, slot) popped while this frame was innermost, in pop order
    popped: list = field(default_factory=list)


def build_oracle(machine, max_cycles: int = 10_000_000) -> dict:
    """Record the EAQ/EBQ pop-value sequences of a non-speculative
    reference run of ``machine``'s programs over a copy of its current
    memory image.

    Architectural values (unlike timing) are scheduler-independent, and
    correct speculation plus rollback-on-misprediction preserves the
    architectural history exactly, so the recorded sequences stay valid
    for the whole speculative run.  Faults are stripped from the clone:
    they perturb timing only, never values.
    """
    from .machine import SMAMachine

    cfg = replace(machine.config, speculation=None, faults=None)
    ref = SMAMachine(machine.ap.program, machine.ep.program, cfg)
    ref.memory._words[:] = machine.memory._words[: ref.memory.size]
    taps = {"eaq": [], "ebq": []}
    ref.queues.ep_to_ap_data._tap = taps["eaq"]
    ref.queues.ep_to_ap_branch._tap = taps["ebq"]
    ref.run(max_cycles=max_cycles, scheduler="naive")
    return taps


class SpeculationEngine:
    """Per-machine speculation state machine (see module docstring).

    The AP calls in through four hooks (``ap_blocked``, ``ap_fromq``,
    ``ap_branch_value``, ``ap_stream_barrier`` plus ``note_reserved``);
    the machine calls :meth:`on_cycle` once per cycle after both
    processors have stepped, which is where predictions resolve.
    """

    def __init__(self, machine, config: SpeculationConfig,
                 oracle: dict | None = None):
        self.config = config
        self.ap = machine.ap
        self.memory = machine.banked
        self.eaq = machine.queues.ep_to_ap_data
        self.ebq = machine.queues.ep_to_ap_branch
        self.stats = SpeculationStats()
        #: values consumed (really or speculatively) per queue, indexing
        #: the oracle tables; frames snapshot and rollback restores it
        self.pop_seq = {"eaq": 0, "ebq": 0}
        #: first cycle the AP may issue again after a rollback
        self.penalty_until = 0
        #: open frames, outermost first
        self.stack: list[_Frame] = []
        #: unresolved/uncommitted frames per queue, FIFO
        self.pending: dict[str, list[_Frame]] = {"eaq": [], "ebq": []}
        # a precomputed oracle (checkpoint restore) skips the pre-run
        self.oracle = (
            {k: list(v) for k, v in oracle.items()}
            if oracle is not None else build_oracle(machine)
        )

    # -- state queries ----------------------------------------------------

    def idle(self) -> bool:
        """True when no speculation is outstanding (machine may finish)."""
        return not self.stack

    def in_flight(self) -> bool:
        return bool(self.stack)

    # -- AP hooks ----------------------------------------------------------

    def ap_blocked(self, ap, now: int) -> bool:
        """Rollback-penalty gate, called at the top of every AP step."""
        if now < self.penalty_until:
            ap._stall("misspeculation")
            return True
        return False

    def ap_stream_barrier(self, ap) -> bool:
        """Descriptor ops are speculation barriers: a wrong-path stream
        cannot be squashed, so the AP waits for all frames to resolve."""
        if self.stack:
            ap._stall("spec_barrier")
            return True
        return False

    def note_reserved(self, queue, slot) -> None:
        """Poison-tag a slot the AP just reserved/pushed, if speculative."""
        if self.stack:
            slot.poisoned = True
            self.stack[-1].reserved.append((queue, slot))

    def ap_fromq(self, ap, instr, src, queue) -> bool:
        """Speculation-aware FROMQ; mirrors ``AccessProcessor._fromq``."""
        space = src.space
        if space is QueueSpace.EAQ:
            key, cause = "eaq", "lod_eaq"
        elif space is QueueSpace.EBQ:
            key, cause = "ebq", "lod_ebq"
        else:
            key, cause = None, "iq_empty"
        if key is None:
            # index queue: never predicted, but the speculative AP may
            # consume its own poisoned run-ahead data (undoably)
            if self.stack:
                if queue.head_filled():
                    slot = queue.pop_slot()
                    self.stack[-1].popped.append((queue, slot))
                    ap.registers[instr.dest.index] = slot.value
                    return True
            elif queue.head_ready():
                ap.registers[instr.dest.index] = queue.pop()
                return True
            queue.note_empty_stall()
            ap._stall(cause)
            return False
        value = self._consume(ap, key, queue, cause)
        if value is None:
            return False
        ap.registers[instr.dest.index] = value
        return True

    def ap_branch_value(self, ap):
        """Speculation-aware BQNZ/BQEZ operand; ``None`` means the AP
        stalled (stall already recorded)."""
        return self._consume(ap, "ebq", self.ebq, "lod_ebq")

    # -- consumption / prediction ------------------------------------------

    def _consume(self, ap, key: str, queue, cause: str):
        if not self.pending[key] and queue.head_ready():
            # a real value with nothing outstanding on this queue
            if self.stack:
                slot = queue.pop_slot()
                self.stack[-1].popped.append((queue, slot))
                value = slot.value
            else:
                value = queue.pop()
            self.pop_seq[key] += 1
            return value
        # while predictions are pending, arrivals in the queue belong to
        # them (FIFO) — the AP must predict again or wait
        value = self._speculate(ap, key)
        if value is None:
            queue.note_empty_stall()
            ap._stall(cause)
        return value

    def _speculate(self, ap, key: str):
        if len(self.stack) >= self.config.max_depth:
            self.stats.depth_refusals += 1
            return None
        table = self.oracle[key]
        seq = self.pop_seq[key]
        if seq >= len(table):
            self.stats.oracle_refusals += 1
            return None
        actual = table[seq]
        self.stats.predictions += 1
        correct = self._coin(ap.pc)
        if correct:
            self.stats.correct_predictions += 1
        frame = _Frame(
            key=key,
            pc=ap.pc,
            registers=list(ap.registers),
            halted=ap.halted,
            pop_seq=dict(self.pop_seq),
            correct=correct,
            value=actual,
        )
        self.stack.append(frame)
        if len(self.stack) > self.stats.max_depth:
            self.stats.max_depth = len(self.stack)
        self.pending[key].append(frame)
        self.pop_seq[key] += 1
        return actual if correct else self._wrong_value(key, actual)

    def _coin(self, pc: int) -> bool:
        """Deterministic per-(pc, episode, seed) correctness verdict."""
        cfg = self.config
        if cfg.mode == "perfect" or cfg.accuracy >= 1.0:
            return True
        n = self.stats.predictions  # 1-based episode counter
        h = (pc * 2654435761 + n * 40503 + cfg.seed * 97) & 0xFFFFFFFF
        h ^= h >> 16
        h = (h * 0x45D9F3B) & 0xFFFFFFFF
        h ^= h >> 16
        return h / 2.0 ** 32 < cfg.accuracy

    @staticmethod
    def _wrong_value(key: str, actual: float) -> float:
        """A deliberately wrong prediction that still drives a plausible
        wrong path: branches flip direction; addresses shift by one
        element (staying non-negative, so wrong-path loads stay in
        plausible range — they are additionally clamped at issue)."""
        if key == "ebq":
            return 1.0 if actual == 0 else 0.0
        return actual - 1.0 if actual >= 1.0 else actual + 1.0

    # -- resolution ---------------------------------------------------------

    def on_cycle(self, machine, now: int) -> None:
        """End-of-cycle resolution: match EP arrivals against pending
        frames FIFO, roll back on the first refuted frame, cascade-commit
        resolved frames from the outermost."""
        if not self.stack:
            return
        progressed = True
        while progressed and self.stack:
            progressed = False
            for key, queue in (("eaq", self.eaq), ("ebq", self.ebq)):
                pend = self.pending[key]
                if not pend:
                    continue
                resolved = sum(1 for f in pend if f.resolved)
                # every slot in the EAQ/EBQ is a filled EP push; slots
                # beyond the already-resolved count are new confirmations
                while resolved < len(pend) and queue.filled_count > resolved:
                    frame = pend[resolved]
                    if not frame.correct:
                        self._rollback(frame, now)
                        return
                    frame.resolved = True
                    resolved += 1
                    progressed = True
            while self.stack and self.stack[0].resolved:
                self._commit(self.stack.pop(0))
                progressed = True

    def _commit(self, frame: _Frame) -> None:
        queue = self.eaq if frame.key == "eaq" else self.ebq
        confirmed = queue.pop()
        if confirmed != frame.value:
            raise SimulationError(
                "speculation oracle diverged: predicted "
                f"{frame.value!r} on {frame.key} but the EP delivered "
                f"{confirmed!r}"
            )
        for _q, slot in frame.reserved:
            slot.poisoned = False
        pend = self.pending[frame.key]
        assert pend and pend[0] is frame
        pend.pop(0)
        self.stats.commits += 1

    def _rollback(self, frame: _Frame, now: int) -> None:
        """Undo ``frame`` and everything nested inside it (LIFO)."""
        idx = self.stack.index(frame)
        squash = []
        for g in reversed(self.stack[idx:]):
            reserved_ids = {id(s) for _q, s in g.reserved}
            # squash this frame's reservations first so re-inserting its
            # pops can never transiently exceed entry-time occupancy
            for q, slot in g.reserved:
                try:
                    q.remove_slot(slot)
                except QueueError:
                    pass  # already popped speculatively; not re-inserted
                squash.append(slot)
            for q, slot in reversed(g.popped):
                if id(slot) not in reserved_ids:
                    q.unpop_slot(slot)
            self.pending[g.key].remove(g)
        del self.stack[idx:]
        if squash:
            self.stats.squashed_completions += (
                self.memory.squash_completions(squash)
            )
        ap = self.ap
        ap.registers[:] = frame.registers
        ap.pc = frame.pc
        ap.halted = frame.halted
        ap._stalled_on = None
        self.pop_seq = dict(frame.pop_seq)
        self.penalty_until = now + 1 + self.config.rollback_penalty
        self.stats.rollbacks += 1

    # -- checkpointing ------------------------------------------------------

    def snapshot_state(self) -> dict:
        """JSON-clean image of the engine's between-runs state.  Open
        frames are deliberately unsupported — the caller must refuse to
        snapshot mid-speculation (see :mod:`repro.core.checkpoint`)."""
        assert not self.stack, "snapshot with open speculation frames"
        st = self.stats
        return {
            "pop_seq": dict(self.pop_seq),
            "penalty_until": self.penalty_until,
            "oracle": {k: list(v) for k, v in self.oracle.items()},
            "stats": st.to_dict(),
        }

    def restore_state(self, data: dict) -> None:
        self.stack.clear()
        self.pending["eaq"].clear()
        self.pending["ebq"].clear()
        self.pop_seq = {k: int(v) for k, v in data["pop_seq"].items()}
        self.penalty_until = int(data["penalty_until"])
        self.oracle = {k: list(v) for k, v in data["oracle"].items()}
        st, src = self.stats, data["stats"]
        st.predictions = src["predictions"]
        st.correct_predictions = src["correct_predictions"]
        st.commits = src["commits"]
        st.rollbacks = src["rollbacks"]
        st.squashed_completions = src["squashed_completions"]
        st.oracle_refusals = src["oracle_refusals"]
        st.depth_refusals = src["depth_refusals"]
        st.max_depth = src["max_depth"]
