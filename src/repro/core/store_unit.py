"""Store pairing unit.

Non-stream stores take the classic DAE path: the access processor pushes
``(address, data-queue-index)`` pairs into the store-address queue (SAQ)
with ``staddr``, and the execute processor pushes the matching values into
the named store-data queue in the same program order.  The store unit
marries the two heads and issues one write per cycle when both are ready
and the memory accepts it.

Stream stores (``streamst``/``scatter``) bypass the SAQ entirely — their
addresses come from the descriptor — but draw from the same store-data
queues, so a program must not interleave stream and SAQ stores on one data
queue (the code generators allocate disjoint queues).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..memory.banks import BankedMemory
from ..queues import QueueFile


@dataclass
class StoreUnitStats:
    stores_issued: int = 0
    #: cycles an address waited because its data had not been computed.
    data_wait_cycles: int = 0
    #: cycles a ready pair waited on the memory port / bank.
    memory_wait_cycles: int = 0


class StoreUnit:
    """Pairs SAQ addresses with store-data values; one write per cycle."""

    __slots__ = ("queues", "memory", "stats")

    def __init__(self, queues: QueueFile, memory: BankedMemory):
        self.queues = queues
        self.memory = memory
        self.stats = StoreUnitStats()

    def tick(self, now: int) -> bool:
        """Try to issue one paired store; returns True if one was issued."""
        saq = self.queues.store_addr
        if not saq.head_ready():
            return False
        addr, data_queue_index = saq.peek()
        data_queue = self.queues.store_data[data_queue_index]
        if not data_queue.head_ready():
            self.stats.data_wait_cycles += 1
            data_queue.note_empty_stall()
            return False
        if not self.memory.can_accept(addr, now):
            self.stats.memory_wait_cycles += 1
            return False
        accepted = self.memory.try_issue(
            addr, now, is_write=True, value=data_queue.peek()
        )
        assert accepted
        saq.pop()
        data_queue.pop()
        self.stats.stores_issued += 1
        return True

    def tick_fast(self, now: int) -> bool:
        """Hand-inlined twin of :meth:`tick` for the event-horizon
        scheduler's hot loop: the queue-head probes, the memory
        port/bank check and the accept bookkeeping of
        ``BankedMemory.try_issue`` are flattened into local accesses.
        Must stay behaviorally identical to ``tick`` (same stall notes,
        same stats, same issue decisions); the equivalence suite in
        ``tests/test_event_horizon.py`` holds the two together."""
        queues = self.queues
        saq = queues.store_addr
        sslots = saq._slots
        if not sslots or not sslots[0].filled:
            return False
        addr, data_queue_index = sslots[0].value
        data_queue = queues.store_data[data_queue_index]
        dslots = data_queue._slots
        if not dslots or not dslots[0].filled:
            self.stats.data_wait_cycles += 1
            data_queue.stats.empty_stalls += 1
            return False
        memory = self.memory
        config = memory.config
        bank = addr % config.num_banks
        cyc, cnt = memory._issues_at
        if (cyc == now and cnt >= config.accepts_per_cycle) or \
                memory._bank_free_at[bank] > now:
            self.stats.memory_wait_cycles += 1
            return False
        # accept (mirrors BankedMemory.try_issue with the checks above)
        memory._issues_at = (now, cnt + 1) if cyc == now else (now, 1)
        memory._bank_free_at[bank] = now + config.bank_busy
        mstats = memory.stats
        mstats.busy_bank_cycles += config.bank_busy
        mstats.per_bank_accesses[bank] += 1
        mstats.writes += 1
        storage = memory.storage
        if storage.observer is None and 0 <= addr < storage.size:
            storage._words[addr] = dslots[0].value
        else:
            storage.write(addr, dslots[0].value)
        # inline saq.pop() and data_queue.pop() (heads just checked)
        for queue, slots in ((saq, sslots), (data_queue, dslots)):
            if queue._lazy:
                if queue._clock[0] > queue._synced:
                    queue._lazy_flush()
                agg = queue._agg
                if agg is not None:
                    agg.change(now, -1)
            queue.stats.pops += 1
            slots.popleft()
        self.stats.stores_issued += 1
        return True

    def pending(self) -> bool:
        """True while addressed stores are waiting to be paired."""
        return not self.queues.store_addr.is_empty()

    def next_event_time(self, now: int) -> int | None:
        """Event-horizon contract: earliest cycle this unit can issue a
        store with every other component frozen.

        ``None`` while either half of the pair is missing — only another
        component (AP pushing an address, EP pushing data) can change
        that.  With a ready pair the only self-resolving obstacle is the
        target bank's busy window.  The per-cycle port limit is ignored:
        it resets every cycle, so it can delay the store only within the
        current cycle, and returning ``now`` then is conservative (the
        scheduler simply does not jump).
        """
        saq = self.queues.store_addr
        if not saq.head_ready():
            return None
        addr, data_queue_index = saq.peek()
        if not self.queues.store_data[data_queue_index].head_ready():
            return None
        t = self.memory.bank_free_time(addr)
        return t if t > now else now
