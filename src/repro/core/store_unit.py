"""Store pairing unit.

Non-stream stores take the classic DAE path: the access processor pushes
``(address, data-queue-index)`` pairs into the store-address queue (SAQ)
with ``staddr``, and the execute processor pushes the matching values into
the named store-data queue in the same program order.  The store unit
marries the two heads and issues one write per cycle when both are ready
and the memory accepts it.

Stream stores (``streamst``/``scatter``) bypass the SAQ entirely — their
addresses come from the descriptor — but draw from the same store-data
queues, so a program must not interleave stream and SAQ stores on one data
queue (the code generators allocate disjoint queues).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..memory.banks import BankedMemory
from ..queues import QueueFile


@dataclass
class StoreUnitStats:
    stores_issued: int = 0
    #: cycles an address waited because its data had not been computed.
    data_wait_cycles: int = 0
    #: cycles a ready pair waited on the memory port / bank.
    memory_wait_cycles: int = 0


class StoreUnit:
    """Pairs SAQ addresses with store-data values; one write per cycle."""

    def __init__(self, queues: QueueFile, memory: BankedMemory):
        self.queues = queues
        self.memory = memory
        self.stats = StoreUnitStats()

    def tick(self, now: int) -> bool:
        """Try to issue one paired store; returns True if one was issued."""
        saq = self.queues.store_addr
        if not saq.head_ready():
            return False
        addr, data_queue_index = saq.peek()
        data_queue = self.queues.store_data[data_queue_index]
        if not data_queue.head_ready():
            self.stats.data_wait_cycles += 1
            data_queue.note_empty_stall()
            return False
        if not self.memory.can_accept(addr, now):
            self.stats.memory_wait_cycles += 1
            return False
        accepted = self.memory.try_issue(
            addr, now, is_write=True, value=data_queue.peek()
        )
        assert accepted
        saq.pop()
        data_queue.pop()
        self.stats.stores_issued += 1
        return True

    def pending(self) -> bool:
        """True while addressed stores are waiting to be paired."""
        return not self.queues.store_addr.is_empty()
