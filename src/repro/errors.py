"""Exception hierarchy for the SMA reproduction library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Sub-classes are split by
subsystem: assembly-time problems (:class:`AssemblyError`), problems detected
while a machine is running (:class:`SimulationError`), memory-system misuse
(:class:`MemoryError_`), and kernel-IR lowering failures
(:class:`LoweringError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class AssemblyError(ReproError):
    """Raised for malformed assembly text or unresolvable labels.

    Carries the (1-based) source line number when available.
    """

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class EncodingError(ReproError):
    """Raised when an instruction cannot be packed into / unpacked from
    its binary representation (e.g. register index out of range)."""


class SimulationError(ReproError):
    """Raised when a machine reaches an illegal state at run time.

    Examples: executing past the end of a program, an instruction illegal
    for the processor that fetched it, or exceeding a run's cycle budget.
    """


class MemoryError_(ReproError):
    """Raised for out-of-bounds or non-integral memory addresses."""


class QueueError(ReproError):
    """Raised for architectural-queue protocol violations (popping an
    empty queue, filling an unreserved slot, ...).  These indicate bugs in
    a processor model, never in user programs, so they are not recoverable.
    """


class LoweringError(ReproError):
    """Raised when a kernel-IR construct cannot be compiled for the
    requested target machine (e.g. too many load streams for the number of
    architectural load queues)."""


class KernelError(ReproError):
    """Raised for malformed kernel IR (unknown arrays, bad loop bounds)."""


class CheckpointError(ReproError):
    """Raised when a machine snapshot cannot be restored: version or
    fingerprint mismatch (different programs / configuration), malformed
    snapshot payload, or a metrics layout that does not match the target
    machine."""
