"""Experiment harness: runners, sweeps, tables for every figure/table."""

from .experiments import EXPERIMENTS, run_experiment
from .runner import (
    ComparisonRun,
    KernelRun,
    compare_spec,
    run_on_scalar,
    run_on_sma,
    run_spec_reference,
)
from .tables import Table

__all__ = [
    "EXPERIMENTS",
    "ComparisonRun",
    "KernelRun",
    "Table",
    "compare_spec",
    "run_experiment",
    "run_on_scalar",
    "run_on_sma",
    "run_spec_reference",
]
