"""Experiment harness: runners, sweeps, tables for every figure/table."""

from .experiments import EXPERIMENTS, run_experiment
from .faults import FaultSpec
from .jobs import Job, run_job
from .parallel import (
    HarnessPolicy,
    SweepError,
    SweepStats,
    code_fingerprint,
    harness_policy,
    run_jobs,
    set_policy,
)
from .runner import (
    ComparisonRun,
    KernelRun,
    compare_spec,
    run_on_scalar,
    run_on_sma,
    run_spec_reference,
)
from .tables import Table

__all__ = [
    "EXPERIMENTS",
    "ComparisonRun",
    "FaultSpec",
    "HarnessPolicy",
    "Job",
    "KernelRun",
    "SweepError",
    "SweepStats",
    "Table",
    "code_fingerprint",
    "compare_spec",
    "harness_policy",
    "run_experiment",
    "run_job",
    "run_jobs",
    "run_on_scalar",
    "run_on_sma",
    "run_spec_reference",
    "set_policy",
]
