"""Experiment harness: runners, sweeps, tables for every figure/table."""

from .experiments import EXPERIMENTS, run_experiment
from .jobs import Job, run_job
from .parallel import code_fingerprint, run_jobs
from .runner import (
    ComparisonRun,
    KernelRun,
    compare_spec,
    run_on_scalar,
    run_on_sma,
    run_spec_reference,
)
from .tables import Table

__all__ = [
    "EXPERIMENTS",
    "ComparisonRun",
    "Job",
    "KernelRun",
    "Table",
    "code_fingerprint",
    "compare_spec",
    "run_experiment",
    "run_job",
    "run_jobs",
    "run_on_scalar",
    "run_on_sma",
    "run_spec_reference",
]
