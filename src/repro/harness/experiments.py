"""The reconstructed evaluation: one function per table / figure.

Each experiment (see DESIGN.md §3 for the index and EXPERIMENTS.md for
measured-vs-expected) returns a :class:`repro.harness.tables.Table`; the
``benchmarks/`` tree has one pytest-benchmark module per experiment that
runs it and prints the table.

Every experiment is split into two pure halves: it first *declares* its
sweep as a list of :class:`repro.harness.jobs.Job` descriptions, hands
the list to :func:`repro.harness.parallel.run_jobs` (which can fan jobs
over worker processes and/or an on-disk result cache — the ``jobs=`` and
``cache_dir=`` keywords every experiment accepts), then *assembles* the
table from the returned measurement dicts.  With the defaults
(``jobs=1``, no cache) everything runs serially in-process, so results
are deterministic for CI.  Experiments dominated by dense SMA sweeps
also take ``backend="batch"``, which steps all eligible grid points in
lockstep through :mod:`repro.batch` — bit-identical results, a fraction
of the cost.

Identifiers:

========  ===========================================================
R-T1      kernel characterization (instruction mix, operand traffic)
R-T2      cycles & speedup, SMA vs scalar baseline
R-T3      SMA vs scalar-with-data-cache
R-T4      loss-of-decoupling accounting
R-T5      SMA vs hardware prefetching (extension)
R-T6      SMA vs vector machine (extension)
R-F1      speedup vs memory latency
R-F2      speedup vs queue depth
R-F3      average slip (run-ahead) per kernel
R-F4      throughput vs number of memory banks
R-F5      ablation: structured descriptors vs per-element access
R-F6      queue occupancy over time
R-F7      memory-port bandwidth ablation (extension)
R-F8      multiprocessor interference (extension)
R-T7      speculative AP vs prediction accuracy (extension)
R-F9      speculative AP run-ahead depth sweep (extension)
========  ===========================================================

Sweeps keep the classic era relationship ``bank_busy = latency / 2``
(memory cycle time tracks access time) unless a knob says otherwise.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Sequence

from ..config import (
    CacheConfig,
    MemoryConfig,
    QueueConfig,
    ScalarConfig,
    SMAConfig,
    SpeculationConfig,
)
from ..kernels import all_kernels
from .jobs import Job
from .parallel import run_jobs
from .tables import Table

#: kernels used where a sweep would be too expensive over the full suite
STREAMING_REPS = ("hydro", "daxpy", "state_eqn", "first_diff")
LATENCY_REPS = ("hydro", "daxpy", "inner_product", "tridiag")
BANK_REPS = ("daxpy", "saxpy_strided", "strided_dot", "stride8_copy")
CACHE_REPS = ("hydro", "daxpy", "inner_product", "pic_gather", "stencil2d",
              "integrate")
LOD_REPS = ("computed_gather", "pic_gather", "pic_scatter", "tridiag",
            "hydro")
ABLATION_REPS = ("hydro", "daxpy", "state_eqn", "first_diff", "conv4",
                 "inner_product")


def _memory(latency: int, banks: int = 8) -> MemoryConfig:
    return MemoryConfig(
        latency=latency, bank_busy=max(1, latency // 2), num_banks=banks
    )


def _configs(
    latency: int = 8, banks: int = 8, queue_depth: int = 8
) -> tuple[SMAConfig, ScalarConfig]:
    mem = _memory(latency, banks)
    queues = QueueConfig(
        load_queue_depth=queue_depth,
        store_data_depth=queue_depth,
        store_addr_depth=queue_depth,
        index_queue_depth=queue_depth,
    )
    return SMAConfig(memory=mem, queues=queues), ScalarConfig(memory=mem)


# ---------------------------------------------------------------------------
# R-T1: kernel characterization
# ---------------------------------------------------------------------------


def table1_mix(
    n: int = 256, jobs: int = 1, cache_dir: str | None = None,
    backend: str = "scalar", batch_workers: int = 1,
) -> Table:
    """Instruction mix per kernel: how the SMA split redistributes work.

    For the scalar machine we report dynamic instructions and memory
    operations; for the SMA, dynamic AP/EP instructions and the static
    stream inventory the compiler extracted.
    """
    t = Table(
        "R-T1",
        f"Kernel characterization (n={n})",
        ("kernel", "category", "scalar_instr", "loads", "stores",
         "ap_instr", "ep_instr", "streams", "gathers", "carried", "lod_refs"),
    )
    sma_cfg, scalar_cfg = _configs()
    specs = all_kernels()
    joblist = []
    for spec in specs:
        joblist.append(
            Job("scalar", spec.name, n, scalar_config=scalar_cfg)
        )
        joblist.append(Job("sma", spec.name, n, sma_config=sma_cfg))
    results = run_jobs(
        joblist, workers=jobs, cache_dir=cache_dir, backend=backend,
        batch_workers=batch_workers,
    )
    for spec, scalar, sma in zip(specs, results[::2], results[1::2]):
        t.add_row(
            spec.name,
            spec.category,
            scalar["instructions"],
            scalar["loads"],
            scalar["stores"],
            sma["ap_instructions"],
            sma["ep_instructions"],
            sma["load_streams"] + sma["store_streams"],
            sma["gather_streams"] + sma["scatter_streams"],
            sma["carried_refs"],
            sma["computed_refs"],
        )
    t.note("streams/gathers/carried/lod_refs are static per innermost loop")
    return t


# ---------------------------------------------------------------------------
# R-T2: headline speedup table
# ---------------------------------------------------------------------------


def table2_speedup(
    n: int = 256, latency: int = 8,
    jobs: int = 1, cache_dir: str | None = None,
    backend: str = "scalar", batch_workers: int = 1,
) -> Table:
    """SMA vs scalar baseline over the whole suite (the headline result)."""
    t = Table(
        "R-T2",
        f"SMA vs scalar baseline (n={n}, latency={latency})",
        ("kernel", "category", "scalar_cycles", "sma_cycles", "speedup",
         "mean_slip", "lod_events"),
    )
    sma_cfg, scalar_cfg = _configs(latency=latency)
    specs = all_kernels()
    joblist = []
    for spec in specs:
        joblist.append(
            Job("scalar", spec.name, n, scalar_config=scalar_cfg, check=True)
        )
        joblist.append(
            Job("sma", spec.name, n, sma_config=sma_cfg, check=True)
        )
    results = run_jobs(
        joblist, workers=jobs, cache_dir=cache_dir, backend=backend,
        batch_workers=batch_workers,
    )
    for spec, scalar, sma in zip(specs, results[::2], results[1::2]):
        t.add_row(
            spec.name,
            spec.category,
            scalar["cycles"],
            sma["cycles"],
            scalar["cycles"] / sma["cycles"],
            sma["mean_outstanding_loads"],
            sma["lod_events"],
        )
    t.note("every run is verified word-exact against the IR reference")
    return t


# ---------------------------------------------------------------------------
# R-T3: SMA vs data cache
# ---------------------------------------------------------------------------


def table3_cache(
    n: int = 256,
    cache_sizes: Sequence[int] = (128, 256, 512, 1024, 4096),
    kernels: Sequence[str] = CACHE_REPS,
    jobs: int = 1, cache_dir: str | None = None,
) -> Table:
    """Does a conventional data cache close the gap?

    Streaming kernels have no reuse, so the cache only helps through its
    line-fill prefetch effect; high-reuse or small-footprint kernels let
    the cache catch up.
    """
    t = Table(
        "R-T3",
        f"SMA vs scalar+cache (n={n})",
        ("kernel", "sma_cycles", "scalar_cycles",
         *[f"cache{s}w" for s in cache_sizes],
         *[f"hit%_{s}w" for s in cache_sizes]),
    )
    sma_cfg, scalar_cfg = _configs()
    stride = 2 + len(cache_sizes)  # jobs per kernel
    joblist = []
    for name in kernels:
        joblist.append(Job("sma", name, n, sma_config=sma_cfg))
        joblist.append(Job("scalar", name, n, scalar_config=scalar_cfg))
        for size in cache_sizes:
            cached_cfg = ScalarConfig(
                memory=scalar_cfg.memory,
                cache=CacheConfig(size_words=size, line_words=4,
                                  associativity=2),
            )
            joblist.append(Job("scalar", name, n, scalar_config=cached_cfg))
    results = run_jobs(joblist, workers=jobs, cache_dir=cache_dir)
    for i, name in enumerate(kernels):
        sma, scalar, *cached = results[i * stride:(i + 1) * stride]
        t.add_row(
            name, sma["cycles"], scalar["cycles"],
            *[c["cycles"] for c in cached],
            *[100.0 * c["cache_hit_rate"] for c in cached],
        )
    t.note("cache: 4-word lines, 2-way, LRU, write-back/write-allocate")
    return t


# ---------------------------------------------------------------------------
# R-T4: loss of decoupling
# ---------------------------------------------------------------------------


def table4_lod(
    n: int = 256, kernels: Sequence[str] = LOD_REPS,
    jobs: int = 1, cache_dir: str | None = None,
) -> Table:
    """Where decoupling collapses: EP-fed addresses and branches force the
    AP to the EP's speed; structured gathers (index from *memory*) do not."""
    t = Table(
        "R-T4",
        f"Loss-of-decoupling accounting (n={n})",
        ("kernel", "cycles", "lod_events", "lod_stall_cycles", "lod_frac",
         "speedup_vs_scalar"),
    )
    sma_cfg, scalar_cfg = _configs()
    joblist = []
    for name in kernels:
        joblist.append(Job("sma", name, n, sma_config=sma_cfg, check=True))
        joblist.append(
            Job("scalar", name, n, scalar_config=scalar_cfg, check=True)
        )
    results = run_jobs(joblist, workers=jobs, cache_dir=cache_dir)
    for name, sma, scalar in zip(kernels, results[::2], results[1::2]):
        t.add_row(
            name,
            sma["cycles"],
            sma["lod_events"],
            sma["lod_stall_cycles"],
            sma["lod_stall_cycles"] / sma["cycles"],
            scalar["cycles"] / sma["cycles"],
        )
    t.note("lod = AP waiting on EAQ/EBQ (EP-computed address or branch)")
    return t


# ---------------------------------------------------------------------------
# R-T5: SMA vs hardware prefetching (extension experiment)
# ---------------------------------------------------------------------------

PREFETCH_REPS = ("daxpy", "saxpy_strided", "stride8_copy", "hydro",
                 "pic_gather", "tridiag")


def table5_prefetch(
    n: int = 256, kernels: Sequence[str] = PREFETCH_REPS,
    jobs: int = 1, cache_dir: str | None = None,
) -> Table:
    """Extension: how close does *speculative* hardware prefetching get to
    the SMA's *exact* (descriptor-driven) prefetching?

    Compares the scalar baseline with (a) a plain cache, (b) one-block
    lookahead, and (c) a PC-indexed reference prediction table, against
    the SMA.  Expected shape: the RPT covers nearly all strided misses
    but still trails the SMA on unit-stride streams (blocking hit time,
    one-line lookahead); OBL actively *hurts* on non-unit strides
    (pollution); only the bank-free cache timing model lets the RPT edge
    past the bank-limited SMA on the pathological stride-8 kernel.
    """
    from ..memory.prefetch import PrefetchConfig

    t = Table(
        "R-T5",
        f"SMA vs hardware prefetching (n={n})",
        ("kernel", "uncached", "cache", "obl", "rpt", "sma",
         "rpt_coverage"),
    )
    sma_cfg, scalar_cfg = _configs()
    cache = CacheConfig()
    variants = (
        scalar_cfg,
        ScalarConfig(memory=scalar_cfg.memory, cache=cache),
        ScalarConfig(memory=scalar_cfg.memory, cache=cache,
                     prefetch=PrefetchConfig("obl")),
        ScalarConfig(memory=scalar_cfg.memory, cache=cache,
                     prefetch=PrefetchConfig("stride", table_size=16,
                                             degree=2)),
    )
    stride = len(variants) + 1  # jobs per kernel
    joblist = []
    for name in kernels:
        for cfg in variants:
            joblist.append(Job("scalar", name, n, scalar_config=cfg))
        joblist.append(Job("sma", name, n, sma_config=sma_cfg))
    results = run_jobs(joblist, workers=jobs, cache_dir=cache_dir)
    for i, name in enumerate(kernels):
        uncached, plain, obl, rpt, sma = results[i * stride:(i + 1) * stride]
        t.add_row(
            name, uncached["cycles"], plain["cycles"], obl["cycles"],
            rpt["cycles"], sma["cycles"], rpt["cache_coverage"],
        )
    t.note("rpt: PC-indexed reference prediction table, degree 2")
    t.note("cache timing has no bank model: bandwidth-bound kernels "
           "slightly favour the prefetcher")
    return t


# ---------------------------------------------------------------------------
# R-T6: SMA vs vector machine (extension)
# ---------------------------------------------------------------------------

VECTOR_REPS = ("hydro", "daxpy", "inner_product", "stencil2d",  # vectorize
               "tridiag", "linear_rec", "first_sum",            # recurrences
               "pic_gather", "pic_scatter", "computed_gather")  # irregular


def table6_vector(
    n: int = 256, kernels: Sequence[str] = VECTOR_REPS,
    jobs: int = 1, cache_dir: str | None = None,
) -> Table:
    """Extension: the era's second comparator — a CRAY-flavoured vector
    machine with perfect chaining (charitable: free scalar bookkeeping).

    Expected shape — the 1983 argument for decoupling over vector
    hardware: on vectorizable streams the vector machine wins (it has
    higher peak); on everything a classic vectorizer must *reject* —
    recurrences, gathers, scatters, data-dependent subscripts — it falls
    back to the scalar unit and the SMA beats it by the full decoupled
    margin.  The SMA is the machine with no cliff.
    """
    t = Table(
        "R-T6",
        f"SMA vs vector machine (n={n})",
        ("kernel", "vectorized", "vector_cycles", "sma_cycles",
         "scalar_cycles", "sma_vs_vector"),
    )
    sma_cfg, scalar_cfg = _configs()
    joblist = []
    for name in kernels:
        joblist.append(Job("sma", name, n, sma_config=sma_cfg))
        joblist.append(Job("scalar", name, n, scalar_config=scalar_cfg))
        joblist.append(
            Job("vector", name, n, memory_config=scalar_cfg.memory)
        )
    results = run_jobs(joblist, workers=jobs, cache_dir=cache_dir)
    for name, sma, scalar, vector in zip(
        kernels, results[::3], results[1::3], results[2::3]
    ):
        if vector["vectorized"]:
            vectorized = "yes"
            vcycles = vector["cycles"]
        else:
            # conventional fallback: the loop runs on the scalar unit
            vectorized = vector["reason"].split(": ", 1)[-1][:34]
            vcycles = scalar["cycles"]
        t.add_row(
            name, vectorized, vcycles, sma["cycles"], scalar["cycles"],
            vcycles / sma["cycles"],
        )
    t.note("non-vectorizable loops fall back to the scalar unit "
           "(vector_cycles = scalar_cycles)")
    t.note("vector results are verified word-exact when vectorized")
    return t


# ---------------------------------------------------------------------------
# R-F1: latency sweep
# ---------------------------------------------------------------------------


def fig1_latency(
    n: int = 256,
    latencies: Sequence[int] = (1, 2, 4, 8, 16, 32),
    kernels: Sequence[str] = LATENCY_REPS,
    jobs: int = 1, cache_dir: str | None = None,
    backend: str = "scalar", batch_workers: int = 1,
) -> Table:
    """Speedup vs memory latency: the decoupled machine's latency
    tolerance is the paper's central claim — speedup *grows* with latency
    for streaming kernels, and saturates for recurrences."""
    t = Table(
        "R-F1",
        f"Speedup vs memory latency (n={n})",
        ("latency", *kernels),
    )
    joblist = []
    for latency in latencies:
        sma_cfg, scalar_cfg = _configs(latency=latency)
        for name in kernels:
            joblist.append(
                Job("sma", name, n, sma_config=sma_cfg, check=True)
            )
            joblist.append(
                Job("scalar", name, n, scalar_config=scalar_cfg, check=True)
            )
    results = run_jobs(
        joblist, workers=jobs, cache_dir=cache_dir, backend=backend,
        batch_workers=batch_workers,
    )
    stride = 2 * len(kernels)  # jobs per latency point
    for i, latency in enumerate(latencies):
        point = results[i * stride:(i + 1) * stride]
        row: list = [latency]
        for sma, scalar in zip(point[::2], point[1::2]):
            row.append(scalar["cycles"] / sma["cycles"])
        t.add_row(*row)
    t.note("bank_busy tracks latency/2; 8 banks")
    return t


# ---------------------------------------------------------------------------
# R-F2: queue depth sweep
# ---------------------------------------------------------------------------


def fig2_queue_depth(
    n: int = 256,
    depths: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    kernels: Sequence[str] = STREAMING_REPS,
    latency: int = 8,
    jobs: int = 1, cache_dir: str | None = None,
    backend: str = "scalar", batch_workers: int = 1,
) -> Table:
    """SMA cycles vs architectural queue depth: a handful of entries
    (≈ memory latency) buys nearly all of the decoupling."""
    t = Table(
        "R-F2",
        f"SMA cycles vs queue depth (n={n}, latency={latency})",
        ("depth", *kernels),
    )
    joblist = []
    for depth in depths:
        sma_cfg, _ = _configs(latency=latency, queue_depth=depth)
        for name in kernels:
            joblist.append(Job("sma", name, n, sma_config=sma_cfg))
    results = run_jobs(
        joblist, workers=jobs, cache_dir=cache_dir, backend=backend,
        batch_workers=batch_workers,
    )
    width = len(kernels)
    for i, depth in enumerate(depths):
        point = results[i * width:(i + 1) * width]
        t.add_row(depth, *[r["cycles"] for r in point])
    return t


# ---------------------------------------------------------------------------
# R-F3: slip
# ---------------------------------------------------------------------------


def fig3_slip(
    n: int = 256, jobs: int = 1, cache_dir: str | None = None
) -> Table:
    """Achieved run-ahead (mean outstanding loads) per kernel — how far
    the access processor actually gets ahead of execution."""
    t = Table(
        "R-F3",
        f"Access run-ahead per kernel (n={n})",
        ("kernel", "category", "mean_outstanding", "max_outstanding",
         "ep_empty_stall_frac"),
    )
    sma_cfg, _ = _configs()
    specs = all_kernels()
    joblist = [Job("sma", spec.name, n, sma_config=sma_cfg) for spec in specs]
    results = run_jobs(joblist, workers=jobs, cache_dir=cache_dir)
    for spec, res in zip(specs, results):
        empty = res["ep_stalls"].get("lq_empty", 0)
        t.add_row(
            spec.name,
            spec.category,
            res["mean_outstanding_loads"],
            res["max_outstanding_loads"],
            empty / res["cycles"],
        )
    return t


# ---------------------------------------------------------------------------
# R-F4: memory banks
# ---------------------------------------------------------------------------


def fig4_banks(
    n: int = 256,
    banks: Sequence[int] = (1, 2, 4, 8, 16),
    kernels: Sequence[str] = BANK_REPS,
    latency: int = 8,
    jobs: int = 1, cache_dir: str | None = None,
    backend: str = "scalar", batch_workers: int = 1,
) -> Table:
    """Words per cycle vs interleaving degree, for strides 1/2/5/8: the
    stride-vs-banks aliasing structure is the classic interleave result."""
    t = Table(
        "R-F4",
        f"Memory words/cycle vs banks (n={n}, latency={latency})",
        ("banks", *kernels),
    )
    joblist = []
    for nb in banks:
        sma_cfg, _ = _configs(latency=latency, banks=nb)
        for name in kernels:
            joblist.append(Job("sma", name, n, sma_config=sma_cfg))
    results = run_jobs(
        joblist, workers=jobs, cache_dir=cache_dir, backend=backend,
        batch_workers=batch_workers,
    )
    width = len(kernels)
    for i, nb in enumerate(banks):
        point = results[i * width:(i + 1) * width]
        t.add_row(
            nb,
            *[
                (r["memory_reads"] + r["memory_writes"]) / r["cycles"]
                for r in point
            ],
        )
    t.note("daxpy stride 1, saxpy_strided 2, strided_dot 5, stride8_copy 8")
    return t


# ---------------------------------------------------------------------------
# R-F5: descriptor ablation
# ---------------------------------------------------------------------------


def fig5_ablation(
    n: int = 256, kernels: Sequence[str] = ABLATION_REPS,
    jobs: int = 1, cache_dir: str | None = None,
    backend: str = "scalar", batch_workers: int = 1,
) -> Table:
    """Structured descriptors ON vs OFF (per-element DAE): the access
    processor's instruction bandwidth becomes the bottleneck without
    whole-stream descriptors."""
    t = Table(
        "R-F5",
        f"Structured descriptors vs per-element access (n={n})",
        ("kernel", "sma_cycles", "per_element_cycles", "benefit",
         "ap_instr_stream", "ap_instr_elem"),
    )
    sma_cfg, _ = _configs()
    joblist = []
    for name in kernels:
        joblist.append(Job("sma", name, n, sma_config=sma_cfg))
        joblist.append(Job("sma-nostream", name, n, sma_config=sma_cfg))
    results = run_jobs(
        joblist, workers=jobs, cache_dir=cache_dir, backend=backend,
        batch_workers=batch_workers,
    )
    for name, stream, elem in zip(kernels, results[::2], results[1::2]):
        t.add_row(
            name,
            stream["cycles"],
            elem["cycles"],
            elem["cycles"] / stream["cycles"],
            stream["ap_instructions"],
            elem["ap_instructions"],
        )
    t.note("both modes run the identical execute program")
    return t


# ---------------------------------------------------------------------------
# R-F6: occupancy time series
# ---------------------------------------------------------------------------


def fig6_occupancy(
    kernel_name: str = "hydro", n: int = 512, buckets: int = 32,
    jobs: int = 1, cache_dir: str | None = None,
) -> Table:
    """Load/store queue occupancy over a run — the decoupling 'profile':
    load queues fill within one memory latency of start and stay near
    capacity until the stream tail drains."""
    sma_cfg, _ = _configs()
    [res] = run_jobs(
        [
            Job(
                "sma-occupancy", kernel_name, n,
                sma_config=sma_cfg, buckets=buckets,
            )
        ],
        workers=jobs, cache_dir=cache_dir,
    )
    t = Table(
        "R-F6",
        f"Queue occupancy over time ({kernel_name}, n={n})",
        ("cycle", "load_occupancy", "store_occupancy"),
    )
    load_pts = {cycle: occ for cycle, occ in res["load"]}
    store_pts = {cycle: occ for cycle, occ in res["store"]}
    for cycle in sorted(load_pts):
        t.add_row(cycle, load_pts[cycle], store_pts.get(cycle, 0.0))
    return t


# ---------------------------------------------------------------------------
# R-F7: memory-port bandwidth ablation (extension)
# ---------------------------------------------------------------------------


def fig7_ports(
    n: int = 256,
    ports: Sequence[int] = (1, 2, 4),
    kernels: Sequence[str] = ("daxpy", "hydro", "state_eqn"),
    jobs: int = 1, cache_dir: str | None = None,
) -> Table:
    """Design ablation: does a *single* SMA node need a wider memory port
    (and a faster stream engine)?

    Finding committed by this experiment: **no** — at the reference
    configuration the node is execute-bound (the single-issue EP consumes
    ~one operand per ALU instruction), so memory throughput stays flat as
    port width and stream-engine issue bandwidth scale together, and the
    EP's share of non-stalled cycles stays pinned near 1.  This is the
    design justification for the single-ported memory of the base machine
    — and the reason ports only start to matter when several nodes share
    the memory (experiment R-F8).
    """
    t = Table(
        "R-F7",
        f"SMA memory words/cycle vs port width (n={n})",
        ("ports", *kernels, "ep_busy_daxpy"),
    )
    joblist = []
    for width in ports:
        mem = replace(_memory(8), accepts_per_cycle=width)
        cfg = SMAConfig(
            memory=mem, queues=QueueConfig(), stream_issue_per_cycle=width
        )
        for name in kernels:
            joblist.append(Job("sma", name, n, sma_config=cfg))
    results = run_jobs(joblist, workers=jobs, cache_dir=cache_dir)
    stride = len(kernels)
    for i, width in enumerate(ports):
        point = results[i * stride:(i + 1) * stride]
        row: list = [width]
        ep_busy = 0.0
        for name, res in zip(kernels, point):
            row.append(
                (res["memory_reads"] + res["memory_writes"]) / res["cycles"]
            )
            if name == "daxpy":
                ep_busy = 1.0 - res["ep_total_stalls"] / res["cycles"]
        row.append(ep_busy)
        t.add_row(*row)
    t.note("port width and stream-engine issue bandwidth swept together")
    t.note("flat = the single-issue EP, not the port, is the constraint")
    return t


# ---------------------------------------------------------------------------
# R-F8: multiprocessor interference (future-work extension)
# ---------------------------------------------------------------------------


def fig8_multiprocessor(
    n: int = 192,
    node_counts: Sequence[int] = (1, 2, 4, 8),
    ports: Sequence[int] = (1, 2, 4),
    kernel: str = "daxpy",
    jobs: int = 1, cache_dir: str | None = None,
) -> Table:
    """Future-work extension: N identical SMA nodes sharing one banked
    memory.  Reports the mean per-node slowdown versus running alone.

    Expected shape: with one memory port, slowdown tracks the node count
    (pure bandwidth division); widening the port restores most of the
    standalone performance until bank busy time becomes the ceiling.
    Results remain word-exact under contention — interference changes
    only timing, never values.
    """
    t = Table(
        "R-F8",
        f"Mean node slowdown vs shared-memory ports ({kernel}, n={n})",
        ("nodes", *[f"ports{p}" for p in ports]),
    )
    joblist = []
    for count in node_counts:
        for width in ports:
            mem = replace(
                _memory(8), num_banks=16, accepts_per_cycle=width
            )
            cfg = SMAConfig(memory=mem, queues=QueueConfig())
            joblist.append(
                Job("cluster", kernel, n, sma_config=cfg, check=True,
                    nodes=count)
            )
    results = run_jobs(joblist, workers=jobs, cache_dir=cache_dir)
    width = len(ports)
    for i, count in enumerate(node_counts):
        point = results[i * width:(i + 1) * width]
        t.add_row(count, *[r["mean_slowdown"] for r in point])
    t.note("16 banks; every node verified word-exact under contention")
    return t


# ---------------------------------------------------------------------------
# R-T7 / R-F9: speculative AP mode (extension)
# ---------------------------------------------------------------------------

#: (kernel, lod_variant) pairs lowered into deliberately LOD-collapsed
#: shapes: every gather index (``addr``) or loop back-edge (``branch``)
#: round-trips through the EP, so the AP runs at the EP's speed and the
#: decoupled speedup vanishes — the workloads speculation targets.
SPECULATION_REPS = (("pic_gather", "addr"), ("tridiag", "branch"))
SPEC_ACCURACIES = (0.0, 0.25, 0.5, 0.75, 1.0)
SPEC_LATENCY = 16
SPEC_DEPTH = 16


def _spec_sma(speculation: SpeculationConfig | None) -> SMAConfig:
    return SMAConfig(memory=_memory(SPEC_LATENCY), speculation=speculation)


def table7_speculation(
    n: int = 256, reps: Sequence[tuple[str, str]] = SPECULATION_REPS,
    accuracies: Sequence[float] = SPEC_ACCURACIES,
    jobs: int = 1, cache_dir: str | None = None,
) -> Table:
    """Extension: recovering LOD-collapsed speedup with a speculative AP.

    On the ``addr``/``branch`` lowerings the AP stalls on EAQ/EBQ every
    element; a value predictor lets it run ahead, rolling back on a
    misprediction.  Accuracy 0.0 disables the predictor entirely (the
    non-speculative baseline, bit-identical to no speculation config);
    accuracy 1.0 always predicts correctly.  Expected shape: cycles fall
    monotonically with accuracy, and at 1.0 nearly all ``lod_*`` stall
    cycles are gone (residue is commit/penalty bookkeeping).  Every run
    is verified word-exact against the reference interpreter — rollback
    changes timing, never values.
    """
    t = Table(
        "R-T7",
        f"Speculative AP vs prediction accuracy "
        f"(n={n}, latency={SPEC_LATENCY}, depth={SPEC_DEPTH})",
        ("kernel", "variant", "accuracy", "cycles", "lod_stall_cycles",
         "misspec_stalls", "rollbacks", "recovered_speedup"),
    )
    joblist = [
        Job("sma", name, n, lod_variant=variant, check=True,
            sma_config=_spec_sma(
                SpeculationConfig(accuracy=acc, max_depth=SPEC_DEPTH)))
        for name, variant in reps for acc in accuracies
    ]
    results = run_jobs(joblist, workers=jobs, cache_dir=cache_dir)
    stride = len(accuracies)
    for i, (name, variant) in enumerate(reps):
        rows = results[i * stride:(i + 1) * stride]
        base = rows[0]  # accuracy grid starts at the 0.0 baseline
        for acc, row in zip(accuracies, rows):
            spec = row.get("speculation") or {}
            t.add_row(
                name, variant, acc, row["cycles"],
                row["lod_stall_cycles"],
                row["ap_stalls"].get("misspeculation", 0),
                spec.get("rollbacks", 0),
                base["cycles"] / row["cycles"],
            )
    t.note("accuracy 0.0 = speculation disabled (the baseline row)")
    t.note("all rows word-exact vs the reference interpreter")
    return t


SPEC_DEPTHS = (1, 2, 4, 8, 16)


def fig9_spec_depth(
    n: int = 256, reps: Sequence[tuple[str, str]] = SPECULATION_REPS,
    depths: Sequence[int] = SPEC_DEPTHS,
    jobs: int = 1, cache_dir: str | None = None,
) -> Table:
    """Extension: how much run-ahead does recovery need?  Perfect
    predictor, sweeping the maximum number of unresolved predictions the
    AP may hold.  Expected shape: cycles fall as depth grows until the
    depth covers the memory round-trip (``latency/ap-iteration-length``
    predictions in flight), then flatten; ``depth_refusals`` counts the
    cycles-worth of predictions the cap denied.
    """
    t = Table(
        "R-F9",
        f"Speculation depth sweep "
        f"(n={n}, perfect predictor, latency={SPEC_LATENCY})",
        ("kernel", "variant", "depth", "cycles", "lod_stall_cycles",
         "depth_refusals", "max_depth_seen", "recovered_speedup"),
    )
    joblist = []
    for name, variant in reps:
        joblist.append(
            Job("sma", name, n, lod_variant=variant, check=True,
                sma_config=_spec_sma(None))
        )
        for depth in depths:
            joblist.append(
                Job("sma", name, n, lod_variant=variant, check=True,
                    sma_config=_spec_sma(
                        SpeculationConfig(mode="perfect", max_depth=depth)))
            )
    results = run_jobs(joblist, workers=jobs, cache_dir=cache_dir)
    stride = len(depths) + 1
    for i, (name, variant) in enumerate(reps):
        base, *rows = results[i * stride:(i + 1) * stride]
        for depth, row in zip(depths, rows):
            spec = row.get("speculation") or {}
            t.add_row(
                name, variant, depth, row["cycles"],
                row["lod_stall_cycles"],
                spec.get("depth_refusals", 0),
                spec.get("max_depth", 0),
                base["cycles"] / row["cycles"],
            )
    t.note("first column block's baseline: same lowering, no speculation")
    return t


# ---------------------------------------------------------------------------

EXPERIMENTS: dict[str, Callable[..., Table]] = {
    "R-T1": table1_mix,
    "R-T2": table2_speedup,
    "R-T3": table3_cache,
    "R-T4": table4_lod,
    "R-T5": table5_prefetch,
    "R-T6": table6_vector,
    "R-T7": table7_speculation,
    "R-F1": fig1_latency,
    "R-F2": fig2_queue_depth,
    "R-F3": fig3_slip,
    "R-F4": fig4_banks,
    "R-F5": fig5_ablation,
    "R-F6": fig6_occupancy,
    "R-F7": fig7_ports,
    "R-F8": fig8_multiprocessor,
    "R-F9": fig9_spec_depth,
}


def run_experiment(experiment_id: str, **kwargs) -> Table:
    """Run one experiment by its DESIGN.md identifier."""
    try:
        fn = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {sorted(EXPERIMENTS)}"
        ) from None
    return fn(**kwargs)
