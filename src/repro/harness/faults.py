"""Fault injection for the sweep harness.

CI proves the harness's recovery paths by *injecting* the failures they
recover from.  A :class:`FaultSpec` names one failure mode:

``worker-kill``
    The next job to start SIGKILLs its own process — a crashed pool
    worker (``BrokenProcessPool``) under ``--jobs N``, or a killed
    driver in serial mode.
``cache-corrupt``
    The next flushed cache entry is truncated mid-JSON after it lands,
    modelling a crash between ``write`` and ``fsync`` on a filesystem
    that tears the write.  A later sweep must quarantine it, not crash.
``mem-error:p``
    Every SMA job's memory is wrapped in
    :class:`repro.memory.banks.FaultyMemory` with transient-reject
    probability ``p`` — timing-only perturbation, results unchanged.
``driver-kill:k``
    SIGKILL the sweep driver after ``k`` cache flushes — the
    kill-resume scenario (``--resume`` must finish with only the
    unflushed jobs re-executed).
``sleep:s``
    The next job to start sleeps ``s`` seconds first, for exercising
    the per-job timeout path deterministically.

One-shot modes (everything except ``mem-error``) fire exactly once per
sweep.  Across a process pool "once" needs shared state, so a spec may
carry a ``token_path``: the first process to create the token file with
``O_CREAT | O_EXCL`` wins and fires, everyone else skips.  Without a
token path the mode fires once per process.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, replace
from typing import Optional, Sequence

from ..config import FaultConfig, SMAConfig
from ..memory.banks import FaultyMemory  # re-export for harness users

__all__ = [
    "MODES",
    "FaultSpec",
    "FaultyMemory",
    "active",
    "after_flush",
    "apply_to_jobs",
    "before_job",
    "install",
]

#: recognized fault modes (``mem-error``, ``driver-kill`` and ``sleep``
#: take a ``:value`` argument)
MODES = ("worker-kill", "cache-corrupt", "mem-error", "driver-kill", "sleep")


@dataclass(frozen=True)
class FaultSpec:
    """One parsed ``--inject-fault`` request."""

    mode: str
    value: float = 0.0
    #: shared once-only token file (see module docstring); created with
    #: ``O_CREAT | O_EXCL`` by whichever process fires the fault first.
    token_path: str | None = None

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(
                f"unknown fault mode {self.mode!r}; known: "
                + ", ".join(MODES)
            )

    @classmethod
    def parse(cls, text: str, token_path: str | None = None) -> "FaultSpec":
        """Parse CLI syntax: ``mode`` or ``mode:value``."""
        mode, _, arg = text.partition(":")
        if mode not in MODES:
            raise ValueError(
                f"unknown fault mode {mode!r}; known: {', '.join(MODES)}"
            )
        value = float(arg) if arg else 0.0
        if mode == "mem-error" and not 0.0 <= value < 1.0:
            raise ValueError("mem-error probability must be in [0, 1)")
        return cls(mode, value, token_path)


#: the fault spec active in *this* process; pool workers get it via the
#: executor initializer, the serial path installs it around the loop.
_ACTIVE: Optional[FaultSpec] = None

#: process-local once-only memory for specs without a token file
_fired: set[str] = set()


def install(spec: Optional[FaultSpec]) -> Optional[FaultSpec]:
    """Set the process-wide active fault spec; returns the previous one.
    Used directly as a ``ProcessPoolExecutor`` initializer."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = spec
    return previous


def active() -> Optional[FaultSpec]:
    return _ACTIVE


def _claim(spec: FaultSpec) -> bool:
    """True exactly once per sweep (token file) or per process."""
    if spec.token_path:
        try:
            fd = os.open(
                spec.token_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            return False
        os.close(fd)
        return True
    if spec.mode in _fired:
        return False
    _fired.add(spec.mode)
    return True


def before_job(job) -> None:
    """Hook called by :func:`repro.harness.jobs.run_job` as each job
    starts, in whichever process runs it."""
    spec = _ACTIVE
    if spec is None:
        return
    if spec.mode == "worker-kill":
        if _claim(spec):
            os.kill(os.getpid(), signal.SIGKILL)
    elif spec.mode == "sleep":
        if _claim(spec):
            time.sleep(spec.value)


def apply_to_jobs(jobs: Sequence, spec: FaultSpec) -> list:
    """``mem-error`` rewrites every SMA-machine job to carry a
    :class:`FaultConfig` (seeded per job, so fault patterns are
    reproducible and distinct).  The rewritten config changes the job's
    ``repr`` and therefore its cache key — faulty results can never be
    served for fault-free sweeps or vice versa."""
    if spec.mode != "mem-error":
        return list(jobs)
    out = []
    for job in jobs:
        if job.machine in ("sma", "sma-nostream", "cluster"):
            base = job.sma_config or SMAConfig()
            faulted = replace(
                base,
                faults=FaultConfig(reject_prob=spec.value, seed=job.seed),
            )
            job = replace(job, sma_config=faulted)
        out.append(job)
    return out


def after_flush(spec: Optional[FaultSpec], path, flushed: int) -> None:
    """Hook called by the sweep driver after each cache flush."""
    if spec is None:
        return
    if spec.mode == "driver-kill":
        threshold = int(spec.value) if spec.value else 1
        if flushed >= threshold and _claim(spec):
            os.kill(os.getpid(), signal.SIGKILL)
    elif spec.mode == "cache-corrupt":
        if _claim(spec):
            text = path.read_text()
            path.write_text(text[: max(1, len(text) // 2)])
