"""Declarative simulation jobs: the unit of work of the sweep harness.

Every experiment in :mod:`repro.harness.experiments` is expressed as a
list of :class:`Job` descriptions — *(kernel, machine, configuration)*
triples — that :func:`run_job` turns into a flat, JSON-serializable
``dict`` of measurements.  Keeping the job picklable and the result plain
lets :mod:`repro.harness.parallel` fan jobs out over a process pool and
cache results on disk, while the experiments stay pure table assembly.

Compilation is memoized per process: a sweep that runs the same kernel at
ten latencies lowers it once (``lower_sma``/``lower_scalar``), instantiates
its input arrays once, and computes its reference outputs once.
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass, fields, is_dataclass
from functools import lru_cache

import numpy as np

from ..config import MemoryConfig, QueueConfig, ScalarConfig, SMAConfig
from ..kernels import get_kernel, lower_scalar, lower_sma, run_reference

#: machine kinds a job can target
MACHINES = (
    "sma",
    "sma-nostream",
    "scalar",
    "vector",
    "cluster",
    "sma-occupancy",
)


def _canonical(value):
    """Convert numpy scalars (and anything nested inside frozen config
    dataclasses or tuples) to their builtin equivalents.

    ``repr(np.int64(256))`` is ``"np.int64(256)"``, not ``"256"``, so a
    grid built from ``np.arange`` used to produce cache keys that never
    matched the same sweep written with literals.  Canonicalizing at job
    construction makes ``repr(job)`` — and therefore
    :func:`repro.harness.parallel.job_key` — independent of the numeric
    types the caller happened to use.
    """
    if value is None or isinstance(value, (str, bytes, bool)):
        return value
    if is_dataclass(value) and not isinstance(value, type):
        converted = {
            f.name: _canonical(getattr(value, f.name))
            for f in fields(value)
        }
        if all(
            converted[f.name] is getattr(value, f.name)
            for f in fields(value)
        ):
            return value
        return value.__class__(**converted)
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, numbers.Real):
        return float(value)
    if isinstance(value, tuple):
        return tuple(_canonical(v) for v in value)
    return value


@dataclass(frozen=True)
class Job:
    """One simulation to run.

    Frozen and built from frozen config dataclasses, so a job is hashable,
    picklable (for the process pool) and has a stable ``repr`` (for the
    on-disk result cache key).  Field values are canonicalized to builtin
    types on construction so the repr does not depend on whether a sweep
    passed ``256`` or ``np.int64(256)``.
    """

    machine: str
    kernel: str
    n: int | None = None
    seed: int = 12345
    sma_config: SMAConfig | None = None
    scalar_config: ScalarConfig | None = None
    memory_config: MemoryConfig | None = None  # vector jobs
    #: verify outputs word-exact against the reference interpreter
    check: bool = False
    #: number of identical nodes (cluster jobs)
    nodes: int = 1
    #: time-series resolution (occupancy jobs)
    buckets: int = 32
    #: LOD-heavy lowering shape (SMA jobs): None, "addr" or "branch"
    #: (see :func:`repro.kernels.lower_sma.lower_sma`)
    lod_variant: str | None = None

    def __post_init__(self):
        for f in fields(self):
            value = getattr(self, f.name)
            canonical = _canonical(value)
            if canonical is not value:
                object.__setattr__(self, f.name, canonical)
        if self.machine not in MACHINES:
            raise ValueError(
                f"unknown job machine {self.machine!r}; known: {MACHINES}"
            )
        if self.lod_variant is not None and self.lod_variant not in (
            "addr", "branch"
        ):
            raise ValueError(
                f"unknown lod_variant {self.lod_variant!r}; "
                f"expected 'addr' or 'branch'"
            )


#: machine kinds the batch engine can execute
BATCH_MACHINES = ("sma", "sma-nostream")


@dataclass(frozen=True)
class BatchJob:
    """A dense (latency × queue-depth × bank-count) sweep of one kernel,
    destined for the SoA batch engine.

    :meth:`expand` turns the grid into ordinary :class:`Job` rows using
    the experiments' configuration convention (``bank_busy =
    max(1, latency // 2)``; the four main queue depths swept together,
    EP→AP queues at their defaults), so the expansion can run through any
    backend — every grid point is a first-class cacheable job.
    """

    kernel: str
    n: int | None = None
    seed: int = 12345
    machine: str = "sma"
    latencies: tuple[int, ...] = (8,)
    queue_depths: tuple[int, ...] = (8,)
    bank_counts: tuple[int, ...] = (8,)
    check: bool = False

    def __post_init__(self):
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, (list, tuple, np.ndarray)):
                value = tuple(value)
            canonical = _canonical(value)
            if canonical is not value:
                object.__setattr__(self, f.name, canonical)
        if self.machine not in BATCH_MACHINES:
            raise ValueError(
                f"batch jobs target {BATCH_MACHINES}, "
                f"not {self.machine!r}"
            )
        for name in ("latencies", "queue_depths", "bank_counts"):
            if not getattr(self, name):
                raise ValueError(f"batch job {name} must be non-empty")

    def expand(self) -> list[Job]:
        """One :class:`Job` per grid point, latency-major order."""
        out = []
        for latency in self.latencies:
            for depth in self.queue_depths:
                for banks in self.bank_counts:
                    cfg = SMAConfig(
                        memory=MemoryConfig(
                            latency=latency,
                            bank_busy=max(1, latency // 2),
                            num_banks=banks,
                        ),
                        queues=QueueConfig(
                            load_queue_depth=depth,
                            store_data_depth=depth,
                            store_addr_depth=depth,
                            index_queue_depth=depth,
                        ),
                    )
                    out.append(
                        Job(
                            self.machine, self.kernel, self.n, self.seed,
                            sma_config=cfg, check=self.check,
                        )
                    )
        return out


# -- per-process memoization -------------------------------------------------
#
# Worker processes inherit empty caches; within one worker (or the serial
# path) every (kernel, n, seed) is instantiated, lowered and reference-run
# at most once no matter how many sweep points reuse it.


@lru_cache(maxsize=None)
def _instantiated(name: str, n: int | None, seed: int):
    return get_kernel(name).instantiate(n, seed)


@lru_cache(maxsize=None)
def _lowered_sma(name: str, n: int | None, seed: int, use_streams: bool,
                 lod_variant: str | None = None):
    kernel, _ = _instantiated(name, n, seed)
    return lower_sma(kernel, use_streams=use_streams,
                     lod_variant=lod_variant)


@lru_cache(maxsize=None)
def _lowered_scalar(name: str, n: int | None, seed: int):
    kernel, _ = _instantiated(name, n, seed)
    return lower_scalar(kernel)


@lru_cache(maxsize=None)
def _reference(name: str, n: int | None, seed: int):
    kernel, inputs = _instantiated(name, n, seed)
    return run_reference(kernel, inputs)


def _check_outputs(job: Job, machine: str, outputs) -> None:
    golden = _reference(job.kernel, job.n, job.seed)
    for name, want in golden.items():
        got = outputs[name]
        if not np.array_equal(got, want):
            bad = int(np.flatnonzero(got != want)[0])
            raise AssertionError(
                f"{job.kernel}: {machine} diverges from the "
                f"reference in array {name!r} at index {bad}: "
                f"{got[bad]!r} != {want[bad]!r}"
            )


# -- job execution -----------------------------------------------------------


def _capture(job: Job, run) -> dict:
    """Route the run's RunReport into the ambient capture (if armed) and
    return the extra result keys the capture adds to the job dict."""
    if run.report is None:
        return {}
    from ..metrics.capture import active_capture

    collector = active_capture()
    if collector is None:  # pragma: no cover - guarded by caller
        return {}
    run.report.n = job.n
    collector.add(run.report)
    return {"stall_breakdown": dict(run.report.stall_breakdown)}


def _metrics_armed() -> bool:
    from ..metrics.capture import active_capture

    return active_capture() is not None


def _run_sma(job: Job, use_streams: bool) -> dict:
    from .runner import run_on_sma

    kernel, inputs = _instantiated(job.kernel, job.n, job.seed)
    lowered = _lowered_sma(job.kernel, job.n, job.seed, use_streams,
                           job.lod_variant)
    run = run_on_sma(
        kernel, inputs, job.sma_config, use_streams=use_streams,
        lowered=lowered, metrics=_metrics_armed(),
    )
    return sma_result_dict(job, run, lowered.info)


def sma_result_dict(job: Job, run, info) -> dict:
    """Assemble the flat SMA result dict from a finished
    :class:`~repro.harness.runner.KernelRun`.

    Shared between :func:`_run_sma` and the service's sliced executor
    (:mod:`repro.service.slices`), which finishes a checkpoint-migrated
    run and must produce a byte-identical dict.
    """
    if job.check:
        _check_outputs(job, run.machine, run.outputs)
    res = run.result
    spec = {"speculation": res.speculation} if res.speculation else {}
    return {
        **spec,
        **_capture(job, run),
        "cycles": res.cycles,
        "ap_instructions": res.ap.instructions,
        "ep_instructions": res.ep.instructions,
        "ap_stalls": dict(res.ap.stall_cycles),
        "ep_stalls": dict(res.ep.stall_cycles),
        "ep_total_stalls": res.ep.total_stalls(),
        "mean_outstanding_loads": res.mean_outstanding_loads,
        "max_outstanding_loads": res.max_outstanding_loads,
        "lod_events": res.lod_events,
        "lod_stall_cycles": res.lod_stall_cycles,
        "memory_reads": res.memory_reads,
        "memory_writes": res.memory_writes,
        "load_streams": info.load_streams,
        "store_streams": info.store_streams,
        "gather_streams": info.gather_streams,
        "scatter_streams": info.scatter_streams,
        "carried_refs": info.carried_refs,
        "computed_refs": info.computed_refs,
    }


def _run_scalar(job: Job) -> dict:
    from .runner import run_on_scalar

    kernel, inputs = _instantiated(job.kernel, job.n, job.seed)
    cfg = job.scalar_config or ScalarConfig()
    run = run_on_scalar(
        kernel, inputs, cfg,
        lowered=_lowered_scalar(job.kernel, job.n, job.seed),
        metrics=_metrics_armed(),
    )
    if job.check:
        _check_outputs(job, run.machine, run.outputs)
    res = run.result
    out = {
        **_capture(job, run),
        "cycles": res.cycles,
        "instructions": res.instructions,
        "loads": res.loads,
        "stores": res.stores,
        "memory_stall_cycles": res.memory_stall_cycles,
        "bank_conflict_waits": res.bank_conflict_waits,
    }
    if res.cache is not None:
        out["cache_hit_rate"] = res.cache.hit_rate
        if hasattr(res.cache, "coverage"):
            out["cache_coverage"] = res.cache.coverage
        if hasattr(res.cache, "prefetch_accuracy"):
            out["cache_accuracy"] = res.cache.prefetch_accuracy
    return out


def _run_vector(job: Job) -> dict:
    from ..kernels.lower_vector import VectorizationError
    from .runner import run_on_vector

    kernel, inputs = _instantiated(job.kernel, job.n, job.seed)
    try:
        run = run_on_vector(kernel, inputs, job.memory_config)
    except VectorizationError as exc:
        return {"vectorized": False, "reason": str(exc)}
    if job.check:
        _check_outputs(job, "vector", run.outputs)
    return {"vectorized": True, "cycles": run.cycles}


def cluster_workloads(job: Job) -> list:
    """The per-node (kernel, inputs) list a cluster job simulates.

    Per-node seeds derive from the job seed: node j gets seed
    ``job.seed + j``, so jobs differing only in seed measure different
    inputs (they used to be hard-coded to 100 + j, which silently
    returned identical results under distinct cache keys).
    """
    spec = get_kernel(job.kernel)
    return [
        spec.instantiate(job.n, job.seed + j) for j in range(job.nodes)
    ]


def _run_cluster(job: Job) -> dict:
    from .runner import run_cluster

    workloads = cluster_workloads(job)
    metrics = _metrics_armed()
    result = run_cluster(
        workloads, job.sma_config, check=job.check, metrics=metrics
    )
    return cluster_result_dict(job, result, metrics)


def cluster_result_dict(job: Job, result, metrics: bool = False) -> dict:
    """Assemble the flat cluster result dict from a finished
    :class:`~repro.harness.runner.ClusterKernelRun` (shared with the
    service's sliced executor)."""
    slowdowns = result.interference_slowdowns
    out = {
        "cluster_cycles": result.cluster_cycles,
        "node_cycles": list(result.node_cycles),
        "standalone_cycles": list(result.standalone_cycles),
        "bank_conflicts": result.bank_conflicts,
        "port_rejects": result.port_rejects,
        "memory_utilization": result.memory_utilization,
        "mean_slowdown": sum(slowdowns) / len(slowdowns),
    }
    if metrics and result.reports:
        from ..metrics.capture import active_capture

        collector = active_capture()
        for report in result.reports:
            report.n = job.n
            collector.add(report)
        out["stall_breakdowns"] = [
            dict(report.stall_breakdown) for report in result.reports
        ]
        out["contention"] = dict(result.contention)
    return out


def _run_occupancy(job: Job) -> dict:
    from dataclasses import replace

    from ..core import SMAMachine
    from ..trace import QueueOccupancySampler
    from .runner import _fit_memory, _load_inputs

    kernel, inputs = _instantiated(job.kernel, job.n, job.seed)
    # the lowering must honor job.lod_variant: the cache key includes the
    # field via repr(job), so simulating the plain lowering here would
    # serve a wrong result under a correct-looking key
    lowered = _lowered_sma(job.kernel, job.n, job.seed, True,
                           job.lod_variant)
    cfg = job.sma_config or SMAConfig()
    cfg = replace(cfg, memory=_fit_memory(cfg.memory, lowered.layout))
    machine = SMAMachine(
        lowered.access_program, lowered.execute_program, cfg
    )
    _load_inputs(machine, lowered.layout, kernel, inputs)
    sampler = QueueOccupancySampler(stride=1)
    machine.run(observer=sampler)
    return {
        "cycles": machine.cycle,
        "load": [list(p) for p in sampler.load.bucketed(job.buckets)],
        "store": [list(p) for p in sampler.store.bucketed(job.buckets)],
    }


def run_job(job: Job) -> dict:
    """Execute one job; returns a flat JSON-serializable result dict."""
    from .faults import before_job

    before_job(job)
    if job.machine == "sma":
        return _run_sma(job, use_streams=True)
    if job.machine == "sma-nostream":
        return _run_sma(job, use_streams=False)
    if job.machine == "scalar":
        return _run_scalar(job)
    if job.machine == "vector":
        return _run_vector(job)
    if job.machine == "cluster":
        return _run_cluster(job)
    if job.machine == "sma-occupancy":
        return _run_occupancy(job)
    raise ValueError(f"unknown job machine {job.machine!r}")
