"""Fault-tolerant job fan-out and result caching for the sweep harness.

:func:`run_jobs` is the one entry point: it takes the declarative job
list an experiment built, optionally consults an on-disk result cache,
runs the remaining jobs either serially (the default — deterministic and
dependency-free, what CI uses) or across a :class:`concurrent.futures.
ProcessPoolExecutor`, and returns results in job order.

The cache key binds each result to the *code* as well as the job: a
sha256 over every ``src/repro`` Python source (:func:`code_fingerprint`)
is mixed into the key, so editing the simulator silently invalidates
stale entries instead of serving them.

Crash safety (PR 5):

* **Atomic flushes.**  Each entry is written to a temp file in the cache
  directory and ``os.replace``d into place — a kill mid-write can never
  leave a truncated entry under the real key.
* **Corruption quarantine.**  A cache probe that finds undecodable JSON
  (torn write from an older harness, disk fault) treats it as a miss,
  moves the file aside to ``<key>.json.corrupt`` and logs it, instead of
  crashing the sweep.
* **Incremental flushes.**  Results are flushed as each job lands — in
  the pool path via completed-future consumption, not a barrier after
  ``pool.map`` — so a crashed worker or killed driver loses only the
  jobs still in flight; a ``--resume`` rerun skips everything flushed.
* **Timeout / retry / respawn.**  A :class:`HarnessPolicy` adds a
  per-job timeout, bounded retries with exponential backoff, and
  ``BrokenProcessPool`` recovery that respawns the pool and requeues
  only unfinished jobs.  All default off (``retries=0``), preserving
  the seed harness's fail-fast behavior and cost.
* **Fault injection.**  ``policy.inject`` (a
  :class:`repro.harness.faults.FaultSpec`) arms the failure the CI
  smoke wants to prove recovery from; workers receive it through the
  pool initializer.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Optional, Sequence

from . import faults
from .faults import FaultSpec
from .jobs import Job, run_job

_SRC_ROOT = Path(__file__).resolve().parent.parent  # src/repro

_LOG = logging.getLogger("repro.harness")

#: how often the pool loop wakes to check per-job deadlines (seconds)
_DEADLINE_POLL = 0.1


class SweepError(RuntimeError):
    """A sweep could not complete within its retry budget."""


@dataclass
class SweepStats:
    """What a sweep did — surfaced by ``repro sweep`` and the tests."""

    hits: int = 0         #: results served from the cache
    executed: int = 0     #: jobs actually simulated
    flushed: int = 0      #: results written to the cache
    retried: int = 0      #: job re-executions (failure or timeout)
    respawns: int = 0     #: process pools rebuilt after a crash/timeout
    quarantined: int = 0  #: corrupt cache entries moved aside
    #: identical concurrent submissions folded onto one execution
    #: (service scheduler only; see :mod:`repro.service`)
    coalesced: int = 0
    #: submissions bounced by queue backpressure (service scheduler only)
    rejected: int = 0
    #: exception type name -> occurrences, across every charged failure
    #: (serial retries and pool retries/timeouts alike)
    failures: dict[str, int] = field(default_factory=dict)

    def record_failure(self, kind: str) -> None:
        self.failures[kind] = self.failures.get(kind, 0) + 1

    def summary(self) -> str:
        text = (
            f"{self.hits} cached, {self.executed} executed, "
            f"{self.flushed} flushed, {self.retried} retried, "
            f"{self.respawns} pool respawns, "
            f"{self.quarantined} quarantined"
        )
        if self.coalesced or self.rejected:
            text += (f", {self.coalesced} coalesced, "
                     f"{self.rejected} rejected")
        if self.failures:
            kinds = ", ".join(
                f"{name}×{count}"
                for name, count in sorted(self.failures.items())
            )
            text += f" (failures: {kinds})"
        return text


@dataclass(frozen=True)
class HarnessPolicy:
    """Sweep robustness knobs; the defaults reproduce the fail-fast
    seed behavior exactly (no timeout, no retry, no injection)."""

    #: per-job wall-clock timeout in seconds (pool mode only); ``None``
    #: waits forever.
    timeout: float | None = None
    #: how many times a failed or timed-out job is re-executed.
    retries: int = 0
    #: base of the exponential retry backoff (seconds); retry ``k`` of a
    #: job is held back ``backoff * 2**(k-1)`` before resubmission.  In
    #: pool mode the delay is a per-job not-before timestamp, never a
    #: sleep, so deadline polling keeps its cadence while a job backs
    #: off.
    backoff: float = 0.25
    #: fault to inject (see :mod:`repro.harness.faults`).
    inject: FaultSpec | None = None
    #: base URL of a running ``repro serve`` instance; what
    #: ``run_jobs(backend="service")`` submits to when no explicit
    #: ``service_url`` argument is given.
    service_url: str | None = None
    #: shared stats sink; ``run_jobs`` accumulates into it when set.
    stats: SweepStats | None = field(default=None, compare=False)


_POLICY = HarnessPolicy()


def set_policy(policy: HarnessPolicy) -> HarnessPolicy:
    """Install the ambient sweep policy; returns the previous one."""
    global _POLICY
    previous = _POLICY
    _POLICY = policy
    return previous


@contextmanager
def harness_policy(**kwargs):
    """Scoped policy override::

        with harness_policy(retries=2, timeout=60.0) as stats:
            run_experiment("R-F1", jobs=4, cache_dir=cache)
    """
    policy = HarnessPolicy(**kwargs)
    if policy.stats is None:
        policy = replace(policy, stats=SweepStats())
    previous = set_policy(policy)
    try:
        yield policy.stats
    finally:
        set_policy(previous)


_FINGERPRINT: str | None = None


def code_fingerprint(refresh: bool = False) -> str:
    """sha256 over every Python source under ``src/repro`` (sorted paths),
    identifying the simulator version for the result cache.

    Computed once per process and cached; ``refresh=True`` forces a
    rescan (long-lived drivers call this after sources change — the old
    ``lru_cache`` could never be refreshed, so such drivers kept writing
    cache entries under a stale key).  Pool workers never compute it at
    all: the driver seeds their cache through the pool initializer
    (:func:`_pool_init`).
    """
    global _FINGERPRINT
    if _FINGERPRINT is None or refresh:
        digest = hashlib.sha256()
        for path in sorted(_SRC_ROOT.rglob("*.py")):
            digest.update(str(path.relative_to(_SRC_ROOT)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


def _pool_init(inject: FaultSpec | None, fingerprint: str) -> None:
    """Worker-process initializer: arm fault injection and seed the
    code-fingerprint cache with the driver's value, so workers skip the
    full source rescan (and always agree with the driver's keys)."""
    global _FINGERPRINT
    _FINGERPRINT = fingerprint
    faults.install(inject)


def job_key(job: Job) -> str:
    """Stable cache key for one job under the current code version."""
    payload = code_fingerprint() + "\0" + repr(job)
    return hashlib.sha256(payload.encode()).hexdigest()


def _cache_path(cache_dir: Path, key: str) -> Path:
    return cache_dir / f"{key}.json"


def _load_cache_entry(path: Path, stats: SweepStats) -> dict | None:
    """Read one cache entry; undecodable entries are quarantined to
    ``<name>.corrupt`` (outside the ``*.json`` namespace, so they are
    never probed again) and treated as a miss."""
    try:
        text = path.read_text()
    except OSError:
        return None
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        quarantine = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, quarantine)
        except OSError:  # pragma: no cover - racing cleanup
            pass
        stats.quarantined += 1
        _LOG.warning(
            "quarantined corrupt cache entry %s -> %s",
            path.name, quarantine.name,
        )
        return None


def _flush(
    cache: Path,
    key: str,
    result: dict,
    stats: SweepStats,
    inject: FaultSpec | None,
) -> None:
    """Atomically persist one result: temp file in the same directory,
    then ``os.replace`` (atomic on POSIX within one filesystem)."""
    path = _cache_path(cache, key)
    fd, tmp = tempfile.mkstemp(
        dir=cache, prefix=key[:16] + "-", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(json.dumps(result))
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    stats.flushed += 1
    faults.after_flush(inject, path, stats.flushed)


def run_jobs(
    jobs: Sequence[Job],
    workers: int = 1,
    cache_dir: str | Path | None = None,
    *,
    backend: str = "scalar",
    batch_workers: int = 1,
    service_url: str | None = None,
    timeout: float | None = None,
    retries: int | None = None,
    backoff: float | None = None,
    inject: FaultSpec | None = None,
) -> list[dict]:
    """Run ``jobs`` and return their result dicts in the same order.

    ``workers > 1`` fans uncached jobs over a process pool; ``workers=1``
    (the default) runs them in-process, which keeps CI deterministic and
    lets the per-process compilation memoization in :mod:`.jobs` see the
    whole sweep.  ``cache_dir``, when given, persists each result as JSON
    keyed by (code fingerprint, job) and reuses hits on later runs.

    ``backend="batch"`` routes eligible uncached jobs (see
    :func:`repro.batch.batch_eligible`) through the SoA batch engine in
    the driver process — thousands of timing configurations stepped in
    lockstep — and only the remainder through the scalar path.  Batch
    results are flushed under the same :func:`job_key`, so a cached batch
    sweep and a cached scalar sweep are interchangeable.
    ``batch_workers > 1`` additionally shards the batch lane groups
    across a fingerprint-seeded process pool (one sub-batch per worker,
    split along saturation-class lines); results are flushed to the
    cache as each shard lands, so a killed sweep loses at most the
    in-flight shards.

    ``backend="service"`` submits the uncached jobs to a running
    ``repro serve`` instance (``service_url`` argument, or the ambient
    :attr:`HarnessPolicy.service_url`): the server coalesces identical
    in-flight jobs across clients and serves repeats from its
    content-addressed store (:mod:`repro.service`).  Results land in the
    local ``cache_dir`` as they stream back, so a service-backed sweep
    and a local sweep are resume-interchangeable.

    The keyword-only robustness knobs default to the ambient
    :class:`HarnessPolicy` (see :func:`harness_policy` /
    :func:`set_policy`); genuine job exceptions propagate unchanged once
    the retry budget is exhausted.
    """
    if backend not in ("scalar", "batch", "service"):
        raise ValueError(
            f"unknown backend {backend!r}; "
            f"known: 'scalar', 'batch', 'service'"
        )
    policy = _POLICY
    timeout = policy.timeout if timeout is None else timeout
    retries = policy.retries if retries is None else retries
    backoff = policy.backoff if backoff is None else backoff
    inject = policy.inject if inject is None else inject
    service_url = (policy.service_url if service_url is None
                   else service_url)
    stats = policy.stats if policy.stats is not None else SweepStats()

    if inject is not None:
        jobs = faults.apply_to_jobs(jobs, inject)

    results: list[dict | None] = [None] * len(jobs)
    pending: list[int] = []
    cache: Path | None = None
    if cache_dir is not None:
        cache = Path(cache_dir)
        try:
            cache.mkdir(parents=True, exist_ok=True)
        except (FileExistsError, NotADirectoryError):
            raise ValueError(
                f"result cache path {cache} exists and is not a directory"
            ) from None
        for i, job in enumerate(jobs):
            entry = _load_cache_entry(
                _cache_path(cache, job_key(job)), stats
            )
            if entry is not None:
                results[i] = entry
                stats.hits += 1
            else:
                pending.append(i)
    else:
        pending = list(range(len(jobs)))

    if pending and backend == "batch" and inject is None:
        from ..batch import run_batch

        batch_jobs = [jobs[i] for i in pending]

        def _land(pos: int, result: dict) -> None:
            i = pending[pos]
            results[i] = result
            stats.executed += 1
            if cache is not None:
                _flush(cache, job_key(jobs[i]), result, stats, inject)

        try:
            ran = run_batch(
                batch_jobs, workers=batch_workers, on_result=_land
            )
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            # a shard failure (e.g. BrokenProcessPool from a batch
            # worker) goes through the same charging path as the scalar
            # pool: record the failure kind, and with retries left fall
            # back to the scalar path — which carries the full
            # timeout/retry policy — for whatever has not landed yet
            stats.record_failure(type(exc).__name__)
            pending = [i for i in pending if results[i] is None]
            if retries <= 0:
                raise
            stats.retried += 1
            retries -= 1
            _LOG.warning(
                "batch backend failed (%s: %s); falling back to the "
                "scalar path for %d job(s) with %d retrie(s) left",
                type(exc).__name__, exc, len(pending), retries,
            )
        else:
            pending = [
                i for pos, i in enumerate(pending) if pos not in ran
            ]

    if pending and backend == "service" and inject is None:
        from ..service.client import ServiceClient

        if service_url is None:
            raise ValueError(
                "backend='service' needs a service URL (pass "
                "service_url= or set HarnessPolicy.service_url)"
            )
        client = ServiceClient(service_url)

        def _land_remote(pos: int, result: dict) -> None:
            i = pending[pos]
            results[i] = result
            stats.executed += 1
            if cache is not None:
                _flush(cache, job_key(jobs[i]), result, stats, inject)

        client.run(
            [jobs[i] for i in pending],
            on_result=_land_remote,
            timeout=timeout,
        )
        pending = []

    if pending:
        if workers > 1:
            _run_pool(
                jobs, pending, results, workers, cache, stats,
                timeout, retries, backoff, inject,
            )
        else:
            _run_serial(
                jobs, pending, results, cache, stats,
                retries, backoff, inject,
            )
    return results  # type: ignore[return-value]


def _run_serial(
    jobs, pending, results, cache, stats, retries, backoff, inject
) -> None:
    previous = faults.install(inject) if inject is not None else None
    try:
        for i in pending:
            for attempt in range(retries + 1):
                try:
                    result = run_job(jobs[i])
                    break
                except (KeyboardInterrupt, SystemExit):
                    # never burn a retry on the user (or the test
                    # harness) aborting the sweep
                    raise
                except Exception as exc:
                    stats.record_failure(type(exc).__name__)
                    if attempt >= retries:
                        raise
                    stats.retried += 1
                    _LOG.warning(
                        "job %d failed (%s: %s); retry %d/%d",
                        i, type(exc).__name__, exc, attempt + 1, retries,
                    )
                    time.sleep(backoff * (2 ** attempt))
            results[i] = result
            stats.executed += 1
            if cache is not None:
                _flush(cache, job_key(jobs[i]), result, stats, inject)
    finally:
        if inject is not None:
            faults.install(previous)


def _kill_pool(pool) -> None:
    """Tear a pool down without waiting on wedged workers."""
    processes = dict(getattr(pool, "_processes", None) or {})
    for proc in processes.values():
        if proc.is_alive():
            proc.kill()
    pool.shutdown(wait=False, cancel_futures=True)


def _run_pool(
    jobs, pending, results, workers, cache, stats,
    timeout, retries, backoff, inject,
) -> None:
    """Completed-future consumption with per-job deadlines: each result
    is flushed as it lands, a crashed pool is respawned with only the
    unfinished jobs requeued, and a job past its deadline costs one
    retry while its innocent pool-mates are requeued for free."""
    from concurrent.futures import (
        FIRST_COMPLETED,
        ProcessPoolExecutor,
        wait,
    )
    from concurrent.futures.process import BrokenProcessPool

    def new_pool():
        return ProcessPoolExecutor(
            max_workers=workers,
            initializer=_pool_init,
            initargs=(inject, code_fingerprint()),
        )

    queue = deque(pending)
    attempts = dict.fromkeys(pending, 0)
    #: earliest monotonic time a charged job may be resubmitted — the
    #: retry backoff lives here, at submit time, instead of a sleep in
    #: the completed-future loop (which stalled the _DEADLINE_POLL
    #: cadence and let unrelated in-flight jobs blow their deadlines
    #: unobserved)
    not_before = dict.fromkeys(pending, 0.0)
    pool = new_pool()
    inflight: dict = {}  # future -> (job index, deadline or None)

    def charge(i: int, why: str, cause: BaseException | None) -> None:
        """One failed execution of job ``i``; raises when the retry
        budget is gone."""
        stats.record_failure(
            type(cause).__name__ if cause is not None else "Timeout"
        )
        attempts[i] += 1
        if attempts[i] > retries:
            if cause is not None and not isinstance(
                cause, (BrokenProcessPool, TimeoutError)
            ):
                raise cause  # genuine job failure: propagate unchanged
            raise SweepError(
                f"job {i} failed {attempts[i]} time(s) ({why}) with "
                f"retries={retries}"
            ) from cause
        stats.retried += 1
        _LOG.warning(
            "job %d %s; retry %d/%d", i, why, attempts[i], retries
        )
        if backoff:
            not_before[i] = (
                time.monotonic() + backoff * (2 ** (attempts[i] - 1))
            )
        queue.append(i)

    try:
        while queue or inflight:
            now = time.monotonic()
            for _ in range(len(queue)):
                if len(inflight) >= workers:
                    break
                i = queue.popleft()
                if not_before[i] > now:
                    queue.append(i)  # still backing off: rotate past it
                    continue
                deadline = now + timeout if timeout is not None else None
                try:
                    future = pool.submit(run_job, jobs[i])
                except BrokenProcessPool:
                    # pool died between loop iterations; respawn and
                    # retry the submit on the fresh pool
                    queue.appendleft(i)
                    for other, (j, _deadline) in inflight.items():
                        queue.append(j)
                    inflight.clear()
                    _kill_pool(pool)
                    pool = new_pool()
                    stats.respawns += 1
                    continue
                inflight[future] = (i, deadline)
            if not inflight:
                if queue:
                    # everything queued is backing off; sleep until the
                    # earliest becomes eligible instead of spinning
                    wake = min(not_before[i] for i in queue)
                    time.sleep(max(0.0, wake - time.monotonic()))
                continue
            poll = _DEADLINE_POLL if timeout is not None else None
            if queue and len(inflight) < workers:
                # a queued job is only held back by its backoff window;
                # wake when the earliest becomes submittable
                wake = min(not_before[i] for i in queue)
                delay = max(0.0, wake - time.monotonic())
                poll = delay if poll is None else min(poll, delay)
            done, _ = wait(
                list(inflight),
                timeout=poll,
                return_when=FIRST_COMPLETED,
            )
            # record and flush every success in this wait round *before*
            # touching the failures: charge() raises once a job's retry
            # budget is gone, and the already-completed pool-mates in the
            # same `done` set used to be dropped unrecorded — a --resume
            # rerun then re-executed finished work
            failed = []
            for future in done:
                i, _deadline = inflight.pop(future)
                exc = future.exception()
                if exc is None:
                    result = future.result()
                    results[i] = result
                    stats.executed += 1
                    if cache is not None:
                        _flush(
                            cache, job_key(jobs[i]), result, stats, inject
                        )
                else:
                    failed.append((i, exc))
            broken = None
            for i, exc in failed:
                if isinstance(exc, BrokenProcessPool):
                    broken = exc
                    charge(i, "lost to a crashed worker", exc)
                else:
                    charge(i, f"raised {type(exc).__name__}", exc)
            if broken is not None or getattr(pool, "_broken", False):
                # every other in-flight job is collateral: requeue
                # without charging a retry
                for future, (i, _deadline) in inflight.items():
                    queue.append(i)
                inflight.clear()
                _kill_pool(pool)
                pool = new_pool()
                stats.respawns += 1
                continue
            if timeout is not None and inflight:
                now = time.monotonic()
                overdue = [
                    (future, i)
                    for future, (i, deadline) in inflight.items()
                    if deadline is not None and now > deadline
                ]
                if overdue:
                    # a wedged worker cannot be cancelled; recycle the
                    # whole pool, charging only the overdue jobs
                    overdue_set = {future for future, _i in overdue}
                    for future, (i, _deadline) in inflight.items():
                        if future not in overdue_set:
                            queue.append(i)
                    inflight.clear()
                    _kill_pool(pool)
                    pool = new_pool()
                    stats.respawns += 1
                    for _future, i in overdue:
                        charge(i, f"timed out after {timeout:g}s", None)
        pool.shutdown(wait=True)
    finally:
        _kill_pool(pool)
