"""Job fan-out and result caching for the sweep harness.

:func:`run_jobs` is the one entry point: it takes the declarative job
list an experiment built, optionally consults an on-disk result cache,
runs the remaining jobs either serially (the default — deterministic and
dependency-free, what CI uses) or across a :class:`concurrent.futures.
ProcessPoolExecutor`, and returns results in job order.

The cache key binds each result to the *code* as well as the job: a
sha256 over every ``src/repro`` Python source (:func:`code_fingerprint`)
is mixed into the key, so editing the simulator silently invalidates
stale entries instead of serving them.
"""

from __future__ import annotations

import hashlib
import json
from functools import lru_cache
from pathlib import Path
from typing import Sequence

from .jobs import Job, run_job

_SRC_ROOT = Path(__file__).resolve().parent.parent  # src/repro


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """sha256 over every Python source under ``src/repro`` (sorted paths),
    identifying the simulator version for the result cache."""
    digest = hashlib.sha256()
    for path in sorted(_SRC_ROOT.rglob("*.py")):
        digest.update(str(path.relative_to(_SRC_ROOT)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def job_key(job: Job) -> str:
    """Stable cache key for one job under the current code version."""
    payload = code_fingerprint() + "\0" + repr(job)
    return hashlib.sha256(payload.encode()).hexdigest()


def _cache_path(cache_dir: Path, key: str) -> Path:
    return cache_dir / f"{key}.json"


def run_jobs(
    jobs: Sequence[Job],
    workers: int = 1,
    cache_dir: str | Path | None = None,
) -> list[dict]:
    """Run ``jobs`` and return their result dicts in the same order.

    ``workers > 1`` fans uncached jobs over a process pool; ``workers=1``
    (the default) runs them in-process, which keeps CI deterministic and
    lets the per-process compilation memoization in :mod:`.jobs` see the
    whole sweep.  ``cache_dir``, when given, persists each result as JSON
    keyed by (code fingerprint, job) and reuses hits on later runs.
    """
    results: list[dict | None] = [None] * len(jobs)
    pending: list[int] = []
    cache: Path | None = None
    if cache_dir is not None:
        cache = Path(cache_dir)
        try:
            cache.mkdir(parents=True, exist_ok=True)
        except (FileExistsError, NotADirectoryError):
            raise ValueError(
                f"result cache path {cache} exists and is not a directory"
            ) from None
        for i, job in enumerate(jobs):
            path = _cache_path(cache, job_key(job))
            if path.exists():
                results[i] = json.loads(path.read_text())
            else:
                pending.append(i)
    else:
        pending = list(range(len(jobs)))

    if pending:
        if workers > 1:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=workers) as pool:
                fresh = list(pool.map(run_job, [jobs[i] for i in pending]))
        else:
            fresh = [run_job(jobs[i]) for i in pending]
        for i, result in zip(pending, fresh):
            results[i] = result
            if cache is not None:
                _cache_path(cache, job_key(jobs[i])).write_text(
                    json.dumps(result)
                )
    return results  # type: ignore[return-value]
