"""ASCII line plots for figure-style experiment tables.

The figure experiments (R-F1..R-F6) produce tables whose first column is
the swept x value and whose remaining columns are series.  This module
renders them as terminal line charts so the benchmark output shows the
*shape* the experiment reproduces, not just numbers::

    speedup
    12.6 |                         ·B
         |                    B
         |               B         A
     6.8 |          B  A
         |       A
         |  AB
     3.3 +------------------------------
         1        8                  32   latency
         A=hydro  B=daxpy

Pure standard library; no plotting dependencies.
"""

from __future__ import annotations

from .tables import Table

_MARKS = "ABCDEFGHIJKLMNOP"


def render_plot(
    table: Table,
    width: int = 60,
    height: int = 16,
    logx: bool = False,
) -> str:
    """Render a figure table (x column + series columns) as ASCII art."""
    if len(table.columns) < 2 or not table.rows:
        raise ValueError("need an x column, one series, and data")
    xs = [float(row[0]) for row in table.rows]
    series_names = list(table.columns[1:])
    series = [
        [float(row[1 + i]) for row in table.rows]
        for i in range(len(series_names))
    ]
    if logx:
        import math

        if min(xs) <= 0:
            raise ValueError("logx needs positive x values")
        xs = [math.log2(x) for x in xs]
    x_lo, x_hi = min(xs), max(xs)
    y_lo = min(v for s in series for v in s)
    y_hi = max(v for s in series for v in s)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for mark, values in zip(_MARKS, series):
        for x, y in zip(xs, values):
            col = round((x - x_lo) / x_span * (width - 1))
            row = round((y - y_lo) / y_span * (height - 1))
            r = height - 1 - row
            cell = grid[r][col]
            grid[r][col] = "*" if cell not in (" ", mark) else mark

    label_width = max(len(f"{y_hi:.3g}"), len(f"{y_lo:.3g}"))
    lines = [f"[{table.experiment_id}] {table.title}"]
    for i, row_cells in enumerate(grid):
        if i == 0:
            label = f"{y_hi:.3g}".rjust(label_width)
        elif i == height - 1:
            label = f"{y_lo:.3g}".rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row_cells)}")
    axis = "-" * width
    lines.append(f"{' ' * label_width} +{axis}")
    x_label_lo = f"{table.rows[0][0]}"
    x_label_hi = f"{table.rows[-1][0]}"
    pad = width - len(x_label_lo) - len(x_label_hi)
    lines.append(
        f"{' ' * label_width}  {x_label_lo}{' ' * max(pad, 1)}{x_label_hi}"
        f"   {table.columns[0]}"
    )
    legend = "  ".join(
        f"{mark}={name}" for mark, name in zip(_MARKS, series_names)
    )
    lines.append(f"{' ' * label_width}  {legend}")
    if any("*" in "".join(row) for row in grid):
        lines.append(f"{' ' * label_width}  (* = overlapping series)")
    return "\n".join(lines)
