"""Workload runner: compile a kernel, load its data, run a machine,
collect results.

This is the layer every experiment and example goes through.  It
guarantees the three executions of a kernel (reference, scalar baseline,
SMA) see identical memory layouts and identical input data, so results can
be compared word-for-word while cycle counts are compared fairly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Any

import numpy as np

from ..baseline import ScalarMachine, ScalarResult
from ..config import MemoryConfig, ScalarConfig, SMAConfig
from ..core import SMAMachine, SMAResult
from ..kernels import (
    Kernel,
    KernelSpec,
    LoweredScalar,
    LoweredSMA,
    lower_scalar,
    lower_sma,
    run_reference,
)
from ..kernels.layout import Layout


@dataclass(frozen=True)
class KernelRun:
    """Outcome of running one kernel on one machine."""

    kernel: Kernel
    machine: str  # "sma" | "sma-nostream" | "scalar" | "scalar-cache"
    result: Any  # SMAResult | ScalarResult
    outputs: dict[str, np.ndarray]
    layout: Layout
    #: RunReport when the run was made with metrics=True, else None
    report: Any = None

    @property
    def cycles(self) -> int:
        return self.result.cycles


def _fit_memory(config_memory: MemoryConfig, layout: Layout) -> MemoryConfig:
    """Grow the memory size if the kernel footprint needs it."""
    needed = layout.end + 16
    if config_memory.size >= needed:
        return config_memory
    return replace(config_memory, size=needed)


def _load_inputs(machine, layout: Layout, kernel: Kernel,
                 inputs: Mapping[str, np.ndarray]) -> None:
    for decl in kernel.arrays:
        machine.load_array(layout.base(decl.name), inputs[decl.name])


def _dump_outputs(machine, layout: Layout, kernel: Kernel) -> dict:
    return {
        decl.name: machine.dump_array(layout.base(decl.name), decl.size)
        for decl in kernel.arrays
    }


def run_on_sma(
    kernel: Kernel,
    inputs: Mapping[str, np.ndarray],
    config: SMAConfig | None = None,
    use_streams: bool = True,
    lowered: LoweredSMA | None = None,
    max_cycles: int = 10_000_000,
    metrics: bool = False,
) -> KernelRun:
    """Compile (or reuse ``lowered``) and run ``kernel`` on the SMA.

    ``metrics=True`` attaches the stall-attribution layer (fast-forward
    stays enabled) and fills :attr:`KernelRun.report` with a
    :class:`repro.metrics.RunReport`.
    """
    cfg = config or SMAConfig()
    if lowered is None:
        lowered = lower_sma(kernel, use_streams=use_streams)
    cfg = replace(cfg, memory=_fit_memory(cfg.memory, lowered.layout))
    machine = SMAMachine(
        lowered.access_program, lowered.execute_program, cfg
    )
    machine_metrics = machine.attach_metrics() if metrics else None
    _load_inputs(machine, lowered.layout, kernel, inputs)
    result: SMAResult = machine.run(max_cycles=max_cycles)
    report = None
    if machine_metrics is not None:
        from ..metrics import sma_report

        report = sma_report(machine, machine_metrics, kernel=kernel.name)
    return KernelRun(
        kernel,
        "sma" if lowered.uses_streams else "sma-nostream",
        result,
        _dump_outputs(machine, lowered.layout, kernel),
        lowered.layout,
        report,
    )


def run_on_scalar(
    kernel: Kernel,
    inputs: Mapping[str, np.ndarray],
    config: ScalarConfig | None = None,
    lowered: LoweredScalar | None = None,
    max_cycles: int = 100_000_000,
    metrics: bool = False,
) -> KernelRun:
    """Compile (or reuse ``lowered``) and run ``kernel`` on the baseline.

    ``metrics=True`` registers the machine's counters and fills
    :attr:`KernelRun.report` with a :class:`repro.metrics.RunReport`.
    """
    cfg = config or ScalarConfig()
    if lowered is None:
        lowered = lower_scalar(kernel)
    cfg = replace(cfg, memory=_fit_memory(cfg.memory, lowered.layout))
    machine = ScalarMachine(lowered.program, cfg)
    registry = machine.attach_metrics() if metrics else None
    _load_inputs(machine, lowered.layout, kernel, inputs)
    result: ScalarResult = machine.run(max_cycles=max_cycles)
    machine_name = "scalar-cache" if cfg.cache is not None else "scalar"
    report = None
    if registry is not None:
        from ..metrics import scalar_report

        report = scalar_report(
            result, registry, machine=machine_name, kernel=kernel.name
        )
    return KernelRun(
        kernel,
        machine_name,
        result,
        _dump_outputs(machine, lowered.layout, kernel),
        lowered.layout,
        report,
    )


def run_spec_reference(
    spec: KernelSpec, n: int | None = None, seed: int = 12345
) -> dict[str, np.ndarray]:
    """Golden result of a suite kernel."""
    kernel, inputs = spec.instantiate(n, seed)
    return run_reference(kernel, inputs)


def run_on_vector(
    kernel: Kernel,
    inputs: Mapping[str, np.ndarray],
    memory: MemoryConfig | None = None,
    max_vl: int = 64,
) -> KernelRun:
    """Compile and run ``kernel`` on the vector-machine baseline.

    Raises :class:`repro.kernels.lower_vector.VectorizationError` when the
    kernel contains a pattern a classic vectorizer must reject — callers
    that want the conventional fallback should catch it and run the
    scalar machine instead (see experiment R-T6).
    """
    from ..baseline.vector_machine import VectorMachine
    from ..kernels.lower_vector import lower_vector

    lowered = lower_vector(kernel, max_vl=max_vl)
    mem = _fit_memory(memory or MemoryConfig(), lowered.layout)
    machine = VectorMachine(lowered.program, mem, max_vl=max_vl)
    _load_inputs(machine, lowered.layout, kernel, inputs)
    result = machine.run()
    return KernelRun(
        kernel,
        "vector",
        result,
        _dump_outputs(machine, lowered.layout, kernel),
        lowered.layout,
    )


@dataclass(frozen=True)
class ClusterKernelRun:
    """Outcome of running several kernels on an SMA cluster."""

    cluster_cycles: int
    node_cycles: list[int]
    standalone_cycles: list[int]
    bank_conflicts: int
    memory_utilization: float
    outputs: list[dict[str, np.ndarray]]
    port_rejects: int = 0
    #: one RunReport per node when run with metrics=True, else empty
    reports: list = field(default_factory=list)
    #: shared-memory contention section (bank conflicts, port rejects,
    #: utilization, completions) when run with metrics=True, else empty
    contention: dict = field(default_factory=dict)

    @property
    def interference_slowdowns(self) -> list[float]:
        """Per-node slowdown relative to running alone on the same
        configuration (1.0 = no interference)."""
        return [
            clustered / alone
            for clustered, alone in zip(
                self.node_cycles, self.standalone_cycles
            )
        ]


def run_cluster(
    jobs: list[tuple[Kernel, Mapping[str, np.ndarray]]],
    config: SMAConfig | None = None,
    check: bool = True,
    max_cycles: int = 10_000_000,
    metrics: bool = False,
) -> ClusterKernelRun:
    """Run several kernels concurrently on an SMA cluster sharing one
    banked memory (each kernel in its own address region), and compare
    each node's finish time with its standalone run.

    With ``check`` (default), every node's outputs are verified word-exact
    against the reference interpreter — contention must never change
    results, only timing.

    ``metrics=True`` attaches the stall-attribution layer to every node
    (cluster fast-forward stays enabled) and fills
    :attr:`ClusterKernelRun.reports` with one
    :class:`repro.metrics.RunReport` per node (machine label
    ``"sma-node<i>"``) plus :attr:`ClusterKernelRun.contention` with the
    shared-memory section.
    """
    cluster, lowered, cfg, node_metrics = _prepare_cluster(
        jobs, config, metrics=metrics
    )
    cluster_result = cluster.run(max_cycles=max_cycles)
    return _finish_cluster(
        cluster, lowered, jobs, cfg, cluster_result, check, node_metrics
    )


def _prepare_cluster(
    jobs: list[tuple[Kernel, Mapping[str, np.ndarray]]],
    config: SMAConfig | None,
    metrics: bool = False,
):
    """Build the loaded cluster a :func:`run_cluster` call simulates.

    Split out so the service's sliced executor
    (:mod:`repro.service.slices`) can rebuild the *identical* cluster —
    construction order included, which the snapshot fingerprint check
    depends on — restore a checkpoint into it, and keep stepping.
    Returns ``(cluster, lowered, cfg, node_metrics)``.
    """
    from ..core.cluster import SMACluster
    from ..kernels import lower_sma as _lower_sma

    cfg = config or SMAConfig()
    lowered = []
    base = 16
    for kernel, _inputs in jobs:
        low = _lower_sma(kernel, base=base)
        lowered.append(low)
        base = low.layout.end + 16
    cfg = replace(
        cfg, memory=replace(cfg.memory, size=max(cfg.memory.size, base + 16))
    )
    cluster = SMACluster(
        [(low.access_program, low.execute_program) for low in lowered],
        cfg,
    )
    node_metrics = cluster.attach_metrics() if metrics else None
    for (kernel, inputs), low in zip(jobs, lowered):
        for decl in kernel.arrays:
            cluster.load_array(low.layout.base(decl.name), inputs[decl.name])
    return cluster, lowered, cfg, node_metrics


def _finish_cluster(
    cluster, lowered, jobs, cfg, cluster_result, check, node_metrics
) -> ClusterKernelRun:
    """Assemble the :class:`ClusterKernelRun` from a finished cluster
    (the other half of the :func:`_prepare_cluster` split)."""
    reports: list = []
    contention: dict = {}
    if node_metrics is not None:
        from ..metrics import sma_report

        reports = [
            sma_report(
                node, node_metric,
                kernel=kernel.name,
                machine_name=f"sma-node{i}",
            )
            for i, (node, node_metric, (kernel, _inputs)) in enumerate(
                zip(cluster.nodes, node_metrics, jobs)
            )
        ]
        contention = dict(
            cluster_result.contention(),
            completions=cluster.banked.stats.completions,
        )
    outputs = []
    for (kernel, inputs), low in zip(jobs, lowered):
        outputs.append({
            decl.name: cluster.dump_array(
                low.layout.base(decl.name), decl.size
            )
            for decl in kernel.arrays
        })
    if check:
        for (kernel, inputs), output in zip(jobs, outputs):
            golden = run_reference(kernel, inputs)
            for name, want in golden.items():
                if not np.array_equal(output[name], want):
                    raise AssertionError(
                        f"cluster node diverged from reference in "
                        f"{kernel.name}/{name}"
                    )
    standalone = [
        run_on_sma(kernel, inputs, cfg).cycles for kernel, inputs in jobs
    ]
    return ClusterKernelRun(
        cluster_cycles=cluster.cycle,
        node_cycles=[int(c) for c in cluster_result.finish_cycles],
        standalone_cycles=standalone,
        bank_conflicts=cluster.banked.stats.bank_conflicts,
        memory_utilization=cluster.banked.stats.utilization(
            max(cluster.cycle, 1), cfg.memory.num_banks
        ),
        outputs=outputs,
        port_rejects=cluster.banked.stats.port_rejects,
        reports=reports,
        contention=contention,
    )


@dataclass(frozen=True)
class ComparisonRun:
    """SMA vs scalar on the same kernel instance."""

    spec_name: str
    n: int
    sma: KernelRun
    scalar: KernelRun

    @property
    def speedup(self) -> float:
        return self.scalar.cycles / self.sma.cycles


def compare_spec(
    spec: KernelSpec,
    n: int | None = None,
    seed: int = 12345,
    sma_config: SMAConfig | None = None,
    scalar_config: ScalarConfig | None = None,
    check: bool = True,
) -> ComparisonRun:
    """Run one suite kernel on both machines; optionally verify both
    against the reference interpreter (exact word equality)."""
    kernel, inputs = spec.instantiate(n, seed)
    size = kernel.array(kernel.arrays[0].name).size  # noqa: F841
    sma_run = run_on_sma(kernel, inputs, sma_config)
    scalar_run = run_on_scalar(kernel, inputs, scalar_config)
    if check:
        golden = run_reference(kernel, inputs)
        for name, want in golden.items():
            for run in (sma_run, scalar_run):
                got = run.outputs[name]
                if not np.array_equal(got, want):
                    bad = int(np.flatnonzero(got != want)[0])
                    raise AssertionError(
                        f"{spec.name}: {run.machine} diverges from the "
                        f"reference in array {name!r} at index {bad}: "
                        f"{got[bad]!r} != {want[bad]!r}"
                    )
    actual_n = n if n is not None else spec.default_n
    return ComparisonRun(spec.name, actual_n, sma_run, scalar_run)
