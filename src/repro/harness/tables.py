"""ASCII table / series formatting for experiment output.

The benchmarks print their reproduced tables and figure series through
these helpers so every experiment reports in one consistent, diffable
format (also consumed verbatim by EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


def _fmt_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


@dataclass
class Table:
    """A titled table of rows; figures are tables of (x, series…) points."""

    experiment_id: str
    title: str
    columns: Sequence[str]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row width {len(values)} != {len(self.columns)} columns"
            )
        self.rows.append(values)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def column(self, name: str) -> list:
        """Values of one column across all rows."""
        idx = list(self.columns).index(name)
        return [row[idx] for row in self.rows]

    def row_map(self, key_column: str) -> dict:
        """Rows keyed by one column's value (for assertions in tests)."""
        idx = list(self.columns).index(key_column)
        return {row[idx]: row for row in self.rows}

    def to_text(self) -> str:
        cells = [[_fmt_cell(v) for v in row] for row in self.rows]
        widths = [
            max(len(str(c)), *(len(r[i]) for r in cells)) if cells
            else len(str(c))
            for i, c in enumerate(self.columns)
        ]
        sep = "-+-".join("-" * w for w in widths)
        header = " | ".join(
            str(c).ljust(w) for c, w in zip(self.columns, widths)
        )
        lines = [f"[{self.experiment_id}] {self.title}", header, sep]
        for row in cells:
            lines.append(
                " | ".join(cell.rjust(w) for cell, w in zip(row, widths))
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Comma-separated rendering (header row + data rows); notes and
        the title are carried as ``#`` comment lines so a CSV reader can
        skip them."""
        import csv
        import io

        buffer = io.StringIO()
        buffer.write(f"# [{self.experiment_id}] {self.title}\n")
        for note in self.notes:
            buffer.write(f"# note: {note}\n")
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow(row)
        return buffer.getvalue()

    def __str__(self) -> str:
        return self.to_text()
