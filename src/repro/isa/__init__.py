"""Instruction-set architecture: operands, opcodes, programs, assembler.

Public surface::

    from repro.isa import (
        Op, Instruction, ins, Program, ProgramBuilder,
        Reg, Imm, Queue, Label, QueueSpace, lq, sdq, iq, SAQ, EAQ, EBQ,
        assemble, disassemble, encode_program, decode_program,
    )
"""

from .assembler import assemble
from .disassembler import disassemble
from .encoding import (
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
)
from .instruction import Instruction, ins
from .opcodes import (
    ACCESS_OPS,
    ALU_FUNCS,
    ALU_OPS,
    CONTROL_OPS,
    EXECUTE_OPS,
    OPINFO,
    SCALAR_OPS,
    Op,
)
from .operands import (
    EAQ,
    EBQ,
    NUM_REGS,
    SAQ,
    Imm,
    Label,
    Operand,
    Queue,
    QueueSpace,
    Reg,
    iq,
    lq,
    parse_operand,
    sdq,
)
from .program import Program, ProgramBuilder

__all__ = [
    "ACCESS_OPS",
    "ALU_FUNCS",
    "ALU_OPS",
    "CONTROL_OPS",
    "EAQ",
    "EBQ",
    "EXECUTE_OPS",
    "Imm",
    "Instruction",
    "Label",
    "NUM_REGS",
    "OPINFO",
    "Op",
    "Operand",
    "Program",
    "ProgramBuilder",
    "Queue",
    "QueueSpace",
    "Reg",
    "SAQ",
    "SCALAR_OPS",
    "assemble",
    "decode_instruction",
    "decode_program",
    "disassemble",
    "encode_instruction",
    "encode_program",
    "ins",
    "iq",
    "lq",
    "parse_operand",
    "sdq",
]
