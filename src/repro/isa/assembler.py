"""Two-pass text assembler for all three instruction streams.

Syntax, one instruction per line::

    ; comment (also '#' at start of line or after whitespace? no: use ';')
    top:                      ; label definitions end with ':'
        mov   a1, #0
        streamld lq0, a2, #1, #100
        add   x3, lq0, x4
        decbnz a5, top
        halt

Operands are comma-separated: registers ``r``/``a``/``x`` + number, queues
(``lq0``, ``sdq0``, ``iq0``, ``saq``, ``eaq``, ``ebq``), immediates (``#3.5``
or bare numbers), and labels.  The destination, when the opcode has one,
comes first.  Multiple labels may precede an instruction; labels may also
share a line with it (``top: add x1, x2, x3``).
"""

from __future__ import annotations

import re

from ..errors import AssemblyError
from .instruction import Instruction
from .opcodes import OPINFO, Op
from .operands import parse_operand
from .program import Program, ProgramBuilder

_MNEMONICS = {op.value: op for op in Op}
_LABEL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def assemble(text: str, name: str = "program",
             require_halt: bool = True) -> Program:
    """Assemble ``text`` into a label-resolved :class:`Program`.

    Raises :class:`AssemblyError` (with the offending line number) on any
    syntax or resolution problem.
    """
    builder = ProgramBuilder(name)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        # peel off any number of leading "label:" prefixes
        while ":" in line:
            head, rest = line.split(":", 1)
            head = head.strip()
            if not _LABEL_RE.match(head):
                raise AssemblyError(f"bad label {head!r}", lineno)
            if head in _MNEMONICS:
                raise AssemblyError(
                    f"label {head!r} collides with a mnemonic", lineno
                )
            try:
                builder.label(head)
            except AssemblyError as e:
                raise AssemblyError(str(e), lineno) from None
            line = rest.strip()
        if not line:
            continue
        if line.startswith("."):
            _parse_directive(line, lineno, builder)
            continue
        builder.emit(_parse_instruction(line, lineno))
    try:
        return builder.finalize(require_halt=require_halt)
    except AssemblyError as e:
        raise AssemblyError(f"{name}: {e}") from None


def _parse_directive(line: str, lineno: int, builder: ProgramBuilder) -> None:
    """``.data BASE, V0, V1, ...`` — stage words into memory at BASE."""
    parts = line.split(None, 1)
    if parts[0] != ".data":
        raise AssemblyError(f"unknown directive {parts[0]!r}", lineno)
    if len(parts) < 2:
        raise AssemblyError(".data needs a base address and values", lineno)
    tokens = [tok.strip() for tok in parts[1].split(",")]
    if len(tokens) < 2:
        raise AssemblyError(".data needs at least one value", lineno)
    try:
        numbers = [float(tok) for tok in tokens]
    except ValueError as exc:
        raise AssemblyError(f"bad .data operand: {exc}", lineno) from None
    base = numbers[0]
    if base != int(base) or base < 0:
        raise AssemblyError(f"bad .data base {tokens[0]!r}", lineno)
    builder.data(int(base), numbers[1:])


def _parse_instruction(line: str, lineno: int) -> Instruction:
    parts = line.split(None, 1)
    mnemonic = parts[0].lower()
    if mnemonic not in _MNEMONICS:
        raise AssemblyError(f"unknown mnemonic {mnemonic!r}", lineno)
    op = _MNEMONICS[mnemonic]
    info = OPINFO[op]
    operands = []
    if len(parts) > 1:
        for tok in parts[1].split(","):
            tok = tok.strip()
            if not tok:
                raise AssemblyError("empty operand", lineno)
            try:
                operands.append(parse_operand(tok))
            except ValueError as e:
                raise AssemblyError(str(e), lineno) from None
    expected = info.n_src + (1 if info.has_dest else 0)
    if len(operands) != expected:
        raise AssemblyError(
            f"{mnemonic} expects {expected} operand(s), got {len(operands)}",
            lineno,
        )
    dest = operands[0] if info.has_dest else None
    srcs = tuple(operands[1:]) if info.has_dest else tuple(operands)
    try:
        return Instruction(op, dest, srcs)
    except AssemblyError as e:
        raise AssemblyError(str(e), lineno) from None
