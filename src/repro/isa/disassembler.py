"""Disassembler: turn a :class:`Program` back into assembler text.

The output re-assembles to an equivalent program (same instructions), with
synthetic labels (``L<index>``) generated for every branch target so the
text is position-independent again.  Round-trip property:
``assemble(disassemble(p)).instructions == p.instructions``.
"""

from __future__ import annotations

from .instruction import Instruction
from .operands import Imm
from .program import Program


def disassemble(program: Program) -> str:
    """Return assembler text for ``program``."""
    targets: dict[int, str] = {}
    for instr in program:
        if instr.info.is_branch:
            t = instr.branch_target()
            targets.setdefault(t, f"L{t}")
    lines: list[str] = []
    for base, values in program.data:
        rendered = ", ".join(repr(v) for v in values)
        lines.append(f".data {base}, {rendered}")
    for i, instr in enumerate(program.instructions):
        if i in targets:
            lines.append(f"{targets[i]}:")
        lines.append("    " + _format(instr, targets))
    # a branch may target one past the last instruction (fall-off exit)
    if len(program) in targets:
        lines.append(f"{targets[len(program)]}:")
        lines.append("    nop")
    return "\n".join(lines) + "\n"


def _format(instr: Instruction, targets: dict[int, str]) -> str:
    info = instr.info
    operands = []
    if instr.dest is not None:
        operands.append(str(instr.dest))
    for idx, src in enumerate(instr.srcs):
        if info.is_branch and idx == info.target_index and isinstance(src, Imm):
            operands.append(targets[int(src.value)])
        else:
            operands.append(str(src))
    if operands:
        return f"{instr.op.value} " + ", ".join(operands)
    return instr.op.value
