"""Binary encoding of instructions and programs.

Instructions encode to a variable number of little-endian 64-bit words: one
header word plus one extension word per immediate operand.  Header layout
(least-significant bits first)::

    bits  0..7   opcode ordinal
    bits  8..18  destination descriptor
    bits 19..29  src0 descriptor
    bits 30..40  src1 descriptor
    bits 41..51  src2 descriptor
    bits 52..62  src3 descriptor
    bit  63      reserved (0)

Each 11-bit operand descriptor is ``kind(2) | payload(9)``:

* kind 0 — absent (payload 0)
* kind 1 — register (payload = register index)
* kind 2 — queue (payload = ``space(3) << 4 | index(4)``)
* kind 3 — immediate (payload = ``is_int(1) << 3 | slot(3)``); the value
  lives in extension word ``slot`` as a signed int64 or float64.

Only *finalized* programs encode (labels resolved to immediates).  Label
names are not preserved; decoding yields an equivalent but label-less
program.  The encoding exists for artifact interchange and as an executable
specification of the ISA's operand model — round-trip identity is enforced
by the test suite.
"""

from __future__ import annotations

import struct

from ..errors import EncodingError
from .instruction import Instruction
from .opcodes import OPINFO, Op
from .operands import Imm, Label, Operand, Queue, QueueSpace, Reg
from .program import Program

_OPS = list(Op)
_OP_ORDINAL = {op: i for i, op in enumerate(_OPS)}

_KIND_NONE, _KIND_REG, _KIND_QUEUE, _KIND_IMM = 0, 1, 2, 3
_MAX_IMMS = 8


def _encode_descriptor(operand: Operand | None, imms: list[Imm]) -> int:
    if operand is None:
        return _KIND_NONE << 9
    if isinstance(operand, Reg):
        return (_KIND_REG << 9) | operand.index
    if isinstance(operand, Queue):
        if operand.index >= 16:
            raise EncodingError(f"queue index {operand.index} unencodable")
        return (_KIND_QUEUE << 9) | (operand.space.value << 4) | operand.index
    if isinstance(operand, Imm):
        if len(imms) >= _MAX_IMMS:
            raise EncodingError("too many immediates in one instruction")
        slot = len(imms)
        imms.append(operand)
        is_int = 1 if isinstance(operand.value, int) else 0
        return (_KIND_IMM << 9) | (is_int << 3) | slot
    if isinstance(operand, Label):
        raise EncodingError(
            f"unresolved label {operand.name!r}; finalize the program first"
        )
    raise EncodingError(f"unencodable operand {operand!r}")


def _decode_descriptor(desc: int, imm_words: list[int]) -> Operand | None:
    kind = desc >> 9
    payload = desc & 0x1FF
    if kind == _KIND_NONE:
        return None
    if kind == _KIND_REG:
        return Reg(payload)
    if kind == _KIND_QUEUE:
        return Queue(QueueSpace((payload >> 4) & 0x7), payload & 0xF)
    slot = payload & 0x7
    if slot >= len(imm_words):
        raise EncodingError(f"immediate slot {slot} missing")
    raw = imm_words[slot]
    if (payload >> 3) & 1:  # integer immediate
        return Imm(struct.unpack("<q", struct.pack("<Q", raw))[0])
    return Imm(struct.unpack("<d", struct.pack("<Q", raw))[0])


def encode_instruction(instr: Instruction) -> bytes:
    """Encode one instruction to its header + extension words."""
    imms: list[Imm] = []
    descs = [_encode_descriptor(instr.dest, imms)]
    srcs = list(instr.srcs) + [None] * (4 - len(instr.srcs))
    if len(srcs) > 4:
        raise EncodingError("more than 4 source operands")
    for s in srcs:
        descs.append(_encode_descriptor(s, imms))
    header = _OP_ORDINAL[instr.op]
    for i, d in enumerate(descs):
        header |= d << (8 + 11 * i)
    words = [header]
    for imm in imms:
        if isinstance(imm.value, int):
            if not -(2**63) <= imm.value < 2**63:
                raise EncodingError(f"immediate {imm.value} out of int64 range")
            words.append(
                struct.unpack("<Q", struct.pack("<q", imm.value))[0]
            )
        else:
            words.append(
                struct.unpack("<Q", struct.pack("<d", float(imm.value)))[0]
            )
    return struct.pack(f"<{len(words)}Q", *words)


def decode_instruction(data: bytes, offset: int = 0) -> tuple[Instruction, int]:
    """Decode one instruction at ``offset``; returns ``(instr, next_offset)``."""
    if offset + 8 > len(data):
        raise EncodingError("truncated instruction header")
    (header,) = struct.unpack_from("<Q", data, offset)
    op_ordinal = header & 0xFF
    if op_ordinal >= len(_OPS):
        raise EncodingError(f"bad opcode ordinal {op_ordinal}")
    op = _OPS[op_ordinal]
    descs = [(header >> (8 + 11 * i)) & 0x7FF for i in range(5)]
    n_imms = sum(1 for d in descs if (d >> 9) == _KIND_IMM)
    end = offset + 8 + 8 * n_imms
    if end > len(data):
        raise EncodingError("truncated immediate extension words")
    imm_words = list(
        struct.unpack_from(f"<{n_imms}Q", data, offset + 8)
    )
    dest = _decode_descriptor(descs[0], imm_words)
    info = OPINFO[op]
    srcs = tuple(
        _decode_descriptor(descs[1 + i], imm_words) for i in range(info.n_src)
    )
    if any(s is None for s in srcs):
        raise EncodingError(f"{op.value}: missing source operand in encoding")
    return Instruction(op, dest, srcs), end


_MAGIC = b"SMA1"


def encode_program(program: Program) -> bytes:
    """Encode a finalized program (magic, count, instructions)."""
    chunks = [_MAGIC, struct.pack("<I", len(program))]
    chunks.extend(encode_instruction(i) for i in program)
    return b"".join(chunks)


def decode_program(data: bytes, name: str = "decoded") -> Program:
    """Inverse of :func:`encode_program` (labels are not recovered)."""
    if data[:4] != _MAGIC:
        raise EncodingError("bad program magic")
    (count,) = struct.unpack_from("<I", data, 4)
    offset = 8
    instructions = []
    for _ in range(count):
        instr, offset = decode_instruction(data, offset)
        instructions.append(instr)
    if offset != len(data):
        raise EncodingError("trailing bytes after program")
    return Program(name, tuple(instructions), {})
