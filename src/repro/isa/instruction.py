"""The :class:`Instruction` record and shape validation.

Instructions are immutable; a program is a tuple of them.  Validation is
structural only (right number of operands, operand kinds that can never be
legal are rejected); per-processor legality is enforced by the machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import AssemblyError
from .opcodes import OPINFO, Op
from .operands import Imm, Label, Operand, Queue, Reg


@dataclass(frozen=True)
class Instruction:
    """One machine instruction: ``op dest, src0, src1, ...``.

    ``dest`` is ``None`` for opcodes without a destination.  Branch targets
    are carried in ``srcs`` as :class:`Label` until finalized, then as
    :class:`Imm` absolute instruction indices.
    """

    op: Op
    dest: Operand | None = None
    srcs: tuple[Operand, ...] = field(default=())

    def __post_init__(self) -> None:
        info = OPINFO[self.op]
        if len(self.srcs) != info.n_src:
            raise AssemblyError(
                f"{self.op.value} takes {info.n_src} source operand(s), "
                f"got {len(self.srcs)}"
            )
        if info.has_dest and self.dest is None:
            raise AssemblyError(f"{self.op.value} requires a destination")
        if not info.has_dest and self.dest is not None:
            raise AssemblyError(f"{self.op.value} takes no destination")
        if isinstance(self.dest, (Imm, Label)):
            raise AssemblyError(
                f"{self.op.value}: destination cannot be an immediate/label"
            )
        if info.is_branch:
            tgt = self.srcs[info.target_index]
            if not isinstance(tgt, (Label, Imm)):
                raise AssemblyError(
                    f"{self.op.value}: branch target must be a label or "
                    f"immediate, got {tgt}"
                )

    # -- queries used by the machines ----------------------------------

    @property
    def info(self):
        return OPINFO[self.op]

    def queue_sources(self) -> tuple[Queue, ...]:
        """All queue operands read by this instruction (popped on issue)."""
        return tuple(s for s in self.srcs if isinstance(s, Queue))

    def queue_dest(self) -> Queue | None:
        return self.dest if isinstance(self.dest, Queue) else None

    def branch_target(self) -> int:
        """Absolute target index; only valid after label resolution."""
        tgt = self.srcs[self.info.target_index]
        if not isinstance(tgt, Imm):
            raise AssemblyError(
                f"branch target {tgt} not resolved; call Program.finalize()"
            )
        return int(tgt.value)

    def with_target(self, index: int) -> "Instruction":
        """Copy of this instruction with its branch target resolved."""
        info = self.info
        srcs = list(self.srcs)
        srcs[info.target_index] = Imm(index)
        return Instruction(self.op, self.dest, tuple(srcs))

    def __str__(self) -> str:
        parts = [self.op.value]
        ops = []
        if self.dest is not None:
            ops.append(str(self.dest))
        ops.extend(str(s) for s in self.srcs)
        if ops:
            parts.append(" " + ", ".join(ops))
        return "".join(parts)


def ins(op: Op, dest: Operand | None = None, *srcs: Operand) -> Instruction:
    """Terse constructor used by the code generators: ``ins(Op.ADD, d, a, b)``."""
    return Instruction(op, dest, tuple(srcs))


__all__ = ["Instruction", "ins", "Reg", "Imm", "Queue", "Label"]
