"""Opcode definitions for the three instruction streams.

One opcode namespace serves all three processors; legality per processor is
checked by the processor models (see ``SCALAR_OPS`` / ``ACCESS_OPS`` /
``EXECUTE_OPS`` below).  The split mirrors the SMA programming model:

* the **scalar baseline** runs a conventional unified stream
  (ALU + control + ``LOAD``/``STORE``);
* the **access processor (AP)** runs ALU + control + the structured memory
  ops (``STREAMLD``, ``STREAMST``, ``GATHER``, ``SCATTER``, ``LDQ``,
  ``STADDR``) and the queue-coupling ops (``FROMQ``, ``BQNZ``, ``BQEZ``);
* the **execute processor (EP)** runs ALU + control only, but its ALU
  operands may name architectural queues (pop on read, push on write).

Arithmetic semantics are defined in :data:`ALU_FUNCS`; both integer and
floating values flow through the same opcodes (the AP happens to hold
addresses, the EP data).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Callable


class Op(enum.Enum):
    # --- ALU -----------------------------------------------------------
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MIN = "min"
    MAX = "max"
    MOD = "mod"
    ABS = "abs"
    NEG = "neg"
    SQRT = "sqrt"
    FLOOR = "floor"
    MOV = "mov"
    CMPLT = "cmplt"
    CMPLE = "cmple"
    CMPEQ = "cmpeq"
    CMPNE = "cmpne"
    SEL = "sel"
    # --- control -------------------------------------------------------
    JMP = "jmp"
    BEQZ = "beqz"
    BNEZ = "bnez"
    DECBNZ = "decbnz"
    NOP = "nop"
    HALT = "halt"
    # --- scalar memory ---------------------------------------------------
    LOAD = "load"
    STORE = "store"
    # --- access processor: structured memory ----------------------------
    STREAMLD = "streamld"   # qdst, base, stride, count
    STREAMST = "streamst"   # dataq, base, stride, count
    GATHER = "gather"       # qdst, iqsrc, base, count
    SCATTER = "scatter"     # dataq, iqsrc, base, count
    LDQ = "ldq"             # qdst, base, offset
    STADDR = "staddr"       # dataq, base, offset
    # --- access processor: queue coupling -------------------------------
    FROMQ = "fromq"         # reg <- pop(queue)
    BQNZ = "bqnz"           # pop EBQ, branch if != 0
    BQEZ = "bqez"           # pop EBQ, branch if == 0


@dataclass(frozen=True)
class OpInfo:
    """Static operand-shape metadata for an opcode."""

    n_src: int
    has_dest: bool
    is_branch: bool = False
    #: index into ``srcs`` of the branch target, if ``is_branch``.
    target_index: int = -1


OPINFO: dict[Op, OpInfo] = {
    Op.ADD: OpInfo(2, True),
    Op.SUB: OpInfo(2, True),
    Op.MUL: OpInfo(2, True),
    Op.DIV: OpInfo(2, True),
    Op.MIN: OpInfo(2, True),
    Op.MAX: OpInfo(2, True),
    Op.MOD: OpInfo(2, True),
    Op.ABS: OpInfo(1, True),
    Op.NEG: OpInfo(1, True),
    Op.SQRT: OpInfo(1, True),
    Op.FLOOR: OpInfo(1, True),
    Op.MOV: OpInfo(1, True),
    Op.CMPLT: OpInfo(2, True),
    Op.CMPLE: OpInfo(2, True),
    Op.CMPEQ: OpInfo(2, True),
    Op.CMPNE: OpInfo(2, True),
    Op.SEL: OpInfo(3, True),
    Op.JMP: OpInfo(1, False, is_branch=True, target_index=0),
    Op.BEQZ: OpInfo(2, False, is_branch=True, target_index=1),
    Op.BNEZ: OpInfo(2, False, is_branch=True, target_index=1),
    Op.DECBNZ: OpInfo(1, True, is_branch=True, target_index=0),
    Op.NOP: OpInfo(0, False),
    Op.HALT: OpInfo(0, False),
    Op.LOAD: OpInfo(2, True),
    Op.STORE: OpInfo(3, False),
    Op.STREAMLD: OpInfo(3, True),
    Op.STREAMST: OpInfo(4, False),
    Op.GATHER: OpInfo(3, True),
    Op.SCATTER: OpInfo(4, False),
    Op.LDQ: OpInfo(2, True),
    Op.STADDR: OpInfo(3, False),
    Op.FROMQ: OpInfo(1, True),
    Op.BQNZ: OpInfo(1, False, is_branch=True, target_index=0),
    Op.BQEZ: OpInfo(1, False, is_branch=True, target_index=0),
}

assert set(OPINFO) == set(Op), "every opcode needs an OPINFO entry"


def _div(a: float, b: float) -> float:
    if b == 0:
        raise ZeroDivisionError("DIV by zero in simulated program")
    return a / b


def _mod(a: float, b: float) -> float:
    if b == 0:
        raise ZeroDivisionError("MOD by zero in simulated program")
    return a % b


#: pure value semantics of the ALU opcodes (shared by all processors and by
#: the kernel-IR reference interpreter, so differential tests agree exactly).
ALU_FUNCS: dict[Op, Callable[..., float]] = {
    Op.ADD: lambda a, b: a + b,
    Op.SUB: lambda a, b: a - b,
    Op.MUL: lambda a, b: a * b,
    Op.DIV: _div,
    Op.MIN: min,
    Op.MAX: max,
    Op.MOD: _mod,
    Op.ABS: abs,
    Op.NEG: lambda a: -a,
    Op.SQRT: lambda a: math.sqrt(a),
    Op.FLOOR: lambda a: float(math.floor(a)),
    Op.MOV: lambda a: a,
    Op.CMPLT: lambda a, b: 1.0 if a < b else 0.0,
    Op.CMPLE: lambda a, b: 1.0 if a <= b else 0.0,
    Op.CMPEQ: lambda a, b: 1.0 if a == b else 0.0,
    Op.CMPNE: lambda a, b: 1.0 if a != b else 0.0,
    Op.SEL: lambda c, a, b: a if c != 0 else b,
}

ALU_OPS = frozenset(ALU_FUNCS)

CONTROL_OPS = frozenset(
    {Op.JMP, Op.BEQZ, Op.BNEZ, Op.DECBNZ, Op.NOP, Op.HALT}
)

#: opcodes legal in the scalar baseline's unified stream.
SCALAR_OPS = ALU_OPS | CONTROL_OPS | {Op.LOAD, Op.STORE}

#: opcodes legal in the access processor's stream.
ACCESS_OPS = (
    ALU_OPS
    | CONTROL_OPS
    | {
        Op.STREAMLD,
        Op.STREAMST,
        Op.GATHER,
        Op.SCATTER,
        Op.LDQ,
        Op.STADDR,
        Op.FROMQ,
        Op.BQNZ,
        Op.BQEZ,
    }
)

#: opcodes legal in the execute processor's stream.
EXECUTE_OPS = ALU_OPS | CONTROL_OPS
