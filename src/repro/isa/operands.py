"""Operand model shared by the scalar, access, and execute instruction sets.

Three operand kinds exist:

* :class:`Reg` — a processor register.  Register files are per-processor
  (the AP holds integers/addresses, the EP holds floating-point data, the
  scalar baseline holds both), but the operand object itself is just an
  index; the textual prefix (``a``/``x``/``r``) is a readability aid.
* :class:`Imm` — an immediate constant (int or float).
* :class:`Queue` — an architectural queue endpoint.  Queues are the only
  coupling between the access and execute processors and the memory
  system; naming one as a *source* pops it, naming one as a *destination*
  pushes to it.

Queue namespaces (see :class:`QueueSpace`):

``LQ``   load-data queues, memory → EP               (``lq0`` .. )
``SDQ``  store-data queues, EP → memory              (``sdq0`` .. )
``SAQ``  store-address queue, AP → memory            (``saq``)
``IQ``   index queues, memory → AP stream engine     (``iq0`` .. )
``EAQ``  data queue, EP → AP (data-dependent address) (``eaq``)
``EBQ``  branch queue, EP → AP (execute-resolved branches) (``ebq``)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

NUM_REGS = 32


class QueueSpace(enum.IntEnum):
    """Architectural queue namespaces."""

    LQ = 0
    SDQ = 1
    SAQ = 2
    IQ = 3
    EAQ = 4
    EBQ = 5


@dataclass(frozen=True)
class Reg:
    """A register operand, ``index`` in ``[0, NUM_REGS)``."""

    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < NUM_REGS:
            raise ValueError(f"register index {self.index} out of range")

    def __str__(self) -> str:  # canonical, prefix-agnostic spelling
        return f"r{self.index}"


@dataclass(frozen=True)
class Imm:
    """An immediate operand.  Integers stay integers; floats stay floats."""

    value: Union[int, float]

    def __str__(self) -> str:
        return f"#{self.value}"


@dataclass(frozen=True)
class Queue:
    """An architectural queue operand.

    ``space`` selects the namespace, ``index`` the queue within it
    (always 0 for the singleton SAQ/EAQ/EBQ spaces).
    """

    space: QueueSpace
    index: int = 0

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("queue index must be non-negative")
        if self.space in (QueueSpace.SAQ, QueueSpace.EAQ, QueueSpace.EBQ):
            if self.index != 0:
                raise ValueError(f"{self.space.name} is a singleton queue")

    def __str__(self) -> str:
        if self.space in (QueueSpace.SAQ, QueueSpace.EAQ, QueueSpace.EBQ):
            return self.space.name.lower()
        return f"{self.space.name.lower()}{self.index}"


@dataclass(frozen=True)
class Label:
    """A symbolic branch target; resolved to an ``Imm`` instruction index
    by the assembler / :meth:`repro.isa.program.Program.finalize`."""

    name: str

    def __str__(self) -> str:
        return self.name


Operand = Union[Reg, Imm, Queue, Label]

# Convenience singletons / constructors -----------------------------------


def lq(i: int) -> Queue:
    """Load-data queue ``i`` (memory → EP)."""
    return Queue(QueueSpace.LQ, i)


def sdq(i: int = 0) -> Queue:
    """Store-data queue ``i`` (EP → memory)."""
    return Queue(QueueSpace.SDQ, i)


def iq(i: int) -> Queue:
    """Index queue ``i`` (memory → AP stream engine)."""
    return Queue(QueueSpace.IQ, i)


SAQ = Queue(QueueSpace.SAQ)
EAQ = Queue(QueueSpace.EAQ)
EBQ = Queue(QueueSpace.EBQ)


def parse_operand(text: str) -> Operand:
    """Parse one textual operand (as written in assembly) into an object.

    Accepted forms: ``r3``/``a3``/``x3`` (registers), ``#1.5`` or a bare
    number (immediates), ``lq0``/``sdq1``/``iq2``/``saq``/``eaq``/``ebq``
    (queues), anything else is a :class:`Label`.
    """
    t = text.strip().lower()
    if not t:
        raise ValueError("empty operand")
    if t[0] in "rax" and t[1:].isdigit():
        return Reg(int(t[1:]))
    if t == "saq":
        return SAQ
    if t == "eaq":
        return EAQ
    if t == "ebq":
        return EBQ
    for space in ("lq", "sdq", "iq"):
        if t.startswith(space) and t[len(space):].isdigit():
            return Queue(QueueSpace[space.upper()], int(t[len(space):]))
    body = t[1:] if t[0] == "#" else t
    try:
        return Imm(int(body, 0))
    except ValueError:
        pass
    try:
        return Imm(float(body))
    except ValueError:
        pass
    if t[0] == "#":
        raise ValueError(f"bad immediate {text!r}")
    return Label(text.strip())
