"""Program container: an ordered sequence of instructions plus labels.

A :class:`ProgramBuilder` collects instructions and label definitions (the
code generators and the assembler both target it); :meth:`ProgramBuilder.
finalize` resolves every symbolic branch target to an absolute instruction
index and returns an immutable :class:`Program`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AssemblyError
from .instruction import Instruction
from .opcodes import Op
from .operands import Imm, Label, Operand


@dataclass(frozen=True)
class Program:
    """An immutable, label-resolved instruction sequence.

    ``data`` carries initialized memory segments declared with the
    assembler's ``.data`` directive: ``(base_address, (word, ...))``
    tuples the machines stage into memory before execution.
    """

    name: str
    instructions: tuple[Instruction, ...]
    labels: dict[str, int]
    data: tuple[tuple[int, tuple[float, ...]], ...] = ()

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, i: int) -> Instruction:
        return self.instructions[i]

    def __iter__(self):
        return iter(self.instructions)

    def listing(self) -> str:
        """Human-readable listing with instruction indices and labels."""
        by_index: dict[int, list[str]] = {}
        for name, idx in self.labels.items():
            by_index.setdefault(idx, []).append(name)
        lines = []
        for i, instr in enumerate(self.instructions):
            for lbl in by_index.get(i, []):
                lines.append(f"{lbl}:")
            lines.append(f"  {i:4d}  {instr}")
        return "\n".join(lines)


class ProgramBuilder:
    """Accumulates instructions and labels, then finalizes to a Program.

    Usage::

        b = ProgramBuilder("loop")
        b.label("top")
        b.emit(ins(Op.ADD, Reg(1), Reg(1), Imm(1)))
        b.emit(ins(Op.DECBNZ, Reg(2), Label("top")))
        b.emit(ins(Op.HALT))
        prog = b.finalize()
    """

    def __init__(self, name: str = "program"):
        self.name = name
        self._instructions: list[Instruction] = []
        self._labels: dict[str, int] = {}
        self._data: list[tuple[int, tuple[float, ...]]] = []

    def __len__(self) -> int:
        return len(self._instructions)

    def emit(self, instr: Instruction) -> int:
        """Append ``instr``; returns its index."""
        self._instructions.append(instr)
        return len(self._instructions) - 1

    def op(self, op: Op, dest: Operand | None = None, *srcs: Operand) -> int:
        """Build-and-emit shorthand."""
        return self.emit(Instruction(op, dest, tuple(srcs)))

    def data(self, base: int, values) -> None:
        """Declare an initialized memory segment (``.data`` directive)."""
        if base < 0:
            raise AssemblyError(f"negative data base {base}")
        self._data.append((int(base), tuple(float(v) for v in values)))

    def label(self, name: str) -> None:
        """Define ``name`` at the *next* instruction index."""
        if name in self._labels:
            raise AssemblyError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions)

    def new_label(self, stem: str) -> str:
        """Return a label name guaranteed fresh within this builder."""
        i = 0
        while f"{stem}_{i}" in self._labels or any(
            isinstance(s, Label) and s.name == f"{stem}_{i}"
            for ins_ in self._instructions
            for s in ins_.srcs
        ):
            i += 1
        return f"{stem}_{i}"

    def finalize(self, require_halt: bool = True) -> Program:
        """Resolve labels and freeze.

        Raises :class:`AssemblyError` on undefined labels, labels past the
        end of the program, or (when ``require_halt``) a missing ``halt``.
        """
        if require_halt and not any(
            i.op is Op.HALT for i in self._instructions
        ):
            raise AssemblyError(f"program {self.name!r} has no halt")
        resolved: list[Instruction] = []
        n = len(self._instructions)
        for idx, label_idx in self._labels.items():
            if label_idx > n:
                raise AssemblyError(f"label {idx!r} beyond end of program")
        for instr in self._instructions:
            if instr.info.is_branch:
                tgt = instr.srcs[instr.info.target_index]
                if isinstance(tgt, Label):
                    if tgt.name not in self._labels:
                        raise AssemblyError(f"undefined label {tgt.name!r}")
                    instr = instr.with_target(self._labels[tgt.name])
                target = instr.branch_target()
                if not 0 <= target <= n:
                    raise AssemblyError(
                        f"branch target {target} out of range in {instr}"
                    )
            else:
                # non-branch instructions must not carry unresolved labels
                if any(isinstance(s, Label) for s in instr.srcs):
                    raise AssemblyError(
                        f"label operand on non-branch instruction {instr}"
                    )
            resolved.append(instr)
        return Program(
            self.name, tuple(resolved), dict(self._labels),
            tuple(self._data),
        )
