"""Kernel IR, compilers, reference interpreter, and the workload suite."""

from .ir import (
    Affine,
    ArrayDecl,
    Assign,
    BinOp,
    Cmp,
    Computed,
    Const,
    Expr,
    Indirect,
    Kernel,
    Loop,
    Reduce,
    Ref,
    Select,
    Stmt,
    UnOp,
    expr_refs,
    loop_nest,
    validate_kernel,
)
from .lang import ParseError, parse_kernel
from .layout import Layout, layout_arrays
from .lower_scalar import LoweredScalar, lower_scalar
from .lower_sma import LoweredSMA, SMALoweringInfo, lower_sma
from .lower_vector import LoweredVector, VectorizationError, lower_vector
from .reference import ReferenceInterpreter, run_reference
from .suite import (
    KernelSpec,
    all_kernels,
    get_kernel,
    kernel_names,
    kernels_in_category,
)

__all__ = [
    "Affine",
    "ArrayDecl",
    "Assign",
    "BinOp",
    "Cmp",
    "Computed",
    "Const",
    "Expr",
    "Indirect",
    "Kernel",
    "KernelSpec",
    "Layout",
    "ParseError",
    "Loop",
    "LoweredSMA",
    "LoweredVector",
    "LoweredScalar",
    "Reduce",
    "Ref",
    "ReferenceInterpreter",
    "SMALoweringInfo",
    "Select",
    "Stmt",
    "UnOp",
    "all_kernels",
    "expr_refs",
    "get_kernel",
    "kernel_names",
    "kernels_in_category",
    "layout_arrays",
    "loop_nest",
    "parse_kernel",
    "lower_scalar",
    "lower_sma",
    "lower_vector",
    "run_reference",
    "VectorizationError",
    "validate_kernel",
]
