"""Loop-kernel intermediate representation.

Workloads are written once, declaratively, in this small IR and compiled to
*both* target machines (``lower_scalar``, ``lower_sma``) as well as executed
directly by a NumPy-backed reference interpreter (``reference``).  The IR is
deliberately shaped like the scientific inner loops the 1983 evaluation era
used (Lawrence Livermore Loops): perfect loop nests of depth ≤ 2 over 1-D
arrays with affine, indirect (index-array) or computed (value-dependent)
subscripts, reductions, and selects.

Grammar::

    Kernel  := name, arrays, body=(Loop ...)
    Loop    := var, count, start, body=(Loop | Assign | Reduce ...)
    Assign  := Ref <- Expr
    Reduce  := acc(op) over Expr, final store to Ref (loop-invariant cell)
    Expr    := Const | Ref | BinOp | UnOp | Select(Cmp, Expr, Expr)
    Index   := Affine({var: coeff}, offset)
             | Indirect(Ref)          # A[B[affine]]   (structured gather)
             | Computed(Expr)         # A[f(values)]   (loss of decoupling)

Design note: subscripts of ``Indirect``/``Computed`` index *values* come
from float64 memory; they must be integral at run time (the generators
produce integer-valued arrays / expressions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Union

from ..errors import KernelError

# ---------------------------------------------------------------------------
# index expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Affine:
    """``sum(coeff * loop_var) + offset``; coeffs maps var name -> int."""

    coeffs: tuple[tuple[str, int], ...] = ()
    offset: int = 0

    @staticmethod
    def of(offset: int = 0, **coeffs: int) -> "Affine":
        return Affine(tuple(sorted(coeffs.items())), offset)

    def coeff(self, var: str) -> int:
        for name, c in self.coeffs:
            if name == var:
                return c
        return 0

    def shifted(self, delta: int) -> "Affine":
        return Affine(self.coeffs, self.offset + delta)

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.offset + sum(c * env[v] for v, c in self.coeffs)

    def __str__(self) -> str:
        parts = [f"{c}*{v}" if c != 1 else v for v, c in self.coeffs]
        if self.offset or not parts:
            parts.append(str(self.offset))
        return "+".join(parts)


@dataclass(frozen=True)
class Indirect:
    """Subscript loaded from another array: ``A[ B[affine] ]``."""

    ref: "Ref"

    def __post_init__(self) -> None:
        if not isinstance(self.ref.index, Affine):
            raise KernelError("indirect subscript must itself be affine")

    def __str__(self) -> str:
        return str(self.ref)


@dataclass(frozen=True)
class Computed:
    """Subscript computed from data values: ``A[ f(...) ]``.

    On the SMA machine this forces the execute processor to send each
    address to the access processor — a loss-of-decoupling pattern.
    """

    expr: "Expr"

    def __str__(self) -> str:
        return f"<{self.expr}>"


Index = Union[Affine, Indirect, Computed]

# ---------------------------------------------------------------------------
# value expressions
# ---------------------------------------------------------------------------

BINOPS = ("+", "-", "*", "/", "min", "max", "mod")
UNOPS = ("abs", "neg", "sqrt", "floor")
CMPOPS = ("<", "<=", "==", "!=")
REDUCE_OPS = ("+", "min", "max")


@dataclass(frozen=True)
class Const:
    value: float

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Ref:
    """A subscripted array read (as Expr) or write target (in Assign)."""

    array: str
    index: Index

    def __str__(self) -> str:
        return f"{self.array}[{self.index}]"


@dataclass(frozen=True)
class BinOp:
    op: str
    lhs: "Expr"
    rhs: "Expr"

    def __post_init__(self) -> None:
        if self.op not in BINOPS:
            raise KernelError(f"unknown binary op {self.op!r}")

    def __str__(self) -> str:
        return f"({self.lhs} {self.op} {self.rhs})"


@dataclass(frozen=True)
class UnOp:
    op: str
    operand: "Expr"

    def __post_init__(self) -> None:
        if self.op not in UNOPS:
            raise KernelError(f"unknown unary op {self.op!r}")

    def __str__(self) -> str:
        return f"{self.op}({self.operand})"


@dataclass(frozen=True)
class Cmp:
    op: str
    lhs: "Expr"
    rhs: "Expr"

    def __post_init__(self) -> None:
        if self.op not in CMPOPS:
            raise KernelError(f"unknown comparison {self.op!r}")

    def __str__(self) -> str:
        return f"({self.lhs} {self.op} {self.rhs})"


@dataclass(frozen=True)
class Select:
    """``iftrue if cond else iffalse`` — both arms always evaluated
    (compiled to a conditional-select, never a branch)."""

    cond: Cmp
    iftrue: "Expr"
    iffalse: "Expr"

    def __str__(self) -> str:
        return f"({self.iftrue} if {self.cond} else {self.iffalse})"


Expr = Union[Const, Ref, BinOp, UnOp, Select]

# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Assign:
    dest: Ref
    expr: Expr

    def __str__(self) -> str:
        return f"{self.dest} = {self.expr}"


@dataclass(frozen=True)
class Reduce:
    """Accumulate ``expr`` with ``op`` over the *innermost enclosing
    loop*: the accumulator resets to ``init`` at each entry of that loop
    and the result is stored to ``dest`` at each exit.

    ``dest`` must be affine and independent of the innermost loop
    variable; it may use outer-loop variables — that is what expresses
    per-row reductions like ``y[j] = Σ_i A[j·n+i]·x[i]`` (matvec).
    For a 1-deep nest this degenerates to the classic whole-loop
    reduction into a fixed cell.
    """

    op: str
    dest: Ref
    expr: Expr
    init: float = 0.0

    def __post_init__(self) -> None:
        if self.op not in REDUCE_OPS:
            raise KernelError(f"unknown reduction op {self.op!r}")
        if not isinstance(self.dest.index, Affine):
            raise KernelError("reduction target subscript must be affine")

    def __str__(self) -> str:
        return f"{self.dest} {self.op}= {self.expr}  (init {self.init})"


@dataclass(frozen=True)
class Loop:
    var: str
    count: int
    body: tuple["Stmt", ...]
    start: int = 0

    def __post_init__(self) -> None:
        if self.count < 1:
            raise KernelError(f"loop {self.var!r} count must be >= 1")
        if not self.body:
            raise KernelError(f"loop {self.var!r} has an empty body")

    def __str__(self) -> str:
        hdr = f"for {self.var} in [{self.start}, {self.start + self.count}):"
        body = "\n".join("  " + line for s in self.body
                         for line in str(s).splitlines())
        return f"{hdr}\n{body}"


Stmt = Union[Assign, Reduce, Loop]

# ---------------------------------------------------------------------------
# kernels
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ArrayDecl:
    name: str
    size: int

    def __post_init__(self) -> None:
        if self.size < 1:
            raise KernelError(f"array {self.name!r} must have size >= 1")


@dataclass(frozen=True)
class Kernel:
    """A complete workload: array declarations plus a statement list."""

    name: str
    arrays: tuple[ArrayDecl, ...]
    body: tuple[Stmt, ...]
    description: str = ""

    def __post_init__(self) -> None:
        validate_kernel(self)

    def array(self, name: str) -> ArrayDecl:
        for a in self.arrays:
            if a.name == name:
                return a
        raise KernelError(f"unknown array {name!r} in kernel {self.name!r}")

    def pretty(self) -> str:
        decls = ", ".join(f"{a.name}[{a.size}]" for a in self.arrays)
        body = "\n".join(str(s) for s in self.body)
        return f"kernel {self.name}({decls}):\n{body}"


# ---------------------------------------------------------------------------
# traversal + validation
# ---------------------------------------------------------------------------


def expr_refs(expr: Expr) -> Iterator[Ref]:
    """Yield every array Ref read by ``expr`` (including subscript refs
    inside Indirect/Computed indices)."""
    if isinstance(expr, Ref):
        yield expr
        if isinstance(expr.index, Indirect):
            yield from expr_refs(expr.index.ref)
        elif isinstance(expr.index, Computed):
            yield from expr_refs(expr.index.expr)
    elif isinstance(expr, BinOp):
        yield from expr_refs(expr.lhs)
        yield from expr_refs(expr.rhs)
    elif isinstance(expr, UnOp):
        yield from expr_refs(expr.operand)
    elif isinstance(expr, Select):
        yield from expr_refs(expr.cond.lhs)
        yield from expr_refs(expr.cond.rhs)
        yield from expr_refs(expr.iftrue)
        yield from expr_refs(expr.iffalse)
    elif isinstance(expr, Const):
        return
    else:
        raise KernelError(f"unknown expression node {expr!r}")


def stmt_read_refs(stmt: Stmt) -> Iterator[Ref]:
    """Refs read by a (non-loop) statement, including an indirect/computed
    subscript of the *destination*."""
    if isinstance(stmt, Assign):
        yield from expr_refs(stmt.expr)
        if isinstance(stmt.dest.index, Indirect):
            yield from expr_refs(stmt.dest.index.ref)
        elif isinstance(stmt.dest.index, Computed):
            yield from expr_refs(stmt.dest.index.expr)
    elif isinstance(stmt, Reduce):
        yield from expr_refs(stmt.expr)
    else:
        raise KernelError(f"stmt_read_refs on loop")


def loop_nest(kernel: Kernel) -> list[tuple[Loop, ...]]:
    """Return the list of loop nests (outer..inner chains) in the kernel."""
    nests: list[tuple[Loop, ...]] = []

    def walk(stmt: Stmt, chain: tuple[Loop, ...]) -> None:
        if isinstance(stmt, Loop):
            inner = chain + (stmt,)
            if any(isinstance(s, Loop) for s in stmt.body):
                for s in stmt.body:
                    walk(s, inner)
            else:
                nests.append(inner)
        # plain statements contribute no nest

    for stmt in kernel.body:
        walk(stmt, ())
    return nests


def validate_kernel(kernel: Kernel) -> None:
    """Structural checks shared by all consumers.

    * top-level statements must be loops;
    * loop nests at most 2 deep, loop variables unique within a nest;
    * a loop containing a loop contains only loops (perfect-ish nests);
    * every Ref names a declared array; affine subscript vars must be
      bound by an enclosing loop.
    """
    names = [a.name for a in kernel.arrays]
    if len(set(names)) != len(names):
        raise KernelError(f"duplicate array declarations in {kernel.name!r}")
    declared = set(names)

    def check_index(index: Index, bound: set[str]) -> None:
        if isinstance(index, Affine):
            for var, _ in index.coeffs:
                if var not in bound:
                    raise KernelError(f"unbound loop var {var!r}")
        elif isinstance(index, Indirect):
            check_ref(index.ref, bound)
        elif isinstance(index, Computed):
            check_expr(index.expr, bound)
        else:
            raise KernelError(f"unknown index {index!r}")

    def check_ref(ref: Ref, bound: set[str]) -> None:
        if ref.array not in declared:
            raise KernelError(
                f"undeclared array {ref.array!r} in kernel {kernel.name!r}"
            )
        check_index(ref.index, bound)

    def check_expr(expr: Expr, bound: set[str]) -> None:
        for ref in expr_refs(expr):
            check_ref(ref, bound)

    def walk(stmt: Stmt, bound: set[str], depth: int,
             innermost: str | None) -> None:
        if isinstance(stmt, Loop):
            if depth >= 2:
                raise KernelError("loop nests deeper than 2 are unsupported")
            if stmt.var in bound:
                raise KernelError(f"shadowed loop var {stmt.var!r}")
            kinds = {isinstance(s, Loop) for s in stmt.body}
            if kinds == {True, False}:
                raise KernelError(
                    "a loop must contain either loops or statements, not both"
                )
            for s in stmt.body:
                walk(s, bound | {stmt.var}, depth + 1, stmt.var)
        elif isinstance(stmt, Assign):
            check_ref(stmt.dest, bound)
            for r in stmt_read_refs(stmt):
                check_ref(r, bound)
        elif isinstance(stmt, Reduce):
            check_ref(stmt.dest, bound)
            check_expr(stmt.expr, bound)
            dest_index = stmt.dest.index
            assert isinstance(dest_index, Affine)
            if innermost is not None and dest_index.coeff(innermost):
                raise KernelError(
                    "reduction target may not use the innermost loop "
                    f"variable {innermost!r}"
                )
        else:
            raise KernelError(f"unknown statement {stmt!r}")

    for stmt in kernel.body:
        if not isinstance(stmt, Loop):
            raise KernelError("kernel body must consist of loops")
        walk(stmt, set(), 0, None)
