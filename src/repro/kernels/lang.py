"""A small kernel source language (front-end for the loop IR).

Lets workloads be written as text instead of hand-built IR nodes::

    kernel hydro(x[n], y[n], z[n + 11]):
        for k in 0 .. n:
            x[k] = 0.84 + y[k] * (1.1 * z[k + 10] + 0.37 * z[k + 11])

compiled with ``parse_kernel(source, n=256)`` — every free name in an
array-size or loop-bound expression must be bound by a keyword parameter.

## Grammar

::

    kernel    := "kernel" NAME "(" decl ("," decl)* ")" ":" NEWLINE block
    decl      := NAME "[" const_expr "]"
    block     := INDENT stmt+ DEDENT
    stmt      := for | assign | reduce
    for       := "for" NAME "in" const_expr ".." const_expr ":" NEWLINE block
    assign    := ref "=" expr
    reduce    := ref ("+=" | "min=" | "max=") expr ("init" number)?
    expr      := sum (("<" | "<=" | "==" | "!=") sum)?       -- cmp only
                                                       inside select(...)
    sum       := term (("+" | "-") term)*
    term      := factor (("*" | "/" | "%") factor)*
    factor    := "-" factor | primary
    primary   := number | ref | "(" expr ")"
               | ("abs"|"sqrt"|"floor") "(" expr ")"
               | ("min"|"max") "(" expr "," expr ")"
               | "select" "(" expr cmpop expr "," expr "," expr ")"
    ref       := NAME "[" expr "]"

## Subscript classification

A subscript expression is analysed after parsing:

* affine in the enclosing loop variables (``k``, ``2*k + 3``, ``j*34 + i``)
  → :class:`~repro.kernels.ir.Affine`;
* exactly one array reference with an affine subscript (``ix[k]``)
  → :class:`~repro.kernels.ir.Indirect` (structured gather/scatter);
* anything else (``floor(x[i] * 997.0) % 64``)
  → :class:`~repro.kernels.ir.Computed` — a loss-of-decoupling access on
  the SMA machine.

Blocks are indentation-delimited (any consistent widening indent).
Comments run from ``#`` to end of line.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import KernelError
from .ir import (
    Affine,
    ArrayDecl,
    Assign,
    BinOp,
    Cmp,
    Computed,
    Const,
    Expr,
    Indirect,
    Kernel,
    Loop,
    Reduce,
    Ref,
    Select,
    Stmt,
    UnOp,
)


class ParseError(KernelError):
    """Syntax or semantic error in kernel source, with a line number."""

    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


# ---------------------------------------------------------------------------
# tokenizer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
      (?P<number>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?
                 |\d+(?:[eE][+-]?\d+)?)
    | (?P<op>\.\.|\+=|min=|max=|<=|==|!=|[-+*/%<>=(),:\[\]])
    | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
    | (?P<ws>[ \t]+)
    """,
    re.VERBOSE,
)
# note: the op alternative precedes name so the reduction operators
# ``min=``/``max=`` win over the bare names ``min``/``max``; a name that
# merely *starts* with those letters ("minimum") falls through to the name
# branch because the op branch requires the literal '='.


@dataclass(frozen=True)
class Token:
    kind: str  # "number" | "name" | "op" | "end"
    text: str
    line: int


def _tokenize_line(text: str, line_no: int) -> list[Token]:
    tokens: list[Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r}", line_no)
        pos = match.end()
        kind = match.lastgroup
        if kind != "ws":
            tokens.append(Token(kind, match.group(), line_no))
    tokens.append(Token("end", "", line_no))
    return tokens


@dataclass
class _Line:
    indent: int
    tokens: list[Token]
    number: int


def _logical_lines(source: str) -> list[_Line]:
    lines: list[_Line] = []
    for number, raw in enumerate(source.splitlines(), start=1):
        body = raw.split("#", 1)[0].rstrip()
        if not body.strip():
            continue
        stripped = body.lstrip(" \t")
        indent = len(body) - len(stripped)
        lines.append(_Line(indent, _tokenize_line(stripped, number), number))
    return lines


# ---------------------------------------------------------------------------
# expression parsing (over one line's token list)
# ---------------------------------------------------------------------------

_UNARY_FUNCS = {"abs", "sqrt", "floor"}
_BINARY_FUNCS = {"min", "max"}
_CMP_OPS = {"<", "<=", "==", "!="}


class _ExprParser:
    """Recursive-descent parser over one statement's tokens."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "end":
            self.pos += 1
        return token

    def accept(self, text: str) -> bool:
        if self.current.kind == "op" and self.current.text == text:
            self.advance()
            return True
        return False

    def expect(self, text: str) -> None:
        if not self.accept(text):
            raise ParseError(
                f"expected {text!r}, found {self.current.text or 'end of line'!r}",
                self.current.line,
            )

    def at_end(self) -> bool:
        return self.current.kind == "end"

    # -- grammar ----------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self._sum()

    def _sum(self) -> Expr:
        node = self._term()
        while self.current.kind == "op" and self.current.text in "+-":
            op = self.advance().text
            node = BinOp(op, node, self._term())
        return node

    def _term(self) -> Expr:
        node = self._factor()
        while self.current.kind == "op" and self.current.text in "*/%":
            op = self.advance().text
            node = BinOp("mod" if op == "%" else op, node, self._factor())
        return node

    def _factor(self) -> Expr:
        if self.accept("-"):
            operand = self._factor()
            if isinstance(operand, Const):
                return Const(-operand.value)
            return UnOp("neg", operand)
        return self._primary()

    def _primary(self) -> Expr:
        token = self.current
        if token.kind == "number":
            self.advance()
            return Const(float(token.text))
        if token.kind == "name":
            name = self.advance().text
            if name in _UNARY_FUNCS:
                self.expect("(")
                arg = self.parse_expr()
                self.expect(")")
                return UnOp(name, arg)
            if name in _BINARY_FUNCS:
                self.expect("(")
                a = self.parse_expr()
                self.expect(",")
                b = self.parse_expr()
                self.expect(")")
                return BinOp(name, a, b)
            if name == "select":
                return self._select()
            if self.accept("["):
                index = self.parse_expr()
                self.expect("]")
                return Ref(name, _RAW_INDEX(index))
            # a bare name: stands for a loop variable inside subscripts;
            # represented as a pseudo-ref resolved by classification
            return _VarExpr(name)
        if self.accept("("):
            inner = self.parse_expr()
            self.expect(")")
            return inner
        raise ParseError(
            f"expected an expression, found {token.text or 'end of line'!r}",
            token.line,
        )

    def _select(self) -> Expr:
        self.expect("(")
        lhs = self.parse_expr()
        token = self.current
        if token.kind != "op" or token.text not in _CMP_OPS:
            raise ParseError(
                "select(...) needs a comparison as its first argument",
                token.line,
            )
        op = self.advance().text
        rhs = self.parse_expr()
        self.expect(",")
        iftrue = self.parse_expr()
        self.expect(",")
        iffalse = self.parse_expr()
        self.expect(")")
        return Select(Cmp(op, lhs, rhs), iftrue, iffalse)


@dataclass(frozen=True)
class _VarExpr:
    """A bare name inside an expression — legal only where it can resolve
    to a loop variable during subscript classification."""

    name: str


def _RAW_INDEX(expr) -> Computed:
    """Subscripts are parsed as general expressions and classified later;
    park them in a Computed wrapper that classification unwraps.

    Wrapped in a plain ``Computed`` so that ``Ref`` construction succeeds;
    the classifier replaces it before the Kernel is built.
    """
    return Computed(expr)  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# subscript classification
# ---------------------------------------------------------------------------


def _as_affine(expr, loop_vars: set[str],
               params: dict[str, int]) -> Affine | None:
    """Try to express ``expr`` as an affine form over ``loop_vars``
    (size parameters act as integer constants)."""

    def walk(node) -> dict[str, float] | None:
        # returns {"": const, var: coeff, ...} or None if non-affine
        if isinstance(node, Const):
            return {"": float(node.value)}
        if isinstance(node, _VarExpr):
            if node.name in loop_vars:
                return {node.name: 1.0}
            if node.name in params:
                return {"": float(params[node.name])}
            return None
        if isinstance(node, UnOp) and node.op == "neg":
            inner = walk(node.operand)
            if inner is None:
                return None
            return {k: -v for k, v in inner.items()}
        if isinstance(node, BinOp):
            left = walk(node.lhs)
            right = walk(node.rhs)
            if node.op in ("+", "-") and left is not None and right is not None:
                sign = 1.0 if node.op == "+" else -1.0
                merged = dict(left)
                for key, value in right.items():
                    merged[key] = merged.get(key, 0.0) + sign * value
                return merged
            if node.op == "*" and left is not None and right is not None:
                # one side must be a pure constant
                for const_side, var_side in ((left, right), (right, left)):
                    if set(const_side) <= {""}:
                        scale = const_side.get("", 0.0)
                        return {
                            key: value * scale
                            for key, value in var_side.items()
                        }
                return None
            return None
        return None

    form = walk(expr)
    if form is None:
        return None
    offset = form.pop("", 0.0)
    if offset != int(offset) or any(v != int(v) for v in form.values()):
        return None
    coeffs = {var: int(coeff) for var, coeff in form.items() if coeff}
    return Affine.of(int(offset), **coeffs)


def _strip_vars(expr, loop_vars: set[str], params: dict[str, int],
                line: int) -> Expr:
    """Replace parse-time nodes inside a *value* expression: substitute
    size parameters as constants, classify every subscript, and reject
    bare loop-variable uses as values."""
    if isinstance(expr, _VarExpr):
        if expr.name in params and expr.name not in loop_vars:
            return Const(float(params[expr.name]))
        raise ParseError(
            f"loop variable {expr.name!r} cannot be used as a value "
            "(only inside subscripts)",
            line,
        )
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, Ref):
        return _classify_ref(expr, loop_vars, params, line)
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op,
            _strip_vars(expr.lhs, loop_vars, params, line),
            _strip_vars(expr.rhs, loop_vars, params, line),
        )
    if isinstance(expr, UnOp):
        return UnOp(expr.op,
                    _strip_vars(expr.operand, loop_vars, params, line))
    if isinstance(expr, Select):
        return Select(
            Cmp(
                expr.cond.op,
                _strip_vars(expr.cond.lhs, loop_vars, params, line),
                _strip_vars(expr.cond.rhs, loop_vars, params, line),
            ),
            _strip_vars(expr.iftrue, loop_vars, params, line),
            _strip_vars(expr.iffalse, loop_vars, params, line),
        )
    raise ParseError(f"unsupported expression node {expr!r}", line)


def _classify_ref(ref: Ref, loop_vars: set[str], params: dict[str, int],
                  line: int) -> Ref:
    raw = ref.index
    assert isinstance(raw, Computed), "parser wraps all subscripts"
    subscript = raw.expr
    affine = _as_affine(subscript, loop_vars, params)
    if affine is not None:
        return Ref(ref.array, affine)
    if isinstance(subscript, Ref):
        inner = _classify_ref(subscript, loop_vars, params, line)
        if isinstance(inner.index, Affine):
            return Ref(ref.array, Indirect(inner))
        raise ParseError(
            f"indirect subscript {inner} must itself be affine", line
        )
    return Ref(ref.array,
               Computed(_strip_vars(subscript, loop_vars, params, line)))


# ---------------------------------------------------------------------------
# constant expressions (sizes and bounds)
# ---------------------------------------------------------------------------


def _const_eval(expr, params: dict[str, int], line: int) -> int:
    if isinstance(expr, Const):
        value = expr.value
    elif isinstance(expr, _VarExpr):
        if expr.name not in params:
            raise ParseError(
                f"unknown size parameter {expr.name!r} (pass it as a "
                "keyword to parse_kernel)",
                line,
            )
        value = params[expr.name]
    elif isinstance(expr, UnOp) and expr.op == "neg":
        value = -_const_eval(expr.operand, params, line)
    elif isinstance(expr, BinOp) and expr.op in ("+", "-", "*"):
        left = _const_eval(expr.lhs, params, line)
        right = _const_eval(expr.rhs, params, line)
        value = {"+": left + right, "-": left - right, "*": left * right}[
            expr.op
        ]
    else:
        raise ParseError("sizes and bounds must be constant expressions",
                         line)
    if value != int(value):
        raise ParseError(f"non-integer constant {value}", line)
    return int(value)


# ---------------------------------------------------------------------------
# statement / kernel parsing
# ---------------------------------------------------------------------------


class _KernelParser:
    def __init__(self, source: str, params: dict[str, int]):
        self.lines = _logical_lines(source)
        self.params = params
        self.pos = 0

    def _peek(self) -> _Line | None:
        return self.lines[self.pos] if self.pos < len(self.lines) else None

    def parse(self) -> Kernel:
        header = self._peek()
        if header is None:
            raise ParseError("empty kernel source", 1)
        name, arrays = self._parse_header(header)
        self.pos += 1
        body = self._parse_block(header.indent, set())
        if self._peek() is not None:
            extra = self._peek()
            raise ParseError("trailing content after kernel body",
                             extra.number)
        for stmt in body:
            if not isinstance(stmt, Loop):
                raise ParseError(
                    "kernel body must consist of for-loops", header.number
                )
        return Kernel(name, arrays, tuple(body))

    def _parse_header(self, line: _Line) -> tuple[str, tuple[ArrayDecl, ...]]:
        p = _ExprParser(line.tokens)
        if not (p.current.kind == "name" and p.current.text == "kernel"):
            raise ParseError("kernel source must start with 'kernel'",
                             line.number)
        p.advance()
        if p.current.kind != "name":
            raise ParseError("expected kernel name", line.number)
        name = p.advance().text
        p.expect("(")
        decls: list[ArrayDecl] = []
        while True:
            if p.current.kind != "name":
                raise ParseError("expected array declaration", line.number)
            array = p.advance().text
            p.expect("[")
            size = _const_eval(p.parse_expr(), self.params, line.number)
            p.expect("]")
            decls.append(ArrayDecl(array, size))
            if not p.accept(","):
                break
        p.expect(")")
        p.expect(":")
        if not p.at_end():
            raise ParseError("unexpected tokens after ':'", line.number)
        return name, tuple(decls)

    def _parse_block(self, parent_indent: int, loop_vars: set[str]) -> list[Stmt]:
        first = self._peek()
        if first is None or first.indent <= parent_indent:
            line = first.number if first else self.lines[-1].number
            raise ParseError("expected an indented block", line)
        block_indent = first.indent
        stmts: list[Stmt] = []
        while True:
            line = self._peek()
            if line is None or line.indent < block_indent:
                break
            if line.indent > block_indent:
                raise ParseError("unexpected indent", line.number)
            stmts.append(self._parse_stmt(line, loop_vars))
        return stmts

    def _parse_stmt(self, line: _Line, loop_vars: set[str]) -> Stmt:
        p = _ExprParser(line.tokens)
        if p.current.kind == "name" and p.current.text == "for":
            return self._parse_for(line, p, loop_vars)
        self.pos += 1
        # assignment or reduction: starts with a ref
        if p.current.kind != "name":
            raise ParseError("expected a statement", line.number)
        target_name = p.advance().text
        p.expect("[")
        subscript = p.parse_expr()
        p.expect("]")
        dest_raw = Ref(target_name, _RAW_INDEX(subscript))
        token = p.current
        if token.kind == "op" and token.text in ("+=", "min=", "max="):
            op = {"+=": "+", "min=": "min", "max=": "max"}[p.advance().text]
            expr = p.parse_expr()
            init = 0.0
            if p.current.kind == "name" and p.current.text == "init":
                p.advance()
                init_expr = p._factor()
                if isinstance(init_expr, Const):
                    init = float(init_expr.value)
                else:
                    raise ParseError("init must be a number", line.number)
            if not p.at_end():
                raise ParseError("trailing tokens after reduction",
                                 line.number)
            dest = _classify_ref(dest_raw, loop_vars, self.params, line.number)
            if not isinstance(dest.index, Affine):
                raise ParseError("reduction target subscript must be affine",
                                 line.number)
            # use of the innermost loop variable is rejected by kernel
            # validation (it has the nest context); outer-var targets are
            # the per-row reduction form
            return Reduce(
                op, dest,
                _strip_vars(expr, loop_vars, self.params, line.number),
                init,
            )
        p.expect("=")
        expr = p.parse_expr()
        if not p.at_end():
            raise ParseError("trailing tokens after assignment", line.number)
        return Assign(
            _classify_ref(dest_raw, loop_vars, self.params, line.number),
            _strip_vars(expr, loop_vars, self.params, line.number),
        )

    def _parse_for(self, line: _Line, p: _ExprParser,
                   loop_vars: set[str]) -> Loop:
        p.advance()  # 'for'
        if p.current.kind != "name":
            raise ParseError("expected loop variable", line.number)
        var = p.advance().text
        if var in loop_vars:
            raise ParseError(f"loop variable {var!r} shadows an outer loop",
                             line.number)
        if not (p.current.kind == "name" and p.current.text == "in"):
            raise ParseError("expected 'in'", line.number)
        p.advance()
        start = _const_eval(p.parse_expr(), self.params, line.number)
        p.expect("..")
        stop = _const_eval(p.parse_expr(), self.params, line.number)
        p.expect(":")
        if not p.at_end():
            raise ParseError("unexpected tokens after ':'", line.number)
        if stop <= start:
            raise ParseError(
                f"empty loop range {start}..{stop}", line.number
            )
        self.pos += 1
        body = self._parse_block(line.indent, loop_vars | {var})
        return Loop(var, stop - start, tuple(body), start=start)


def parse_kernel(source: str, **params: int) -> Kernel:
    """Parse kernel source text into IR.

    Keyword arguments bind the free names used in array sizes and loop
    bounds (typically just ``n``).  Raises :class:`ParseError` (a
    :class:`~repro.errors.KernelError`) with a line number on any problem.
    """
    return _KernelParser(source, dict(params)).parse()
