"""Memory layout shared by all lowerings of a kernel.

Arrays are packed contiguously starting at ``base`` (default 16, leaving
low memory free for scratch).  Both code generators and the workload
runner use the same function, so the reference results can be compared
against machine memory word-for-word.
"""

from __future__ import annotations

from dataclasses import dataclass

from .ir import Kernel


@dataclass(frozen=True)
class Layout:
    """Base address of every kernel array plus the total footprint."""

    bases: dict[str, int]
    end: int

    def base(self, array: str) -> int:
        return self.bases[array]


def layout_arrays(kernel: Kernel, base: int = 16) -> Layout:
    """Assign consecutive base addresses to the kernel's arrays."""
    bases: dict[str, int] = {}
    cursor = base
    for decl in kernel.arrays:
        bases[decl.name] = cursor
        cursor += decl.size
    return Layout(bases, cursor)
