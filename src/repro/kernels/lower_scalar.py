"""Kernel-IR → scalar-baseline code generator.

Produces a single unified program for :class:`repro.baseline.ScalarMachine`
using the conventional compilation techniques of the era:

* strength-reduced address arithmetic — one pointer register per distinct
  array reference, bumped by the reference's stride each iteration instead
  of recomputed from the loop index;
* count-down loops closed with a single ``decbnz``;
* per-statement common-subexpression elimination of repeated array reads;
* reductions held in a register across the whole loop nest.

The point of being this careful with the baseline is fairness: the SMA
speedups reported by the benchmarks are measured against a competently
compiled scalar program, not a strawman.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterator, Union

from ..errors import LoweringError
from ..isa import Imm, Label, Op, Program, ProgramBuilder, Reg, ins
from .ir import (
    Affine,
    Assign,
    BinOp,
    Computed,
    Const,
    Expr,
    Indirect,
    Kernel,
    Loop,
    Reduce,
    Ref,
    Select,
    Stmt,
    UnOp,
)
from .layout import Layout, layout_arrays
from .regalloc import RegAlloc

_BINOP_TO_OP = {
    "+": Op.ADD,
    "-": Op.SUB,
    "*": Op.MUL,
    "/": Op.DIV,
    "min": Op.MIN,
    "max": Op.MAX,
    "mod": Op.MOD,
}
_UNOP_TO_OP = {
    "abs": Op.ABS,
    "neg": Op.NEG,
    "sqrt": Op.SQRT,
    "floor": Op.FLOOR,
}
_CMP_TO_OP = {
    "<": Op.CMPLT,
    "<=": Op.CMPLE,
    "==": Op.CMPEQ,
    "!=": Op.CMPNE,
}


@dataclass(frozen=True)
class LoweredScalar:
    """A compiled kernel for the scalar machine."""

    kernel: Kernel
    program: Program
    layout: Layout


def expr_top_refs(expr: Expr) -> Iterator[Ref]:
    """Direct array reads of an expression tree — unlike
    :func:`repro.kernels.ir.expr_refs` this does *not* descend into the
    subscript machinery of indirect/computed refs (those reads belong to
    the evaluation of the outer ref itself)."""
    if isinstance(expr, Ref):
        yield expr
    elif isinstance(expr, BinOp):
        yield from expr_top_refs(expr.lhs)
        yield from expr_top_refs(expr.rhs)
    elif isinstance(expr, UnOp):
        yield from expr_top_refs(expr.operand)
    elif isinstance(expr, Select):
        yield from expr_top_refs(expr.cond.lhs)
        yield from expr_top_refs(expr.cond.rhs)
        yield from expr_top_refs(expr.iftrue)
        yield from expr_top_refs(expr.iffalse)


def lower_scalar(kernel: Kernel, base: int = 16) -> LoweredScalar:
    """Compile ``kernel`` for the scalar baseline."""
    gen = _ScalarGen(kernel, base)
    return LoweredScalar(kernel, gen.generate(), gen.layout)


# ---------------------------------------------------------------------------


class _ScalarGen:
    def __init__(self, kernel: Kernel, base: int):
        self.kernel = kernel
        self.layout = layout_arrays(kernel, base)
        self.b = ProgramBuilder(f"{kernel.name}.scalar")
        self.regs = RegAlloc(f"{kernel.name}.scalar")
        # id(Reduce) -> accumulator register
        self._acc: dict[int, Reg] = {}
        # active pointer registers: Ref -> Reg (affine refs of current loop)
        self._ptrs: dict[Ref, Reg] = {}
        # per-statement CSE map: Ref -> value register
        self._cse: dict[Ref, Reg] = {}
        # loop var -> register holding its current value
        self._loop_vars: dict[str, Reg] = {}

    # -- entry point -----------------------------------------------------

    def generate(self) -> Program:
        for nest in self.kernel.body:
            assert isinstance(nest, Loop)
            self._gen_loop(nest)
        self.b.op(Op.HALT)
        return self.b.finalize()

    # -- loops ------------------------------------------------------------

    def _gen_loop(self, loop: Loop) -> None:
        if any(isinstance(s, Loop) for s in loop.body):
            var = self.regs.alloc()
            counter = self.regs.alloc()
            self._loop_vars[loop.var] = var
            self.b.op(Op.MOV, var, Imm(loop.start))
            self.b.op(Op.MOV, counter, Imm(loop.count))
            top = self.b.new_label(f"{loop.var}_outer")
            self.b.label(top)
            for stmt in loop.body:
                assert isinstance(stmt, Loop)
                self._gen_loop(stmt)
            self.b.op(Op.ADD, var, var, Imm(1))
            self.b.op(Op.DECBNZ, counter, Label(top))
            del self._loop_vars[loop.var]
            self.regs.free(counter)
            self.regs.free(var)
        else:
            self._gen_innermost(loop)

    def _gen_innermost(self, loop: Loop) -> None:
        # a Reduce accumulates over this loop: init its register here,
        # store it (to an address that may use outer loop vars) at exit
        direct_reduces = [s for s in loop.body if isinstance(s, Reduce)]
        for red in direct_reduces:
            acc = self.regs.alloc()
            self._acc[id(red)] = acc
            self.b.op(Op.MOV, acc, Imm(float(red.init)))
        ptr_refs = self._collect_affine_refs(loop)
        saved_ptrs = self._ptrs
        self._ptrs = {}
        for ref in ptr_refs:
            self._ptrs[ref] = self._init_pointer(ref, loop)
        counter = self.regs.alloc()
        self.b.op(Op.MOV, counter, Imm(loop.count))
        top = self.b.new_label(f"{loop.var}_loop")
        self.b.label(top)
        for stmt in loop.body:
            self._gen_stmt(stmt, loop)
        for ref, ptr in self._ptrs.items():
            index = ref.index
            assert isinstance(index, Affine)
            stride = index.coeff(loop.var)
            if stride:
                self.b.op(Op.ADD, ptr, ptr, Imm(stride))
        self.b.op(Op.DECBNZ, counter, Label(top))
        self.regs.free(counter)
        for ptr in self._ptrs.values():
            self.regs.free(ptr)
        self._ptrs = saved_ptrs
        for red in direct_reduces:
            acc = self._acc.pop(id(red))
            dest_ptr = self._init_pointer(red.dest, loop)
            self.b.op(Op.STORE, None, acc, dest_ptr, Imm(0))
            self.regs.free(dest_ptr)
            self.regs.free(acc)

    def _collect_affine_refs(self, loop: Loop) -> list[Ref]:
        """Distinct affine-indexed refs touched in the loop body (reads,
        indirect/computed subscript reads, and affine write targets)."""
        seen: dict[Ref, None] = {}

        def note(ref: Ref) -> None:
            if isinstance(ref.index, Affine):
                seen.setdefault(ref)
            elif isinstance(ref.index, Indirect):
                seen.setdefault(ref.index.ref)
                # subscript refs of the indirect target handled recursively
            elif isinstance(ref.index, Computed):
                for inner in expr_top_refs(ref.index.expr):
                    note(inner)

        for stmt in loop.body:
            if isinstance(stmt, Assign):
                note(stmt.dest)
                for ref in expr_top_refs(stmt.expr):
                    note(ref)
            elif isinstance(stmt, Reduce):
                for ref in expr_top_refs(stmt.expr):
                    note(ref)
            else:  # pragma: no cover - validated earlier
                raise LoweringError("nested loop in innermost body")
        return list(seen)

    def _init_pointer(self, ref: Ref, loop: Loop) -> Reg:
        """Materialize ``&ref`` at the first iteration of ``loop``."""
        index = ref.index
        assert isinstance(index, Affine)
        const_part = (
            self.layout.base(ref.array)
            + index.offset
            + index.coeff(loop.var) * loop.start
        )
        ptr = self.regs.alloc()
        self.b.op(Op.MOV, ptr, Imm(const_part))
        for var, coeff in index.coeffs:
            if var == loop.var or coeff == 0:
                continue
            if var not in self._loop_vars:
                raise LoweringError(f"pointer uses unbound loop var {var!r}")
            tmp = self.regs.alloc()
            self.b.op(Op.MUL, tmp, self._loop_vars[var], Imm(coeff))
            self.b.op(Op.ADD, ptr, ptr, tmp)
            self.regs.free(tmp)
        return ptr

    # -- statements --------------------------------------------------------

    def _gen_stmt(self, stmt: Union[Assign, Reduce], loop: Loop) -> None:
        # per-statement CSE: load refs used more than once exactly once
        if isinstance(stmt, Assign):
            reads = Counter(expr_top_refs(stmt.expr))
        else:
            reads = Counter(expr_top_refs(stmt.expr))
        self._cse = {}
        for ref, uses in reads.items():
            if uses > 1:
                self._cse[ref] = self._load_ref(ref)
        if isinstance(stmt, Assign):
            value = self._eval(stmt.expr)
            self._store(stmt.dest, value)
            self.regs.free(value)
        else:
            acc = self._acc[id(stmt)]
            value = self._eval(stmt.expr)
            self.b.op(_BINOP_TO_OP[stmt.op], acc, acc, value)
            self.regs.free(value)
        for reg in self._cse.values():
            self.regs.free(reg)
        self._cse = {}

    def _store(self, dest: Ref, value: Reg) -> None:
        if isinstance(dest.index, Affine):
            self.b.op(Op.STORE, None, value, self._ptrs[dest], Imm(0))
            return
        if isinstance(dest.index, Indirect):
            idx = self._load_ref(dest.index.ref)
            self.b.op(
                Op.ADD, idx, idx, Imm(self.layout.base(dest.array))
            )
            self.b.op(Op.STORE, None, value, idx, Imm(0))
            self.regs.free(idx)
            return
        raise LoweringError("computed store subscripts are unsupported")

    # -- expressions ---------------------------------------------------------

    def _load_ref(self, ref: Ref) -> Reg:
        """Load the value of ``ref`` into a fresh register."""
        index = ref.index
        if isinstance(index, Affine):
            reg = self.regs.alloc()
            self.b.op(Op.LOAD, reg, self._ptrs[ref], Imm(0))
            return reg
        if isinstance(index, Indirect):
            idx = self._load_ref(index.ref)
            self.b.op(Op.ADD, idx, idx, Imm(self.layout.base(ref.array)))
            self.b.op(Op.LOAD, idx, idx, Imm(0))
            return idx
        assert isinstance(index, Computed)
        idx = self._eval(index.expr)
        self.b.op(Op.ADD, idx, idx, Imm(self.layout.base(ref.array)))
        self.b.op(Op.LOAD, idx, idx, Imm(0))
        return idx

    def _eval(self, expr: Expr) -> Reg:
        """Evaluate ``expr`` into a fresh register (caller frees it)."""
        if isinstance(expr, Const):
            reg = self.regs.alloc()
            self.b.op(Op.MOV, reg, Imm(float(expr.value)))
            return reg
        if isinstance(expr, Ref):
            if expr in self._cse:
                reg = self.regs.alloc()
                self.b.op(Op.MOV, reg, self._cse[expr])
                return reg
            return self._load_ref(expr)
        if isinstance(expr, BinOp):
            lhs = self._eval(expr.lhs)
            rhs = self._eval(expr.rhs)
            self.b.op(_BINOP_TO_OP[expr.op], lhs, lhs, rhs)
            self.regs.free(rhs)
            return lhs
        if isinstance(expr, UnOp):
            operand = self._eval(expr.operand)
            self.b.op(_UNOP_TO_OP[expr.op], operand, operand)
            return operand
        if isinstance(expr, Select):
            cond_l = self._eval(expr.cond.lhs)
            cond_r = self._eval(expr.cond.rhs)
            self.b.op(_CMP_TO_OP[expr.cond.op], cond_l, cond_l, cond_r)
            self.regs.free(cond_r)
            t = self._eval(expr.iftrue)
            f = self._eval(expr.iffalse)
            self.b.op(Op.SEL, cond_l, cond_l, t, f)
            self.regs.free(t)
            self.regs.free(f)
            return cond_l
        raise LoweringError(f"cannot lower expression {expr!r}")


def _reductions(loop: Loop) -> list[Reduce]:
    found: list[Reduce] = []
    for s in loop.body:
        if isinstance(s, Reduce):
            found.append(s)
        elif isinstance(s, Loop):
            found.extend(_reductions(s))
    return found
