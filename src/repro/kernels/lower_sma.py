"""Kernel-IR → SMA code generator (the "structured access" compiler).

Produces an *access program* (AP) and an *execute program* (EP) for
:class:`repro.core.SMAMachine`.  The essential transformation is **stream
extraction**: every affine array reference in an innermost loop becomes a
single structured-access descriptor instruction on the AP, and a queue
operand on the EP:

====================  ==================================  ===================
IR pattern             access program                      execute program
====================  ==================================  ===================
read  ``a[c*i+d]``     ``streamld lqK, base, c, n``        ``lqK`` source
read  ``a[b[i]]``      ``streamld iqJ…; gather lqK…``      ``lqK`` source
read  ``a[f(vals)]``   per-element ``fromq``/``ldq`` loop  push idx to ``eaq``
write ``a[c*i+d]``     ``streamst sdqS, base, c, n``       ``sdqS`` dest
write ``a[b[i]]``      ``streamld iqJ…; scatter sdqS…``    ``sdqS`` dest
reduce                 ``staddr`` at each loop exit        register acc
====================  ==================================  ===================

Loop-carried recurrences at distance 1 (``x[i] = f(x[i-1], …)``) are
*register-forwarded*: the carried value lives in an EP register seeded by a
single ``ldq``, so the loop needs no load stream for ``x`` at all and — more
importantly — no store→load memory hazard exists.  Reading an array that the
same loop writes is otherwise legal only when the read index never trails
the write index (``δ ≥ 0``), which is hazard-free because loads always run
*ahead* of stores in a decoupled machine; trailing reads at distance > 1
raise :class:`~repro.errors.LoweringError`.

``use_streams=False`` selects the **ablation** lowering (experiment R-F5):
the same decoupled split, but the AP issues every element individually
(``ldq``/``staddr`` in a counted loop) instead of using descriptors — i.e.
a plain DAE machine without the structured-access feature.  The execute
program is identical in both modes.

Hazard caveat (documented contract): indirect read-modify-write kernels
(``a[ix[i]] op= …``) are only sequentially consistent when ``ix`` contains
no duplicate indices, because gathered loads run ahead of scattered stores.
The bundled workload generators use permutations.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..errors import LoweringError
from ..isa import EAQ, EBQ, Imm, Label, Op, Operand, Program, ProgramBuilder, Queue, Reg
from ..isa.operands import iq as iq_operand
from ..isa.operands import lq as lq_operand
from ..isa.operands import sdq as sdq_operand
from .ir import (
    Affine,
    Assign,
    BinOp,
    Cmp,
    Computed,
    Const,
    Expr,
    Indirect,
    Kernel,
    Loop,
    Reduce,
    Ref,
    Select,
    UnOp,
)
from .layout import Layout, layout_arrays
from .lower_scalar import expr_top_refs
from .regalloc import RegAlloc

_BINOP_TO_OP = {
    "+": Op.ADD,
    "-": Op.SUB,
    "*": Op.MUL,
    "/": Op.DIV,
    "min": Op.MIN,
    "max": Op.MAX,
    "mod": Op.MOD,
}
_UNOP_TO_OP = {
    "abs": Op.ABS,
    "neg": Op.NEG,
    "sqrt": Op.SQRT,
    "floor": Op.FLOOR,
}
_CMP_TO_OP = {
    "<": Op.CMPLT,
    "<=": Op.CMPLE,
    "==": Op.CMPEQ,
    "!=": Op.CMPNE,
}


@dataclass(frozen=True)
class SMALoweringInfo:
    """Static facts about a lowered kernel (feeds the R-T1 table)."""

    load_streams: int = 0
    store_streams: int = 0
    gather_streams: int = 0
    scatter_streams: int = 0
    computed_refs: int = 0
    carried_refs: int = 0
    reductions: int = 0


@dataclass(frozen=True)
class LoweredSMA:
    """A compiled kernel for the SMA machine."""

    kernel: Kernel
    access_program: Program
    execute_program: Program
    layout: Layout
    info: SMALoweringInfo
    uses_streams: bool = True
    lod_variant: str | None = None


LOD_VARIANTS = ("addr", "branch")


def lower_sma(
    kernel: Kernel,
    base: int = 16,
    use_streams: bool = True,
    lod_variant: str | None = None,
) -> LoweredSMA:
    """Compile ``kernel`` for the SMA machine.

    ``use_streams=False`` selects the per-element (plain-DAE) ablation.

    ``lod_variant`` deliberately lowers to a loss-of-decoupling-heavy
    shape (experiments R-T7/R-F9 — the workloads speculation targets):

    - ``"addr"``: every indirect *read* subscript is rewritten to a
      :class:`Computed` subscript, so the EP computes each gather index
      and round-trips it through ``EAQ`` (``lod_eaq`` per element).
    - ``"branch"``: the per-element ablation with the innermost AP
      back-edge turned into ``BQNZ`` on a loop-continue flag the EP
      pushes through ``EBQ`` each iteration (``lod_ebq`` per element).
      Forces ``use_streams=False``.
    """
    if lod_variant is not None and lod_variant not in LOD_VARIANTS:
        raise LoweringError(
            f"unknown lod_variant {lod_variant!r}; expected one of "
            f"{LOD_VARIANTS}"
        )
    if lod_variant == "addr":
        kernel = _indirect_reads_to_computed(kernel)
    elif lod_variant == "branch":
        use_streams = False
    gen = _SMAGen(kernel, base, use_streams, lod_variant=lod_variant)
    ap, ep, info = gen.generate()
    return LoweredSMA(kernel, ap, ep, gen.layout, info, use_streams,
                      lod_variant)


def _indirect_reads_to_computed(kernel: Kernel) -> Kernel:
    """Rewrite every indirect *read* ``a[b[i]]`` to the computed form
    ``a[expr(b[i])]`` (write targets untouched) — semantics are identical,
    but each gather index now round-trips EP → EAQ → AP."""

    def fix_expr(e: Expr) -> Expr:
        if isinstance(e, Ref):
            index = e.index
            if isinstance(index, Indirect):
                return Ref(e.array, Computed(index.ref))
            if isinstance(index, Computed):
                return Ref(e.array, Computed(fix_expr(index.expr)))
            return e
        if isinstance(e, BinOp):
            return BinOp(e.op, fix_expr(e.lhs), fix_expr(e.rhs))
        if isinstance(e, UnOp):
            return UnOp(e.op, fix_expr(e.operand))
        if isinstance(e, Select):
            cond = Cmp(e.cond.op, fix_expr(e.cond.lhs), fix_expr(e.cond.rhs))
            return Select(cond, fix_expr(e.iftrue), fix_expr(e.iffalse))
        return e  # Const

    def fix_stmt(s):
        if isinstance(s, Loop):
            return Loop(s.var, s.count,
                        tuple(fix_stmt(b) for b in s.body), s.start)
        if isinstance(s, Assign):
            return Assign(s.dest, fix_expr(s.expr))
        assert isinstance(s, Reduce)
        return Reduce(s.op, s.dest, fix_expr(s.expr), s.init)

    return Kernel(kernel.name, kernel.arrays,
                  tuple(fix_stmt(s) for s in kernel.body),
                  kernel.description)


# ---------------------------------------------------------------------------
# per-loop reference classification
# ---------------------------------------------------------------------------


@dataclass
class _ReadPlan:
    ref: Ref
    kind: str  # "stream" | "gather" | "computed" | "carried"
    uses: int
    queue: Queue | None = None        # LQ delivering the value
    index_queue: Queue | None = None  # IQ for gathers
    #: for carried reads: the write ref the value is forwarded from
    carried_from: Ref | None = None


@dataclass
class _WritePlan:
    ref: Ref
    data_queue: Queue
    index_queue: Queue | None = None  # IQ for scatters


@dataclass
class _LoopPlan:
    loop: Loop
    reads: list[_ReadPlan]
    writes: list[_WritePlan]
    reduces: list[Reduce]
    reduce_queues: dict[int, Queue]
    carried_init_queues: dict[Ref, Queue] = field(default_factory=dict)


class _QueueNamer:
    """Hands out LQ/SDQ/IQ indices for one innermost loop."""

    def __init__(self, gen: "_SMAGen"):
        self.gen = gen
        self.lq = 0
        self.sdq = 0
        self.iq = 0

    def next_lq(self) -> Queue:
        if self.lq >= self.gen.num_lq:
            raise LoweringError(
                f"{self.gen.kernel.name}: more load streams than the "
                f"{self.gen.num_lq} architectural load queues"
            )
        q = lq_operand(self.lq)
        self.lq += 1
        return q

    def next_sdq(self) -> Queue:
        if self.sdq >= self.gen.num_sdq:
            raise LoweringError(
                f"{self.gen.kernel.name}: more store targets than the "
                f"{self.gen.num_sdq} store-data queues"
            )
        q = sdq_operand(self.sdq)
        self.sdq += 1
        return q

    def next_iq(self) -> Queue:
        if self.iq >= self.gen.num_iq:
            raise LoweringError(
                f"{self.gen.kernel.name}: more index streams than the "
                f"{self.gen.num_iq} index queues"
            )
        q = iq_operand(self.iq)
        self.iq += 1
        return q


# ---------------------------------------------------------------------------


class _SMAGen:
    def __init__(
        self,
        kernel: Kernel,
        base: int,
        use_streams: bool,
        num_lq: int = 8,
        num_sdq: int = 4,
        num_iq: int = 4,
        lod_variant: str | None = None,
    ):
        self.kernel = kernel
        self.layout = layout_arrays(kernel, base)
        self.use_streams = use_streams
        self.lod_variant = lod_variant
        self.num_lq, self.num_sdq, self.num_iq = num_lq, num_sdq, num_iq
        self.ap = ProgramBuilder(f"{kernel.name}.sma.access")
        self.ep = ProgramBuilder(f"{kernel.name}.sma.execute")
        self.aregs = RegAlloc(f"{kernel.name}.ap")
        self.xregs = RegAlloc(f"{kernel.name}.ep")
        self._acc: dict[int, Reg] = {}        # id(Reduce) -> EP acc reg
        self._carried: dict[Ref, Reg] = {}    # read ref -> EP carried reg
        self._ap_loop_vars: dict[str, Reg] = {}
        self._counts = Counter()

    # -- entry point -------------------------------------------------------

    def generate(self) -> tuple[Program, Program, SMALoweringInfo]:
        for nest in self.kernel.body:
            assert isinstance(nest, Loop)
            self._gen_nest(nest, outer=None)
        self.ap.op(Op.HALT)
        self.ep.op(Op.HALT)
        info = SMALoweringInfo(
            load_streams=self._counts["load_streams"],
            store_streams=self._counts["store_streams"],
            gather_streams=self._counts["gather_streams"],
            scatter_streams=self._counts["scatter_streams"],
            computed_refs=self._counts["computed_refs"],
            carried_refs=self._counts["carried_refs"],
            reductions=self._counts["reductions"],
        )
        return self.ap.finalize(), self.ep.finalize(), info

    # -- loop nests -------------------------------------------------------

    def _gen_nest(self, loop: Loop, outer: Loop | None) -> dict[int, Queue]:
        """Generate one loop (outer or innermost); returns the SDQ chosen
        for each reduction in the subtree (keyed by id)."""
        if any(isinstance(s, Loop) for s in loop.body):
            # outer loop: AP drives stream re-issue, EP mirrors the trip count
            avar = self.aregs.alloc()
            acnt = self.aregs.alloc()
            self._ap_loop_vars[loop.var] = avar
            self.ap.op(Op.MOV, avar, Imm(loop.start))
            self.ap.op(Op.MOV, acnt, Imm(loop.count))
            ap_top = self.ap.new_label(f"{loop.var}_outer")
            self.ap.label(ap_top)
            xcnt = self.xregs.alloc()
            self.ep.op(Op.MOV, xcnt, Imm(loop.count))
            ep_top = self.ep.new_label(f"{loop.var}_outer")
            self.ep.label(ep_top)
            for stmt in loop.body:
                assert isinstance(stmt, Loop)
                self._gen_nest(stmt, outer=loop)
            self.ap.op(Op.ADD, avar, avar, Imm(1))
            self.ap.op(Op.DECBNZ, acnt, Label(ap_top))
            self.ep.op(Op.DECBNZ, xcnt, Label(ep_top))
            del self._ap_loop_vars[loop.var]
            self.aregs.free(acnt)
            self.aregs.free(avar)
            self.xregs.free(xcnt)
            return
        plan = self._plan_innermost(loop)
        if self.use_streams:
            self._gen_ap_streams(plan)
        else:
            self._gen_ap_per_element(plan)
        # reduction results: the AP pairs one store address per loop exit
        # with the accumulator value the EP pushes after its loop
        for red in plan.reduces:
            dest_index = red.dest.index
            assert isinstance(dest_index, Affine)
            base, tmp = self._stream_base(dest_index, red.dest.array, loop)
            self.ap.op(Op.STADDR, None, plan.reduce_queues[id(red)],
                       base, Imm(0))
            if tmp is not None:
                self.aregs.free(tmp)
        self._gen_ep_loop(plan)

    # -- analysis -----------------------------------------------------------

    def _plan_innermost(self, loop: Loop) -> _LoopPlan:
        namer = _QueueNamer(self)
        writes_raw: list[Ref] = []
        reduces: list[Reduce] = []
        read_counts: "Counter[Ref]" = Counter()
        read_positions: dict[Ref, list[int]] = {}
        write_position: dict[str, int] = {}

        def note_reads(refs, pos: int) -> None:
            for ref in refs:
                read_counts[ref] += 1
                read_positions.setdefault(ref, []).append(pos)
                # subscripts computed from data values are themselves EP
                # reads and must be planned (one level of nesting supported)
                if isinstance(ref.index, Computed):
                    note_reads(expr_top_refs(ref.index.expr), pos)

        for pos, stmt in enumerate(loop.body):
            if isinstance(stmt, Assign):
                if stmt.dest in writes_raw:
                    raise LoweringError(
                        f"duplicate writes to {stmt.dest} in one loop"
                    )
                writes_raw.append(stmt.dest)
                if isinstance(stmt.dest.index, Affine):
                    write_position[stmt.dest.array] = pos
                note_reads(expr_top_refs(stmt.expr), pos)
            elif isinstance(stmt, Reduce):
                reduces.append(stmt)
                note_reads(expr_top_refs(stmt.expr), pos)
            else:  # pragma: no cover - validated in ir
                raise LoweringError("nested loop in innermost body")
        affine_write_by_array: dict[str, Ref] = {}
        for dest in writes_raw:
            if isinstance(dest.index, Affine):
                if dest.array in affine_write_by_array:
                    raise LoweringError(
                        f"two affine writes to array {dest.array!r}"
                    )
                affine_write_by_array[dest.array] = dest

        reads: list[_ReadPlan] = []
        for ref, uses in read_counts.items():
            plan_item = self._classify_read(
                ref, uses, loop, affine_write_by_array, namer
            )
            # In-place reads (read index == write index) stream the *old*
            # memory value, which only matches sequential semantics when
            # every read occurs no later than the writing statement.
            if (
                plan_item.kind == "stream"
                and isinstance(ref.index, Affine)
                and ref.array in affine_write_by_array
            ):
                w_index = affine_write_by_array[ref.array].index
                assert isinstance(w_index, Affine)
                if ref.index.offset == w_index.offset and any(
                    p > write_position[ref.array]
                    for p in read_positions[ref]
                ):
                    raise LoweringError(
                        f"read of {ref} after the statement writing it; a "
                        "stream would deliver the stale value"
                    )
            reads.append(plan_item)
        writes: list[_WritePlan] = []
        for dest in writes_raw:
            if isinstance(dest.index, Affine):
                writes.append(_WritePlan(dest, namer.next_sdq()))
                self._counts["store_streams"] += 1
            elif isinstance(dest.index, Indirect):
                writes.append(
                    _WritePlan(dest, namer.next_sdq(), namer.next_iq())
                )
                self._counts["scatter_streams"] += 1
            else:
                raise LoweringError("computed store subscripts unsupported")
        reduce_queues = {id(r): namer.next_sdq() for r in reduces}
        self._counts["reductions"] += len(reduces)
        plan = _LoopPlan(loop, reads, writes, reduces, reduce_queues)
        for read in reads:
            if read.kind == "carried":
                plan.carried_init_queues[read.ref] = namer.next_lq()
        return plan

    def _classify_read(
        self,
        ref: Ref,
        uses: int,
        loop: Loop,
        affine_write_by_array: dict[str, Ref],
        namer: _QueueNamer,
    ) -> _ReadPlan:
        index = ref.index
        if isinstance(index, Affine):
            write = affine_write_by_array.get(ref.array)
            if write is not None:
                w_index = write.index
                assert isinstance(w_index, Affine)
                if index.coeffs != w_index.coeffs:
                    raise LoweringError(
                        f"read {ref} vs write {write}: differing index "
                        "shapes in one loop are unsupported"
                    )
                delta = index.offset - w_index.offset
                step = w_index.coeff(loop.var)
                if delta == -step and step != 0:
                    self._counts["carried_refs"] += 1
                    return _ReadPlan(
                        ref, "carried", uses, carried_from=write
                    )
                if delta < 0:
                    raise LoweringError(
                        f"read {ref} trails write {write} by more than one "
                        "iteration; register forwarding cannot bridge it"
                    )
                # delta >= 0: loads lead stores, hazard-free
            self._counts["load_streams"] += 1
            return _ReadPlan(ref, "stream", uses, queue=namer.next_lq())
        if isinstance(index, Indirect):
            if ref.array in affine_write_by_array:
                raise LoweringError(
                    f"gather from {ref.array!r} while the loop stream-writes"
                    " it is unsupported"
                )
            self._counts["gather_streams"] += 1
            return _ReadPlan(
                ref,
                "gather",
                uses,
                queue=namer.next_lq(),
                index_queue=namer.next_iq(),
            )
        assert isinstance(index, Computed)
        self._counts["computed_refs"] += 1
        return _ReadPlan(ref, "computed", uses, queue=namer.next_lq())

    # -- AP code: structured (descriptor) mode ------------------------------

    def _stream_base(self, index: Affine, array: str, loop: Loop):
        """Return (operand, temp_reg_or_None) for a stream base address."""
        const = (
            self.layout.base(array)
            + index.offset
            + index.coeff(loop.var) * loop.start
        )
        outer_terms = [
            (var, coeff)
            for var, coeff in index.coeffs
            if var != loop.var and coeff != 0
        ]
        if not outer_terms:
            return Imm(const), None
        reg = self.aregs.alloc()
        self.ap.op(Op.MOV, reg, Imm(const))
        for var, coeff in outer_terms:
            tmp = self.aregs.alloc()
            self.ap.op(Op.MUL, tmp, self._ap_loop_vars[var], Imm(coeff))
            self.ap.op(Op.ADD, reg, reg, tmp)
            self.aregs.free(tmp)
        return reg, reg

    def _gen_ap_streams(self, plan: _LoopPlan) -> None:
        loop = plan.loop
        n = Imm(loop.count)
        # carried seeds first: the EP consumes them before its first iteration
        for read in plan.reads:
            if read.kind != "carried":
                continue
            index = read.ref.index
            assert isinstance(index, Affine)
            base, tmp = self._stream_base(index, read.ref.array, loop)
            queue = plan.carried_init_queues[read.ref]
            self.ap.op(Op.LDQ, queue, base, Imm(0))
            if tmp is not None:
                self.aregs.free(tmp)
        # load streams and gathers
        computed: list[_ReadPlan] = []
        for read in plan.reads:
            if read.kind == "stream":
                index = read.ref.index
                assert isinstance(index, Affine)
                base, tmp = self._stream_base(index, read.ref.array, loop)
                self.ap.op(
                    Op.STREAMLD,
                    read.queue,
                    base,
                    Imm(index.coeff(loop.var)),
                    n,
                )
                if tmp is not None:
                    self.aregs.free(tmp)
            elif read.kind == "gather":
                index = read.ref.index
                assert isinstance(index, Indirect)
                inner = index.ref.index
                assert isinstance(inner, Affine)
                base, tmp = self._stream_base(inner, index.ref.array, loop)
                self.ap.op(
                    Op.STREAMLD,
                    read.index_queue,
                    base,
                    Imm(inner.coeff(loop.var)),
                    n,
                )
                if tmp is not None:
                    self.aregs.free(tmp)
                self.ap.op(
                    Op.GATHER,
                    read.queue,
                    read.index_queue,
                    Imm(self.layout.base(read.ref.array)),
                    n,
                )
            elif read.kind == "computed":
                computed.append(read)
        # store streams / scatters
        for write in plan.writes:
            index = write.ref.index
            if isinstance(index, Affine):
                base, tmp = self._stream_base(index, write.ref.array, loop)
                self.ap.op(
                    Op.STREAMST,
                    None,
                    write.data_queue,
                    base,
                    Imm(index.coeff(loop.var)),
                    n,
                )
                if tmp is not None:
                    self.aregs.free(tmp)
            else:
                assert isinstance(index, Indirect)
                inner = index.ref.index
                assert isinstance(inner, Affine)
                base, tmp = self._stream_base(inner, index.ref.array, loop)
                self.ap.op(
                    Op.STREAMLD,
                    write.index_queue,
                    base,
                    Imm(inner.coeff(loop.var)),
                    n,
                )
                if tmp is not None:
                    self.aregs.free(tmp)
                self.ap.op(
                    Op.SCATTER,
                    None,
                    write.data_queue,
                    write.index_queue,
                    Imm(self.layout.base(write.ref.array)),
                    n,
                )
        # computed subscripts force a per-element AP service loop
        if computed:
            counter = self.aregs.alloc()
            addr = self.aregs.alloc()
            self.ap.op(Op.MOV, counter, Imm(loop.count))
            top = self.ap.new_label("lod_serve")
            self.ap.label(top)
            for read in computed:
                self.ap.op(Op.FROMQ, addr, EAQ)
                self.ap.op(
                    Op.LDQ,
                    read.queue,
                    addr,
                    Imm(self.layout.base(read.ref.array)),
                )
            self.ap.op(Op.DECBNZ, counter, Label(top))
            self.aregs.free(addr)
            self.aregs.free(counter)

    # -- AP code: per-element (ablation) mode -------------------------------

    def _gen_ap_per_element(self, plan: _LoopPlan) -> None:
        loop = plan.loop
        # carried seeds exactly as in stream mode
        for read in plan.reads:
            if read.kind != "carried":
                continue
            index = read.ref.index
            assert isinstance(index, Affine)
            base, tmp = self._stream_base(index, read.ref.array, loop)
            self.ap.op(Op.LDQ, plan.carried_init_queues[read.ref], base, Imm(0))
            if tmp is not None:
                self.aregs.free(tmp)

        ptrs: dict[Ref, Reg] = {}

        def pointer_for(ref: Ref) -> Reg:
            if ref not in ptrs:
                index = ref.index
                assert isinstance(index, Affine)
                operand, tmp = self._stream_base(index, ref.array, loop)
                if tmp is None:
                    reg = self.aregs.alloc()
                    self.ap.op(Op.MOV, reg, operand)
                else:
                    reg = tmp
                ptrs[ref] = reg
            return ptrs[ref]

        # materialize pointers before the loop; order the per-element steps
        # so data the EP needs is issued before anything that waits on the
        # EP (a `fromq eaq` ahead of the loads feeding the index expression
        # would deadlock the two processors against each other)
        steps: list[tuple[str, object]] = []
        computed_steps: list[tuple[str, object]] = []
        for read in plan.reads:
            if read.kind == "stream":
                steps.append(("load", read))
                pointer_for(read.ref)
            elif read.kind == "gather":
                index = read.ref.index
                assert isinstance(index, Indirect)
                pointer_for(index.ref)
                steps.append(("gather", read))
            elif read.kind == "computed":
                computed_steps.append(("computed", read))
        steps.extend(computed_steps)
        for write in plan.writes:
            index = write.ref.index
            if isinstance(index, Affine):
                pointer_for(write.ref)
                steps.append(("store", write))
            else:
                assert isinstance(index, Indirect)
                pointer_for(index.ref)
                steps.append(("scatter", write))

        counter = self.aregs.alloc()
        scratch = self.aregs.alloc()
        if self.lod_variant != "branch":
            self.ap.op(Op.MOV, counter, Imm(loop.count))
        top = self.ap.new_label("elem")
        self.ap.label(top)
        for kind, item in steps:
            if kind == "load":
                read = item
                self.ap.op(Op.LDQ, read.queue, ptrs[read.ref], Imm(0))
            elif kind == "gather":
                read = item
                index = read.ref.index
                self.ap.op(Op.LDQ, read.index_queue, ptrs[index.ref], Imm(0))
                self.ap.op(Op.FROMQ, scratch, read.index_queue)
                self.ap.op(
                    Op.LDQ,
                    read.queue,
                    scratch,
                    Imm(self.layout.base(read.ref.array)),
                )
            elif kind == "computed":
                read = item
                self.ap.op(Op.FROMQ, scratch, EAQ)
                self.ap.op(
                    Op.LDQ,
                    read.queue,
                    scratch,
                    Imm(self.layout.base(read.ref.array)),
                )
            elif kind == "store":
                write = item
                self.ap.op(
                    Op.STADDR, None, write.data_queue, ptrs[write.ref], Imm(0)
                )
            else:  # scatter
                write = item
                index = write.ref.index
                self.ap.op(Op.LDQ, write.index_queue, ptrs[index.ref], Imm(0))
                self.ap.op(Op.FROMQ, scratch, write.index_queue)
                self.ap.op(
                    Op.STADDR,
                    None,
                    write.data_queue,
                    scratch,
                    Imm(self.layout.base(write.ref.array)),
                )
        # bump pointers
        for ref, reg in ptrs.items():
            index = ref.index
            assert isinstance(index, Affine)
            stride = index.coeff(loop.var)
            if stride:
                self.ap.op(Op.ADD, reg, reg, Imm(stride))
        if self.lod_variant == "branch":
            # the EP sends a continue flag through EBQ each iteration:
            # the AP's trip count is execute-resolved (lod_ebq per element)
            self.ap.op(Op.BQNZ, None, Label(top))
        else:
            self.ap.op(Op.DECBNZ, counter, Label(top))
        self.aregs.free(scratch)
        self.aregs.free(counter)
        for reg in ptrs.values():
            self.aregs.free(reg)

    # -- EP code ------------------------------------------------------------

    def _gen_ep_loop(self, plan: _LoopPlan) -> None:
        loop = plan.loop
        # reduction accumulators reset at each entry of this loop
        for red in plan.reduces:
            acc = self.xregs.alloc()
            self._acc[id(red)] = acc
            self.ep.op(Op.MOV, acc, Imm(float(red.init)))
        # seed carried registers (one pop per nest entry)
        for read in plan.reads:
            if read.kind != "carried":
                continue
            reg = self.xregs.alloc()
            self._carried[read.ref] = reg
            self.ep.op(Op.MOV, reg, plan.carried_init_queues[read.ref])
        counter = self.xregs.alloc()
        self.ep.op(Op.MOV, counter, Imm(loop.count))
        top = self.ep.new_label(f"{loop.var}_ep")
        self.ep.label(top)
        # iteration prologue, two passes: plain values first (so computed
        # subscripts can consume them), then the computed refs themselves.
        value_of: dict[Ref, Operand] = {}
        prologue_regs: list[Reg] = []
        for read in plan.reads:
            if read.kind == "carried":
                value_of[read.ref] = self._carried[read.ref]
            elif read.kind == "computed":
                continue
            elif read.uses > 1:
                reg = self.xregs.alloc()
                self.ep.op(Op.MOV, reg, read.queue)
                value_of[read.ref] = reg
                prologue_regs.append(reg)
            else:
                value_of[read.ref] = read.queue  # inline: pops on use
        for read in plan.reads:
            if read.kind != "computed":
                continue
            index = read.ref.index
            assert isinstance(index, Computed)
            idx_operand, idx_temps = self._ep_operand(index.expr, value_of)
            self.ep.op(Op.MOV, EAQ, idx_operand)
            for t in idx_temps:
                self.xregs.free(t)
            reg = self.xregs.alloc()
            self.ep.op(Op.MOV, reg, read.queue)
            value_of[read.ref] = reg
            prologue_regs.append(reg)
        # statements
        for stmt in loop.body:
            if isinstance(stmt, Assign):
                carried_targets = [
                    r for r, w in (
                        (read.ref, read.carried_from) for read in plan.reads
                    )
                    if w == stmt.dest
                ]
                write = next(
                    w for w in plan.writes if w.ref == stmt.dest
                )
                if carried_targets:
                    reg = self.xregs.alloc()
                    self._ep_eval_into(reg, stmt.expr, value_of)
                    self.ep.op(Op.MOV, write.data_queue, reg)
                    for ref in carried_targets:
                        self.ep.op(Op.MOV, self._carried[ref], reg)
                    self.xregs.free(reg)
                else:
                    self._ep_eval_into(write.data_queue, stmt.expr, value_of)
            else:
                assert isinstance(stmt, Reduce)
                acc = self._acc[id(stmt)]
                operand, temps = self._ep_operand(stmt.expr, value_of)
                self.ep.op(_BINOP_TO_OP[stmt.op], acc, acc, operand)
                for t in temps:
                    self.xregs.free(t)
        for reg in prologue_regs:
            self.xregs.free(reg)
        if self.lod_variant == "branch":
            # push the loop-continue flag (counter - 1, nonzero while more
            # iterations remain) the AP's BQNZ back-edge is waiting on
            flag = self.xregs.alloc()
            self.ep.op(Op.SUB, flag, counter, Imm(1))
            self.ep.op(Op.MOV, EBQ, flag)
            self.xregs.free(flag)
        self.ep.op(Op.DECBNZ, counter, Label(top))
        self.xregs.free(counter)
        for read in plan.reads:
            if read.kind == "carried":
                self.xregs.free(self._carried.pop(read.ref))
        # push each accumulator toward the STADDR the AP queued
        for red in plan.reduces:
            acc = self._acc.pop(id(red))
            self.ep.op(Op.MOV, plan.reduce_queues[id(red)], acc)
            self.xregs.free(acc)

    # -- EP expression evaluation -------------------------------------------

    def _ep_operand(
        self, expr: Expr, value_of: dict[Ref, Operand]
    ) -> tuple[Operand, list[Reg]]:
        """Evaluate to a source operand; simple nodes stay inline (queue,
        register, immediate), compound nodes compute into a temp register
        returned in the to-free list."""
        if isinstance(expr, Const):
            return Imm(float(expr.value)), []
        if isinstance(expr, Ref):
            if expr not in value_of:
                raise LoweringError(f"unplanned EP read of {expr}")
            return value_of[expr], []
        reg = self.xregs.alloc()
        self._ep_eval_into(reg, expr, value_of)
        return reg, [reg]

    def _ep_eval_into(
        self, dest: Operand, expr: Expr, value_of: dict[Ref, Operand]
    ) -> None:
        """Evaluate ``expr`` with its root operation writing ``dest``
        (a register or a push-able queue)."""
        if isinstance(expr, (Const, Ref)):
            operand, temps = self._ep_operand(expr, value_of)
            self.ep.op(Op.MOV, dest, operand)
            for t in temps:
                self.xregs.free(t)
            return
        if isinstance(expr, BinOp):
            lhs, lt = self._ep_operand(expr.lhs, value_of)
            rhs, rt = self._ep_operand(expr.rhs, value_of)
            self.ep.op(_BINOP_TO_OP[expr.op], dest, lhs, rhs)
            for t in lt + rt:
                self.xregs.free(t)
            return
        if isinstance(expr, UnOp):
            operand, temps = self._ep_operand(expr.operand, value_of)
            self.ep.op(_UNOP_TO_OP[expr.op], dest, operand)
            for t in temps:
                self.xregs.free(t)
            return
        if isinstance(expr, Select):
            cl, clt = self._ep_operand(expr.cond.lhs, value_of)
            cr, crt = self._ep_operand(expr.cond.rhs, value_of)
            cond = self.xregs.alloc()
            self.ep.op(_CMP_TO_OP[expr.cond.op], cond, cl, cr)
            for t in clt + crt:
                self.xregs.free(t)
            tv, tt = self._ep_operand(expr.iftrue, value_of)
            fv, ft = self._ep_operand(expr.iffalse, value_of)
            self.ep.op(Op.SEL, dest, cond, tv, fv)
            self.xregs.free(cond)
            for t in tt + ft:
                self.xregs.free(t)
            return
        raise LoweringError(f"cannot lower EP expression {expr!r}")


def _reductions(loop: Loop) -> list[Reduce]:
    found: list[Reduce] = []
    for s in loop.body:
        if isinstance(s, Reduce):
            found.append(s)
        elif isinstance(s, Loop):
            found.extend(_reductions(s))
    return found
