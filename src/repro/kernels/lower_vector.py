"""Kernel-IR → vector-machine code generator (strip-mining vectorizer).

Compiles kernels for :class:`repro.baseline.vector_machine.VectorMachine`
by strip-mining each innermost loop into ``max_vl``-element strips of
chained vector operations.  This is deliberately a *classic* vectorizer —
its rejection rules are the point of the comparison (experiment R-T6):

=====================  =================================================
IR pattern             vectorizer verdict
=====================  =================================================
affine reads/writes    vectorized (``vload``/``vstore`` with stride)
selects                vectorized (element-wise compare + select)
reductions             vectorized (fold op per strip)
invariant reads        vectorized (stride-0 load)
distance-1 recurrence  **rejected** — loop-carried dependence
trailing read (δ < 0)  **rejected** — loop-carried dependence
indirect subscripts    **rejected** — no gather/scatter hardware
computed subscripts    **rejected** — data-dependent addressing
=====================  =================================================

Exactly the patterns the vectorizer rejects are the ones the SMA handles
at full decoupled speed (register forwarding, gather chaining, the EAQ
path) — which is the 1983 argument for decoupled access/execute over
vector hardware.

Outer loops of 2-deep nests are fully unrolled at compile time (the
vector machine's scalar bookkeeping is free — charitable to the
baseline).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..baseline.vector_machine import (
    NUM_VREGS,
    SetAcc,
    StoreAcc,
    Strip,
    VArith,
    VectorOp,
    VLoad,
    VReduce,
    VStore,
)
from ..errors import LoweringError
from ..isa import Op
from .ir import (
    Affine,
    Assign,
    BinOp,
    Computed,
    Const,
    Expr,
    Indirect,
    Kernel,
    Loop,
    Reduce,
    Ref,
    Select,
    UnOp,
)
from .layout import Layout, layout_arrays
from .lower_scalar import expr_top_refs

_BINOP_TO_OP = {
    "+": Op.ADD, "-": Op.SUB, "*": Op.MUL, "/": Op.DIV,
    "min": Op.MIN, "max": Op.MAX, "mod": Op.MOD,
}
_UNOP_TO_OP = {
    "abs": Op.ABS, "neg": Op.NEG, "sqrt": Op.SQRT, "floor": Op.FLOOR,
}
_CMP_TO_OP = {
    "<": Op.CMPLT, "<=": Op.CMPLE, "==": Op.CMPEQ, "!=": Op.CMPNE,
}
_REDUCE_TO_OP = {"+": Op.ADD, "min": Op.MIN, "max": Op.MAX}


class VectorizationError(LoweringError):
    """The kernel contains a pattern a classic vectorizer must reject."""


@dataclass(frozen=True)
class LoweredVector:
    kernel: Kernel
    program: tuple[VectorOp, ...]
    layout: Layout
    max_vl: int


def lower_vector(
    kernel: Kernel, base: int = 16, max_vl: int = 64
) -> LoweredVector:
    """Vectorize ``kernel`` or raise :class:`VectorizationError`."""
    gen = _VectorGen(kernel, base, max_vl)
    return LoweredVector(kernel, tuple(gen.generate()), gen.layout, max_vl)


class _VRegs:
    def __init__(self) -> None:
        self._free = list(range(NUM_VREGS - 1, -1, -1))

    def alloc(self) -> int:
        if not self._free:
            raise VectorizationError(
                f"expression needs more than {NUM_VREGS} vector registers"
            )
        return self._free.pop()

    def free(self, index: int) -> None:
        self._free.append(index)


class _VectorGen:
    def __init__(self, kernel: Kernel, base: int, max_vl: int):
        self.kernel = kernel
        self.layout = layout_arrays(kernel, base)
        self.max_vl = max_vl
        self._acc_ids: dict[int, int] = {}
        self._next_acc = 0

    # -- entry --------------------------------------------------------------

    def generate(self) -> list[VectorOp]:
        program: list[VectorOp] = []
        for nest in self.kernel.body:
            assert isinstance(nest, Loop)
            self._gen_loop(nest, {}, program)
        return program

    # -- loops ----------------------------------------------------------------

    def _gen_loop(
        self, loop: Loop, outer_env: dict[str, int],
        program: list[VectorOp],
    ) -> None:
        if any(isinstance(s, Loop) for s in loop.body):
            # outer loop: unroll at compile time
            for i in range(loop.start, loop.start + loop.count):
                env = dict(outer_env)
                env[loop.var] = i
                for stmt in loop.body:
                    assert isinstance(stmt, Loop)
                    self._gen_loop(stmt, env, program)
            return
        self._check_vectorizable(loop)
        # reductions reset at each entry of this (innermost) loop and
        # store at its exit; outer loops are unrolled, so outer_env gives
        # a concrete destination address
        direct_reduces = [s for s in loop.body if isinstance(s, Reduce)]
        for red in direct_reduces:
            acc = self._next_acc
            self._next_acc += 1
            self._acc_ids[id(red)] = acc
            program.append(SetAcc(acc, float(red.init)))
        remaining = loop.count
        offset = loop.start
        while remaining > 0:
            length = min(remaining, self.max_vl)
            program.append(self._gen_strip(loop, outer_env, offset, length))
            offset += length
            remaining -= length
        for red in direct_reduces:
            dest_index = red.dest.index
            assert isinstance(dest_index, Affine)
            address = (self.layout.base(red.dest.array)
                       + dest_index.evaluate({**outer_env, loop.var: 0}))
            program.append(StoreAcc(self._acc_ids.pop(id(red)), address))

    # -- legality -----------------------------------------------------------

    def _check_vectorizable(self, loop: Loop) -> None:
        affine_writes: dict[str, Ref] = {}
        for stmt in loop.body:
            if isinstance(stmt, Assign):
                index = stmt.dest.index
                if isinstance(index, Indirect):
                    raise VectorizationError(
                        f"{self.kernel.name}: indirect store "
                        f"{stmt.dest} needs scatter hardware"
                    )
                if isinstance(index, Computed):
                    raise VectorizationError(
                        f"{self.kernel.name}: computed store subscript"
                    )
                affine_writes[stmt.dest.array] = stmt.dest
        for stmt in loop.body:
            reads = (
                expr_top_refs(stmt.expr)
                if isinstance(stmt, (Assign, Reduce))
                else ()
            )
            for ref in reads:
                index = ref.index
                if isinstance(index, Indirect):
                    raise VectorizationError(
                        f"{self.kernel.name}: gather {ref} not supported"
                    )
                if isinstance(index, Computed):
                    raise VectorizationError(
                        f"{self.kernel.name}: data-dependent subscript {ref}"
                    )
                assert isinstance(index, Affine)
                write = affine_writes.get(ref.array)
                if write is not None:
                    w_index = write.index
                    assert isinstance(w_index, Affine)
                    if index.coeffs != w_index.coeffs:
                        raise VectorizationError(
                            f"{self.kernel.name}: read/write index shapes "
                            f"differ on {ref.array!r}"
                        )
                    if index.offset < w_index.offset:
                        raise VectorizationError(
                            f"{self.kernel.name}: loop-carried dependence "
                            f"{ref} vs {write}"
                        )

    # -- strips ----------------------------------------------------------------

    def _gen_strip(
        self, loop: Loop, outer_env: dict[str, int],
        strip_start: int, length: int,
    ) -> Strip:
        ops: list = []
        vregs = _VRegs()
        loaded: dict[Ref, int] = {}

        def address_at_strip(index: Affine) -> tuple[int, int]:
            env = dict(outer_env)
            env[loop.var] = strip_start
            return index.evaluate(env), index.coeff(loop.var)

        # collect every unique read ref of the strip body and load it once,
        # before any store (loads-lead-stores matches sequential semantics
        # for the δ >= 0 patterns the legality check admits)
        read_counts: Counter = Counter()
        for stmt in loop.body:
            read_counts.update(expr_top_refs(stmt.expr))
        for ref in read_counts:
            index = ref.index
            assert isinstance(index, Affine)
            base, stride = address_at_strip(index)
            vreg = vregs.alloc()
            ops.append(VLoad(
                vreg, self.layout.base(ref.array) + base, stride, length
            ))
            loaded[ref] = vreg

        def eval_expr(expr: Expr) -> tuple[object, bool]:
            """Return (vreg | scalar, owned)."""
            if isinstance(expr, Const):
                return float(expr.value), False
            if isinstance(expr, Ref):
                return loaded[expr], False
            if isinstance(expr, BinOp):
                lhs, lown = eval_expr(expr.lhs)
                rhs, rown = eval_expr(expr.rhs)
                dest = vregs.alloc()
                ops.append(VArith(_BINOP_TO_OP[expr.op], dest, (lhs, rhs)))
                if lown:
                    vregs.free(lhs)  # type: ignore[arg-type]
                if rown:
                    vregs.free(rhs)  # type: ignore[arg-type]
                return dest, True
            if isinstance(expr, UnOp):
                src, owned = eval_expr(expr.operand)
                dest = vregs.alloc()
                ops.append(VArith(_UNOP_TO_OP[expr.op], dest, (src,)))
                if owned:
                    vregs.free(src)  # type: ignore[arg-type]
                return dest, True
            if isinstance(expr, Select):
                cl, clo = eval_expr(expr.cond.lhs)
                cr, cro = eval_expr(expr.cond.rhs)
                cond = vregs.alloc()
                ops.append(VArith(_CMP_TO_OP[expr.cond.op], cond, (cl, cr)))
                if clo:
                    vregs.free(cl)  # type: ignore[arg-type]
                if cro:
                    vregs.free(cr)  # type: ignore[arg-type]
                tv, town = eval_expr(expr.iftrue)
                fv, fown = eval_expr(expr.iffalse)
                dest = vregs.alloc()
                ops.append(VArith(Op.SEL, dest, (cond, tv, fv)))
                vregs.free(cond)
                if town:
                    vregs.free(tv)  # type: ignore[arg-type]
                if fown:
                    vregs.free(fv)  # type: ignore[arg-type]
                return dest, True
            raise VectorizationError(f"cannot vectorize {expr!r}")

        for stmt in loop.body:
            if isinstance(stmt, Assign):
                value, owned = eval_expr(stmt.expr)
                if not isinstance(value, int):
                    # splat a scalar into a register for storing
                    vreg = vregs.alloc()
                    ops.append(VArith(Op.MOV, vreg, (value,)))
                    value, owned = vreg, True
                index = stmt.dest.index
                assert isinstance(index, Affine)
                base, stride = address_at_strip(index)
                ops.append(VStore(
                    value, self.layout.base(stmt.dest.array) + base,
                    stride, length,
                ))
                if owned:
                    vregs.free(value)
            else:
                assert isinstance(stmt, Reduce)
                value, owned = eval_expr(stmt.expr)
                if not isinstance(value, int):
                    vreg = vregs.alloc()
                    ops.append(VArith(Op.MOV, vreg, (value,)))
                    value, owned = vreg, True
                ops.append(VReduce(
                    _REDUCE_TO_OP[stmt.op], self._acc_ids[id(stmt)], value
                ))
                if owned:
                    vregs.free(value)
        return Strip(tuple(ops), length)


def _reductions(loop: Loop) -> list[Reduce]:
    found: list[Reduce] = []
    for s in loop.body:
        if isinstance(s, Reduce):
            found.append(s)
        elif isinstance(s, Loop):
            found.extend(_reductions(s))
    return found
