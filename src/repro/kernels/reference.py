"""Reference interpreter for the kernel IR (the golden model).

Executes a kernel directly over NumPy arrays, element by element, with the
*identical* scalar semantics the simulated machines use (same operator
table as :data:`repro.isa.ALU_FUNCS`, Python-float arithmetic) so that
differential tests can demand bit-exact equality between the reference and
both machine lowerings.
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np

from ..errors import KernelError
from .ir import (
    Affine,
    Assign,
    BinOp,
    Computed,
    Const,
    Indirect,
    Kernel,
    Loop,
    Reduce,
    Ref,
    Select,
    Stmt,
    UnOp,
)

_BIN = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "min": min,
    "max": max,
    "mod": lambda a, b: a % b,
}
_UN = {
    "abs": abs,
    "neg": lambda a: -a,
    "sqrt": math.sqrt,
    "floor": lambda a: float(math.floor(a)),
}
_CMP = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


def _as_index(value: float, array: str, size: int) -> int:
    idx = int(value)
    if idx != value:
        raise KernelError(
            f"non-integral subscript {value!r} into array {array!r}"
        )
    if not 0 <= idx < size:
        raise KernelError(f"subscript {idx} out of range for {array!r}")
    return idx


class ReferenceInterpreter:
    """Evaluate a kernel over copies of the provided input arrays."""

    def __init__(self, kernel: Kernel, inputs: Mapping[str, np.ndarray]):
        self.kernel = kernel
        self.arrays: dict[str, np.ndarray] = {}
        for decl in kernel.arrays:
            if decl.name not in inputs:
                raise KernelError(
                    f"missing input array {decl.name!r} for {kernel.name!r}"
                )
            data = np.asarray(inputs[decl.name], dtype=np.float64)
            if data.shape != (decl.size,):
                raise KernelError(
                    f"array {decl.name!r} expected shape ({decl.size},), "
                    f"got {data.shape}"
                )
            self.arrays[decl.name] = data.copy()
        extra = set(inputs) - {a.name for a in kernel.arrays}
        if extra:
            raise KernelError(f"undeclared input arrays {sorted(extra)}")
        self._env: dict[str, int] = {}
        # accumulators keyed by Reduce statement identity
        self._acc: dict[int, float] = {}

    # -- evaluation --------------------------------------------------------

    def _index(self, ref: Ref) -> int:
        size = self.kernel.array(ref.array).size
        index = ref.index
        if isinstance(index, Affine):
            value: float = index.evaluate(self._env)
        elif isinstance(index, Indirect):
            value = self._read(index.ref)
        elif isinstance(index, Computed):
            value = self._expr(index.expr)
        else:  # pragma: no cover
            raise KernelError(f"unknown index {index!r}")
        return _as_index(value, ref.array, size)

    def _read(self, ref: Ref) -> float:
        return float(self.arrays[ref.array][self._index(ref)])

    def _expr(self, expr) -> float:
        if isinstance(expr, Const):
            return float(expr.value)
        if isinstance(expr, Ref):
            return self._read(expr)
        if isinstance(expr, BinOp):
            return _BIN[expr.op](self._expr(expr.lhs), self._expr(expr.rhs))
        if isinstance(expr, UnOp):
            return _UN[expr.op](self._expr(expr.operand))
        if isinstance(expr, Select):
            cond = _CMP[expr.cond.op](
                self._expr(expr.cond.lhs), self._expr(expr.cond.rhs)
            )
            # both arms evaluated, mirroring the machines' SEL lowering
            t = self._expr(expr.iftrue)
            f = self._expr(expr.iffalse)
            return t if cond else f
        raise KernelError(f"unknown expression {expr!r}")

    # -- statement execution -----------------------------------------------

    def _run_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Loop):
            # a Reduce accumulates over its innermost enclosing loop:
            # reset direct-child accumulators at entry, store at exit
            direct = [s for s in stmt.body if isinstance(s, Reduce)]
            for red in direct:
                self._acc[id(red)] = float(red.init)
            for i in range(stmt.start, stmt.start + stmt.count):
                self._env[stmt.var] = i
                for s in stmt.body:
                    self._run_stmt(s)
            for red in direct:
                self.arrays[red.dest.array][self._index(red.dest)] = (
                    self._acc.pop(id(red))
                )
            del self._env[stmt.var]
        elif isinstance(stmt, Assign):
            value = self._expr(stmt.expr)
            self.arrays[stmt.dest.array][self._index(stmt.dest)] = value
        elif isinstance(stmt, Reduce):
            acc = self._acc[id(stmt)]
            self._acc[id(stmt)] = _BIN[stmt.op](acc, self._expr(stmt.expr))
        else:  # pragma: no cover
            raise KernelError(f"unknown statement {stmt!r}")

    def run(self) -> dict[str, np.ndarray]:
        """Execute the kernel; returns the final arrays (name -> values)."""
        for stmt in self.kernel.body:
            self._run_stmt(stmt)
        return self.arrays


def run_reference(
    kernel: Kernel, inputs: Mapping[str, np.ndarray]
) -> dict[str, np.ndarray]:
    """One-shot convenience wrapper around :class:`ReferenceInterpreter`."""
    return ReferenceInterpreter(kernel, inputs).run()
