"""Trivial register allocator used by both code generators.

Registers are a scarce architectural resource (32 per processor); the
kernels this package compiles are small enough that a free-list allocator
with explicit alloc/free suffices.  Exceeding the file is a hard
:class:`~repro.errors.LoweringError` — the generators never spill.
"""

from __future__ import annotations

from ..errors import LoweringError
from ..isa import Reg
from ..isa.operands import NUM_REGS


class RegAlloc:
    """Free-list allocator over ``r1..r31`` (``r0`` reserved as scratch-
    free zero by convention, never handed out)."""

    def __init__(self, owner: str = "kernel"):
        self._free = list(range(NUM_REGS - 1, 0, -1))  # pop() yields r1 first
        self._owner = owner
        self.high_water = 0

    def alloc(self) -> Reg:
        if not self._free:
            raise LoweringError(
                f"{self._owner}: out of registers ({NUM_REGS - 1} in use)"
            )
        reg = Reg(self._free.pop())
        in_use = (NUM_REGS - 1) - len(self._free)
        self.high_water = max(self.high_water, in_use)
        return reg

    def free(self, reg: Reg) -> None:
        if reg.index in self._free:
            raise LoweringError(
                f"{self._owner}: double free of r{reg.index}"
            )
        if reg.index == 0:
            raise LoweringError(f"{self._owner}: cannot free r0")
        self._free.append(reg.index)

    @property
    def in_use(self) -> int:
        return (NUM_REGS - 1) - len(self._free)
