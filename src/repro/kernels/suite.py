"""The workload suite: Livermore-loop-style kernels expressed in the IR.

Each kernel is a :class:`KernelSpec`: a builder that instantiates the IR
for a problem size ``n``, an input generator (seeded, reproducible), the
names of its output arrays, and a category used by the experiment harness
to pick representative workloads:

``streaming``    dense affine streams, no recurrence — SMA's best case
``stencil``      2-deep nests / multi-offset streams
``recurrence``   loop-carried at distance 1 (register-forwarded on SMA)
``reduction``    scalar accumulation
``gather``       index-array subscripts (structured gather)
``scatter``      index-array store targets (RMW; index arrays are
                 permutations — see the hazard caveat in ``lower_sma``)
``lod``          value-computed subscripts (loss of decoupling)
``select``       data-dependent select (no control-flow divergence)

The original 1983-era benchmark sources are not available; these kernels
are the standard reconstructions of the Lawrence Livermore Loops access
patterns (the LL number each one echoes is noted), plus a few extra
patterns (negative stride, strided banking) that the experiments sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import KernelError
from .ir import (
    Affine,
    ArrayDecl,
    Assign,
    BinOp,
    Cmp,
    Computed,
    Const,
    Expr,
    Indirect,
    Kernel,
    Loop,
    Reduce,
    Ref,
    Select,
    UnOp,
)

# -- tiny construction helpers ------------------------------------------


def at(array: str, off: int = 0, **coeffs: int) -> Ref:
    """``at("x", 1, i=1)`` == ``x[i+1]``; ``at("q")`` == ``q[0]``."""
    return Ref(array, Affine.of(off, **{k: v for k, v in coeffs.items() if v}))


def gat(array: str, index_ref: Ref) -> Ref:
    """Gather: ``gat("e", at("ix", i=1))`` == ``e[ix[i]]``."""
    return Ref(array, Indirect(index_ref))


def cat(array: str, index_expr: Expr) -> Ref:
    """Computed subscript: ``cat("tab", expr)`` == ``tab[expr]``."""
    return Ref(array, Computed(index_expr))


def c(value: float) -> Const:
    return Const(float(value))


def add(a: Expr, b: Expr) -> Expr:
    return BinOp("+", a, b)


def sub(a: Expr, b: Expr) -> Expr:
    return BinOp("-", a, b)


def mul(a: Expr, b: Expr) -> Expr:
    return BinOp("*", a, b)


def div(a: Expr, b: Expr) -> Expr:
    return BinOp("/", a, b)


def fmod(a: Expr, b: Expr) -> Expr:
    return BinOp("mod", a, b)


def floor(a: Expr) -> Expr:
    return UnOp("floor", a)


def absval(a: Expr) -> Expr:
    return UnOp("abs", a)


# -- spec ----------------------------------------------------------------


@dataclass(frozen=True)
class KernelSpec:
    """A workload: IR builder + reproducible inputs + metadata."""

    name: str
    description: str
    category: str
    build: Callable[[int], Kernel]
    make_inputs: Callable[[int, np.random.Generator], dict[str, np.ndarray]]
    output_arrays: tuple[str, ...]
    default_n: int = 256

    def instantiate(
        self, n: int | None = None, seed: int = 12345
    ) -> tuple[Kernel, dict[str, np.ndarray]]:
        """Build the kernel and its inputs for size ``n`` (default size if
        omitted), with a deterministic generator."""
        size = n if n is not None else self.default_n
        rng = np.random.default_rng(seed)
        return self.build(size), self.make_inputs(size, rng)


_REGISTRY: dict[str, KernelSpec] = {}


def _register(spec: KernelSpec) -> KernelSpec:
    if spec.name in _REGISTRY:
        raise KernelError(f"duplicate kernel {spec.name!r}")
    _REGISTRY[spec.name] = spec
    return spec


def kernel_names() -> list[str]:
    return sorted(_REGISTRY)


def get_kernel(name: str) -> KernelSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KernelError(
            f"unknown kernel {name!r}; available: {kernel_names()}"
        ) from None


def all_kernels() -> list[KernelSpec]:
    return [_REGISTRY[k] for k in kernel_names()]


def kernels_in_category(category: str) -> list[KernelSpec]:
    return [s for s in all_kernels() if s.category == category]


def _uniform(rng: np.random.Generator, n: int, lo=0.1, hi=1.0) -> np.ndarray:
    return rng.uniform(lo, hi, n)


# -------------------------------------------------------------------------
# streaming kernels
# -------------------------------------------------------------------------

_register(KernelSpec(
    name="hydro",
    description="LL1 hydro fragment: x[k] = q + y[k]*(r*z[k+10] + t*z[k+11])",
    category="streaming",
    build=lambda n: Kernel(
        "hydro",
        (ArrayDecl("x", n), ArrayDecl("y", n), ArrayDecl("z", n + 11)),
        (Loop("k", n, (
            Assign(at("x", k=1), add(c(0.84), mul(
                at("y", k=1),
                add(mul(c(1.1), at("z", 10, k=1)),
                    mul(c(0.37), at("z", 11, k=1))),
            ))),
        )),),
        description="LL1",
    ),
    make_inputs=lambda n, rng: {
        "x": np.zeros(n), "y": _uniform(rng, n), "z": _uniform(rng, n + 11),
    },
    output_arrays=("x",),
))

_register(KernelSpec(
    name="daxpy",
    description="y[i] = a*x[i] + y[i] (in-place stream RMW)",
    category="streaming",
    build=lambda n: Kernel(
        "daxpy",
        (ArrayDecl("x", n), ArrayDecl("y", n)),
        (Loop("i", n, (
            Assign(at("y", i=1), add(mul(c(2.5), at("x", i=1)), at("y", i=1))),
        )),),
    ),
    make_inputs=lambda n, rng: {
        "x": _uniform(rng, n), "y": _uniform(rng, n),
    },
    output_arrays=("y",),
))

_register(KernelSpec(
    name="scale_shift",
    description="y[i] = a*x[i] + b (simplest possible stream)",
    category="streaming",
    build=lambda n: Kernel(
        "scale_shift",
        (ArrayDecl("x", n), ArrayDecl("y", n)),
        (Loop("i", n, (
            Assign(at("y", i=1), add(mul(c(3.0), at("x", i=1)), c(1.0))),
        )),),
    ),
    make_inputs=lambda n, rng: {"x": _uniform(rng, n), "y": np.zeros(n)},
    output_arrays=("y",),
))

_register(KernelSpec(
    name="state_eqn",
    description="LL7-flavoured equation of state (6 load streams)",
    category="streaming",
    build=lambda n: Kernel(
        "state_eqn",
        (ArrayDecl("x", n), ArrayDecl("y", n), ArrayDecl("z", n),
         ArrayDecl("u", n + 3)),
        (Loop("k", n, (
            Assign(at("x", k=1), add(
                at("u", k=1),
                add(
                    mul(c(0.93), add(at("z", k=1), mul(c(0.93), at("y", k=1)))),
                    mul(c(0.37), add(
                        at("u", 3, k=1),
                        mul(c(0.93), add(
                            at("u", 2, k=1), mul(c(0.41), at("u", 1, k=1))
                        )),
                    )),
                ),
            )),
        )),),
        description="LL7 (reduced operand set)",
    ),
    make_inputs=lambda n, rng: {
        "x": np.zeros(n), "y": _uniform(rng, n), "z": _uniform(rng, n),
        "u": _uniform(rng, n + 3),
    },
    output_arrays=("x",),
))

_register(KernelSpec(
    name="first_diff",
    description="LL12 first difference: x[i] = y[i+1] - y[i]",
    category="streaming",
    build=lambda n: Kernel(
        "first_diff",
        (ArrayDecl("x", n), ArrayDecl("y", n + 1)),
        (Loop("i", n, (
            Assign(at("x", i=1), sub(at("y", 1, i=1), at("y", i=1))),
        )),),
        description="LL12",
    ),
    make_inputs=lambda n, rng: {"x": np.zeros(n), "y": _uniform(rng, n + 1)},
    output_arrays=("x",),
))

_register(KernelSpec(
    name="saxpy_strided",
    description="stride-2 triad: y[2i] = a*x[2i] + y[2i] (bank pressure)",
    category="streaming",
    build=lambda n: Kernel(
        "saxpy_strided",
        (ArrayDecl("x", 2 * n), ArrayDecl("y", 2 * n)),
        (Loop("i", n, (
            Assign(at("y", i=2), add(mul(c(1.5), at("x", i=2)), at("y", i=2))),
        )),),
    ),
    make_inputs=lambda n, rng: {
        "x": _uniform(rng, 2 * n), "y": _uniform(rng, 2 * n),
    },
    output_arrays=("y",),
))

_register(KernelSpec(
    name="stride8_copy",
    description="pathological stride-8 copy: collapses onto one bank "
                "at the default 8-way interleave",
    category="streaming",
    build=lambda n: Kernel(
        "stride8_copy",
        (ArrayDecl("x", 8 * n), ArrayDecl("y", 8 * n)),
        (Loop("i", n, (
            Assign(at("y", i=8), mul(c(2.0), at("x", i=8))),
        )),),
    ),
    make_inputs=lambda n, rng: {
        "x": _uniform(rng, 8 * n), "y": np.zeros(8 * n),
    },
    output_arrays=("y",),
))

_register(KernelSpec(
    name="reverse_copy",
    description="negative-stride stream: y[i] = x[n-1-i]",
    category="streaming",
    build=lambda n: Kernel(
        "reverse_copy",
        (ArrayDecl("x", n), ArrayDecl("y", n)),
        (Loop("i", n, (
            Assign(at("y", i=1), mul(c(1.0), Ref("x", Affine.of(n - 1, i=-1)))),
        )),),
    ),
    make_inputs=lambda n, rng: {"x": _uniform(rng, n), "y": np.zeros(n)},
    output_arrays=("y",),
))

_register(KernelSpec(
    name="conv4",
    description="LL10-flavoured 4-tap filter: four offset streams of one "
                "array",
    category="streaming",
    build=lambda n: Kernel(
        "conv4",
        (ArrayDecl("x", n + 3), ArrayDecl("y", n)),
        (Loop("i", n, (
            Assign(at("y", i=1), add(
                add(mul(c(0.25), at("x", i=1)), mul(c(0.5), at("x", 1, i=1))),
                add(mul(c(0.2), at("x", 2, i=1)), mul(c(0.05), at("x", 3, i=1))),
            )),
        )),),
        description="LL10 flavour",
    ),
    make_inputs=lambda n, rng: {"x": _uniform(rng, n + 3), "y": np.zeros(n)},
    output_arrays=("y",),
))

# -------------------------------------------------------------------------
# in-place / polynomial
# -------------------------------------------------------------------------

_register(KernelSpec(
    name="integrate",
    description="LL9-flavoured in-place Horner update: "
                "px[i] = c0 + px[i]*(c1 + c2*px[i])",
    category="streaming",
    build=lambda n: Kernel(
        "integrate",
        (ArrayDecl("px", n),),
        (Loop("i", n, (
            Assign(at("px", i=1), add(c(0.1), mul(
                at("px", i=1), add(c(0.75), mul(c(0.2), at("px", i=1)))
            ))),
        )),),
        description="LL9 flavour",
    ),
    make_inputs=lambda n, rng: {"px": _uniform(rng, n)},
    output_arrays=("px",),
))

# -------------------------------------------------------------------------
# stencils (2-deep nests)
# -------------------------------------------------------------------------


def _stencil2d_kernel(n: int) -> Kernel:
    rows = max(n // 32, 2)
    width = 34  # row width including the 2 halo cells
    size = rows * width
    return Kernel(
        "stencil2d",
        (ArrayDecl("a", size), ArrayDecl("out", size)),
        (Loop("j", rows, (
            Loop("i", width - 2, (
                Assign(
                    Ref("out", Affine.of(1, j=width, i=1)),
                    add(
                        mul(c(0.3), Ref("a", Affine.of(0, j=width, i=1))),
                        add(
                            mul(c(0.4), Ref("a", Affine.of(1, j=width, i=1))),
                            mul(c(0.3), Ref("a", Affine.of(2, j=width, i=1))),
                        ),
                    ),
                ),
            )),
        )),),
        description="LL8 flavour (row-wise 3-point smoothing)",
    )


def _stencil2d_inputs(n: int, rng: np.random.Generator):
    rows = max(n // 32, 2)
    size = rows * 34
    return {"a": _uniform(rng, size), "out": np.zeros(size)}


_register(KernelSpec(
    name="stencil2d",
    description="row-wise 3-point stencil over a 2-D grid (nested loops)",
    category="stencil",
    build=_stencil2d_kernel,
    make_inputs=_stencil2d_inputs,
    output_arrays=("out",),
))

# -------------------------------------------------------------------------
# recurrences
# -------------------------------------------------------------------------

_register(KernelSpec(
    name="tridiag",
    description="LL5 tri-diagonal elimination: x[i] = z[i]*(y[i] - x[i-1])",
    category="recurrence",
    build=lambda n: Kernel(
        "tridiag",
        (ArrayDecl("x", n + 1), ArrayDecl("y", n + 1), ArrayDecl("z", n + 1)),
        (Loop("i", n, (
            Assign(at("x", i=1), mul(
                at("z", i=1), sub(at("y", i=1), at("x", -1, i=1))
            )),
        ), start=1),),
        description="LL5",
    ),
    make_inputs=lambda n, rng: {
        "x": np.concatenate([[0.5], np.zeros(n)]),
        "y": _uniform(rng, n + 1),
        "z": _uniform(rng, n + 1, 0.2, 0.9),
    },
    output_arrays=("x",),
))

_register(KernelSpec(
    name="first_sum",
    description="LL11 prefix sum: x[i] = x[i-1] + y[i]",
    category="recurrence",
    build=lambda n: Kernel(
        "first_sum",
        (ArrayDecl("x", n + 1), ArrayDecl("y", n + 1)),
        (Loop("i", n, (
            Assign(at("x", i=1), add(at("x", -1, i=1), at("y", i=1))),
        ), start=1),),
        description="LL11",
    ),
    make_inputs=lambda n, rng: {
        "x": np.concatenate([[0.0], np.zeros(n)]),
        "y": _uniform(rng, n + 1),
    },
    output_arrays=("x",),
))

_register(KernelSpec(
    name="linear_rec",
    description="LL6-flavoured first-order recurrence: "
                "w[i] = w[i-1]*b[i] + x[i]",
    category="recurrence",
    build=lambda n: Kernel(
        "linear_rec",
        (ArrayDecl("w", n + 1), ArrayDecl("b", n + 1), ArrayDecl("x", n + 1)),
        (Loop("i", n, (
            Assign(at("w", i=1), add(
                mul(at("w", -1, i=1), at("b", i=1)), at("x", i=1)
            )),
        ), start=1),),
        description="LL6 flavour",
    ),
    make_inputs=lambda n, rng: {
        "w": np.concatenate([[0.3], np.zeros(n)]),
        "b": _uniform(rng, n + 1, 0.1, 0.8),
        "x": _uniform(rng, n + 1),
    },
    output_arrays=("w",),
))

# -------------------------------------------------------------------------
# reductions
# -------------------------------------------------------------------------

_register(KernelSpec(
    name="inner_product",
    description="LL3 inner product: q += z[k]*x[k]",
    category="reduction",
    build=lambda n: Kernel(
        "inner_product",
        (ArrayDecl("x", n), ArrayDecl("z", n), ArrayDecl("out", 1)),
        (Loop("k", n, (
            Reduce("+", at("out"), mul(at("z", k=1), at("x", k=1))),
        )),),
        description="LL3",
    ),
    make_inputs=lambda n, rng: {
        "x": _uniform(rng, n), "z": _uniform(rng, n), "out": np.zeros(1),
    },
    output_arrays=("out",),
))

_register(KernelSpec(
    name="strided_dot",
    description="stride-5 inner product (LL2 banking flavour)",
    category="reduction",
    build=lambda n: Kernel(
        "strided_dot",
        (ArrayDecl("x", 5 * n), ArrayDecl("z", 5 * n), ArrayDecl("out", 1)),
        (Loop("k", n, (
            Reduce("+", at("out"), mul(at("z", k=5), at("x", k=5))),
        )),),
        description="LL2 flavour",
    ),
    make_inputs=lambda n, rng: {
        "x": _uniform(rng, 5 * n), "z": _uniform(rng, 5 * n),
        "out": np.zeros(1),
    },
    output_arrays=("out",),
))

_register(KernelSpec(
    name="max_abs",
    description="LL24 flavour: running maximum of |x[i]|",
    category="reduction",
    build=lambda n: Kernel(
        "max_abs",
        (ArrayDecl("x", n), ArrayDecl("out", 1)),
        (Loop("i", n, (
            Reduce("max", at("out"), absval(at("x", i=1)), init=0.0),
        )),),
        description="LL24 flavour",
    ),
    make_inputs=lambda n, rng: {
        "x": rng.uniform(-1.0, 1.0, n), "out": np.zeros(1),
    },
    output_arrays=("out",),
))

def _matvec_kernel(n: int) -> Kernel:
    rows = max(n // 16, 2)
    cols = 16
    return Kernel(
        "matvec",
        (ArrayDecl("a", rows * cols), ArrayDecl("x", cols),
         ArrayDecl("y", rows)),
        (Loop("j", rows, (
            Loop("i", cols, (
                Reduce("+", at("y", j=1), mul(
                    Ref("a", Affine.of(0, j=cols, i=1)), at("x", i=1)
                )),
            )),
        )),),
        description="dense matrix-vector product (per-row reduction)",
    )


def _matvec_inputs(n: int, rng: np.random.Generator):
    rows = max(n // 16, 2)
    return {
        "a": _uniform(rng, rows * 16), "x": _uniform(rng, 16),
        "y": np.zeros(rows),
    }


_register(KernelSpec(
    name="matvec",
    description="y[j] = sum_i A[j,i]*x[i] — per-row reductions over a "
                "2-deep nest",
    category="reduction",
    build=_matvec_kernel,
    make_inputs=_matvec_inputs,
    output_arrays=("y",),
))


def _row_max_kernel(n: int) -> Kernel:
    rows = max(n // 16, 2)
    cols = 16
    return Kernel(
        "row_max",
        (ArrayDecl("a", rows * cols), ArrayDecl("m", rows)),
        (Loop("j", rows, (
            Loop("i", cols, (
                Reduce("max", at("m", j=1),
                       absval(Ref("a", Affine.of(0, j=cols, i=1))),
                       init=0.0),
            )),
        )),),
        description="per-row maximum of |A[j,i]|",
    )


def _row_max_inputs(n: int, rng: np.random.Generator):
    rows = max(n // 16, 2)
    return {"a": rng.uniform(-1, 1, rows * 16), "m": np.zeros(rows)}


_register(KernelSpec(
    name="row_max",
    description="m[j] = max_i |A[j,i]| — per-row max reduction",
    category="reduction",
    build=_row_max_kernel,
    make_inputs=_row_max_inputs,
    output_arrays=("m",),
))


# -------------------------------------------------------------------------
# gathers / scatters / LOD
# -------------------------------------------------------------------------

_register(KernelSpec(
    name="pic_gather",
    description="LL13-flavoured particle push: vx[i] += e[ix[i]]",
    category="gather",
    build=lambda n: Kernel(
        "pic_gather",
        (ArrayDecl("vx", n), ArrayDecl("e", n), ArrayDecl("ix", n)),
        (Loop("i", n, (
            Assign(at("vx", i=1), add(at("vx", i=1), gat("e", at("ix", i=1)))),
        )),),
        description="LL13 flavour",
    ),
    make_inputs=lambda n, rng: {
        "vx": _uniform(rng, n), "e": _uniform(rng, n),
        "ix": rng.integers(0, n, n).astype(np.float64),
    },
    output_arrays=("vx",),
))

_register(KernelSpec(
    name="pic_scatter",
    description="LL14-flavoured charge deposit: rho[ir[i]] += q*w[i] "
                "(ir is a permutation; see hazard caveat)",
    category="scatter",
    build=lambda n: Kernel(
        "pic_scatter",
        (ArrayDecl("rho", n), ArrayDecl("w", n), ArrayDecl("ir", n)),
        (Loop("i", n, (
            Assign(
                gat("rho", at("ir", i=1)),
                add(gat("rho", at("ir", i=1)), mul(c(0.8), at("w", i=1))),
            ),
        )),),
        description="LL14 flavour",
    ),
    make_inputs=lambda n, rng: {
        "rho": _uniform(rng, n), "w": _uniform(rng, n),
        "ir": rng.permutation(n).astype(np.float64),
    },
    output_arrays=("rho",),
))

_register(KernelSpec(
    name="computed_gather",
    description="table lookup at a value-computed subscript — every access"
                " is a loss-of-decoupling event",
    category="lod",
    build=lambda n: Kernel(
        "computed_gather",
        (ArrayDecl("x", n), ArrayDecl("tab", 64), ArrayDecl("y", n)),
        (Loop("i", n, (
            Assign(at("y", i=1), cat(
                "tab", floor(fmod(mul(at("x", i=1), c(997.0)), c(64.0)))
            )),
        )),),
    ),
    make_inputs=lambda n, rng: {
        "x": _uniform(rng, n), "tab": _uniform(rng, 64), "y": np.zeros(n),
    },
    output_arrays=("y",),
))

# -------------------------------------------------------------------------
# selects
# -------------------------------------------------------------------------

_register(KernelSpec(
    name="wave1d",
    description="second-order wave-equation step: unew = 2u - uold + "
                "c*(u[i+1] - 2u[i] + u[i-1]) (4 load streams)",
    category="stencil",
    build=lambda n: Kernel(
        "wave1d",
        (ArrayDecl("u", n + 2), ArrayDecl("uold", n + 2),
         ArrayDecl("unew", n + 2)),
        (Loop("i", n, (
            Assign(at("unew", i=1), add(
                sub(mul(c(2.0), at("u", i=1)), at("uold", i=1)),
                mul(c(0.25), add(
                    sub(at("u", 1, i=1), mul(c(2.0), at("u", i=1))),
                    at("u", -1, i=1),
                )),
            )),
        ), start=1),),
    ),
    make_inputs=lambda n, rng: {
        "u": _uniform(rng, n + 2), "uold": _uniform(rng, n + 2),
        "unew": np.zeros(n + 2),
    },
    output_arrays=("unew",),
))


def _hydro2d_kernel(n: int) -> Kernel:
    rows = max(n // 32, 2)
    width = 33
    size = rows * width
    # LL18-flavoured: two result grids updated per cell from one source
    return Kernel(
        "hydro2d",
        (ArrayDecl("zp", size), ArrayDecl("za", size), ArrayDecl("zb", size)),
        (Loop("j", rows, (
            Loop("i", width - 1, (
                Assign(
                    Ref("za", Affine.of(0, j=width, i=1)),
                    mul(c(0.5), add(
                        Ref("zp", Affine.of(0, j=width, i=1)),
                        Ref("zp", Affine.of(1, j=width, i=1)),
                    )),
                ),
                Assign(
                    Ref("zb", Affine.of(0, j=width, i=1)),
                    sub(
                        Ref("zp", Affine.of(1, j=width, i=1)),
                        Ref("zp", Affine.of(0, j=width, i=1)),
                    ),
                ),
            )),
        )),),
        description="LL18 flavour (two store streams per loop)",
    )


def _hydro2d_inputs(n: int, rng: np.random.Generator):
    rows = max(n // 32, 2)
    size = rows * 33
    return {"zp": _uniform(rng, size), "za": np.zeros(size),
            "zb": np.zeros(size)}


_register(KernelSpec(
    name="hydro2d",
    description="LL18-flavoured 2-D hydro fragment: two result grids "
                "written per inner loop",
    category="stencil",
    build=_hydro2d_kernel,
    make_inputs=_hydro2d_inputs,
    output_arrays=("za", "zb"),
))

_register(KernelSpec(
    name="aos_sum",
    description="array-of-structures reduction: s += x[3i]*x[3i+1] + "
                "x[3i+2] (three stride-3 streams of one array)",
    category="reduction",
    build=lambda n: Kernel(
        "aos_sum",
        (ArrayDecl("x", 3 * n), ArrayDecl("out", 1)),
        (Loop("i", n, (
            Reduce("+", at("out"), add(
                mul(at("x", 0, i=3), at("x", 1, i=3)), at("x", 2, i=3)
            )),
        )),),
    ),
    make_inputs=lambda n, rng: {
        "x": _uniform(rng, 3 * n), "out": np.zeros(1),
    },
    output_arrays=("out",),
))

_register(KernelSpec(
    name="field_interp",
    description="gather mixed with dense streams: "
                "z[i] = x[i]*e[ix[i]] + y[i]",
    category="gather",
    build=lambda n: Kernel(
        "field_interp",
        (ArrayDecl("x", n), ArrayDecl("y", n), ArrayDecl("z", n),
         ArrayDecl("e", n), ArrayDecl("ix", n)),
        (Loop("i", n, (
            Assign(at("z", i=1), add(
                mul(at("x", i=1), gat("e", at("ix", i=1))), at("y", i=1)
            )),
        )),),
    ),
    make_inputs=lambda n, rng: {
        "x": _uniform(rng, n), "y": _uniform(rng, n), "z": np.zeros(n),
        "e": _uniform(rng, n),
        "ix": rng.integers(0, n, n).astype(np.float64),
    },
    output_arrays=("z",),
))

_register(KernelSpec(
    name="clip",
    description="elementwise clamp: y[i] = min(max(x[i], lo[i]), hi[i])",
    category="select",
    build=lambda n: Kernel(
        "clip",
        (ArrayDecl("x", n), ArrayDecl("lo", n), ArrayDecl("hi", n),
         ArrayDecl("y", n)),
        (Loop("i", n, (
            Assign(at("y", i=1), BinOp(
                "min", BinOp("max", at("x", i=1), at("lo", i=1)),
                at("hi", i=1),
            )),
        )),),
    ),
    make_inputs=lambda n, rng: {
        "x": rng.uniform(-1, 2, n), "lo": rng.uniform(-0.5, 0.0, n),
        "hi": rng.uniform(0.8, 1.2, n), "y": np.zeros(n),
    },
    output_arrays=("y",),
))

_register(KernelSpec(
    name="count_above",
    description="predicated reduction: cnt += (x[i] > t) ? 1 : 0",
    category="select",
    build=lambda n: Kernel(
        "count_above",
        (ArrayDecl("x", n), ArrayDecl("out", 1)),
        (Loop("i", n, (
            Reduce("+", at("out"), Select(
                Cmp("<", c(0.5), at("x", i=1)), c(1.0), c(0.0)
            )),
        )),),
    ),
    make_inputs=lambda n, rng: {
        "x": _uniform(rng, n, 0, 1), "out": np.zeros(1),
    },
    output_arrays=("out",),
))

_register(KernelSpec(
    name="threshold",
    description="data-dependent select: y[i] = x[i] if x[i] > t else c",
    category="select",
    build=lambda n: Kernel(
        "threshold",
        (ArrayDecl("x", n), ArrayDecl("y", n)),
        (Loop("i", n, (
            Assign(at("y", i=1), Select(
                Cmp("<", c(0.5), at("x", i=1)), at("x", i=1), c(0.0)
            )),
        )),),
    ),
    make_inputs=lambda n, rng: {"x": _uniform(rng, n, 0, 1), "y": np.zeros(n)},
    output_arrays=("y",),
))
