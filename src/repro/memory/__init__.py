"""Memory subsystem: flat store, banked timing front-end, data cache."""

from .banks import BankedMemory, FaultyMemory, MemoryStats
from .cache import CacheStats, DataCache
from .main_memory import MainMemory, as_address
from .prefetch import PrefetchConfig, PrefetchingCache, PrefetchStats

__all__ = [
    "BankedMemory",
    "CacheStats",
    "DataCache",
    "FaultyMemory",
    "MainMemory",
    "MemoryStats",
    "PrefetchConfig",
    "PrefetchStats",
    "PrefetchingCache",
    "as_address",
]
