"""Banked, pipelined main-memory timing model.

The memory is ``num_banks``-way low-order interleaved.  A request to bank
``addr % num_banks`` is *accepted* only if that bank has been idle for
``bank_busy`` cycles since its last acceptance and the port has spare issue
bandwidth this cycle; otherwise the requester must retry (the rejection is
recorded as a bank conflict or port reject).  An accepted request completes
``latency`` cycles later: loads deliver their value through a callback
(normally filling a reserved queue slot), stores are already visible.

Functional ordering model: the data effect of a request happens at *issue*
time — writes update the backing store immediately, reads capture the
current value and deliver it at completion.  Requests therefore take effect
in acceptance order, which is the order the processors issued them in; the
timing pipeline only delays observation, never reorders data.  This is the
standard conservative model for trace-level architecture simulation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..config import FaultConfig, MemoryConfig
from .main_memory import MainMemory, as_address


@dataclass
class MemoryStats:
    """Traffic and contention counters for one banked memory."""

    reads: int = 0
    writes: int = 0
    bank_conflicts: int = 0
    port_rejects: int = 0
    busy_bank_cycles: int = 0
    #: completion callbacks fired (loads delivered / stores acknowledged)
    completions: int = 0
    per_bank_accesses: list[int] = field(default_factory=list)

    def utilization(self, elapsed_cycles: int, num_banks: int) -> float:
        """Fraction of bank-cycles spent servicing requests."""
        if elapsed_cycles <= 0:
            return 0.0
        return self.busy_bank_cycles / (elapsed_cycles * num_banks)


class BankedMemory:
    """Cycle-stepped interleaved memory front-end over a MainMemory."""

    #: True on fault-injecting subclasses; the run loops consult this to
    #: avoid the event-horizon scheduler, whose inlined fast paths bypass
    #: the overridable ``can_accept``/``try_issue`` pair.
    fault_injection = False

    def __init__(self, storage: MainMemory, config: MemoryConfig):
        self.storage = storage
        self.config = config
        self._bank_free_at = [0] * config.num_banks
        self._completions: list[tuple[int, int, Callable, Optional[float]]] = []
        self._seq = 0
        self._issues_at = (-1, 0)  # (cycle, count) for the port limit
        self.stats = MemoryStats(per_bank_accesses=[0] * config.num_banks)

    def register_metrics(self, registry, prefix: str = "memory") -> None:
        """Publish traffic/contention counters into a metrics registry."""
        from ..metrics.registry import register_stats

        register_stats(registry, prefix, self.stats)
        registry.register_histogram(
            f"{prefix}.per_bank_accesses",
            lambda s=self.stats: dict(enumerate(s.per_bank_accesses)),
        )

    # -- issue side ------------------------------------------------------

    def can_accept(self, addr, now: int) -> bool:
        """Would a request to ``addr`` be accepted this cycle?"""
        a = as_address(addr)
        bank = a % self.config.num_banks
        cycle, count = self._issues_at
        if cycle == now and count >= self.config.accepts_per_cycle:
            return False
        return self._bank_free_at[bank] <= now

    def try_issue(
        self,
        addr,
        now: int,
        *,
        is_write: bool = False,
        value: float | None = None,
        on_complete: Callable[[Optional[float]], None] | None = None,
    ) -> bool:
        """Attempt to issue one request; returns acceptance.

        On acceptance the functional effect is applied immediately (see
        module docstring); ``on_complete(read_value_or_None)`` fires when
        :meth:`tick` reaches ``now + latency``.
        """
        a = as_address(addr)
        bank = a % self.config.num_banks
        cycle, count = self._issues_at
        if cycle == now and count >= self.config.accepts_per_cycle:
            self.stats.port_rejects += 1
            return False
        if self._bank_free_at[bank] > now:
            self.stats.bank_conflicts += 1
            return False
        # accept
        self._issues_at = (now, count + 1) if cycle == now else (now, 1)
        self._bank_free_at[bank] = now + self.config.bank_busy
        self.stats.busy_bank_cycles += self.config.bank_busy
        self.stats.per_bank_accesses[bank] += 1
        if is_write:
            self.stats.writes += 1
            self.storage.write(a, value)
            result: Optional[float] = None
        else:
            self.stats.reads += 1
            result = self.storage.read(a)
        if on_complete is not None:
            self._seq += 1
            heapq.heappush(
                self._completions,
                (now + self.config.latency, self._seq, on_complete, result),
            )
        return True

    def bank_free_time(self, addr) -> int:
        """Cycle at which ``addr``'s bank next accepts a request."""
        return self._bank_free_at[as_address(addr) % self.config.num_banks]

    # -- completion side ---------------------------------------------------

    def tick(self, now: int) -> None:
        """Fire every completion whose time has arrived (call once per
        cycle, before the processors step)."""
        while self._completions and self._completions[0][0] <= now:
            _, _, callback, result = heapq.heappop(self._completions)
            self.stats.completions += 1
            callback(result)

    def squash_completions(self, slots) -> int:
        """Remove in-flight completions that would fill one of ``slots``
        (speculative rollback, PR 8).  Load-completion callbacks carry
        their target slot as a bound default (the same encoding the
        checkpoint layer introspects), so matching is by slot identity;
        completions for other consumers are untouched.  Returns the
        number of completions squashed."""
        if not self._completions:
            return 0
        ids = {id(s) for s in slots}
        keep = []
        removed = 0
        for entry in self._completions:
            defaults = getattr(entry[2], "__defaults__", None) or ()
            if any(id(d) in ids for d in defaults):
                removed += 1
            else:
                keep.append(entry)
        if removed:
            heapq.heapify(keep)
            self._completions = keep
        return removed

    def quiescent(self) -> bool:
        """True when no request is in flight."""
        return not self._completions

    @property
    def pending_completions(self) -> int:
        """Number of requests in flight (loads awaiting delivery)."""
        return len(self._completions)

    def next_completion_time(self, now: int) -> int | None:
        """Cycle at which the earliest pending completion fires, or
        ``None`` when nothing is in flight.

        This is the part of :meth:`next_event_time` that is *spontaneous*:
        a completion fires regardless of what the processors do, delivering
        a value (or store acknowledgement) that can unblock a consumer.
        Bank-free times, by contrast, only matter to a component actually
        waiting on that bank — the event-horizon scheduler therefore asks
        each waiting component for its bank horizon and asks the memory
        only for this completion clamp."""
        if not self._completions:
            return None
        t = self._completions[0][0]
        return t if t > now else now

    def next_event_time(self, now: int) -> int | None:
        """Earliest cycle strictly after ``now`` at which the memory's
        externally visible state changes on its own: a pending completion
        fires, or a busy bank becomes free (and could accept a retried
        request).  ``None`` when nothing is scheduled — the memory will
        never wake a stalled requester by itself.

        This is the fast-forward horizon used by
        :meth:`repro.core.SMAMachine.run`: between ``now`` and this time a
        machine in which no unit made progress is guaranteed to repeat the
        same stalled cycle."""
        times = [t for t in self._bank_free_at if t > now]
        if self._completions:
            times.append(self._completions[0][0])
        return min(times) if times else None


class FaultyMemory(BankedMemory):
    """Banked memory with deterministic transient-fault injection.

    Two fault classes, both parameterized by :class:`FaultConfig`:

    * **transient rejects** — a hash over ``(address, cycle, seed)``
      rejects a fraction of requests.  The predicate is evaluated
      identically in :meth:`can_accept` and :meth:`try_issue`, so the
      reference components' paired ``can_accept``/``assert try_issue``
      protocol stays sound.  Requesters simply retry, so this perturbs
      timing only — functional results are unchanged.
    * **dropped completions** — the first ``drop_completions`` accepted
      loads have their in-flight completion silently discarded, leaving a
      reserved-but-never-filled queue slot.  A correct watchdog then
      reports a deadlock (``SimulationError``) instead of hanging.

    The fast schedulers bypass these overrides (event-horizon inlines
    memory acceptance; joint-idle jumps over cycles where the predicate
    would change its verdict), so the run loops downgrade to ``naive``
    whenever :attr:`fault_injection` is set.
    """

    fault_injection = True

    def __init__(self, storage: MainMemory, config: MemoryConfig,
                 faults: FaultConfig):
        super().__init__(storage, config)
        self.faults = faults
        self.injected_rejects = 0
        self.dropped_completions = 0
        self._drop_budget = faults.drop_completions

    def _fault_reject(self, a: int, now: int) -> bool:
        """Deterministic per-(address, cycle) reject predicate."""
        p = self.faults.reject_prob
        if p <= 0.0:
            return False
        h = (a * 2654435761 + now * 40503 + self.faults.seed * 97) & 0xFFFFFFFF
        h ^= h >> 16
        h = (h * 0x45D9F3B) & 0xFFFFFFFF
        h ^= h >> 16
        return h / 2.0 ** 32 < p

    def can_accept(self, addr, now: int) -> bool:
        if self._fault_reject(as_address(addr), now):
            # counted here as well as in try_issue: protocol-following
            # requesters poll can_accept and never reach try_issue when
            # the fault fires (one poll per requester per cycle, so the
            # count tracks injected stall decisions)
            self.injected_rejects += 1
            return False
        return super().can_accept(addr, now)

    def try_issue(
        self,
        addr,
        now: int,
        *,
        is_write: bool = False,
        value: float | None = None,
        on_complete: Callable[[Optional[float]], None] | None = None,
    ) -> bool:
        if self._fault_reject(as_address(addr), now):
            self.injected_rejects += 1
            return False
        accepted = super().try_issue(
            addr, now, is_write=is_write, value=value, on_complete=on_complete
        )
        if accepted and on_complete is not None and self._drop_budget > 0:
            # Discard the completion just scheduled (seq == self._seq);
            # its reserved queue slot will never fill.
            for i, entry in enumerate(self._completions):
                if entry[1] == self._seq:
                    last = self._completions.pop()
                    if i < len(self._completions):
                        self._completions[i] = last
                    heapq.heapify(self._completions)
                    break
            self._drop_budget -= 1
            self.dropped_completions += 1
        return accepted
