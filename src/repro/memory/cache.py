"""Set-associative data cache (timing model) for the scalar baseline.

Write-back, write-allocate, true-LRU replacement.  The cache tracks tags
and dirty bits only — data always lives in the shared functional store, so
machines with and without a cache produce bit-identical memory images and
differ only in cycle counts.  This is exactly the role the comparison
experiment (R-T3) needs: *how many cycles does a conventional cache cost or
save relative to the SMA queues for the same access stream?*

Timing:

* hit — ``hit_time`` cycles;
* clean miss — ``hit_time + latency + (line_words - 1) * transfer_cycles``
  (initial word after the full access latency, the rest streamed);
* dirty miss — clean-miss time plus ``line_words * transfer_cycles`` for
  the write-back of the victim.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import CacheConfig
from .main_memory import as_address


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class _Line:
    __slots__ = ("tag", "dirty", "last_used")

    def __init__(self, tag: int, now: int):
        self.tag = tag
        self.dirty = False
        self.last_used = now


class DataCache:
    """LRU set-associative cache; :meth:`access` returns cycles consumed."""

    def __init__(self, config: CacheConfig, memory_latency: int):
        self.config = config
        self.memory_latency = memory_latency
        self._sets: list[dict[int, _Line]] = [
            {} for _ in range(config.num_sets)
        ]
        self._tick = 0
        self.stats = CacheStats()

    def register_metrics(self, registry, prefix: str = "cache") -> None:
        """Publish the cache counters into a metrics registry."""
        from ..metrics.registry import register_stats

        register_stats(registry, prefix, self.stats)
        registry.register_counter(
            f"{prefix}.hit_rate", lambda s=self.stats: s.hit_rate
        )

    def _locate(self, addr: int) -> tuple[int, int]:
        line_addr = addr // self.config.line_words
        return line_addr % self.config.num_sets, line_addr

    def access(self, addr, is_write: bool, now: int = 0,
               pc: int = 0) -> int:
        """Simulate one word access; returns the cycles it takes.

        ``now`` and ``pc`` are accepted for interface parity with
        :class:`~repro.memory.prefetch.PrefetchingCache` (which needs wall
        time and the accessing instruction to model prefetches); the plain
        cache ignores both.
        """
        a = as_address(addr)
        self._tick += 1
        set_index, tag = self._locate(a)
        cache_set = self._sets[set_index]
        cfg = self.config
        line = cache_set.get(tag)
        if line is not None:
            self.stats.hits += 1
            line.last_used = self._tick
            if is_write:
                line.dirty = True
            return cfg.hit_time
        # miss: allocate (write-allocate policy covers stores too)
        self.stats.misses += 1
        cycles = (
            cfg.hit_time
            + self.memory_latency
            + (cfg.line_words - 1) * cfg.transfer_cycles
        )
        if len(cache_set) >= cfg.associativity:
            victim_tag = min(cache_set, key=lambda t: cache_set[t].last_used)
            victim = cache_set.pop(victim_tag)
            if victim.dirty:
                self.stats.writebacks += 1
                cycles += cfg.line_words * cfg.transfer_cycles
        new_line = _Line(tag, self._tick)
        if is_write:
            new_line.dirty = True
        cache_set[tag] = new_line
        return cycles

    def flush_cycles(self) -> int:
        """Cycles to write back all dirty lines (end-of-run drain)."""
        cfg = self.config
        dirty = sum(
            1
            for cache_set in self._sets
            for line in cache_set.values()
            if line.dirty
        )
        self.stats.writebacks += dirty
        for cache_set in self._sets:
            for line in cache_set.values():
                line.dirty = False
        return dirty * cfg.line_words * cfg.transfer_cycles
