"""Flat word-addressed backing store.

One 64-bit word per address, held in a NumPy float64 array.  All machines
(SMA and baselines) operate on the same functional store, so end-of-run
memory images can be compared word-for-word in differential tests.

Addresses arrive from simulated register files and may therefore be numpy
floats; they are coerced with :func:`as_address`, which insists the value is
integral — a fractional address is always a code-generation bug.
"""

from __future__ import annotations

import numpy as np

from ..errors import MemoryError_


def as_address(value) -> int:
    """Coerce a simulated register value to an integer address."""
    addr = int(value)
    if addr != value:
        raise MemoryError_(f"non-integral address {value!r}")
    return addr


class MainMemory:
    """Word-addressed functional storage of ``size`` float64 words.

    An optional ``observer`` — ``observer(kind, addr, value)`` with kind
    ``"r"``/``"w"`` — sees every functional access; the verification layer
    (:mod:`repro.verify`) uses it to record full access traces.  Bulk
    ``load_array``/``dump_array`` staging is *not* reported (it is test
    harness plumbing, not simulated traffic).
    """

    def __init__(self, size: int):
        if size <= 0:
            raise MemoryError_("memory size must be positive")
        self.size = size
        self._words = np.zeros(size, dtype=np.float64)
        self.observer = None

    def _check(self, addr) -> int:
        a = as_address(addr)
        if not 0 <= a < self.size:
            raise MemoryError_(f"address {a} out of range [0, {self.size})")
        return a

    def read(self, addr) -> float:
        """Return the word at ``addr``."""
        a = self._check(addr)
        value = float(self._words[a])
        if self.observer is not None:
            self.observer("r", a, value)
        return value

    def write(self, addr, value) -> None:
        """Store ``value`` at ``addr``."""
        a = self._check(addr)
        self._words[a] = value
        if self.observer is not None:
            self.observer("w", a, float(value))

    def load_array(self, base, values) -> None:
        """Bulk-initialize ``len(values)`` words starting at ``base``."""
        b = self._check(base)
        values = np.asarray(values, dtype=np.float64)
        if b + len(values) > self.size:
            raise MemoryError_(
                f"array of {len(values)} words at {b} exceeds memory"
            )
        self._words[b : b + len(values)] = values

    def dump_array(self, base, count: int) -> np.ndarray:
        """Return a copy of ``count`` words starting at ``base``."""
        b = self._check(base)
        if count < 0 or b + count > self.size:
            raise MemoryError_(f"dump of {count} words at {b} exceeds memory")
        return self._words[b : b + count].copy()

    def snapshot(self) -> np.ndarray:
        """Copy of the entire store (for whole-image comparisons)."""
        return self._words.copy()
