"""Stride-prefetching data cache for the scalar baseline.

The SMA's structured access descriptors are, in effect, *exact* software
prefetching.  The research line this paper fed into asked: how close can a
conventional cache get with *speculative* hardware prefetching?  This
module supplies the comparator for experiment R-T5: the baseline's data
cache extended with either of the two classic hardware prefetch policies:

``obl``
    one-block lookahead (tagged prefetch-on-miss): a demand miss on line
    *L* also requests line *L+1*.

``stride``
    a reference prediction table (RPT) keyed by the load/store
    instruction's PC: each table entry tracks the last address and last
    delta observed by that instruction; once the delta repeats (a
    *confirmed* stride), the line ``stride × line_words`` words ahead is
    requested on every access.  Keying by PC is what lets the predictor
    survive multiple interleaved streams — exactly the structure a daxpy
    loop presents.

Timing model: a prefetch overlaps with processor execution — it costs the
requester nothing up front, and the line becomes available one full miss
latency after the triggering access completes.  A demand access that hits
a *pending* prefetched line waits only for its remaining flight time
(partial coverage), which is exactly the behaviour that makes prefetching
close part — but not all — of the gap to a decoupled machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import CacheConfig
from .cache import CacheStats, DataCache
from .main_memory import as_address


@dataclass(frozen=True)
class PrefetchConfig:
    """Prefetcher knobs layered on a :class:`~repro.config.CacheConfig`."""

    policy: str = "stride"  # "obl" | "stride"
    #: entries in the stride-detection history (stride policy only).
    table_size: int = 4
    #: lines fetched ahead per trigger.
    degree: int = 1
    #: cycles past its ready time after which an unclaimed prefetched
    #: line is dropped from the pending set (bounds ``_pending`` on
    #: irregular streams and feeds ``prefetch_accuracy``); ``None``
    #: picks ``max(64, 16 × memory_latency)`` at construction — generous
    #: enough that a streaming consumer a few lines behind never loses a
    #: useful prefetch, small enough to bound the pending set.
    stale_after: int | None = None

    def __post_init__(self) -> None:
        if self.policy not in ("obl", "stride"):
            raise ValueError(f"unknown prefetch policy {self.policy!r}")
        if self.table_size < 1 or self.degree < 1:
            raise ValueError("table_size and degree must be >= 1")
        if self.stale_after is not None and self.stale_after < 1:
            raise ValueError("stale_after must be >= 1 (or None for auto)")


@dataclass
class PrefetchStats(CacheStats):
    prefetches_issued: int = 0
    #: demand accesses fully served by a completed prefetch.
    prefetch_hits: int = 0
    #: demand accesses that caught a prefetch still in flight.
    prefetch_partial_hits: int = 0
    #: prefetched lines never claimed by a demand access (retired from
    #: the pending set after going stale, or left over at flush).
    prefetches_stale: int = 0

    @property
    def coverage(self) -> float:
        """Fraction of would-be misses removed or shortened by prefetch."""
        covered = self.prefetch_hits + self.prefetch_partial_hits
        total = self.misses + covered
        return covered / total if total else 0.0

    @property
    def prefetch_accuracy(self) -> float:
        """Fraction of issued prefetches a demand access actually used."""
        used = self.prefetch_hits + self.prefetch_partial_hits
        return used / self.prefetches_issued if self.prefetches_issued else 0.0


class PrefetchingCache(DataCache):
    """A :class:`DataCache` with OBL / stride hardware prefetch."""

    def __init__(
        self,
        config: CacheConfig,
        memory_latency: int,
        prefetch: PrefetchConfig | None = None,
    ):
        super().__init__(config, memory_latency)
        self.prefetch_config = prefetch or PrefetchConfig()
        self.stats = PrefetchStats()
        #: line tag -> cycle the prefetched line becomes usable
        #: (insertion order tracks ready order: ready times are monotone
        #: in the access clock, which is what lets _retire_stale sweep
        #: only the front)
        self._pending: dict[int, int] = {}
        #: reference prediction table: pc -> (last_addr, stride, confirmed)
        self._rpt: dict[int, tuple[int, int, bool]] = {}
        #: write-back bandwidth owed by dirty victims that prefetch fills
        #: evicted; settled on the next demand miss (see _install)
        self._deferred_writeback_cycles = 0
        self._stale_after = (
            self.prefetch_config.stale_after
            if self.prefetch_config.stale_after is not None
            else max(64, 16 * memory_latency)
        )

    # -- internals -----------------------------------------------------

    def _install(self, line_tag: int, now: int) -> None:
        """Place a line into its set (prefetch fill: clean, LRU-fresh)."""
        set_index = line_tag % self.config.num_sets
        cache_set = self._sets[set_index]
        if line_tag in cache_set:
            return
        if len(cache_set) >= self.config.associativity:
            victim_tag = min(cache_set, key=lambda t: cache_set[t].last_used)
            victim = cache_set.pop(victim_tag)
            if victim.dirty:
                # a prefetch fill costs the requester nothing up front,
                # so the victim's write-back bandwidth is owed as debt
                # and charged to the next demand miss (any remainder is
                # settled at flush_cycles) — the bus still moved the line
                self.stats.writebacks += 1
                self._deferred_writeback_cycles += (
                    self.config.line_words * self.config.transfer_cycles
                )
        from .cache import _Line  # shared line record

        cache_set[line_tag] = _Line(line_tag, self._tick)

    def _request_lines(self, line_tags, ready_base: int) -> None:
        for target in line_tags:
            if target < 0:
                continue
            set_index = target % self.config.num_sets
            if target in self._sets[set_index] or target in self._pending:
                continue
            self._pending[target] = ready_base + self.memory_latency
            self.stats.prefetches_issued += 1

    def _train_rpt(self, pc: int, addr: int, ready_base: int) -> None:
        """Stride policy: update the PC-indexed reference prediction table
        (trained on *every* access, hit or miss) and request the line one
        confirmed stride step ahead."""
        cfg = self.prefetch_config
        entry = self._rpt.pop(pc, None)
        if entry is None:
            if len(self._rpt) >= cfg.table_size:
                # evict the oldest entry (insertion-ordered dict)
                self._rpt.pop(next(iter(self._rpt)))
            self._rpt[pc] = (addr, 0, False)
            return
        last_addr, stride, _ = entry
        delta = addr - last_addr
        confirmed = delta == stride and delta != 0
        self._rpt[pc] = (addr, delta, confirmed)
        if not confirmed:
            return
        line_words = self.config.line_words
        cur_line = addr // line_words
        direction = 1 if delta > 0 else -1
        targets = []
        for k in range(1, cfg.degree + 1):
            # the line the stream will actually touch k accesses ahead
            target = (addr + delta * k) // line_words
            if target == cur_line:
                # |delta| < line_words: keep the lookahead in whole lines
                # so the prefetcher runs ahead of the stream instead of
                # re-requesting the line it is already in
                target = cur_line + direction * k
            targets.append(target)
        self._request_lines(targets, ready_base)

    def _issue_prefetches(self, line_tag: int, ready_base: int) -> None:
        """OBL policy trigger (demand-miss / prefetch-hit driven)."""
        cfg = self.prefetch_config
        if cfg.policy != "obl":
            return
        self._request_lines(
            (line_tag + k for k in range(1, cfg.degree + 1)), ready_base
        )

    def _retire_stale(self, now: int) -> None:
        """Drop pending lines whose ready time passed more than
        ``stale_after`` cycles ago without a demand claiming them.

        ``_pending`` is insertion-ordered and ready times are monotone in
        the access clock, so only the front of the dict can be stale —
        the sweep stops at the first fresh entry.
        """
        pending = self._pending
        threshold = now - self._stale_after
        stale = 0
        for tag, ready in pending.items():
            if ready > threshold:
                break
            stale += 1
        for _ in range(stale):
            pending.pop(next(iter(pending)))
        self.stats.prefetches_stale += stale

    # -- the timing interface used by the scalar machine ------------------

    def access(self, addr, is_write: bool, now: int = 0,
               pc: int = 0) -> int:
        """Simulate one word access at cycle ``now`` by the instruction at
        ``pc``; returns the cycles it takes."""
        a = as_address(addr)
        self._tick += 1
        cfg = self.config
        if self._pending:
            self._retire_stale(now)
        set_index, tag = self._locate(a)
        cache_set = self._sets[set_index]
        if self.prefetch_config.policy == "stride":
            self._train_rpt(pc, a, now + cfg.hit_time)
        line = cache_set.get(tag)
        if line is not None:
            self.stats.hits += 1
            line.last_used = self._tick
            if is_write:
                line.dirty = True
            return cfg.hit_time
        # pending prefetch?
        if tag in self._pending:
            ready = self._pending.pop(tag)
            self._install(tag, now)
            installed = cache_set[tag]
            installed.last_used = self._tick
            if is_write:
                installed.dirty = True
            if ready <= now:
                self.stats.prefetch_hits += 1
                cost = cfg.hit_time
            else:
                self.stats.prefetch_partial_hits += 1
                cost = cfg.hit_time + (ready - now)
            self._issue_prefetches(tag, now + cost)
            return cost
        # genuine demand miss: same cost structure as the plain cache,
        # plus any write-back debt owed by earlier prefetch-fill evictions
        self.stats.misses += 1
        cost = (
            cfg.hit_time
            + self.memory_latency
            + (cfg.line_words - 1) * cfg.transfer_cycles
            + self._deferred_writeback_cycles
        )
        self._deferred_writeback_cycles = 0
        if len(cache_set) >= cfg.associativity:
            victim_tag = min(cache_set, key=lambda t: cache_set[t].last_used)
            victim = cache_set.pop(victim_tag)
            if victim.dirty:
                self.stats.writebacks += 1
                cost += cfg.line_words * cfg.transfer_cycles
        from .cache import _Line

        new_line = _Line(tag, self._tick)
        if is_write:
            new_line.dirty = True
        cache_set[tag] = new_line
        self._issue_prefetches(tag, now + cost)
        return cost

    def flush_cycles(self) -> int:
        """End-of-run drain: dirty lines plus any write-back debt still
        owed, with in-flight-but-never-used prefetches retired so
        ``prefetch_accuracy`` accounts for them."""
        cycles = super().flush_cycles() + self._deferred_writeback_cycles
        self._deferred_writeback_cycles = 0
        self.stats.prefetches_stale += len(self._pending)
        self._pending.clear()
        return cycles

    def register_metrics(self, registry, prefix: str = "cache") -> None:
        super().register_metrics(registry, prefix)
        registry.register_counter(
            f"{prefix}.coverage", lambda s=self.stats: s.coverage
        )
        registry.register_counter(
            f"{prefix}.prefetch_accuracy",
            lambda s=self.stats: s.prefetch_accuracy,
        )
