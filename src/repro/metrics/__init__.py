"""Observability layer: counter/histogram registry, stall attribution,
stride sampling and the RunReport export.

Everything here is *read-side*: the registry holds lazy getters over the
stats dataclasses the timed components already maintain, so attaching
metrics adds nothing to the simulator's hot loop except the per-cycle
stall classifier — and that classifier replays in closed form under the
cycle fast-forward path (see :mod:`repro.core.machine`), so attaching
metrics does not disable it.
"""

from .attribution import SCALAR_BUCKETS, SMAMachineMetrics, STALL_BUCKETS
from .capture import ReportCapture, active_capture, capture_reports
from .registry import MetricsRegistry, StrideSampler, register_stats
from .report import (
    SCHEMA_VERSION,
    RunReport,
    scalar_report,
    sma_report,
    validate_report,
)

__all__ = [
    "MetricsRegistry",
    "ReportCapture",
    "RunReport",
    "SCALAR_BUCKETS",
    "SCHEMA_VERSION",
    "SMAMachineMetrics",
    "STALL_BUCKETS",
    "StrideSampler",
    "active_capture",
    "capture_reports",
    "register_stats",
    "scalar_report",
    "sma_report",
    "validate_report",
]
