"""Per-run stall attribution: where did every cycle go?

:class:`SMAMachineMetrics` classifies each simulated cycle of an
:class:`repro.core.SMAMachine` into exactly one bucket, so the buckets
**partition** total cycles (they always sum to ``machine.cycle``).  The
classification reads the per-cycle stall indicators the processors
already maintain (``_stalled_on``, set on every stalled cycle and
cleared on retire) plus deltas of the store-unit / stream-engine / queue
counters — no component grows new state.

Priority order (first match wins; documented in ARCHITECTURE.md §14):

1. ``loss_of_decoupling`` — the AP is stalled on ``lod_eaq``/``lod_ebq``,
   i.e. the access side is serialized behind the execute side.  Checked
   before ``compute`` so an EP retire during an LOD episode doesn't mask
   the recurrence (matches the R-T4 accounting).
2. ``misspeculation`` — the speculative AP is repaying a rollback
   (``misspeculation``) or held at a descriptor speculation barrier
   (``spec_barrier``); like LOD, checked before ``compute`` so an EP
   retire doesn't mask the recovery cost (the AP-retire check still
   wins: a cycle where the AP itself advanced is ``compute``).
3. ``compute`` — the AP or the EP retired an instruction this cycle.
4. ``queue_full`` — a processor is blocked pushing into a full queue
   (EP ``q_full``; AP ``queue_full``/``saq_full``/``stream_slots``/
   ``stream_queue_busy``), or the stream engine was blocked by a full
   target queue this cycle.
5. ``queue_empty`` — a processor is blocked popping an empty queue
   (EP ``lq_empty``; AP ``iq_empty``).
6. ``bank_busy`` — the AP is stalled on ``memory_busy``, or the stream
   engine had work but could not issue (bank/port contention).
7. ``store_wait`` — only the store unit made wait progress (waiting for
   store data from the EP or for a bank to accept the store).
8. ``drain`` — none of the above: end-of-run settling while in-flight
   memory traffic completes.

Fast-forward compatibility: the machine calls :meth:`on_cycle` from
``step_cycle`` (so the replay-*template* cycle is classified normally)
and :meth:`on_replay` from ``_replay_stall_cycles``.  Skipped cycles are
exact repeats of the template, so the replay adds ``count`` to the
template's bucket and advances the stride samplers in closed form —
bucket totals stay bit-identical to naive ticking (property-tested in
``tests/test_metrics.py``).

The scalar baseline needs no per-cycle hook: it is event-jumped, and its
breakdown (``compute`` / ``memory_wait`` / ``bank_busy`` /
``store_drain``) is derived exactly from its counters — see
:meth:`repro.baseline.ScalarResult.stall_breakdown`.
"""

from __future__ import annotations

from .registry import MetricsRegistry, StrideSampler, register_stats

#: the SMA cycle buckets, in classification priority order after
#: ``compute`` is hoisted for readability.
STALL_BUCKETS = (
    "compute",
    "loss_of_decoupling",
    "misspeculation",
    "queue_full",
    "queue_empty",
    "bank_busy",
    "store_wait",
    "drain",
)

#: the scalar baseline's (derived, not per-cycle) buckets.
SCALAR_BUCKETS = ("compute", "memory_wait", "bank_busy", "store_drain")

_AP_LOD = ("lod_eaq", "lod_ebq")
#: speculative-AP recovery/barrier stalls (repro.core.speculation):
#: rollback penalty cycles and descriptor speculation barriers
_AP_MISSPEC = ("misspeculation", "spec_barrier")
_AP_QUEUE_FULL = (
    "queue_full", "saq_full", "stream_slots", "stream_queue_busy"
)


class SMAMachineMetrics:
    """Stall attribution + registry wiring for one ``SMAMachine``.

    Created by :meth:`repro.core.SMAMachine.attach_metrics`; holds the
    per-bucket cycle counts in :attr:`buckets` and a
    :class:`MetricsRegistry` exposing every component's counters.
    """

    def __init__(self, machine, registry=None, samplers=()):
        self.registry = registry if registry is not None else MetricsRegistry()
        for sampler in samplers:
            self.registry.add_sampler(sampler)
        self.buckets: dict[str, int] = dict.fromkeys(STALL_BUCKETS, 0)
        #: bucket of the most recently classified cycle — the replay
        #: template during fast-forward
        self._last_bucket = "drain"
        ap_stats = machine.ap.stats
        ep_stats = machine.ep.stats
        su_stats = machine.store_unit.stats
        engine_stats = machine.engine.stats
        self._queue_stats = [q.stats for q in machine._queue_list]
        # previous-cycle counter values, for delta detection
        self._prev_ap = ap_stats.instructions
        self._prev_ep = ep_stats.instructions
        self._prev_store = (
            su_stats.data_wait_cycles + su_stats.memory_wait_cycles
        )
        self._prev_blocked = engine_stats.blocked_cycles
        self._prev_full = sum(s.full_stalls for s in self._queue_stats)
        # registry: every timed component publishes its stats
        registry = self.registry
        register_stats(registry, "ap", ap_stats)
        register_stats(registry, "ep", ep_stats)
        register_stats(registry, "engine", engine_stats)
        register_stats(registry, "store_unit", su_stats)
        machine.banked.register_metrics(registry, "memory")
        for queue in machine._queue_list:
            register_stats(registry, f"queue.{queue.name}", queue.stats)
        registry.register_counter("machine.cycles", lambda m=machine: m.cycle)

    # -- the per-cycle hook (called from SMAMachine.step_cycle) ----------

    def on_cycle(self, machine, cycle: int) -> None:
        """Classify the cycle that just finished stepping."""
        ap = machine.ap
        ep = machine.ep
        ap_i = ap.stats.instructions
        ep_i = ep.stats.instructions
        su = machine.store_unit.stats
        store = su.data_wait_cycles + su.memory_wait_cycles
        blocked = machine.engine.stats.blocked_cycles
        full = sum(s.full_stalls for s in self._queue_stats)
        ap_stall = ap._stalled_on
        ep_stall = ep._stalled_on
        engine_blocked = blocked != self._prev_blocked
        if ap_stall in _AP_LOD:
            bucket = "loss_of_decoupling"
        elif ap_stall in _AP_MISSPEC and ap_i == self._prev_ap:
            # speculation recovery: the AP is frozen repaying a rollback
            # (or held at a descriptor barrier); an EP retire this cycle
            # must not mask the recovery cost, mirroring the LOD rule
            bucket = "misspeculation"
        elif ap_i != self._prev_ap or ep_i != self._prev_ep:
            bucket = "compute"
        elif (
            ep_stall == "q_full"
            or ap_stall in _AP_QUEUE_FULL
            or (engine_blocked and full != self._prev_full)
        ):
            bucket = "queue_full"
        elif ep_stall == "lq_empty" or ap_stall == "iq_empty":
            bucket = "queue_empty"
        elif ap_stall == "memory_busy" or engine_blocked:
            bucket = "bank_busy"
        elif store != self._prev_store:
            bucket = "store_wait"
        else:
            bucket = "drain"
        self.buckets[bucket] += 1
        self._last_bucket = bucket
        self._prev_ap = ap_i
        self._prev_ep = ep_i
        self._prev_store = store
        self._prev_blocked = blocked
        self._prev_full = full
        for sampler in self.registry.samplers:
            sampler.on_cycle(machine, cycle)

    # -- the fast-forward hook (called from _replay_stall_cycles) --------

    def on_replay(self, machine, start: int, count: int) -> None:
        """Account ``count`` skipped cycles, each an exact repeat of the
        template cycle :meth:`on_cycle` just classified."""
        self.buckets[self._last_bucket] += count
        for sampler in self.registry.samplers:
            sampler.on_replay(machine, start, count)
        # the replay advanced the underlying counters in closed form;
        # resync the deltas so the next live cycle classifies cleanly
        su = machine.store_unit.stats
        self._prev_ap = machine.ap.stats.instructions
        self._prev_ep = machine.ep.stats.instructions
        self._prev_store = su.data_wait_cycles + su.memory_wait_cycles
        self._prev_blocked = machine.engine.stats.blocked_cycles
        self._prev_full = sum(s.full_stalls for s in self._queue_stats)

    # -- snapshots -------------------------------------------------------

    def stall_breakdown(self) -> dict[str, int]:
        """Copy of the per-bucket cycle counts (partition of cycles)."""
        return dict(self.buckets)
