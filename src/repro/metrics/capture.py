"""Process-wide RunReport capture for the job layer.

The sweep harness runs :class:`repro.harness.jobs.Job` descriptions that
are frozen and picklable — growing them a ``metrics`` field would change
every on-disk cache key and leak reports through the process pool.
Instead, capture is ambient: ``with capture_reports(dir):`` arms a
process-local collector, and the job runners (``_run_sma`` /
``_run_scalar``) check :func:`active_capture` and route each run's
RunReport into it.  Capture is inherently serial — worker processes do
not see the parent's collector, so the CLI forces ``jobs=1`` while
``--metrics`` is active.
"""

from __future__ import annotations

import re
from contextlib import contextmanager
from pathlib import Path

from .report import RunReport

_CAPTURE: "ReportCapture | None" = None


class ReportCapture:
    """Collects RunReports; optionally persists each as JSON on add."""

    def __init__(self, directory: str | Path | None = None):
        self.reports: list[RunReport] = []
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)

    def add(self, report: RunReport) -> Path | None:
        """Record one report; returns the file written (if persisting)."""
        self.reports.append(report)
        if self.directory is None:
            return None
        slug = re.sub(r"[^A-Za-z0-9_.-]", "_",
                      f"{report.machine}-{report.kernel}")
        path = self.directory / f"{len(self.reports):04d}-{slug}.json"
        path.write_text(report.to_json() + "\n")
        return path


def active_capture() -> ReportCapture | None:
    """The collector armed by :func:`capture_reports`, if any."""
    return _CAPTURE


@contextmanager
def capture_reports(directory: str | Path | None = None):
    """Arm RunReport capture for the duration of the block."""
    global _CAPTURE
    if _CAPTURE is not None:
        raise RuntimeError("RunReport capture is already active")
    collector = ReportCapture(directory)
    _CAPTURE = collector
    try:
        yield collector
    finally:
        _CAPTURE = None
