"""The metric registry: named counters, histograms and stride samplers.

Design rule: the registry never *stores* metric values — it stores
**getters** over the statistics objects the timed components already
maintain (``APStats``, ``CacheStats``, ``MemoryStats``, ``QueueStats``,
…).  Registration happens once at attach time; values are read only when
a snapshot is taken for a :class:`repro.metrics.report.RunReport`.  The
simulator's per-cycle loop therefore pays nothing for the registry, and
— because the underlying counters are exactly the ones the fast-forward
replay already advances in closed form — a snapshot is bit-identical
whether the run ticked naively or fast-forwarded.

The one per-cycle citizen is :class:`StrideSampler`: a decimating probe
(sample every *k*-th cycle) whose firing schedule is a pure function of
the cycle number, which is what makes its closed-form replay exact: in a
fully-idle window the probed value is constant, so the skipped firings
can be counted arithmetically instead of simulated.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Mapping


class MetricsRegistry:
    """Flat namespace of lazily-evaluated metrics.

    Names are dotted component paths (``ap.instructions``,
    ``queue.lq0.full_stalls``, ``memory.bank_conflicts``).  Duplicate
    registration is an error — it would silently shadow a component.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Callable[[], float]] = {}
        self._histograms: dict[str, Callable[[], Mapping]] = {}
        self.samplers: list[StrideSampler] = []

    def register_counter(
        self, name: str, getter: Callable[[], float]
    ) -> None:
        if name in self._counters:
            raise ValueError(f"duplicate counter {name!r}")
        self._counters[name] = getter

    def register_histogram(
        self, name: str, getter: Callable[[], Mapping]
    ) -> None:
        if name in self._histograms:
            raise ValueError(f"duplicate histogram {name!r}")
        self._histograms[name] = getter

    def add_sampler(self, sampler: "StrideSampler") -> None:
        if any(s.name == sampler.name for s in self.samplers):
            raise ValueError(f"duplicate sampler {sampler.name!r}")
        self.samplers.append(sampler)

    # -- snapshots -------------------------------------------------------

    def counter_values(self) -> dict[str, float]:
        """Current value of every counter, sorted by name."""
        return {name: g() for name, g in sorted(self._counters.items())}

    def histogram_values(self) -> dict[str, dict]:
        """Current contents of every histogram (keys stringified so the
        snapshot is JSON-clean)."""
        return {
            name: {str(k): v for k, v in g().items()}
            for name, g in sorted(self._histograms.items())
        }

    def sampler_values(self) -> dict[str, dict]:
        return {s.name: s.summary() for s in self.samplers}


def register_stats(registry: MetricsRegistry, prefix: str, stats) -> None:
    """Publish a stats dataclass: every numeric field becomes a counter
    ``prefix.field`` and every dict field a histogram.  This is how the
    timed components (processors, stream engine, store unit, caches,
    memory banks, queues) expose themselves without bespoke glue."""
    for f in dataclasses.fields(stats):
        value = getattr(stats, f.name)
        name = f"{prefix}.{f.name}"
        if isinstance(value, bool):  # pragma: no cover - no bool stats yet
            continue
        if isinstance(value, (int, float)):
            registry.register_counter(
                name, lambda s=stats, n=f.name: getattr(s, n)
            )
        elif isinstance(value, dict):
            registry.register_histogram(
                name, lambda s=stats, n=f.name: getattr(s, n)
            )
        # lists (e.g. per_bank_accesses) need a shape decision; the
        # owning component registers those explicitly


class StrideSampler:
    """Sample ``probe(machine)`` on every cycle divisible by ``stride``.

    The schedule depends only on the cycle number, never on history, so a
    fast-forwarded idle window ``[start, start + count)`` — during which
    the probed state is by definition constant — contributes exactly
    ``ceil`` arithmetic's worth of firings via :meth:`on_replay`, keeping
    sample count, sum and maximum bit-identical to naive ticking.  Probes
    should return exact values (ints) for that guarantee to be literal.
    """

    __slots__ = ("name", "probe", "stride", "samples", "total", "maximum")

    def __init__(self, name: str, probe: Callable, stride: int = 64):
        if stride < 1:
            raise ValueError("sampler stride must be >= 1")
        self.name = name
        self.probe = probe
        self.stride = stride
        self.samples = 0
        self.total = 0
        self.maximum = 0

    def on_cycle(self, machine, cycle: int) -> None:
        if cycle % self.stride == 0:
            self._record(self.probe(machine), 1)

    def on_replay(self, machine, start: int, count: int) -> None:
        """Closed-form firings for the skipped cycles
        ``start .. start + count - 1`` (machine state constant)."""
        first = start + (-start) % self.stride
        last = start + count - 1
        if first > last:
            return
        self._record(self.probe(machine), (last - first) // self.stride + 1)

    def _record(self, value, repeats: int) -> None:
        self.samples += repeats
        self.total += value * repeats
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.samples if self.samples else 0.0

    def summary(self) -> dict:
        return {
            "stride": self.stride,
            "samples": self.samples,
            "mean": self.mean,
            "max": self.maximum,
        }
