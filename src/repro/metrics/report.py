"""RunReport: the per-run metrics export (JSON / CSV).

One :class:`RunReport` captures everything the metrics layer measured in
one machine run: total cycles, the stall-attribution breakdown, every
registry counter and histogram, and the stride-sampler summaries.  The
schema is versioned and validated — CI runs a small experiment with
``--metrics`` and fails on drift (``scripts/check_runreport_schema.py``).
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field

#: bump when the RunReport layout changes shape (adding *optional* keys
#: inside counters/histograms does not count; changing required keys or
#: bucket semantics does).
SCHEMA_VERSION = 1

#: required top-level keys and their JSON types.
REQUIRED_FIELDS: dict[str, type | tuple[type, ...]] = {
    "schema_version": int,
    "machine": str,
    "kernel": str,
    "n": (int, type(None)),
    "cycles": int,
    "stall_breakdown": dict,
    "counters": dict,
    "histograms": dict,
    "samples": dict,
}


@dataclass
class RunReport:
    """One machine run's measurements, ready for JSON/CSV export."""

    machine: str  # "sma" | "scalar" | "scalar-cache" | ...
    kernel: str
    cycles: int
    stall_breakdown: dict[str, int]
    n: int | None = None
    counters: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)
    samples: dict = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "machine": self.machine,
            "kernel": self.kernel,
            "n": self.n,
            "cycles": self.cycles,
            "stall_breakdown": dict(self.stall_breakdown),
            "counters": dict(self.counters),
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
            "samples": {k: dict(v) for k, v in self.samples.items()},
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_csv(self) -> str:
        """Flat ``metric,value`` rows (buckets, then counters, then
        sampler summaries) — the join-friendly export."""
        out = io.StringIO()
        out.write("metric,value\n")
        out.write(f"machine,{self.machine}\n")
        out.write(f"kernel,{self.kernel}\n")
        out.write(f"n,{'' if self.n is None else self.n}\n")
        out.write(f"cycles,{self.cycles}\n")
        for bucket, cycles in self.stall_breakdown.items():
            out.write(f"stall.{bucket},{cycles}\n")
        for name, value in self.counters.items():
            out.write(f"counter.{name},{value}\n")
        for name, summary in self.samples.items():
            for key, value in summary.items():
                out.write(f"sample.{name}.{key},{value}\n")
        return out.getvalue()

    def breakdown_text(self) -> str:
        """Aligned human-readable stall table with percentages."""
        total = max(self.cycles, 1)
        width = max(len(b) for b in self.stall_breakdown)
        lines = []
        for bucket, cycles in self.stall_breakdown.items():
            lines.append(
                f"{bucket:<{width}}  {cycles:>10}  "
                f"{100.0 * cycles / total:6.2f}%"
            )
        lines.append(f"{'total':<{width}}  {self.cycles:>10}  100.00%")
        return "\n".join(lines)


def validate_report(data: dict) -> list[str]:
    """Validate one RunReport dict; returns a list of problems (empty =
    valid).  This is the schema-drift gate CI runs."""
    problems: list[str] = []
    for key, expected in REQUIRED_FIELDS.items():
        if key not in data:
            problems.append(f"missing required key {key!r}")
        elif not isinstance(data[key], expected):
            problems.append(
                f"key {key!r} has type {type(data[key]).__name__}, "
                f"expected {expected}"
            )
    if problems:
        return problems
    if data["schema_version"] != SCHEMA_VERSION:
        problems.append(
            f"schema_version {data['schema_version']} != {SCHEMA_VERSION}"
        )
    breakdown = data["stall_breakdown"]
    for bucket, cycles in breakdown.items():
        if not isinstance(cycles, int) or cycles < 0:
            problems.append(f"bucket {bucket!r} not a non-negative int")
    total = sum(v for v in breakdown.values() if isinstance(v, int))
    if total != data["cycles"]:
        problems.append(
            f"stall buckets sum to {total}, cycles is {data['cycles']}"
        )
    return problems


# -- builders ----------------------------------------------------------------


def sma_report(machine, metrics, kernel: str = "",
               n: int | None = None, machine_name: str = "sma") -> RunReport:
    """Build a RunReport from a finished SMA run with metrics attached.

    ``machine_name`` labels the report's ``machine`` field — cluster
    nodes use ``"sma-node0"``, ``"sma-node1"``, … so per-node reports
    from one run stay distinguishable.
    """
    registry = metrics.registry
    return RunReport(
        machine=machine_name,
        kernel=kernel,
        n=n,
        cycles=machine.cycle,
        stall_breakdown=metrics.stall_breakdown(),
        counters=registry.counter_values(),
        histograms=registry.histogram_values(),
        samples=registry.sampler_values(),
    )


def scalar_report(result, registry, machine: str = "scalar",
                  kernel: str = "", n: int | None = None) -> RunReport:
    """Build a RunReport from a finished scalar-baseline run.

    The scalar machine is event-jumped, so its breakdown is derived from
    counters (:meth:`repro.baseline.ScalarResult.stall_breakdown`) rather
    than classified per cycle — the partition invariant holds either way.
    """
    return RunReport(
        machine=machine,
        kernel=kernel,
        n=n,
        cycles=result.cycles,
        stall_breakdown=result.stall_breakdown(),
        counters=registry.counter_values(),
        histograms=registry.histogram_values(),
        samples=registry.sampler_values(),
    )
