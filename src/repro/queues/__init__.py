"""Architectural FIFO queues coupling the SMA processors and memory."""

from .operand_queue import OperandQueue, QueueStats
from .queue_file import QueueFile

__all__ = ["OperandQueue", "QueueFile", "QueueStats"]
