"""Architectural FIFO queues with slot reservation.

The SMA queues must deliver memory values *in program order* even though the
banked memory can complete requests out of order (different banks, different
wait times).  The classic hardware solution is reservation: when the access
processor (or the stream engine) issues a load, it reserves the next slot of
the destination queue at issue time; the returning datum later *fills* that
slot.  The consumer can only pop the head slot once it is filled, so ordering
is preserved and queue capacity doubles as the bound on outstanding loads
per queue.

Values produced locally (EP results, AP store addresses) use the one-step
:meth:`OperandQueue.push`, which is reserve+fill combined.

Every queue keeps occupancy statistics.  Two accounting modes produce
bit-identical numbers:

* **per-cycle sampling** — :meth:`OperandQueue.sample` called once per
  simulated cycle (the reference path);
* **event-driven sampling** — the occupancy of a FIFO only changes on
  :meth:`reserve`/:meth:`pop`, so between two such events every per-cycle
  sample would have recorded the same value.  When a driver activates lazy
  mode (:meth:`begin_lazy_sampling` on the queue file) each mutation first
  *flushes* the span of cycles since the previous mutation in closed form.
  The event-horizon scheduler (see :mod:`repro.core.machine`) uses this to
  take occupancy accounting out of the per-cycle hot loop entirely.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from ..errors import QueueError


@dataclass(slots=True)
class _Slot:
    filled: bool = False
    value: Any = None
    #: speculative taint (PR 8): a poisoned slot was produced by the AP
    #: while running ahead of an unresolved prediction.  ``head_ready``
    #: hides poisoned heads from non-speculative consumers (EP, store
    #: unit); commit clears the flag, rollback removes the slot.
    poisoned: bool = False


class LoadOccupancyAggregate:
    """Event-driven tracker of the *summed* load-queue occupancy.

    ``max_outstanding_loads`` is the maximum of the per-cycle **total**
    across all load queues, which is not derivable from per-queue maxima
    (max of a sum is not the sum of maxima).  Load queues report every
    occupancy change here while lazy sampling is active; a value only
    counts toward the maximum once it has survived to the end of a cycle,
    matching what per-cycle end-of-cycle sampling would have observed.
    """

    __slots__ = ("total", "max_seen", "_synced")

    def __init__(self, total: int, start_cycle: int):
        self.total = total
        self.max_seen = 0
        self._synced = start_cycle

    def change(self, now: int, delta: int) -> None:
        if now > self._synced:
            # the old total held for >= 1 full cycle, so per-cycle
            # sampling would have seen it
            if self.total > self.max_seen:
                self.max_seen = self.total
            self._synced = now
        self.total += delta

    def finish(self, end_cycle: int) -> None:
        if end_cycle > self._synced and self.total > self.max_seen:
            self.max_seen = self.total
        self._synced = end_cycle


@dataclass
class QueueStats:
    """Occupancy and traffic counters for one queue."""

    pushes: int = 0
    pops: int = 0
    #: cycles in which a consumer wanted the head but it was not ready.
    empty_stalls: int = 0
    #: cycles in which a producer wanted a slot but the queue was full.
    full_stalls: int = 0
    samples: int = 0
    occupancy_sum: int = 0
    occupancy_max: int = 0
    histogram: dict[int, int] = field(default_factory=dict)

    @property
    def mean_occupancy(self) -> float:
        return self.occupancy_sum / self.samples if self.samples else 0.0


class OperandQueue:
    """A bounded FIFO with the reserve/fill protocol described above."""

    __slots__ = (
        "name", "capacity", "_slots", "stats",
        "_lazy", "_clock", "_synced", "_agg", "_tap",
    )

    def __init__(self, name: str, capacity: int):
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self._slots: deque[_Slot] = deque()
        self.stats = QueueStats()
        # event-driven occupancy accounting (see module docstring): the
        # clock is a shared one-element list the driver advances each cycle
        self._lazy = False
        self._clock: list[int] | None = None
        self._synced = 0
        self._agg: LoadOccupancyAggregate | None = None
        #: optional pop recorder (speculation oracle pre-run): when set to
        #: a list, every popped value is appended to it.
        self._tap: list | None = None

    # -- event-driven occupancy accounting --------------------------------

    def _lazy_flush(self) -> None:
        """Account every cycle since the last occupancy change at the
        (constant) occupancy they ended with."""
        now = self._clock[0]
        span = now - self._synced
        if span > 0:
            n = len(self._slots)
            st = self.stats
            st.samples += span
            st.occupancy_sum += n * span
            if n > st.occupancy_max:
                st.occupancy_max = n
            h = st.histogram
            h[n] = h.get(n, 0) + span
            self._synced = now

    # -- producer side --------------------------------------------------

    def can_reserve(self) -> bool:
        """True if a new slot can be reserved (queue not full of
        reserved-or-filled slots)."""
        return len(self._slots) < self.capacity

    def reserve(self) -> _Slot:
        """Reserve the next slot; returns a token to pass to :meth:`fill`."""
        if not self.can_reserve():
            raise QueueError(f"{self.name}: reserve on full queue")
        if self._lazy:
            # only pay the flush call when the clock actually advanced
            # since the previous mutation
            if self._clock[0] > self._synced:
                self._lazy_flush()
            if self._agg is not None:
                self._agg.change(self._clock[0], 1)
        slot = _Slot()
        self._slots.append(slot)
        return slot

    def fill(self, token: _Slot, value: Any) -> None:
        """Deliver the value for a previously reserved slot."""
        if token.filled:
            raise QueueError(f"{self.name}: slot filled twice")
        token.filled = True
        token.value = value
        self.stats.pushes += 1

    def push(self, value: Any) -> _Slot:
        """Reserve and fill in one step (locally produced values).
        Returns the slot so a speculative producer can poison-tag it."""
        slot = self.reserve()
        self.fill(slot, value)
        return slot

    def note_full_stall(self) -> None:
        """Record that a producer stalled on this queue this cycle."""
        self.stats.full_stalls += 1

    # -- consumer side --------------------------------------------------

    def head_ready(self) -> bool:
        """True if the oldest slot exists, has been filled and is not
        speculatively poisoned (non-speculative consumers must not see
        run-ahead data before its prediction commits)."""
        return (
            bool(self._slots)
            and self._slots[0].filled
            and not self._slots[0].poisoned
        )

    def pop(self) -> Any:
        """Remove and return the head value; head must be ready."""
        if not self.head_ready():
            raise QueueError(f"{self.name}: pop on empty/unfilled head")
        if self._lazy:
            if self._clock[0] > self._synced:
                self._lazy_flush()
            if self._agg is not None:
                self._agg.change(self._clock[0], -1)
        self.stats.pops += 1
        value = self._slots.popleft().value
        if self._tap is not None:
            self._tap.append(value)
        return value

    def peek(self) -> Any:
        """Return the head value without removing it; head must be ready."""
        if not self.head_ready():
            raise QueueError(f"{self.name}: peek on empty/unfilled head")
        return self._slots[0].value

    def note_empty_stall(self) -> None:
        """Record that a consumer stalled on this queue this cycle."""
        self.stats.empty_stalls += 1

    # -- speculative consumer side (PR 8) ---------------------------------
    #
    # The speculative AP needs slot *identities*, not just values: every
    # pop it performs while a prediction is pending must be undoable (the
    # slot goes back to the head on rollback), and every slot it reserves
    # must be removable.  These helpers mirror pop()'s occupancy
    # bookkeeping; stats are deliberately NOT undone on rollback — wrong-
    # path traffic is real work the machine did.

    def head_filled(self) -> bool:
        """True if the head slot is filled, poisoned or not (the
        speculative AP may consume its own run-ahead data)."""
        return bool(self._slots) and self._slots[0].filled

    def pop_slot(self) -> _Slot:
        """Pop and return the head *slot* (filled, poison allowed)."""
        if not self.head_filled():
            raise QueueError(f"{self.name}: pop_slot on empty/unfilled head")
        if self._lazy:
            if self._clock[0] > self._synced:
                self._lazy_flush()
            if self._agg is not None:
                self._agg.change(self._clock[0], -1)
        self.stats.pops += 1
        slot = self._slots.popleft()
        if self._tap is not None:
            self._tap.append(slot.value)
        return slot

    def unpop_slot(self, slot: _Slot) -> None:
        """Rollback inverse of :meth:`pop_slot`: restore ``slot`` to the
        head.  Call in reverse pop order.

        May transiently exceed ``capacity``: a producer can legitimately
        have refilled the queue after the (now-undone) speculative pop.
        Producers poll :meth:`can_reserve`, so the overflow only delays
        them — it never corrupts state."""
        if self._lazy:
            if self._clock[0] > self._synced:
                self._lazy_flush()
            if self._agg is not None:
                self._agg.change(self._clock[0], 1)
        self._slots.appendleft(slot)

    def remove_slot(self, slot: _Slot) -> None:
        """Squash a speculatively reserved slot, wherever it sits.
        Matches by identity — slots compare by value, and distinct slots
        can hold equal values."""
        for i, s in enumerate(self._slots):
            if s is slot:
                if self._lazy:
                    if self._clock[0] > self._synced:
                        self._lazy_flush()
                    if self._agg is not None:
                        self._agg.change(self._clock[0], -1)
                del self._slots[i]
                return
        raise QueueError(f"{self.name}: remove_slot on absent slot")

    # -- scheduling contract ---------------------------------------------

    def next_event_time(self, now: int) -> int | None:
        """Event-horizon contract (see ARCHITECTURE section 16): the
        earliest cycle at which this component's externally visible state
        can change *with every other component frozen*.

        A queue is entirely passive: its occupancy changes only when a
        producer reserves or a consumer pops, and fills arrive through
        memory completions already counted in the banked memory's own
        horizon.  On its own a queue never wakes anyone, hence ``None``.
        """
        return None

    # -- checkpointing ----------------------------------------------------

    def snapshot_state(self) -> dict:
        """JSON-clean image of the queue's mutable state.

        Slot values are floats, ints or small tuples; tuples are tagged so
        the JSON round-trip can reconstruct them exactly.  Lazy-sampling
        bookkeeping is *not* captured: checkpoints are only taken between
        scheduler runs, when every queue is in the synced, non-lazy state.
        """
        def _enc(v):
            return {"__tuple__": list(v)} if isinstance(v, tuple) else v

        st = self.stats
        return {
            # poisoned slots append a third element so non-speculative
            # snapshots keep the seed [filled, value] encoding (and its
            # digests) byte-identical
            "slots": [
                [s.filled, _enc(s.value), True] if s.poisoned
                else [s.filled, _enc(s.value)]
                for s in self._slots
            ],
            "stats": {
                "pushes": st.pushes,
                "pops": st.pops,
                "empty_stalls": st.empty_stalls,
                "full_stalls": st.full_stalls,
                "samples": st.samples,
                "occupancy_sum": st.occupancy_sum,
                "occupancy_max": st.occupancy_max,
                "histogram": {str(k): v for k, v in st.histogram.items()},
            },
        }

    def restore_state(self, data: dict) -> None:
        """Inverse of :meth:`snapshot_state`.

        Mutates ``_slots`` and ``stats`` **in place** — other components
        cache references to both (``SMAMachine._load_slots``,
        ``QueueFile._sample_pairs``), so rebinding would silently detach
        them.
        """
        def _dec(v):
            if isinstance(v, dict) and "__tuple__" in v:
                return tuple(v["__tuple__"])
            return v

        self._slots.clear()
        self._slots.extend(
            _Slot(filled=entry[0], value=_dec(entry[1]),
                  poisoned=bool(entry[2:] and entry[2]))
            for entry in data["slots"]
        )
        st, src = self.stats, data["stats"]
        st.pushes = src["pushes"]
        st.pops = src["pops"]
        st.empty_stalls = src["empty_stalls"]
        st.full_stalls = src["full_stalls"]
        st.samples = src["samples"]
        st.occupancy_sum = src["occupancy_sum"]
        st.occupancy_max = src["occupancy_max"]
        st.histogram.clear()
        st.histogram.update({int(k): v for k, v in src["histogram"].items()})
        self._lazy = False
        self._clock = None
        self._agg = None
        self._synced = 0
        self._tap = None

    # -- introspection ---------------------------------------------------

    def __len__(self) -> int:
        """Number of occupied (reserved or filled) slots."""
        return len(self._slots)

    @property
    def filled_count(self) -> int:
        return sum(1 for s in self._slots if s.filled)

    def is_empty(self) -> bool:
        return not self._slots

    def sample(self) -> None:
        """Record one occupancy sample (call once per simulated cycle)."""
        n = len(self._slots)
        st = self.stats
        st.samples += 1
        st.occupancy_sum += n
        if n > st.occupancy_max:
            st.occupancy_max = n
        st.histogram[n] = st.histogram.get(n, 0) + 1

    def __repr__(self) -> str:
        return (
            f"OperandQueue({self.name!r}, {len(self._slots)}/{self.capacity}"
            f" occupied, {self.filled_count} filled)"
        )
