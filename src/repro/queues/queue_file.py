"""The machine's full complement of architectural queues.

:class:`QueueFile` instantiates every queue named by the SMA configuration
and resolves :class:`repro.isa.Queue` operands to the backing
:class:`OperandQueue` objects.  It is shared by the access processor, the
execute processor, the stream engine, and the store unit, which gives the
simulator a single place to sample occupancy each cycle.
"""

from __future__ import annotations

from ..config import SMAConfig
from ..errors import QueueError
from ..isa import Queue, QueueSpace
from .operand_queue import LoadOccupancyAggregate, OperandQueue


class QueueFile:
    """All architectural queues of one SMA machine instance."""

    def __init__(self, config: SMAConfig):
        q = config.queues
        self.load = [
            OperandQueue(f"lq{i}", q.load_queue_depth)
            for i in range(config.num_load_queues)
        ]
        self.store_data = [
            OperandQueue(f"sdq{i}", q.store_data_depth)
            for i in range(config.num_store_queues)
        ]
        self.index = [
            OperandQueue(f"iq{i}", q.index_queue_depth)
            for i in range(config.num_index_queues)
        ]
        self.store_addr = OperandQueue("saq", q.store_addr_depth)
        self.ep_to_ap_data = OperandQueue("eaq", q.ep_to_ap_data_depth)
        self.ep_to_ap_branch = OperandQueue("ebq", q.ep_to_ap_branch_depth)
        # the queue complement is fixed for the machine's lifetime, so the
        # flat view (and the slot/stats pairs the per-cycle sample loop
        # reads) is built once
        self._all = [
            *self.load,
            *self.store_data,
            *self.index,
            self.store_addr,
            self.ep_to_ap_data,
            self.ep_to_ap_branch,
        ]
        self._sample_pairs = [(q._slots, q.stats) for q in self._all]

    def resolve(self, operand: Queue) -> OperandQueue:
        """Map an ISA queue operand to its OperandQueue."""
        space = operand.space
        try:
            if space is QueueSpace.LQ:
                return self.load[operand.index]
            if space is QueueSpace.SDQ:
                return self.store_data[operand.index]
            if space is QueueSpace.IQ:
                return self.index[operand.index]
        except IndexError:
            raise QueueError(
                f"queue {operand} not present in this configuration"
            ) from None
        if space is QueueSpace.SAQ:
            return self.store_addr
        if space is QueueSpace.EAQ:
            return self.ep_to_ap_data
        if space is QueueSpace.EBQ:
            return self.ep_to_ap_branch
        raise QueueError(f"unknown queue space {space}")

    def all_queues(self) -> list[OperandQueue]:
        return self._all

    def sample(self) -> None:
        """Record one occupancy sample on every queue.

        Inlines :meth:`OperandQueue.sample` over the prebuilt slot/stats
        pairs — this runs once per simulated cycle for every queue, so
        the method-call overhead is measurable.
        """
        for slots, stats in self._sample_pairs:
            n = len(slots)
            stats.samples += 1
            stats.occupancy_sum += n
            if n > stats.occupancy_max:
                stats.occupancy_max = n
            histogram = stats.histogram
            histogram[n] = histogram.get(n, 0) + 1

    def begin_lazy_sampling(
        self, clock: list[int]
    ) -> LoadOccupancyAggregate:
        """Switch every queue to event-driven occupancy accounting.

        ``clock`` is a shared one-element list the driver must set to the
        current cycle before stepping any component; each queue flushes
        the cycles since its last occupancy change on its next mutation.
        Returns the aggregate that tracks the summed load-queue occupancy
        (for ``mean/max_outstanding_loads``).  The caller must invoke
        :meth:`end_lazy_sampling` when it stops driving the clock —
        including on error paths — or occupancy statistics stay behind.
        """
        start = clock[0]
        agg = LoadOccupancyAggregate(
            sum(len(q._slots) for q in self.load), start
        )
        for q in self._all:
            q._lazy = True
            q._clock = clock
            q._synced = start
        for q in self.load:
            q._agg = agg
        return agg

    def end_lazy_sampling(self, agg: LoadOccupancyAggregate) -> None:
        """Flush event-driven accounting up to the clock's current cycle
        and return every queue to per-cycle sampling mode."""
        end = self._all[0]._clock[0]
        for q in self._all:
            q._lazy_flush()
            q._lazy = False
            q._clock = None
            q._agg = None
        agg.finish(end)

    def all_drained(self) -> bool:
        """True when no queue holds any reserved or filled slot."""
        return all(q.is_empty() for q in self._all)
