"""Sweep-as-a-service: an asyncio job server over the crash-safe harness.

ROADMAP item 1: the paper's experiment tables are thousands of
near-identical ``(kernel, config)`` points, and heavy sweep traffic is
mostly *duplicate* points.  This package wraps the PR 5 harness substrate
(atomic cache flushes, per-job timeout/retry, ``snapshot()``/
``restore()``) in a stdlib-only service:

:mod:`~repro.service.protocol`
    The wire format: :class:`~repro.harness.jobs.Job` <-> JSON specs.
    The server keys everything by the same canonical ``repr(Job)`` the
    harness cache uses (:func:`repro.harness.parallel.job_key`), so
    service results and local cache entries are interchangeable.
:mod:`~repro.service.store`
    Content-addressed result store: blobs keyed by result digest with a
    ``job_key -> digest`` index, so byte-identical results across
    different sweeps share one blob.  Promotes an existing
    fingerprint-keyed harness cache in place.
:mod:`~repro.service.slices`
    Preemption-safe job execution: eligible jobs run in bounded cycle
    slices with a machine/cluster snapshot between slices, so a drained
    or crashed worker's job resumes on another worker without lost
    cycles — and still lands a result byte-identical to ``run_job``.
:mod:`~repro.service.scheduler`
    The asyncio scheduler: request coalescing (identical in-flight jobs
    share one execution), bounded-queue backpressure, per-job
    timeout/retry via :class:`~repro.harness.parallel.HarnessPolicy`, a
    fingerprint-seeded process-pool fleet with crash respawn, and
    graceful per-worker drain with checkpoint migration.
:mod:`~repro.service.server`
    Minimal asyncio HTTP/1.1 front end: ``POST /v1/jobs``,
    ``GET /v1/jobs/<key>``, blob access, a chunked streaming progress
    endpoint fed by :class:`~repro.harness.parallel.SweepStats`, drain
    and shutdown controls.
:mod:`~repro.service.client`
    Blocking stdlib client used by ``repro submit``, the
    ``run_jobs(backend="service")`` route and the CI smoke.
"""

from .client import ServiceClient, ServiceError
from .protocol import ProtocolError, job_from_spec, job_to_spec
from .scheduler import JobScheduler, QueueFullError, SchedulerDraining
from .server import SweepServer
from .store import ContentStore

__all__ = [
    "ContentStore",
    "JobScheduler",
    "ProtocolError",
    "QueueFullError",
    "SchedulerDraining",
    "ServiceClient",
    "ServiceError",
    "SweepServer",
    "job_from_spec",
    "job_to_spec",
]
