"""Blocking stdlib client for a running ``repro serve`` instance.

This is what ``repro submit`` and ``run_jobs(backend="service")`` speak
through: plain :mod:`urllib.request` over the JSON routes in
:mod:`~repro.service.server`.  The server computes job keys under its
*own* code fingerprint and returns them in the submit response, so the
client never assumes both ends run identical sources.

The one non-trivial behavior is :meth:`ServiceClient.run`: submit all
jobs in one POST, then long-poll each returned key, invoking
``on_result`` as results land — the callback signature matches the
harness's internal landing hook, which is how the ``backend="service"``
branch of :func:`repro.harness.parallel.run_jobs` streams remote
results into the local cache as they finish.  Backpressured (429)
submissions are retried with exponential backoff rather than failed.
"""

from __future__ import annotations

import json
import logging
import time
import urllib.error
import urllib.request
from collections.abc import Callable, Sequence

from ..harness.jobs import Job
from .protocol import job_to_spec

_LOG = logging.getLogger("repro.service.client")

#: seconds each long-poll is allowed to hang before re-polling
_POLL_WAIT = 10.0
#: backpressure retry schedule base (seconds, doubled per attempt)
_RETRY_BASE = 0.25


class ServiceError(RuntimeError):
    """The service reported a terminal failure for a job or request."""


class ServiceClient:
    """Thin blocking wrapper over one server's ``/v1`` routes."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- raw http ----------------------------------------------------------

    def _request(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, dict]:
        body = None if payload is None else json.dumps(payload).encode()
        request = urllib.request.Request(
            self.base_url + path,
            data=body,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as exc:
            # 4xx/5xx still carry a JSON body with per-job statuses
            try:
                return exc.code, json.loads(exc.read())
            except (json.JSONDecodeError, OSError):
                raise ServiceError(
                    f"{method} {path} -> HTTP {exc.code}"
                ) from exc

    # -- simple routes -----------------------------------------------------

    def healthz(self) -> bool:
        try:
            status, payload = self._request("GET", "/v1/healthz")
        except (urllib.error.URLError, OSError):
            return False
        return status == 200 and payload.get("ok") is True

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")[1]

    def get_blob(self, digest: str) -> dict:
        status, payload = self._request("GET", f"/v1/blobs/{digest}")
        if status != 200:
            raise ServiceError(f"unknown blob {digest[:12]}")
        return payload

    def job_status(self, key: str, wait: float = 0.0) -> dict | None:
        path = f"/v1/jobs/{key}"
        if wait > 0:
            path += f"?wait={wait:g}"
        status, payload = self._request("GET", path)
        return payload if status == 200 else None

    def drain_workers(self, count: int = 1) -> int:
        _status, payload = self._request(
            "POST", "/v1/drain", {"workers": count}
        )
        return payload.get("drained_workers", 0)

    def drain_intake(self) -> None:
        self._request("POST", "/v1/drain", {})

    def shutdown(self) -> None:
        self._request("POST", "/v1/shutdown", {})

    # -- submission --------------------------------------------------------

    def submit(self, jobs: Sequence[Job]) -> list[dict]:
        """One ``POST /v1/jobs``; returns the per-job status list (the
        caller inspects ``rejected``/``draining`` entries itself)."""
        _status, payload = self._request(
            "POST", "/v1/jobs",
            {"jobs": [job_to_spec(job) for job in jobs]},
        )
        statuses = payload.get("jobs")
        if not isinstance(statuses, list) or len(statuses) != len(jobs):
            raise ServiceError(
                f"malformed submit response: {payload!r}"
            )
        return statuses

    def run(
        self,
        jobs: Sequence[Job],
        on_result: Callable[[int, dict], None] | None = None,
        timeout: float | None = None,
        poll: float = _POLL_WAIT,
    ) -> list[dict]:
        """Submit ``jobs`` and block until every result is back.

        ``on_result(position, result)`` fires as each job lands (order
        follows completion, not submission).  Backpressured submissions
        retry with exponential backoff until accepted or ``timeout``
        runs out; a job the server reports as failed raises
        :class:`ServiceError`.
        """
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )

        def remaining() -> float | None:
            if deadline is None:
                return None
            left = deadline - time.monotonic()
            if left <= 0:
                raise ServiceError(
                    f"service run timed out after {timeout:g}s"
                )
            return left

        keys: dict[int, str] = {}
        todo = list(range(len(jobs)))
        attempt = 0
        while todo:
            statuses = self.submit([jobs[i] for i in todo])
            retry = []
            for i, status in zip(todo, statuses):
                if status["status"] in ("rejected", "draining"):
                    retry.append(i)
                else:
                    keys[i] = status["key"]
            if retry:
                attempt += 1
                delay = _RETRY_BASE * (2 ** min(attempt - 1, 6))
                left = remaining()
                if left is not None:
                    delay = min(delay, left)
                _LOG.info(
                    "%d job(s) backpressured; retrying in %.2fs",
                    len(retry), delay,
                )
                time.sleep(delay)
            todo = retry

        results: list[dict | None] = [None] * len(jobs)
        outstanding = set(keys)
        while outstanding:
            for i in sorted(outstanding):
                wait = poll
                left = remaining()
                if left is not None:
                    wait = min(wait, left)
                status = self.job_status(keys[i], wait=wait)
                if status is None:
                    raise ServiceError(
                        f"job key {keys[i][:12]} vanished from the "
                        "service"
                    )
                if status["status"] == "failed":
                    raise ServiceError(
                        f"job {i} failed remotely: "
                        f"{status.get('error', 'unknown error')}"
                    )
                if status["status"] == "done" and "result" in status:
                    results[i] = status["result"]
                    outstanding.discard(i)
                    if on_result is not None:
                        on_result(i, status["result"])
        return results  # type: ignore[return-value]
