"""Wire format: :class:`~repro.harness.jobs.Job` <-> JSON-clean specs.

A job spec is the job's dataclass fields with nested frozen config
dataclasses encoded as plain dicts (``None`` fields omitted).  Decoding
rebuilds the exact dataclass tree, so::

    job_from_spec(job_to_spec(job)) == job

holds field-for-field — and therefore ``repr`` (the canonical form
:func:`repro.harness.parallel.job_key` hashes) round-trips too.  The
server never has to trust client-side keys: it recomputes ``job_key``
from the reconstructed job, under its *own* code fingerprint.

Config validation happens in the dataclass ``__post_init__`` hooks;
anything they raise surfaces as :class:`ProtocolError`, which the HTTP
layer maps to a 400.
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass

from ..config import (
    CacheConfig,
    FaultConfig,
    MemoryConfig,
    QueueConfig,
    ScalarConfig,
    SMAConfig,
    SpeculationConfig,
)
from ..harness.jobs import Job
from ..memory.prefetch import PrefetchConfig


class ProtocolError(ValueError):
    """A job spec that cannot be decoded into a valid :class:`Job`."""


#: dataclass-typed fields: (owner class, field name) -> field class.
#: Everything else round-trips as a JSON scalar / tuple.
_NESTED: dict[tuple[type, str], type] = {
    (Job, "sma_config"): SMAConfig,
    (Job, "scalar_config"): ScalarConfig,
    (Job, "memory_config"): MemoryConfig,
    (SMAConfig, "memory"): MemoryConfig,
    (SMAConfig, "queues"): QueueConfig,
    (SMAConfig, "faults"): FaultConfig,
    (SMAConfig, "speculation"): SpeculationConfig,
    (ScalarConfig, "memory"): MemoryConfig,
    (ScalarConfig, "cache"): CacheConfig,
    (ScalarConfig, "prefetch"): PrefetchConfig,
}


def _encode(value):
    if is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _encode(getattr(value, f.name))
            for f in fields(value)
            if getattr(value, f.name) is not None
        }
    if isinstance(value, tuple):
        return [_encode(v) for v in value]
    return value


def job_to_spec(job: Job) -> dict:
    """JSON-clean spec for one job (``None`` fields omitted)."""
    return _encode(job)


def _decode(cls: type, data: dict):
    if not isinstance(data, dict):
        raise ProtocolError(
            f"expected an object for {cls.__name__}, got "
            f"{type(data).__name__}"
        )
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ProtocolError(
            f"unknown {cls.__name__} field(s): {sorted(unknown)}"
        )
    kwargs = {}
    for name, value in data.items():
        nested = _NESTED.get((cls, name))
        if nested is not None and value is not None:
            value = _decode(nested, value)
        elif isinstance(value, list):
            value = tuple(value)
        kwargs[name] = value
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(
            f"invalid {cls.__name__} spec: {exc}"
        ) from None


def job_from_spec(spec: dict) -> Job:
    """Rebuild a :class:`Job` from its spec; :class:`ProtocolError` on
    anything malformed."""
    return _decode(Job, spec)


def jobs_from_payload(payload) -> list[Job]:
    """Decode the body of a ``POST /v1/jobs`` request."""
    if not isinstance(payload, dict) or "jobs" not in payload:
        raise ProtocolError('expected a JSON object with a "jobs" list')
    specs = payload["jobs"]
    if not isinstance(specs, list) or not specs:
        raise ProtocolError('"jobs" must be a non-empty list of specs')
    return [job_from_spec(spec) for spec in specs]
